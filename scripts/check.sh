#!/usr/bin/env bash
# Tier-1 gate: the full test suite plus a smoke chaos run.
#
# Usage: scripts/check.sh [extra pytest args]
# Runs from any cwd; uses the repo's src/ tree directly (no install).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"
export PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

echo "== smoke chaos run (resets profile) =="
python -m repro.cli chaos resets --sessions 4 --chunks 8 --concurrency 2 --bins 10

if [[ "${SKIP_SOAK:-0}" != "1" ]]; then
    echo "== cluster soak (SKIP_SOAK=1 to skip) =="
    python -m pytest -q -m "soak and slow" tests/service/test_cluster_soak.py
fi

echo "check.sh: all green"
