#!/usr/bin/env python
"""Regenerate the golden-session fixtures under ``tests/golden/``.

Each fixture is one JSONL timeline per registered ABR algorithm,
recorded by the :mod:`repro.obs` tracer over two fixed synthetic traces
(both sessions in one file, distinguished by session id).  The paired
regression test (``tests/integration/test_golden_sessions.py``) replays
the fixtures and re-runs the sessions live, failing on any decision or
QoE drift — so an intentional algorithm change must regenerate them:

    PYTHONPATH=src python scripts/regen_golden.py

and commit the diff.  Timelines are normalised for byte-stable output:
the tracer runs on a counting clock and wall-time profiling fields are
zeroed, so a regeneration with unchanged decisions is a no-op diff.
"""

from __future__ import annotations

import dataclasses
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import json  # noqa: E402

from repro.abr.registry import available, create  # noqa: E402
from repro.obs import RingBufferSink, Tracer, event_to_json  # noqa: E402
from repro.sim.session import simulate_session  # noqa: E402
from repro.traces.trace import Trace  # noqa: E402
from repro.video import short_test_video  # noqa: E402

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "tests", "golden")

#: Wall-clock profiling fields zeroed during normalisation (everything
#: else in a timeline is deterministic given the algorithm and trace).
VOLATILE_FIELDS = ("decide_wall_s", "wall_s")


def golden_manifest():
    """The fixture video: small enough that every ABR runs in seconds."""
    return short_test_video(num_chunks=12, num_levels=3)


def golden_traces():
    """The two fixed synthetic traces every fixture is recorded on."""
    return [
        # A capacity staircase across the ladder: forces up/down switches.
        Trace(
            [0.0, 60.0, 120.0, 180.0],
            [2400.0, 700.0, 1500.0, 3200.0],
            duration_s=600.0,
            name="golden-staircase",
        ),
        # A deep trough under the lowest sustainable rate: forces
        # rebuffering decisions and recovery.
        Trace(
            [0.0, 40.0, 70.0, 110.0],
            [1800.0, 250.0, 900.0, 2000.0],
            duration_s=600.0,
            name="golden-trough",
        ),
    ]


def _normalise(event):
    updates = {
        field: 0.0
        for field in VOLATILE_FIELDS
        if hasattr(event, field)
    }
    return dataclasses.replace(event, **updates) if updates else event


def run_golden_session(algorithm_name: str, trace: Trace):
    """One deterministic traced session -> normalised event list."""
    sink = RingBufferSink(capacity=100_000)
    counter = iter(range(10**9))
    tracer = Tracer([sink], clock=lambda: float(next(counter)))
    simulate_session(
        create(algorithm_name),
        trace,
        golden_manifest(),
        tracer=tracer,
        # Keyed by registry name, not algorithm.name: aliases such as
        # "highest" report a parameterised display name ("constant[-1]").
        session_id=f"{algorithm_name}:{trace.name}",
    )
    return [_normalise(e) for e in sink.events()]


def render_fixture(algorithm_name: str) -> str:
    """The full JSONL fixture body for one algorithm (both traces)."""
    lines = []
    for trace in golden_traces():
        for event in run_golden_session(algorithm_name, trace):
            lines.append(event_to_json(event))
    return "\n".join(lines) + "\n"


#: The algorithm recorded in the live-mode fixture: the gap-corrected
#: predictor is exactly what the live edge's off time exercises.
LIVE_FIXTURE_ALGORITHM = "fastmpc-gap"


def run_golden_live_session(algorithm_name: str, trace: Trace):
    """One deterministic traced *live* session -> normalised events."""
    from repro.sim.live import run_live_session

    sink = RingBufferSink(capacity=100_000)
    counter = iter(range(10**9))
    tracer = Tracer([sink], clock=lambda: float(next(counter)))
    run_live_session(
        create(algorithm_name),
        trace,
        golden_manifest(),
        tracer=tracer,
        session_id=f"live:{algorithm_name}:{trace.name}",
    )
    return [_normalise(e) for e in sink.events()]


def render_live_fixture() -> str:
    """The live-mode JSONL fixture (both golden traces, default edge)."""
    lines = []
    for trace in golden_traces():
        for event in run_golden_live_session(LIVE_FIXTURE_ALGORITHM, trace):
            lines.append(event_to_json(event))
    return "\n".join(lines) + "\n"


def prior_request_stream():
    """A fixed request schedule over two trace families.

    Three virtual sessions interleave across two families with a
    deterministic predicted-throughput pattern, so the fixture covers
    cold starts, pooled estimates, and per-family separation.
    """
    requests = []
    for i in range(12):
        family = "golden-fcc" if i % 2 == 0 else "golden-hsdpa"
        requests.append(
            {
                "session_id": f"prior-s{i % 3}",
                "family": family,
                "predicted_kbps": 400.0 + 137.0 * ((i * 7) % 9),
                "buffer_s": float(i % 5),
                "prev_level": i % 3,
            }
        )
    return requests


def make_prior_service():
    """A decision service over the golden ladder with a tiny real table."""
    from repro.core.fastmpc import FastMPCConfig, build_decision_table
    from repro.core.qoe import QoEWeights
    from repro.service import DecisionService

    manifest = golden_manifest()
    ladder = manifest.ladder.levels_kbps
    table = build_decision_table(
        ladder,
        manifest.chunk_duration_s,
        30.0,
        QoEWeights(),
        config=FastMPCConfig(buffer_bins=8, throughput_bins=8, horizon=3),
        use_cache=False,
    )
    return DecisionService(ladder, table=table)


def render_prior_fixture() -> str:
    """The shared-prior JSONL fixture: each served request's outcome in
    order, then the store's final snapshot as the last line."""
    from repro.service.protocol import DecisionRequest

    service = make_prior_service()
    lines = []
    for fields in prior_request_stream():
        response = service.decide(DecisionRequest(**fields))
        lines.append(
            json.dumps(
                {
                    **fields,
                    "level_index": response.level_index,
                    "bitrate_kbps": response.bitrate_kbps,
                    "source": response.source,
                    "prior_kbps": response.prior_kbps,
                },
                sort_keys=True,
            )
        )
    lines.append(
        json.dumps(
            {"priors": service.metrics_document()["priors"]}, sort_keys=True
        )
    )
    return "\n".join(lines) + "\n"


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in sorted(available()):
        path = os.path.join(GOLDEN_DIR, f"{name}.jsonl")
        body = render_fixture(name)
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(body)
        print(f"wrote {os.path.relpath(path)} ({body.count(chr(10))} events)")
    for filename, body in (
        (f"live-{LIVE_FIXTURE_ALGORITHM}.jsonl", render_live_fixture()),
        ("prior-session.jsonl", render_prior_fixture()),
    ):
        path = os.path.join(GOLDEN_DIR, filename)
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(body)
        print(f"wrote {os.path.relpath(path)} ({body.count(chr(10))} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
