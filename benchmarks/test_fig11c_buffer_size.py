"""Figure 11c — n-QoE vs playout buffer size.

Paper's shape: growing ``Bmax`` helps every algorithm while the buffer is
small, the curves plateau around 25 s, and RB — which never looks at the
buffer — is the least affected overall.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.sensitivity import buffer_size_sweep

BUFFER_SIZES = (10.0, 20.0, 30.0, 40.0, 50.0)


@pytest.fixture(scope="module")
def sweep(mixed_pool, manifest):
    return buffer_size_sweep(mixed_pool, manifest, buffer_sizes_s=BUFFER_SIZES)


def test_figure11c_pipeline(benchmark, mixed_pool, manifest, report_sink,
                            svg_sink, sweep):
    run_once(
        benchmark,
        lambda: buffer_size_sweep(
            mixed_pool[:4], manifest, buffer_sizes_s=(10.0, 30.0)
        ),
    )
    report_sink("fig11c_buffer_size", sweep.describe())
    from repro.experiments import render_lines_svg

    svg_sink(
        "fig11c_buffer_size",
        render_lines_svg(
            list(sweep.parameter_values), sweep.series,
            title="Figure 11c — n-QoE vs buffer size",
            x_label="Bmax (s)",
        ),
    )


def test_small_buffers_hurt(benchmark, sweep):
    """10 s of buffer is clearly worse than 30 s for buffer-aware
    algorithms."""
    deltas = run_once(
        benchmark,
        lambda: {
            a: sweep.series[a][2] - sweep.series[a][0]
            for a in ("fastmpc", "bb", "mpc-opt")
        },
    )
    for algorithm, delta in deltas.items():
        assert delta > -0.02, f"{algorithm} got worse with more buffer"
    assert max(deltas.values()) > 0.01


def test_plateau_beyond_30s(benchmark, sweep):
    """Growing the buffer from 30 s to 50 s changes little."""
    shifts = run_once(
        benchmark,
        lambda: {
            a: abs(sweep.series[a][4] - sweep.series[a][2])
            for a in sweep.series
        },
    )
    for algorithm, shift in shifts.items():
        assert shift < 0.1, f"{algorithm} still moving after 30s: {shift:.3f}"


def test_rb_is_least_buffer_sensitive(benchmark, sweep):
    spans = run_once(
        benchmark,
        lambda: {
            a: max(sweep.series[a]) - min(sweep.series[a]) for a in sweep.series
        },
    )
    buffer_aware = [spans[a] for a in ("fastmpc", "bb", "mpc-opt")]
    assert spans["rb"] <= max(buffer_aware) + 0.02
