"""Figure 12b — MPC n-QoE vs look-ahead horizon at several error levels.

Paper's shape: performance grows with the horizon and saturates around
the deployed h = 5; with noisier predictions the curves sit lower and the
benefit of looking further ahead fades.  Aggregation is by mean (a single
divergent decision early in a session makes per-trace medians noisy).
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.sensitivity import horizon_sweep

HORIZONS = (2, 3, 4, 5, 6, 7, 8, 9)
ERRORS = (0.10, 0.20)


@pytest.fixture(scope="module")
def sweep(mixed_pool, manifest):
    return horizon_sweep(
        mixed_pool[:12], manifest, horizons=HORIZONS, error_levels=ERRORS,
        seed=11,
    )


def test_figure12b_pipeline(benchmark, mixed_pool, manifest, report_sink,
                            svg_sink, sweep):
    run_once(
        benchmark,
        lambda: horizon_sweep(
            mixed_pool[:3], manifest, horizons=(2, 5), error_levels=(0.10,),
        ),
    )
    report_sink("fig12b_horizon", sweep.describe())
    from repro.experiments import render_lines_svg

    svg_sink(
        "fig12b_horizon",
        render_lines_svg(
            list(sweep.parameter_values), sweep.series,
            title="Figure 12b — n-QoE vs look-ahead horizon",
            x_label="horizon (chunks)",
        ),
    )


def test_longer_horizon_beats_myopic(benchmark, sweep):
    """The saturated region (h >= 5) clearly improves on h = 2."""
    deltas = run_once(
        benchmark,
        lambda: {a: max(s[3:]) - s[0] for a, s in sweep.series.items()},
    )
    for series_name, delta in deltas.items():
        assert delta > 0, f"{series_name}: no gain from looking ahead"


def test_saturation_beyond_paper_horizon(benchmark, sweep):
    """Most of the benefit is already in by the paper's h = 5: the best
    value beyond h=5 exceeds the h=5 value by far less than h=5 gained
    over h=2."""
    movements = run_once(
        benchmark,
        lambda: {
            a: (max(s[3:]) - s[3], max(s[3:]) - s[0])
            for a, s in sweep.series.items()
        },
    )
    for series_name, (late_gain, total_gain) in movements.items():
        assert late_gain <= 0.75 * total_gain + 0.02, (
            f"{series_name}: horizon gains not front-loaded"
        )


def test_lower_error_sits_higher_on_average(benchmark, sweep):
    """Across the whole sweep, 10% error outperforms 20% error."""
    averages = run_once(
        benchmark,
        lambda: {
            a: sum(s) / len(s) for a, s in sweep.series.items()
        },
    )
    assert averages["mpc-err10"] >= averages["mpc-err20"] - 0.02
