"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper exhibits; they quantify the sensitivity of our
implementation's own choices:

* **Throughput-bin spacing** — the deployment default is log spacing;
  the paper's sketch implies linear.  Log bins resolve the low-throughput
  regime (where QoE is most sensitive) better at equal bin counts.
* **Predictor family** — the paper fixes the harmonic mean and defers
  better predictors to future work; here the alternatives race.
* **Robust error window** — RobustMPC takes the max error over the past
  5 chunks; shorter windows forgive too fast, longer ones stay scared
  too long.
* **FastMPC's CBR table under VBR content** — the table keys on nominal
  rates while the online solver sees true per-chunk sizes.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.abr import SessionConfig
from repro.core.fastmpc import FastMPCConfig, FastMPCController
from repro.core.mpc import MPCController
from repro.core.robust import RobustMPCController
from repro.experiments import median, render_table, run_matrix
from repro.prediction import (
    EWMAPredictor,
    HarmonicMeanPredictor,
    HoltLinearPredictor,
    LastSamplePredictor,
    SlidingMeanPredictor,
)
from repro.video import envivio_vbr


def test_bin_spacing_ablation(benchmark, mixed_pool, manifest, report_sink):
    """Log vs linear throughput bins at equal (coarse) bin counts."""

    def run():
        out = {}
        for spacing in ("log", "linear"):
            for bins in (10, 30):
                config = FastMPCConfig(
                    buffer_bins=bins, throughput_bins=bins,
                    throughput_spacing=spacing,
                )
                results = run_matrix(
                    {"fastmpc": FastMPCController(config=config)},
                    mixed_pool, manifest,
                )
                out[(spacing, bins)] = results.median_n_qoe("fastmpc")
        return out

    scores = run_once(benchmark, run)
    rows = [[s, b, round(v, 4)] for (s, b), v in scores.items()]
    report_sink(
        "ablation_bin_spacing",
        render_table(["spacing", "bins", "median n-QoE"], rows),
    )
    # At coarse bin counts, log spacing must not lose badly to linear —
    # it resolves the low-throughput regime where stalls are decided.
    assert scores[("log", 10)] >= scores[("linear", 10)] - 0.05


def test_predictor_family_ablation(benchmark, mixed_pool, manifest, report_sink):
    """MPC with each predictor family; the paper's harmonic default must
    be competitive, naive persistence must trail."""

    def run():
        algorithms = {
            "harmonic": MPCController(HarmonicMeanPredictor(), name="h"),
            "sliding-mean": MPCController(SlidingMeanPredictor(), name="s"),
            "ewma": MPCController(EWMAPredictor(), name="e"),
            "holt": MPCController(HoltLinearPredictor(), name="ho"),
            "last-sample": MPCController(LastSamplePredictor(), name="l"),
        }
        results = run_matrix(algorithms, mixed_pool, manifest)
        return {name: results.median_n_qoe(name) for name in algorithms}

    scores = run_once(benchmark, run)
    report_sink(
        "ablation_predictor_family",
        render_table(
            ["predictor", "median n-QoE"],
            [[k, round(v, 4)] for k, v in sorted(scores.items(),
                                                 key=lambda kv: -kv[1])],
        ),
    )
    best = max(scores.values())
    assert scores["harmonic"] >= best - 0.06  # the default is competitive
    # The paper's stated reason for the harmonic mean is robustness to
    # outliers relative to the *arithmetic* mean — that ordering holds.
    # (Interesting ablation result: plain persistence is competitive on
    # these traces, whose fading has no isolated one-chunk spikes.)
    assert scores["harmonic"] >= scores["sliding-mean"] - 0.02


def test_robust_error_window_ablation(benchmark, mixed_pool, manifest, report_sink):
    """RobustMPC's max-error window: 1 vs the paper's 5 vs 15 chunks."""

    def run():
        algorithms = {
            f"window-{w}": RobustMPCController(error_window=w, name=f"w{w}")
            for w in (1, 5, 15)
        }
        results = run_matrix(algorithms, mixed_pool, manifest)
        return {name: results.median_n_qoe(name) for name in algorithms}

    scores = run_once(benchmark, run)
    report_sink(
        "ablation_robust_window",
        render_table(
            ["error window", "median n-QoE"],
            [[k, round(v, 4)] for k, v in scores.items()],
        ),
    )
    # The paper's window must not be dominated by the degenerate window-1.
    assert scores["window-5"] >= scores["window-1"] - 0.05


def test_fastmpc_cbr_assumption_under_vbr(benchmark, mixed_pool, report_sink):
    """FastMPC's table assumes CBR sizes; on VBR content the online MPC
    (which reads true per-chunk sizes) should hold up at least as well."""
    vbr_video = envivio_vbr(variability=0.35, seed=4)

    def run():
        results = run_matrix(
            {
                "mpc-online": MPCController(),
                "fastmpc-table": FastMPCController(),
            },
            mixed_pool,
            vbr_video,
        )
        return {
            "mpc-online": results.median_n_qoe("mpc-online"),
            "fastmpc-table": results.median_n_qoe("fastmpc-table"),
        }

    scores = run_once(benchmark, run)
    report_sink(
        "ablation_vbr_cbr_table",
        render_table(
            ["algorithm", "median n-QoE (VBR content)"],
            [[k, round(v, 4)] for k, v in scores.items()],
        ),
    )
    assert scores["mpc-online"] >= scores["fastmpc-table"] - 0.05


def test_request_pacing_ablation(benchmark, mixed_pool, manifest, report_sink):
    """Chunk-scheduling ablation (the paper's §3.1 Delta-t question):
    pacing requests to a target buffer below Bmax saves nothing in QoE
    terms but shrinks the held buffer — until the target gets small
    enough that throughput dips start draining it (the Figure 11c
    mechanism from the scheduling side)."""
    from repro.abr import SessionConfig
    from repro.core.robust import RobustMPCController

    def run():
        out = {}
        for target in (6.0, 15.0, None):
            config = SessionConfig(request_target_buffer_s=target)
            results = run_matrix(
                {"robust-mpc": RobustMPCController()}, mixed_pool, manifest,
                config,
            )
            label = "none (Bmax)" if target is None else f"{target:g}s"
            out[label] = (
                results.median_n_qoe("robust-mpc"),
                median(results.metric_values("robust-mpc", "total_rebuffer_s")),
            )
        return out

    scores = run_once(benchmark, run)
    rows = [[k, round(v[0], 4), round(v[1], 2)] for k, v in scores.items()]
    report_sink(
        "ablation_request_pacing",
        render_table(["pacing target", "median n-QoE", "median stall s"], rows),
    )
    # A generous 15 s target costs little against no pacing; a 6 s target
    # must not *gain* QoE (holding less buffer can only remove slack).
    assert scores["15s"][0] >= scores["6s"][0] - 0.03
    assert scores["none (Bmax)"][0] >= scores["6s"][0] - 0.03
