"""Cluster scale benchmark — warm decision throughput at 1/2/4 workers,
tail latency, and crash-recovery time.

Runs the closed-loop load generator against a real multi-process
:class:`~repro.service.cluster.ClusterSupervisor` (forked workers, one
published mmap-backed table, ``SO_REUSEPORT`` sharding) at 1, 2, and 4
workers, then measures how long the supervisor takes to detect and
replace a SIGKILLed worker.

The scale-out bar — 4 workers sustain >= 3x the 1-worker warm
throughput — is a statement about the *cluster*, not the host: it can
only hold where the kernel has cores to spread the workers over, so the
assertion is gated on ``os.cpu_count() >= 4`` exactly like the GPU
benches gate on an accelerator being present.  The measured numbers and
the host's core count are recorded unconditionally in
``benchmarks/results/BENCH_cluster.json`` so the trajectory is honest
either way.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import pytest
from conftest import RESULTS_DIR, run_once

from repro.core.fastmpc import build_decision_table
from repro.experiments import publish_table
from repro.qoe import QoEWeights
from repro.service import (
    ClusterConfig,
    ClusterSupervisor,
    LoadTestConfig,
    run_loadtest,
)
from repro.video.presets import (
    DEFAULT_BUFFER_CAPACITY_S,
    ENVIVIO_CHUNK_SECONDS,
    ENVIVIO_LADDER_KBPS,
)

pytestmark = pytest.mark.slow

WORKER_COUNTS = (1, 2, 4)

#: The scale-out bar, asserted only on hosts with >= 4 cores.
MIN_SCALEOUT_AT_4_WORKERS = 3.0

LOAD_CONFIG = LoadTestConfig(
    sessions=48,
    chunks_per_session=65,
    concurrency=16,
    connections=16,
    dataset="synthetic",
    seed=2015,
    trace_duration_s=320.0,
)


@pytest.fixture(scope="module")
def table_path(tmp_path_factory):
    table = build_decision_table(
        ENVIVIO_LADDER_KBPS,
        ENVIVIO_CHUNK_SECONDS,
        DEFAULT_BUFFER_CAPACITY_S,
        QoEWeights.balanced(),
    )
    path = tmp_path_factory.mktemp("cluster-bench") / "table.rprotbl"
    return str(publish_table(table, path))


async def _loadtest_against_cluster(table_path: str, workers: int) -> dict:
    config = ClusterConfig(workers=workers)
    async with ClusterSupervisor(
        ENVIVIO_LADDER_KBPS, table_path=table_path, config=config
    ) as sup:
        report = await run_loadtest("127.0.0.1", sup.bound_port, LOAD_CONFIG)
        metrics = await sup.metrics()
    return {"report": report, "metrics": metrics}


@pytest.fixture(scope="module")
def sweep(table_path):
    return {
        workers: asyncio.run(_loadtest_against_cluster(table_path, workers))
        for workers in WORKER_COUNTS
    }


@pytest.fixture(scope="module")
def recovery(table_path):
    """Time from SIGKILL to a fully healthy cluster again."""

    async def inner() -> float:
        config = ClusterConfig(workers=2, poll_interval_s=0.02)
        async with ClusterSupervisor(
            ENVIVIO_LADDER_KBPS, table_path=table_path, config=config
        ) as sup:
            sup.kill_worker(0, signal.SIGKILL)
            started = time.perf_counter()
            deadline = started + 15.0
            while sup.restarts_total < 1 and time.perf_counter() < deadline:
                await asyncio.sleep(0.005)
            await sup.wait_healthy(timeout_s=15.0)
            assert sup.restarts_total == 1
            return time.perf_counter() - started

    return asyncio.run(inner())


def test_every_worker_count_serves_cleanly(benchmark, sweep):
    expected = LOAD_CONFIG.sessions * LOAD_CONFIG.chunks_per_session
    results = run_once(benchmark, lambda: sweep)
    for workers, outcome in results.items():
        report = outcome["report"]
        assert report.errors == 0, f"{workers} workers saw hard errors"
        assert report.decisions == expected
        assert report.sessions_completed == LOAD_CONFIG.sessions
        assert report.sources.get("table", 0) == expected
        assert outcome["metrics"]["requests_total"] == expected
        assert outcome["metrics"]["cluster"]["alive"] == workers


def test_scaleout_on_capable_hosts(sweep):
    single = sweep[1]["report"].throughput_dps
    quad = sweep[4]["report"].throughput_dps
    assert single > 0 and quad > 0
    if (os.cpu_count() or 1) < 4:
        pytest.skip(
            f"host has {os.cpu_count()} core(s); the >= "
            f"{MIN_SCALEOUT_AT_4_WORKERS}x scale-out bar needs >= 4 "
            f"(measured 4w/1w = {quad / single:.2f}x, recorded regardless)"
        )
    assert quad >= MIN_SCALEOUT_AT_4_WORKERS * single, (
        f"4 workers = {quad:,.0f} dps vs 1 worker = {single:,.0f} dps "
        f"({quad / single:.2f}x < {MIN_SCALEOUT_AT_4_WORKERS}x)"
    )


def test_recovery_is_prompt(recovery):
    # Detection poll (20 ms) + first backoff step (~50 ms) + fork + bind
    # + table map; anything near a second means supervision regressed.
    assert recovery < 5.0, f"restart recovery took {recovery:.2f}s"


def test_append_bench_json(sweep, recovery, report_sink):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_cluster.json"
    history = []
    if path.exists():
        history = json.loads(path.read_text())
        if isinstance(history, dict):
            history = [history]
    record = {
        "timestamp": time.time(),
        "cpu_count": os.cpu_count(),
        "config": {
            "sessions": LOAD_CONFIG.sessions,
            "chunks_per_session": LOAD_CONFIG.chunks_per_session,
            "concurrency": LOAD_CONFIG.concurrency,
            "connections": LOAD_CONFIG.connections,
            "dataset": LOAD_CONFIG.dataset,
        },
        "workers": {
            str(workers): {
                "throughput_dps": outcome["report"].throughput_dps,
                "p50_us": outcome["report"].p50_us,
                "p99_us": outcome["report"].p99_us,
                "errors": outcome["report"].errors,
            }
            for workers, outcome in sweep.items()
        },
        "scaleout_4w_over_1w": (
            sweep[4]["report"].throughput_dps
            / sweep[1]["report"].throughput_dps
        ),
        "restart_recovery_s": recovery,
    }
    history.append(record)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    lines = [
        f"{workers}w: {stats['throughput_dps']:,.0f} decisions/s"
        f" | p50 {stats['p50_us']:,.0f} us | p99 {stats['p99_us']:,.0f} us"
        for workers, stats in record["workers"].items()
    ]
    lines.append(
        f"scale-out 4w/1w = {record['scaleout_4w_over_1w']:.2f}x"
        f" on {record['cpu_count']} core(s)"
        f" | restart recovery {record['restart_recovery_s'] * 1000:,.0f} ms"
    )
    report_sink("BENCH_cluster", "\n".join(lines))
