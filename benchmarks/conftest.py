"""Shared fixtures for the reproduction benchmarks.

Each ``test_fig*`` / ``test_table*`` module regenerates one exhibit of the
paper's Section 7 (see DESIGN.md's experiment index): it computes the same
rows/series the paper plots, prints them, writes them under
``benchmarks/results/``, asserts the expected qualitative shape, and times
the pipeline through pytest-benchmark.

Scale is controlled by ``REPRO_BENCH_TRACES`` (traces per dataset,
default 40 — the paper used 1000; the shapes are stable well below that).
Run with ``pytest benchmarks/ --benchmark-only`` and add ``-s`` to watch
the tables stream by.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.traces import standard_datasets
from repro.video import envivio

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_collection_modifyitems(items) -> None:
    # Everything under benchmarks/ is a paper-exhibit pipeline, minutes
    # not milliseconds: mark it all so `-m "not bench"` skips the lot.
    for item in items:
        item.add_marker(pytest.mark.bench)


def bench_traces_per_dataset() -> int:
    return int(os.environ.get("REPRO_BENCH_TRACES", "40"))


@pytest.fixture(scope="session")
def traces_per_dataset() -> int:
    return bench_traces_per_dataset()


@pytest.fixture(scope="session")
def manifest():
    return envivio()


@pytest.fixture(scope="session")
def datasets(traces_per_dataset):
    """The paper's three datasets at benchmark scale (seeded)."""
    return standard_datasets(
        traces_per_dataset=traces_per_dataset, duration_s=320.0, seed=2015
    )


@pytest.fixture(scope="session")
def mixed_pool(datasets):
    """A cross-dataset pool, like the paper's 100-trace training set."""
    per = max(4, bench_traces_per_dataset() // 3)
    pool = []
    for traces in datasets.values():
        pool.extend(traces[:per])
    return pool


@pytest.fixture(scope="session")
def report_sink():
    """Write one rendered report per exhibit under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return write


@pytest.fixture(scope="session")
def svg_sink():
    """Write one rendered SVG figure per exhibit under benchmarks/results/."""
    from repro.experiments import save_svg

    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, svg_text: str) -> None:
        save_svg(svg_text, RESULTS_DIR / f"{name}.svg")

    return write


def run_once(benchmark, func):
    """Time a whole experiment pipeline exactly once.

    These pipelines take seconds to minutes; statistical rounds would be
    wasteful and the interesting output is the figure data itself.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
