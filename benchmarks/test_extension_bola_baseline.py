"""Extension bench — BOLA, the buffer-based algorithm that came next.

BOLA (INFOCOM 2016) replaced the heuristic rate map of Huang et al.'s BB
with a Lyapunov-derived one and became dash.js's default buffer-based
logic.  Running it through the paper's evaluation answers a natural
question the paper could not ask: does a *principled* buffer-based design
close the gap to MPC?  Expected: BOLA lands in the BB family's band —
still below RobustMPC, because no buffer-only policy sees throughput
trends coming (the paper's Figure 4 argument).
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.abr import BolaAlgorithm, BufferBasedAlgorithm
from repro.core.robust import RobustMPCController
from repro.experiments import median, render_table, run_matrix


@pytest.fixture(scope="module")
def scores(datasets, manifest):
    out = {}
    for dataset in ("fcc", "hsdpa"):
        results = run_matrix(
            {
                "bola": BolaAlgorithm(),
                "bb": BufferBasedAlgorithm(),
                "robust-mpc": RobustMPCController(),
            },
            datasets[dataset],
            manifest,
            dataset=dataset,
        )
        out[dataset] = {
            "n_qoe": {a: results.median_n_qoe(a)
                      for a in ("bola", "bb", "robust-mpc")},
            "rebuffer": {
                a: median(results.metric_values(a, "total_rebuffer_s"))
                for a in ("bola", "bb", "robust-mpc")
            },
        }
    return out


def test_extension_pipeline(benchmark, datasets, manifest, report_sink, scores):
    run_once(
        benchmark,
        lambda: run_matrix(
            {"bola": BolaAlgorithm()}, datasets["fcc"][:8], manifest
        ),
    )
    rows = [
        [ds, a, round(v, 4), round(scores[ds]["rebuffer"][a], 2)]
        for ds in scores
        for a, v in scores[ds]["n_qoe"].items()
    ]
    report_sink(
        "extension_bola_baseline",
        render_table(["dataset", "algorithm", "median n-QoE", "median stall s"],
                     rows),
    )


def test_bola_is_in_the_buffer_based_band(benchmark, scores):
    """BOLA performs like a (good) buffer-based algorithm."""
    ratios = run_once(
        benchmark,
        lambda: [
            scores[ds]["n_qoe"]["bola"] / scores[ds]["n_qoe"]["bb"]
            for ds in scores
        ],
    )
    for ratio in ratios:
        assert 0.6 < ratio < 1.6


def test_robust_mpc_still_leads(benchmark, scores):
    """No buffer-only policy overtakes the combined-signal controller —
    the paper's central design-space argument, extended one year forward."""
    leads = run_once(
        benchmark,
        lambda: [
            scores[ds]["n_qoe"]["robust-mpc"] - scores[ds]["n_qoe"]["bola"]
            for ds in scores
        ],
    )
    assert all(lead > 0 for lead in leads)


def test_bola_controls_rebuffering(benchmark, scores):
    """The Lyapunov drift term must keep stalls in the same band as BB's
    reservoir on the mobile dataset."""
    values = run_once(
        benchmark,
        lambda: (scores["hsdpa"]["rebuffer"]["bola"],
                 scores["hsdpa"]["rebuffer"]["bb"]),
    )
    assert values[0] <= values[1] + 2.0
