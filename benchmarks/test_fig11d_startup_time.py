"""Figure 11d — n-QoE (excluding the startup term) vs fixed startup delay.

Paper's shape: a longer fixed startup lets the player pre-roll more
buffer, so overall QoE (scored without the startup penalty) improves for
every algorithm as the delay grows from 2 s to 10 s.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.sensitivity import startup_time_sweep

STARTUP_TIMES = (2.0, 4.0, 6.0, 8.0, 10.0)


@pytest.fixture(scope="module")
def sweep(mixed_pool, manifest):
    return startup_time_sweep(mixed_pool, manifest, startup_times_s=STARTUP_TIMES)


def test_figure11d_pipeline(benchmark, mixed_pool, manifest, report_sink,
                            svg_sink, sweep):
    run_once(
        benchmark,
        lambda: startup_time_sweep(
            mixed_pool[:4], manifest, startup_times_s=(2.0, 10.0)
        ),
    )
    report_sink("fig11d_startup_time", sweep.describe())
    from repro.experiments import render_lines_svg

    svg_sink(
        "fig11d_startup_time",
        render_lines_svg(
            list(sweep.parameter_values), sweep.series,
            title="Figure 11d — n-QoE vs fixed startup delay",
            x_label="startup delay (s)",
        ),
    )


def test_longer_startup_never_hurts(benchmark, sweep):
    endpoints = run_once(
        benchmark,
        lambda: {a: (s[0], s[-1]) for a, s in sweep.series.items()},
    )
    for algorithm, (at_2s, at_10s) in endpoints.items():
        assert at_10s >= at_2s - 0.02, (
            f"{algorithm}: {at_2s:.3f} -> {at_10s:.3f} with more pre-roll"
        )


def test_improvement_is_visible_somewhere(benchmark, sweep):
    gains = run_once(
        benchmark,
        lambda: {a: s[-1] - s[0] for a, s in sweep.series.items()},
    )
    assert max(gains.values()) > 0.005


def test_series_are_roughly_monotone(benchmark, sweep):
    violations = run_once(
        benchmark,
        lambda: {
            a: sum(1 for x, y in zip(s, s[1:]) if y < x - 0.05)
            for a, s in sweep.series.items()
        },
    )
    for algorithm, count in violations.items():
        assert count == 0, f"{algorithm} has large non-monotone steps"
