"""Figure 8 — normalized QoE of all six algorithms on all three datasets.

The paper's main result (emulation testbed): RobustMPC's median n-QoE
beats every baseline on FCC (~15% over the best prior algorithm) and
HSDPA (~10%), plain FastMPC loses its edge on HSDPA, and the stock
dash.js rule logic trails everything by a wide margin (60%+).

Every test here carries the ``benchmark`` fixture so the whole module
runs under ``--benchmark-only``; the experiment itself is computed once
per module and shared.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.abr import paper_algorithms
from repro.experiments import (
    figure8,
    fraction_below,
    render_cdf_svg,
    render_result_set,
)


@pytest.fixture(scope="module")
def results(datasets, manifest):
    return figure8(datasets, manifest, algorithms=paper_algorithms(),
                   backend="emulation")


def test_figure8_pipeline(benchmark, datasets, manifest, report_sink, svg_sink,
                          results):
    # Time a one-dataset slice of the matrix; the full run lives in the
    # module fixture and its rendered tables go to benchmarks/results/.
    run_once(
        benchmark,
        lambda: figure8(
            {"fcc": datasets["fcc"][:10]}, manifest,
            algorithms=paper_algorithms(), backend="emulation",
        ),
    )
    report_sink(
        "fig8_normalized_qoe",
        "\n\n".join(render_result_set(rs) for rs in results.values()),
    )
    for dataset, rs in results.items():
        svg_sink(
            f"fig8_{dataset}",
            render_cdf_svg(
                {a: rs.n_qoe_values(a) for a in rs.algorithms()},
                title=f"Figure 8 — normalized QoE ({dataset})",
                x_label="n-QoE",
            ),
        )


def test_robust_mpc_wins_fcc_and_hsdpa(benchmark, results):
    medians = run_once(
        benchmark,
        lambda: {
            ds: {a: results[ds].median_n_qoe(a) for a in results[ds].algorithms()}
            for ds in results
        },
    )
    for dataset in ("fcc", "hsdpa"):
        robust = medians[dataset]["robust-mpc"]
        for baseline in ("rb", "bb", "dashjs", "festive"):
            assert robust > medians[dataset][baseline], (
                f"{dataset}: robust-mpc {robust:.3f} vs {baseline} "
                f"{medians[dataset][baseline]:.3f}"
            )


def test_improvement_over_best_baseline_is_substantial(benchmark, results):
    """Paper: 15% on FCC, 10% on HSDPA over state-of-art algorithms."""

    def improvements():
        out = {}
        for dataset in ("fcc", "hsdpa"):
            rs = results[dataset]
            best = max(rs.median_n_qoe(a) for a in ("rb", "bb", "festive"))
            out[dataset] = (rs.median_n_qoe("robust-mpc") - best) / best
        return out

    gains = run_once(benchmark, improvements)
    assert gains["fcc"] > 0.05
    assert gains["hsdpa"] > 0.05


def test_fastmpc_matches_robust_on_stable_but_not_mobile(benchmark, results):
    values = run_once(
        benchmark,
        lambda: (
            results["fcc"].median_n_qoe("fastmpc"),
            results["fcc"].median_n_qoe("bb"),
            results["hsdpa"].median_n_qoe("fastmpc"),
            results["hsdpa"].median_n_qoe("robust-mpc"),
        ),
    )
    fcc_fast, fcc_bb, hsdpa_fast, hsdpa_robust = values
    assert fcc_fast > fcc_bb
    assert hsdpa_fast < hsdpa_robust


def test_dashjs_trails_by_a_wide_margin(benchmark, results):
    ratios = run_once(
        benchmark,
        lambda: [
            rs.median_n_qoe("robust-mpc") / rs.median_n_qoe("dashjs")
            for rs in results.values()
        ],
    )
    assert all(r > 1.15 for r in ratios)


def test_negative_qoe_tail_concentrates_on_mobile(benchmark, results):
    """Paper: ~1% of FCC sessions vs ~10% of HSDPA sessions have n-QoE<0."""

    def worst_tail(rs):
        return max(
            fraction_below(rs.n_qoe_values(a), 0.0) for a in rs.algorithms()
        )

    tails = run_once(
        benchmark,
        lambda: (worst_tail(results["hsdpa"]), worst_tail(results["fcc"])),
    )
    assert tails[0] >= tails[1]
