"""Fleet Monte Carlo benchmark — population throughput vs the scalar loop.

Runs the full fleet pipeline (seeded scenario sampling over all seven
supported controllers x three datasets x three QoE presets, vectorized
batch stepping, lossless histogram aggregation) at
``REPRO_BENCH_FLEET_SESSIONS`` sessions (default 100k) and compares its
sessions/second against a one-at-a-time ``simulate_session`` loop over
the first ``REPRO_BENCH_FLEET_BASELINE`` scenarios of the *same* stream.

Two gates, in order:

* **parity before the clock** — for every supported controller the
  vector engine must reproduce the scalar reference bit for bit on a
  probe batch; a fast wrong stepper must fail here, not get timed;
* **speed** — the fleet must clear ``MIN_SPEEDUP`` (10x) over the scalar
  loop.  Measured runs land two orders of magnitude above the bar.

Results append to ``benchmarks/results/BENCH_fleet.json`` with the
per-controller population QoE percentiles, so the recorded trajectory
carries the *answers* (which controller wins at population scale) along
with the throughput.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from conftest import RESULTS_DIR, run_once

from repro.core.fastmpc import FastMPCConfig
from repro.fleet import (
    FleetConfig,
    ScenarioSpace,
    SUPPORTED_CONTROLLERS,
    run_batch,
    run_fleet,
    sample_scenarios,
)
from repro.fleet.controllers import make_scalar_algorithm
from repro.fleet.scenarios import manifest_for, session_config_for, trace_pools
from repro.sim.session import simulate_session
from repro.traces import SyntheticTraceGenerator

pytestmark = pytest.mark.slow

SESSIONS = int(os.environ.get("REPRO_BENCH_FLEET_SESSIONS", "100000"))
BASELINE_SESSIONS = int(os.environ.get("REPRO_BENCH_FLEET_BASELINE", "1000"))
SEED = 2015

#: The speed bar: the fleet path must beat the one-at-a-time loop 10x.
MIN_SPEEDUP = 10.0

#: Modest table so the offline builds (3 presets) stay out of the story;
#: both the fleet and the baseline use the same discretization.
TABLE_CONFIG = FastMPCConfig(buffer_bins=60, throughput_bins=60, horizon=5)

SPACE = ScenarioSpace(table_config=TABLE_CONFIG)

CONFIG = FleetConfig(sessions=SESSIONS, seed=SEED, shard_size=8192, space=SPACE)


@pytest.fixture(scope="module")
def parity_probe():
    """Exact vector-vs-scalar parity for every controller, pre-clock."""
    traces = SyntheticTraceGenerator(seed=77).generate_many(6, 320.0)
    manifest = manifest_for("envivio", SPACE.num_chunks)
    mismatches = []
    for controller in SUPPORTED_CONTROLLERS:
        vec = run_batch(
            controller, traces, manifest,
            table_config=TABLE_CONFIG, engine="vector",
        )
        sca = run_batch(
            controller, traces, manifest,
            table_config=TABLE_CONFIG, engine="scalar",
        )
        for i in range(len(traces)):
            if vec.session_levels(i) != [int(x) for x in sca.levels[i]] or (
                float(vec.qoe_total[i]) != float(sca.qoe_total[i])
            ):
                mismatches.append((controller, i))
    return mismatches


@pytest.fixture(scope="module")
def fleet_run(parity_probe):
    assert not parity_probe, f"parity broke before timing: {parity_probe}"
    # Pre-warm the per-process caches (trace pools, decision tables) so
    # the clock measures steady-state stepping, matching how a long fleet
    # amortizes them; the baseline loop gets the same warm start.
    run_fleet(FleetConfig(sessions=64, seed=SEED, shard_size=64, space=SPACE))
    t0 = time.perf_counter()
    result = run_fleet(CONFIG, workers=1)
    wall_s = time.perf_counter() - t0
    return {"result": result, "wall_s": wall_s, "rate": result.sessions / wall_s}


@pytest.fixture(scope="module")
def baseline_run(fleet_run):
    # The exact sessions the fleet ran first, replayed one at a time
    # through the reference simulator — the loop the fleet replaces.
    scenarios = sample_scenarios(SPACE, BASELINE_SESSIONS, SEED)
    pools = trace_pools(SPACE)
    t0 = time.perf_counter()
    for scenario in scenarios:
        algorithm = make_scalar_algorithm(
            scenario.controller, table_config=TABLE_CONFIG
        )
        simulate_session(
            algorithm,
            pools[scenario.dataset][scenario.trace_index],
            manifest_for(scenario.ladder, SPACE.num_chunks),
            session_config_for(scenario.preset),
        )
    wall_s = time.perf_counter() - t0
    return {"sessions": len(scenarios), "wall_s": wall_s,
            "rate": len(scenarios) / wall_s}


def test_parity_gate_is_clean(parity_probe):
    assert parity_probe == []


def test_fleet_accounts_every_session(benchmark, fleet_run):
    outcome = run_once(benchmark, lambda: fleet_run)
    result = outcome["result"]
    assert result.sessions == SESSIONS
    assert sum(arm.sessions for arm in result.arms.values()) == SESSIONS
    rollup = result.controller_rollup()
    assert set(rollup) == set(SUPPORTED_CONTROLLERS)


def test_fleet_beats_scalar_loop(fleet_run, baseline_run):
    speedup = fleet_run["rate"] / baseline_run["rate"]
    assert speedup >= MIN_SPEEDUP, (
        f"fleet {fleet_run['rate']:,.0f} sessions/s vs scalar loop "
        f"{baseline_run['rate']:,.0f} sessions/s = {speedup:.1f}x "
        f"< {MIN_SPEEDUP}x"
    )


def test_append_bench_json(fleet_run, baseline_run, report_sink):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_fleet.json"
    history = []
    if path.exists():
        history = json.loads(path.read_text())
        if isinstance(history, dict):
            history = [history]
    result = fleet_run["result"]
    rollup = result.controller_rollup()
    record = {
        "timestamp": time.time(),
        "cpu_count": os.cpu_count(),
        "sessions": result.sessions,
        "wall_s": fleet_run["wall_s"],
        "sessions_per_s": fleet_run["rate"],
        "baseline": {
            "sessions": baseline_run["sessions"],
            "wall_s": baseline_run["wall_s"],
            "sessions_per_s": baseline_run["rate"],
        },
        "speedup_vs_scalar_loop": fleet_run["rate"] / baseline_run["rate"],
        "shard_size": CONFIG.shard_size,
        "seed": SEED,
        "controllers": {
            name: {
                "sessions": aggregate.sessions,
                "qoe_per_chunk": aggregate.qoe_percentiles(),
                "rebuffer_mean_s": aggregate.rebuffer_s.mean,
                "mean_bitrate_kbps": aggregate.mean_bitrate_kbps.mean,
            }
            for name, aggregate in sorted(rollup.items())
        },
    }
    history.append(record)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    lines = [
        f"{result.sessions:,} sessions in {fleet_run['wall_s']:.1f}s = "
        f"{fleet_run['rate']:,.0f} sessions/s "
        f"({record['speedup_vs_scalar_loop']:.0f}x the scalar loop at "
        f"{baseline_run['rate']:,.0f}/s)"
    ]
    for name, stats in sorted(record["controllers"].items()):
        p = stats["qoe_per_chunk"]
        lines.append(
            f"{name:>15}: {stats['sessions']:>7,} sessions | QoE/chunk "
            f"p5 {p['p5']:>8,.0f} p50 {p['p50']:>8,.0f} p95 {p['p95']:>8,.0f}"
            f" | rebuf {stats['rebuffer_mean_s']:.2f}s"
            f" | {stats['mean_bitrate_kbps']:,.0f} kbps"
        )
    report_sink("BENCH_fleet", "\n".join(lines))
