"""Figure 10 — per-metric detail on the HSDPA (mobile) dataset.

Expected shape (paper Section 7.2): rebuffer time becomes the
discriminating factor.  Plain FastMPC reaches BB-like average bitrate but
suffers large rebuffering under prediction error; RobustMPC trades a
slightly lower average bitrate for far less stalling (zero rebuffer in
~65% of sessions vs ~40% for BB/FastMPC in the paper).
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.abr import paper_algorithms
from repro.experiments import (
    figure8,
    figure9_10,
    fraction_at_most,
    median,
    render_detail_series,
)


@pytest.fixture(scope="module")
def detail(datasets, manifest):
    results = figure8(
        {"hsdpa": datasets["hsdpa"]}, manifest,
        algorithms=paper_algorithms(), backend="emulation",
    )
    return figure9_10(results["hsdpa"])


def test_figure10_pipeline(benchmark, datasets, manifest, report_sink, detail):
    run_once(
        benchmark,
        lambda: figure9_10(
            figure8(
                {"hsdpa": datasets["hsdpa"][:8]}, manifest,
                algorithms=paper_algorithms(), backend="emulation",
            )["hsdpa"]
        ),
    )
    report_sink("fig10_hsdpa_detail", render_detail_series(detail))


def test_robust_mpc_rebuffers_far_less_than_fastmpc(benchmark, detail):
    values = run_once(
        benchmark,
        lambda: (
            median(detail.total_rebuffer_s["robust-mpc"]),
            median(detail.total_rebuffer_s["fastmpc"]),
        ),
    )
    assert values[0] <= values[1]


def test_robust_trades_some_bitrate_for_stability(benchmark, detail):
    """RobustMPC's average bitrate is allowed to sit slightly below
    FastMPC's — the conservatism that buys the rebuffer win."""
    values = run_once(
        benchmark,
        lambda: (
            median(detail.average_bitrate_kbps["robust-mpc"]),
            median(detail.average_bitrate_kbps["fastmpc"]),
        ),
    )
    assert values[0] <= values[1] * 1.1


def test_zero_rebuffer_fraction_ordering(benchmark, detail):
    """RobustMPC finishes stall-free more often than FastMPC and BB."""
    fractions = run_once(
        benchmark,
        lambda: {
            a: fraction_at_most(v, 1e-9)
            for a, v in detail.total_rebuffer_s.items()
        },
    )
    assert fractions["robust-mpc"] >= fractions["fastmpc"]
    assert fractions["robust-mpc"] >= fractions["bb"]


def test_rebuffering_is_worse_than_on_fcc(benchmark, datasets, manifest, detail):
    """Cross-dataset check: mobile rebuffering clearly exceeds broadband
    rebuffering for the prediction-driven algorithms."""
    fcc_detail = run_once(
        benchmark,
        lambda: figure9_10(
            figure8(
                {"fcc": datasets["fcc"][:10]}, manifest,
                algorithms=paper_algorithms(), backend="emulation",
            )["fcc"]
        ),
    )
    fast_hsdpa = sum(detail.total_rebuffer_s["fastmpc"]) / len(
        detail.total_rebuffer_s["fastmpc"]
    )
    fast_fcc = sum(fcc_detail.total_rebuffer_s["fastmpc"]) / len(
        fcc_detail.total_rebuffer_s["fastmpc"]
    )
    assert fast_hsdpa > fast_fcc
