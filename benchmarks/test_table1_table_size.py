"""Table 1 — FastMPC table size vs discretization, full vs run-length coded.

Paper's rows (extra JavaScript size):  50 levels: 25.0 kB full / 19.1 kB
RLE; 100: 100 kB / 56.4 kB; 200: 400 kB / 141 kB; 500: 2.5 MB / 451 kB.
The representation differs (we serialise binary, they count JS source),
so the absolute bytes differ; what must reproduce is the *trend*: RLE
size grows sublinearly and the compression ratio improves sharply with
granularity (paper: 0.76 -> 0.56 -> 0.35 -> 0.18).

The 500-level column builds ~1.5M solver instances; we run 50/100/200 at
the paper's horizon 5 and add 500 at horizon 4 (table contents barely
depend on the last horizon step; the size/compression trend is identical)
to keep the bench under a minute.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments import render_table, table1


@pytest.fixture(scope="module")
def reports():
    main = table1(discretization_levels=(50, 100, 200), horizon=5)
    extra = table1(discretization_levels=(500,), horizon=4)
    return main + extra


def test_table1_pipeline(benchmark, report_sink, reports):
    run_once(benchmark, lambda: table1(discretization_levels=(50,), horizon=5))
    rows = [
        [
            r.discretization_levels,
            r.num_entries,
            round(r.full_bytes / 1000.0, 1),
            round(r.rle_bytes / 1000.0, 1),
            round(r.compression_ratio, 3),
        ]
        for r in reports
    ]
    report_sink(
        "table1_table_size",
        render_table(["levels", "entries", "full kB", "RLE kB", "ratio"], rows),
    )


def test_full_size_grows_quadratically(benchmark, reports):
    entries = run_once(benchmark, lambda: [r.num_entries for r in reports])
    # levels n -> n buffer bins x 5 prev levels x n throughput bins.
    assert entries == [50 * 5 * 50, 100 * 5 * 100, 200 * 5 * 200, 500 * 5 * 500]


def test_compression_ratio_improves_with_levels(benchmark, reports):
    ratios = run_once(benchmark, lambda: [r.compression_ratio for r in reports])
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[-1] < 0.5 * ratios[0]


def test_rle_stays_deployable(benchmark, reports):
    """Even the 500-level table compresses to well under a megabyte
    (paper: 451 kB) — small enough to ship with a player."""
    sizes = run_once(benchmark, lambda: {r.discretization_levels: r.rle_bytes
                                          for r in reports})
    assert sizes[100] < 120_000
    assert sizes[500] < 1_000_000


def test_paper_configuration_is_tens_of_kilobytes(benchmark, reports):
    """The deployed 100-bin table lands in the same tens-of-kB band the
    paper reports (56.4 kB RLE; '60 kB extra memory')."""
    rle_100 = run_once(
        benchmark,
        lambda: next(r.rle_bytes for r in reports
                     if r.discretization_levels == 100),
    )
    assert 10_000 < rle_100 < 100_000
