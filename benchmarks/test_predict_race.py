"""Predictor-accuracy race benchmark — the §7.3 sensitivity extension.

Races the predictor zoo (harmonic, EWMA, their gap-corrected twins, and
the oracle) across the clean / blackouts / lossy-link fault profiles at
``REPRO_BENCH_PREDICT_TRACES`` traces per dataset (default 8), through
the same FastMPC controller, and records the accuracy-vs-QoE table.

Two gates, in order:

* **parity before the clock** — the pooled run must reproduce the
  single-worker table bit for bit; a fast non-deterministic race must
  fail here, not get timed;
* **the headline claim** — on both stall-heavy profiles the
  gap-corrected predictors strictly reduce active-rate MAE vs their
  plain counterparts, while the clean profile degrades exactly.

Results append to ``benchmarks/results/BENCH_predict.json`` so the
recorded trajectory carries the accuracy table (who predicts best under
which faults, and what QoE that bought) along with the throughput.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from conftest import RESULTS_DIR, run_once

from repro.experiments import (
    PREDICTOR_RACE_PREDICTORS,
    PREDICTOR_RACE_PROFILES,
    run_predictor_race,
)
from repro.traces import FCCTraceGenerator, HSDPATraceGenerator
from repro.video.presets import envivio

pytestmark = pytest.mark.slow

TRACES_PER_DATASET = int(os.environ.get("REPRO_BENCH_PREDICT_TRACES", "8"))
DURATION_S = 320.0
SEED = 2015
WORKERS = min(4, os.cpu_count() or 1)

#: The strict-reduction gate runs on blackouts, where the idle-gap
#: fraction (~9%) makes the correction's win large and stable across
#: seeds and population sizes.  lossy-link (~2% gap) is recorded but not
#: gated here: at benchmark scale its margin sits inside seed-to-seed
#: noise, and the configured experiment population that *is* gated on
#: both profiles lives in tests/experiments/test_predictor_race.py.
GATED_PROFILES = ("blackouts",)
GATED_PAIRS = (("gap-harmonic", "harmonic"), ("gap-ewma", "ewma"))


def race_traces():
    return FCCTraceGenerator(seed=SEED).generate_many(
        TRACES_PER_DATASET, DURATION_S
    ) + HSDPATraceGenerator(seed=SEED).generate_many(
        TRACES_PER_DATASET, DURATION_S
    )


@pytest.fixture(scope="module")
def reference_run():
    """The single-worker ground truth every pooled run must reproduce."""
    return run_predictor_race(race_traces(), envivio(), workers=1)


@pytest.fixture(scope="module")
def pooled_run(reference_run):
    traces = race_traces()
    manifest = envivio()
    # Warm the memoised decision table so the clock measures the race,
    # not the one-off offline build.
    run_predictor_race(
        traces[:1], manifest, predictors=("harmonic",), profiles=("clean",)
    )
    t0 = time.perf_counter()
    result = run_predictor_race(traces, manifest, workers=WORKERS)
    wall_s = time.perf_counter() - t0
    assert result == reference_run, "pooled race drifted from 1 worker"
    sessions = len(result.cells)
    return {"result": result, "wall_s": wall_s, "rate": sessions / wall_s}


def test_parity_gate_is_clean(reference_run, pooled_run):
    assert pooled_run["result"] == reference_run
    assert pooled_run["result"].table() == reference_run.table()


def test_gap_correction_wins_on_stall_profiles(pooled_run):
    result = pooled_run["result"]
    for profile in GATED_PROFILES:
        for corrected, baseline in GATED_PAIRS:
            assert result.strictly_reduces(profile, corrected, baseline), (
                f"{corrected} did not beat {baseline} on {profile}: "
                f"{result.row(profile, corrected).active_mae} vs "
                f"{result.row(profile, baseline).active_mae}"
            )


def test_clean_profile_degrades_exactly(pooled_run):
    result = pooled_run["result"]
    for corrected, baseline in GATED_PAIRS:
        assert (
            result.row("clean", corrected).active_mae
            == result.row("clean", baseline).active_mae
        )
        assert (
            result.row("clean", corrected).qoe_mean
            == result.row("clean", baseline).qoe_mean
        )


def test_race_covers_the_grid(benchmark, pooled_run):
    outcome = run_once(benchmark, lambda: pooled_run)
    result = outcome["result"]
    expected = (
        len(PREDICTOR_RACE_PROFILES)
        * len(PREDICTOR_RACE_PREDICTORS)
        * 2
        * TRACES_PER_DATASET
    )
    assert len(result.cells) == expected


def test_append_bench_json(pooled_run, report_sink):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_predict.json"
    history = []
    if path.exists():
        history = json.loads(path.read_text())
        if isinstance(history, dict):
            history = [history]
    result = pooled_run["result"]
    record = {
        "timestamp": time.time(),
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "seed": SEED,
        "traces_per_dataset": TRACES_PER_DATASET,
        "trace_duration_s": DURATION_S,
        "sessions": len(result.cells),
        "wall_s": pooled_run["wall_s"],
        "sessions_per_s": pooled_run["rate"],
        "rows": [row.to_dict() for row in result.rows()],
    }
    history.append(record)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    lines = [
        f"{record['sessions']} sessions in {record['wall_s']:.1f}s = "
        f"{record['sessions_per_s']:,.0f} sessions/s over {WORKERS} worker(s)",
        result.table(),
    ]
    report_sink("BENCH_predict", "\n".join(lines))
