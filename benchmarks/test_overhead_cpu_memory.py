"""Section 7.4 — CPU and memory overhead of FastMPC vs the baselines.

Paper's claim: *"FastMPC, BB, and RB all consume similar amount of CPU,
while FastMPC uses only 60 kB more memory"*.  Here the per-decision cost
of each algorithm is measured directly (microseconds on the chunk-request
critical path) and FastMPC's table footprint is reported; the online
solver (RobustMPC without the table) is included to show what the table
enumeration buys.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.abr import SessionConfig, create
from repro.abr.base import PlayerObservation
from repro.experiments import measure_overhead, render_table
from repro.traces import FCCTraceGenerator
from repro.video import envivio


@pytest.fixture(scope="module")
def overhead_samples(manifest):
    trace = FCCTraceGenerator(seed=77).generate(320.0)
    algorithms = {
        name: create(name)
        for name in ("rb", "bb", "festive", "dashjs", "fastmpc", "robust-mpc")
    }
    return {s.algorithm: s for s in measure_overhead(algorithms, trace, manifest)}


def test_overhead_report(benchmark, manifest, report_sink, overhead_samples):
    trace = FCCTraceGenerator(seed=78).generate(320.0)
    run_once(
        benchmark,
        lambda: measure_overhead(
            {"rb": create("rb"), "fastmpc": create("fastmpc")}, trace, manifest
        ),
    )
    rows = [
        [
            s.algorithm,
            round(s.mean_decision_us, 1),
            round(s.max_decision_us, 1),
            round(s.table_bytes / 1000.0, 1),
        ]
        for s in overhead_samples.values()
    ]
    report_sink(
        "overhead_cpu_memory",
        render_table(["algorithm", "mean us", "max us", "table kB"], rows),
    )


def test_fastmpc_decision_cost_is_baseline_class(benchmark, overhead_samples):
    """FastMPC's lookup must cost the same order as RB/BB — not the
    online solver's."""
    values = run_once(
        benchmark,
        lambda: (
            overhead_samples["fastmpc"].mean_decision_us,
            max(
                overhead_samples["rb"].mean_decision_us,
                overhead_samples["bb"].mean_decision_us,
                overhead_samples["festive"].mean_decision_us,
            ),
            overhead_samples["robust-mpc"].mean_decision_us,
        ),
    )
    fast, baseline, solver = values
    assert fast < 25 * baseline  # same order of magnitude
    assert fast < solver / 5  # and far below the online solver


def test_fastmpc_memory_band(benchmark, overhead_samples):
    """The deployed table is tens of kB (paper: 60 kB extra memory)."""
    table_kb = run_once(
        benchmark, lambda: overhead_samples["fastmpc"].table_bytes / 1000.0
    )
    assert 5.0 < table_kb < 120.0
    for name in ("rb", "bb", "festive", "dashjs"):
        assert overhead_samples[name].table_bytes == 0


def test_raw_lookup_latency(benchmark, manifest):
    """Microbenchmark the FastMPC decision itself (quantise + binary
    search): this is the number that must be negligible on mobile CPUs."""
    controller = create("fastmpc")
    controller.prepare(manifest, SessionConfig())
    controller.predictor.observe_kbps(1500.0)
    observation = PlayerObservation(
        chunk_index=10, buffer_level_s=14.0, prev_level_index=2,
        wall_time_s=40.0, playback_started=True,
    )
    level = benchmark(controller.select_bitrate, observation)
    assert 0 <= level < 5
    assert benchmark.stats["mean"] < 1e-3  # well under a millisecond
