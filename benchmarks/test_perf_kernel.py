"""Kernel microbenchmark — batched vs single-instance solving and the
table-build/disk-cache speedups.

Writes ``benchmarks/results/BENCH_kernel.json``, a machine-readable perf
trajectory (timings + speedup ratios) future PRs can diff against.  The
reference implementations timed here are literal copies of the
pre-kernel code paths: one ``solve_horizon`` call per instance, and the
per-``(buffer_bin, prev_level)`` Python loop the table builder used.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest
from conftest import RESULTS_DIR, run_once

from repro.core.fastmpc import (
    FastMPCConfig,
    build_decision_table,
    clear_table_cache,
    table_size_sweep,
)
from repro.core.horizon import HorizonProblem, _plan_matrix, solve_horizon
from repro.core.kernel import solve_horizon_batch
from repro.core.table import Binning
from repro.qoe import QoEWeights

LADDER = (350.0, 600.0, 1000.0, 2000.0, 3000.0)
WEIGHTS = QoEWeights.balanced()
CHUNK_S = 4.0
BMAX = 30.0
TABLE_CONFIG = FastMPCConfig(buffer_bins=100, throughput_bins=100, horizon=5)


def make_problems(count: int, horizon: int, seed: int = 3) -> list:
    rng = np.random.default_rng(seed)
    problems = []
    for _ in range(count):
        problems.append(
            HorizonProblem(
                buffer_level_s=float(rng.uniform(0.0, 25.0)),
                prev_quality=float(LADDER[int(rng.integers(0, len(LADDER)))]),
                chunk_sizes_kilobits=tuple(
                    tuple(CHUNK_S * r for r in LADDER) for _ in range(horizon)
                ),
                quality_values=LADDER,
                predicted_kbps=tuple(rng.uniform(300.0, 4000.0, size=horizon)),
                chunk_duration_s=CHUNK_S,
                buffer_capacity_s=BMAX,
                weights=WEIGHTS,
            )
        )
    return problems


def reference_table_build() -> np.ndarray:
    """The pre-kernel builder: a Python loop per (buffer bin, prev level)."""
    config = TABLE_CONFIG
    buffer_binning = Binning(0.0, BMAX, config.buffer_bins, "linear")
    low, high = config.resolved_range(LADDER)
    throughput_binning = Binning(
        low, high, config.throughput_bins, config.throughput_spacing
    )
    num_levels = len(LADDER)
    plans = _plan_matrix(num_levels, config.horizon)
    sizes = np.asarray([CHUNK_S * r for r in LADDER])
    quality_arr = np.asarray(LADDER)
    c_centers = throughput_binning.centers
    lam, mu = WEIGHTS.switching, WEIGHTS.rebuffering
    dt_by_level = sizes[:, None] / c_centers[None, :]
    decisions = np.empty(
        (config.buffer_bins, num_levels, config.throughput_bins), dtype=np.int64
    )
    plan_first = plans[:, 0]
    for b_idx in range(config.buffer_bins):
        b0 = buffer_binning.center(b_idx)
        for prev in range(num_levels):
            buffer_s = np.full((plans.shape[0], c_centers.size), b0)
            qoe = np.zeros_like(buffer_s)
            prev_q = quality_arr[prev]
            for i in range(config.horizon):
                levels = plans[:, i]
                dt = dt_by_level[levels]
                rebuffer = np.maximum(dt - buffer_s, 0.0)
                buffer_s = np.maximum(buffer_s - dt, 0.0) + CHUNK_S
                np.minimum(buffer_s, BMAX, out=buffer_s)
                q_now = quality_arr[levels][:, None]
                qoe += q_now - mu * rebuffer
                qoe -= lam * np.abs(q_now - prev_q)
                prev_q = q_now
            decisions[b_idx, prev, :] = plan_first[np.argmax(qoe, axis=0)]
    return decisions


def timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def measurements():
    # Two regimes: at horizon 3 (125 plans) the per-call Python/NumPy
    # dispatch dominates and batching wins big; at horizon 5 (3125 plans)
    # the plan roll-out itself dominates and batching is roughly a wash —
    # both are recorded so future PRs can track each.
    out = {}
    for horizon in (3, 5):
        problems = make_problems(200, horizon)
        single_solutions, single_s = timed(
            lambda: [solve_horizon(p) for p in problems]
        )
        batch_solutions, batch_s = timed(lambda: solve_horizon_batch(problems))
        assert [s.plan for s in batch_solutions] == [
            s.plan for s in single_solutions
        ]
        out[f"single_solve_h{horizon}_s"] = single_s
        out[f"batch_solve_h{horizon}_s"] = batch_s
        out[f"batch_speedup_h{horizon}"] = single_s / batch_s

    clear_table_cache()
    ref_decisions, ref_build_s = timed(reference_table_build)
    new_table, new_build_s = timed(
        lambda: build_decision_table(
            LADDER, CHUNK_S, BMAX, WEIGHTS, config=TABLE_CONFIG, use_cache=False
        )
    )
    assert np.array_equal(
        ref_decisions.reshape(-1), new_table.rle.decode()
    ), "kernel table build must reproduce the reference decisions"
    out.update(
        {
            "horizon_instances": 200,
            "table_config": "100x100x5",
            "table_build_reference_s": ref_build_s,
            "table_build_kernel_s": new_build_s,
            "table_build_speedup": ref_build_s / new_build_s,
        }
    )
    return out


@pytest.fixture(scope="module")
def cache_measurements(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("kernel_cache")
    levels = (50, 100)
    clear_table_cache()
    _, cold_s = timed(
        lambda: table_size_sweep(
            LADDER, CHUNK_S, BMAX, WEIGHTS,
            discretization_levels=levels, cache_dir=cache_dir,
        )
    )
    clear_table_cache()
    _, warm_s = timed(
        lambda: table_size_sweep(
            LADDER, CHUNK_S, BMAX, WEIGHTS,
            discretization_levels=levels, cache_dir=cache_dir,
        )
    )
    return {
        "sweep_levels": list(levels),
        "sweep_cold_s": cold_s,
        "sweep_warm_s": warm_s,
        "sweep_cache_speedup": cold_s / warm_s,
    }


def test_batched_solves_beat_single(benchmark, measurements):
    speedup = run_once(benchmark, lambda: measurements["batch_speedup_h3"])
    # 200 identically-shaped instances in one kernel call vs 200 calls.
    assert speedup > 2.0
    # At horizon 5 compute dominates; batching must at least not regress
    # badly (allowing scheduler noise).
    assert measurements["batch_speedup_h5"] > 0.6


def test_table_build_speedup(benchmark, measurements):
    """Acceptance criterion: the 100x100x5 build is >= 3x faster."""
    speedup = run_once(benchmark, lambda: measurements["table_build_speedup"])
    assert speedup >= 3.0


def test_disk_cache_skips_rebuild(benchmark, cache_measurements):
    speedup = run_once(
        benchmark, lambda: cache_measurements["sweep_cache_speedup"]
    )
    assert speedup > 5.0


@pytest.fixture(scope="module")
def tracing_overhead():
    """Disabled-tracer overhead of the batched solver, min-of-N interleaved.

    ``tracer=None`` (the untouched fast path) vs ``NULL_TRACER`` (a real
    tracer with ``enabled=False``): the observability hooks must reduce
    to one boolean check, so the two runs are the same to within noise.
    """
    from repro.obs import NULL_TRACER

    problems = make_problems(200, 5)
    solve_horizon_batch(problems)  # warm caches before timing
    baseline_s = float("inf")
    disabled_s = float("inf")
    for _ in range(9):
        _, t_none = timed(lambda: solve_horizon_batch(problems, tracer=None))
        _, t_null = timed(
            lambda: solve_horizon_batch(problems, tracer=NULL_TRACER)
        )
        baseline_s = min(baseline_s, t_none)
        disabled_s = min(disabled_s, t_null)
    return {
        "tracing_baseline_s": baseline_s,
        "tracing_disabled_s": disabled_s,
        "tracing_disabled_overhead": disabled_s / baseline_s - 1.0,
    }


def test_disabled_tracing_overhead_below_five_percent(
    benchmark, tracing_overhead
):
    overhead = run_once(
        benchmark, lambda: tracing_overhead["tracing_disabled_overhead"]
    )
    assert overhead < 0.05


def test_write_bench_json(
    measurements, cache_measurements, tracing_overhead, report_sink
):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = dict(measurements)
    payload.update(cache_measurements)
    payload.update(tracing_overhead)
    path = RESULTS_DIR / "BENCH_kernel.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    lines = [
        f"{key}: {value:.4f}" if isinstance(value, float) else f"{key}: {value}"
        for key, value in sorted(payload.items())
    ]
    report_sink("BENCH_kernel", "\n".join(lines))
