"""Arena scale benchmark — hundreds of concurrent players, one link.

The incremental shared-link engine (uncapped pool with one shared rate,
per-event work bounded by the *capped* flow count) is what makes
thousand-player arenas tractable: the old all-pairs loop was O(players)
Python work per event, O(players^2) per completed chunk.

Gates, in order:

* **parity before the clock** — a churn-free arena slice must reproduce
  ``emulate_shared_link`` with ``==`` (a fast wrong engine fails here,
  not in the timing);
* **scale** — ``REPRO_BENCH_ARENA_PLAYERS`` (default 500, the bar) players
  streaming a 5-minute video through one bottleneck, with churn and
  pulsed cross traffic, must complete inside
  ``REPRO_BENCH_ARENA_BUDGET_S`` (default 120 s — measured runs land
  ~50x under it) and pass the determinism re-run byte-identically.

Results append to ``benchmarks/results/BENCH_arena.json`` carrying the
fairness answers (whole-run Jain, utilization, per-cohort QoE) along
with the throughput trajectory.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from conftest import RESULTS_DIR, run_once

from repro.abr import registry
from repro.arena import (
    ArenaConfig,
    CrossTrafficSpec,
    ScheduleConfig,
    run_arena,
)
from repro.emulation import emulate_shared_link
from repro.emulation.harness import NetworkProfile
from repro.service.experiment import ExperimentArm, ExperimentConfig
from repro.traces import Trace
from repro.video import envivio

pytestmark = pytest.mark.slow

PLAYERS = int(os.environ.get("REPRO_BENCH_ARENA_PLAYERS", "500"))
BUDGET_S = float(os.environ.get("REPRO_BENCH_ARENA_BUDGET_S", "120"))
SEED = 2015

#: 75 x 4 s chunks = a 5-minute video (envivio repeated past its 65).
VIDEO_CHUNKS = 75

MIX = ExperimentConfig(
    arms=(
        ExperimentArm(name="bola", controller="bola"),
        ExperimentArm(name="fair-bola", controller="fair-bola"),
        ExperimentArm(name="rb", controller="rb"),
    )
)


def _manifest():
    base = envivio()
    sizes = [
        [base.chunk_size_kilobits(k % base.num_chunks, i)
         for i in range(len(base.ladder))]
        for k in range(VIDEO_CHUNKS)
    ]
    from repro.video.manifest import VideoManifest

    return VideoManifest(
        base.chunk_duration_s, base.ladder, sizes, title="envivio-5min"
    )


def _config(manifest):
    # Enough headroom that cohorts differentiate rather than all starving:
    # ~1.5 Mbps per player plus a pulsed 10% cross-traffic load.
    bandwidth = 1500.0 * PLAYERS
    return ArenaConfig(
        schedule=ScheduleConfig(
            players=PLAYERS,
            seed=SEED,
            mix=MIX,
            arrivals="poisson",
            mean_interarrival_s=30.0 / PLAYERS,  # population ramps in ~30 s
            min_watch_chunks=10,
            max_watch_chunks=VIDEO_CHUNKS,
            cross_traffic=(
                CrossTrafficSpec(
                    label="pulse",
                    rate_kbps=0.1 * bandwidth,
                    period_s=20.0,
                    duty=0.5,
                ),
            ),
        ),
        trace=Trace.constant(bandwidth, 600.0, name=f"arena-{PLAYERS}p"),
        manifest=manifest,
        # Slow-start ramps generate O(log) epoch events per transfer and
        # are irrelevant to the fairness story at this scale.
        network=NetworkProfile(slow_start=False),
        window_s=30.0,
    )


@pytest.fixture(scope="module")
def parity_probe():
    """Exact emulate_shared_link parity on a churn-free slice, pre-clock."""
    manifest = envivio().truncated(12)
    trace = Trace.constant(6000.0, 600.0, name="probe")
    network = NetworkProfile(slow_start=False)
    config = ArenaConfig(
        schedule=ScheduleConfig(
            players=4,
            mix=ExperimentConfig(
                arms=(ExperimentArm(name="bola", controller="bola"),)
            ),
            arrivals="stagger",
            stagger_s=3.0,
        ),
        trace=trace,
        manifest=manifest,
        network=network,
    )
    arena = run_arena(config)
    reference = emulate_shared_link(
        [registry.create("bola") for _ in range(4)],
        trace,
        manifest,
        network=network,
        start_stagger_s=3.0,
    )
    return [
        i
        for i, (mine, theirs) in enumerate(zip(arena.sessions, reference))
        if mine.records != theirs.records
        or mine.qoe().total != theirs.qoe().total
    ]


@pytest.fixture(scope="module")
def arena_run(parity_probe):
    assert not parity_probe, f"parity broke before timing: {parity_probe}"
    manifest = _manifest()
    config = _config(manifest)
    t0 = time.perf_counter()
    result = run_arena(config)
    wall_s = time.perf_counter() - t0
    return {"result": result, "wall_s": wall_s, "config": config}


def test_arena_handles_the_player_bar(benchmark, arena_run):
    outcome = run_once(benchmark, lambda: arena_run)
    result = outcome["result"]
    assert result.num_players == PLAYERS
    assert outcome["wall_s"] <= BUDGET_S, (
        f"{PLAYERS} players took {outcome['wall_s']:.1f}s"
        f" > budget {BUDGET_S:.0f}s"
    )
    # Every cohort actually streamed, and the link was genuinely shared.
    for arm in ("bola", "fair-bola", "rb"):
        assert result.cohorts[arm].sessions > 0
        assert result.cohorts[arm].chunks > 0
    assert result.cross_kilobits["pulse"] > 0
    assert 0.0 < result.totals.jain <= 1.0
    assert result.totals.utilization is not None
    assert result.totals.utilization > 0.5


def test_arena_rerun_is_byte_identical(arena_run):
    again = run_arena(arena_run["config"])
    assert again.to_json() == arena_run["result"].to_json()


def test_append_bench_json(arena_run, report_sink):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_arena.json"
    history = []
    if path.exists():
        history = json.loads(path.read_text())
        if isinstance(history, dict):
            history = [history]
    result = arena_run["result"]
    totals = result.totals
    record = {
        "timestamp": time.time(),
        "cpu_count": os.cpu_count(),
        "players": result.num_players,
        "video_chunks": VIDEO_CHUNKS,
        "wall_s": arena_run["wall_s"],
        "players_per_s": result.num_players / arena_run["wall_s"],
        "emulated_s": totals.duration_s,
        "seed": SEED,
        "jain": totals.jain,
        "unfairness": totals.unfairness,
        "utilization": totals.utilization,
        "video_utilization": totals.video_utilization,
        "switches": totals.switches,
        "cohorts": {
            arm: {
                "sessions": rollup.sessions,
                "departed": rollup.departed,
                "mean_qoe": rollup.mean_qoe,
                "mean_rebuffer_s": rollup.mean_rebuffer_s,
                "mean_bitrate_kbps": rollup.mean_bitrate_kbps,
                "switches": rollup.switches,
            }
            for arm, rollup in sorted(result.cohorts.items())
        },
    }
    history.append(record)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    lines = [
        f"{result.num_players} players x {VIDEO_CHUNKS} chunks in "
        f"{arena_run['wall_s']:.1f}s wall ({totals.duration_s:.0f}s emulated)"
        f" | jain {totals.jain:.4f} | utilization {totals.utilization:.4f}"
    ]
    for arm, stats in sorted(record["cohorts"].items()):
        lines.append(
            f"{arm:>12}: {stats['sessions']:>4} sessions"
            f" ({stats['departed']} departed early)"
            f" | QoE {stats['mean_qoe']:>9,.0f}"
            f" | rebuf {stats['mean_rebuffer_s']:.2f}s"
            f" | {stats['mean_bitrate_kbps']:,.0f} kbps"
            f" | {stats['switches']} switches"
        )
    report_sink("BENCH_arena", "\n".join(lines))
