"""Figure 11a — n-QoE vs throughput-prediction error.

Paper's shape: BB is flat (it ignores throughput); MPC's advantage over
BB shrinks as the controlled error level grows and can invert beyond
~25%; RobustMPC degrades far more slowly than plain MPC.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.sensitivity import prediction_error_sweep

ERROR_LEVELS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.49)


@pytest.fixture(scope="module")
def sweep(mixed_pool, manifest):
    return prediction_error_sweep(
        mixed_pool, manifest, error_levels=ERROR_LEVELS, seed=7
    )


def test_figure11a_pipeline(benchmark, mixed_pool, manifest, report_sink,
                            svg_sink, sweep):
    run_once(
        benchmark,
        lambda: prediction_error_sweep(
            mixed_pool[:4], manifest, error_levels=(0.05, 0.4), seed=7
        ),
    )
    report_sink("fig11a_prediction_error", sweep.describe())
    from repro.experiments import render_lines_svg

    svg_sink(
        "fig11a_prediction_error",
        render_lines_svg(
            list(sweep.parameter_values), sweep.series,
            title="Figure 11a — n-QoE vs prediction error",
            x_label="average prediction error",
        ),
    )


def test_bb_is_flat(benchmark, sweep):
    series = run_once(benchmark, lambda: sweep.series["bb"])
    assert max(series) - min(series) < 1e-9


def test_mpc_advantage_shrinks_with_error(benchmark, sweep):
    gaps = run_once(
        benchmark,
        lambda: [m - b for m, b in zip(sweep.series["mpc"], sweep.series["bb"])],
    )
    # Accurate predictions: MPC ahead of BB.
    assert gaps[0] > 0
    # The advantage at the worst error level is clearly smaller.
    assert gaps[-1] < gaps[0]


def test_robust_mpc_degrades_less_than_plain_mpc(benchmark, sweep):
    values = run_once(
        benchmark,
        lambda: (
            sweep.series["mpc"][0] - sweep.series["mpc"][-1],
            sweep.series["robust-mpc"][0] - sweep.series["robust-mpc"][-1],
        ),
    )
    plain_drop, robust_drop = values
    assert robust_drop <= plain_drop + 0.02


def test_high_error_floor(benchmark, sweep):
    """Even at 49% average error no series goes catastrophically negative
    in the median — the QoE model's penalties stay bounded."""
    minima = run_once(
        benchmark, lambda: {a: min(s) for a, s in sweep.series.items()}
    )
    for algorithm, value in minima.items():
        assert value > -1.0, f"{algorithm} collapsed to {value:.2f}"
