"""Figure 11b — n-QoE under the three user-preference weightings.

Paper's shape: the MPC family (which optimises the declared objective
directly) keeps or grows its lead when instability is penalised more
("Avoid Instability"), while under "Avoid Rebuffering" BB closes the gap
to FastMPC because its minimum-buffer reservoir is a natural stall hedge.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.sensitivity import qoe_preference_sweep
from repro.qoe import QoEWeights


@pytest.fixture(scope="module")
def sweep(mixed_pool, manifest):
    return qoe_preference_sweep(mixed_pool, manifest)


def test_figure11b_pipeline(benchmark, mixed_pool, manifest, report_sink, sweep):
    run_once(
        benchmark,
        lambda: qoe_preference_sweep(
            mixed_pool[:4], manifest, presets=(QoEWeights.balanced(),)
        ),
    )
    report_sink("fig11b_qoe_preferences", sweep.describe())


def test_preset_labels(benchmark, sweep):
    labels = run_once(benchmark, lambda: sweep.parameter_values)
    assert labels == ("balanced", "avoid-instability", "avoid-rebuffering")


def test_mpc_opt_leads_everywhere(benchmark, sweep):
    """Perfect-prediction MPC is the reference point in every preset."""
    ok = run_once(
        benchmark,
        lambda: [
            all(
                sweep.series["mpc-opt"][i] >= sweep.series[a][i] - 0.03
                for a in ("fastmpc", "bb", "rb")
            )
            for i in range(3)
        ],
    )
    assert all(ok)


def test_instability_preset_widens_mpc_lead_over_bb(benchmark, sweep):
    """Paper: 'as users put more penalty weights to bitrate instability,
    the MPC algorithms show more advantage over RB and BB' — BB pays the
    steepest price because its buffer-driven rate map switches ad hoc."""
    gaps = run_once(
        benchmark,
        lambda: {
            "fastmpc-vs-bb": [
                sweep.series["fastmpc"][i] - sweep.series["bb"][i] for i in (0, 1)
            ],
            "mpcopt-vs-rb": [
                sweep.series["mpc-opt"][i] - sweep.series["rb"][i] for i in (0, 1)
            ],
        },
    )
    assert gaps["fastmpc-vs-bb"][1] > gaps["fastmpc-vs-bb"][0]
    # The RB comparison is the soft half of the claim: MPC-OPT must stay
    # clearly ahead of RB, without requiring the gap itself to widen.
    assert gaps["mpcopt-vs-rb"][1] > 0.05


def test_rebuffer_preset_narrows_bb_gap(benchmark, sweep):
    """Under 'Avoid Rebuffering', BB performs comparably to FastMPC
    (paper: 'BB algorithms perform similarly with FastMPC')."""
    gaps = run_once(
        benchmark,
        lambda: [
            sweep.series["fastmpc"][i] - sweep.series["bb"][i] for i in (0, 2)
        ],
    )
    balanced_gap, rebuffer_gap = gaps
    assert rebuffer_gap <= balanced_gap + 0.02
