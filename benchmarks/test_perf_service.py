"""Decision-service smoke benchmark — sustained decision throughput and
the graceful-degradation guarantee under a missing table.

Runs the closed-loop load generator against an in-process
:class:`~repro.service.server.DecisionServer` (one event loop, one
worker — the same single-process shape as ``repro serve``), twice:

* **warm** — a real FastMPC table is loaded; the acceptance bar is
  >= 5,000 table decisions per second;
* **cold** — no table at all; every session must still complete, every
  decision served by the rate-based fallback with ``degraded`` set and
  *zero* hard errors.

A third **fast-path** run measures the vectorized batch pipeline: a
binary-protocol client ships pre-generated requests in multi-record
frames and the server answers each frame with one
``DecisionService.decide_batch`` call (flat-array table lookups).  The
closed-loop runs keep the per-decision virtual-player model, which is
itself the bottleneck on small hosts, so the fast-path run is the one
that isolates service throughput — its bar is 10x the classic warm bar,
and every batched answer is asserted byte-identical to the scalar
``decide`` path first.

Appends one record per run to ``benchmarks/results/BENCH_service.json``
so future PRs can diff the service's perf trajectory.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest
from conftest import RESULTS_DIR, run_once

from repro.core.fastmpc import build_decision_table
from repro.qoe import QoEWeights
from repro.service import (
    DecisionServer,
    DecisionService,
    LoadTestConfig,
    ServiceClient,
    run_loadtest,
)
from repro.service.protocol import DecisionRequest
from repro.video.presets import (
    DEFAULT_BUFFER_CAPACITY_S,
    ENVIVIO_CHUNK_SECONDS,
    ENVIVIO_LADDER_KBPS,
)

#: The acceptance bar: single worker, same machine, stdlib HTTP stack.
MIN_DECISIONS_PER_SEC = 5_000.0

#: The vectorized fast path (binary frames + decide_batch) must clear
#: 10x the classic per-request bar on the same host.
FAST_PATH_MIN_DPS = 10 * MIN_DECISIONS_PER_SEC

#: Records per binary frame in the fast-path run (the sweet spot
#: measured on a 1-core host; larger frames trade latency for nothing).
FAST_PATH_BATCH = 256

LOAD_CONFIG = LoadTestConfig(
    sessions=48,
    chunks_per_session=65,
    concurrency=16,
    dataset="synthetic",
    seed=2015,
    trace_duration_s=320.0,
)


async def _loadtest_in_process(service: DecisionService) -> dict:
    server = DecisionServer(service, port=0)
    await server.start()
    try:
        report = await run_loadtest("127.0.0.1", server.bound_port, LOAD_CONFIG)
        snapshot = service.metrics.snapshot()
    finally:
        await server.close()
    return {"report": report, "metrics": snapshot}


@pytest.fixture(scope="module")
def warm_run():
    table = build_decision_table(
        ENVIVIO_LADDER_KBPS,
        ENVIVIO_CHUNK_SECONDS,
        DEFAULT_BUFFER_CAPACITY_S,
        QoEWeights.balanced(),
    )
    service = DecisionService(ENVIVIO_LADDER_KBPS, table=table)
    return asyncio.run(_loadtest_in_process(service))


@pytest.fixture(scope="module")
def cold_run():
    service = DecisionService(ENVIVIO_LADDER_KBPS)  # no table on purpose
    return asyncio.run(_loadtest_in_process(service))


def _fast_path_requests(count: int) -> list:
    return [
        DecisionRequest(
            session_id=f"s{i % 256:03d}",
            buffer_s=(i * 0.37) % DEFAULT_BUFFER_CAPACITY_S,
            predicted_kbps=120.0 + (i * 73.3) % 4000.0,
            prev_level=i % len(ENVIVIO_LADDER_KBPS),
            past_errors=(0.05, -0.1, 0.2),
        )
        for i in range(count)
    ]


async def _fast_path_in_process(duration_s: float = 2.0) -> dict:
    table = build_decision_table(
        ENVIVIO_LADDER_KBPS,
        ENVIVIO_CHUNK_SECONDS,
        DEFAULT_BUFFER_CAPACITY_S,
        QoEWeights.balanced(),
    )
    service = DecisionService(ENVIVIO_LADDER_KBPS, table=table)
    server = DecisionServer(service, port=0)
    await server.start()
    requests = _fast_path_requests(FAST_PATH_BATCH)
    try:
        async with ServiceClient(
            "127.0.0.1", server.bound_port, protocol="binary"
        ) as client:
            # Parity gate before the clock starts: the batched binary
            # answers must match the scalar decide path field for field.
            batched = await client.decide_many(requests)
            scalar = [service.decide(r) for r in requests]
            mismatches = [
                (b, s)
                for b, s in zip(batched, scalar)
                if (b.level_index, b.bitrate_kbps, b.source, b.degraded, b.reason)
                != (s.level_index, s.bitrate_kbps, s.source, s.degraded, s.reason)
            ]
            decisions = 0
            started = time.perf_counter()
            while time.perf_counter() - started < duration_s:
                responses = await client.decide_many(requests)
                decisions += len(responses)
            wall_s = time.perf_counter() - started
            negotiated = client.protocol
        snapshot = service.metrics.snapshot()
    finally:
        await server.close()
    return {
        "throughput_dps": decisions / wall_s,
        "decisions": decisions,
        "wall_s": wall_s,
        "mismatches": mismatches,
        "negotiated": negotiated,
        "metrics": snapshot,
    }


@pytest.fixture(scope="module")
def fast_run():
    return asyncio.run(_fast_path_in_process())


def test_warm_throughput_meets_bar(benchmark, warm_run):
    report = warm_run["report"]
    throughput = run_once(benchmark, lambda: report.throughput_dps)
    expected = LOAD_CONFIG.sessions * LOAD_CONFIG.chunks_per_session
    assert report.errors == 0
    assert report.decisions == expected
    assert report.sessions_completed == LOAD_CONFIG.sessions
    assert report.sources.get("table", 0) == expected
    assert throughput >= MIN_DECISIONS_PER_SEC, (
        f"{throughput:,.0f} decisions/s under the {MIN_DECISIONS_PER_SEC:,.0f} bar"
    )


def test_fast_path_throughput_10x(benchmark, fast_run):
    """Binary frames + decide_batch clear 10x the per-request bar, with
    batched answers identical to the scalar path."""
    throughput = run_once(benchmark, lambda: fast_run["throughput_dps"])
    assert fast_run["mismatches"] == []
    assert fast_run["negotiated"] == "binary"  # no downgrade happened
    metrics = fast_run["metrics"]
    assert metrics["protocol_requests"].get("binary", 0) > 0
    assert str(FAST_PATH_BATCH) in metrics["batch_occupancy"]
    assert throughput >= FAST_PATH_MIN_DPS, (
        f"{throughput:,.0f} decisions/s under the {FAST_PATH_MIN_DPS:,.0f}"
        " fast-path bar"
    )


def test_cold_server_degrades_not_errors(benchmark, cold_run):
    """Missing table: every session completes on the fallback, 0 errors."""
    report = run_once(benchmark, lambda: cold_run["report"])
    expected = LOAD_CONFIG.sessions * LOAD_CONFIG.chunks_per_session
    assert report.errors == 0
    assert report.decisions == expected
    assert report.sessions_completed == LOAD_CONFIG.sessions
    assert report.sources == {"fallback": expected}
    assert report.degraded == expected
    assert report.reasons == {"no-table": expected}
    # The server-side view agrees: everything counted as degraded
    # fallback, nothing as a hard error.
    metrics = cold_run["metrics"]
    assert metrics["decisions"]["table"] == 0
    assert metrics["decisions"]["fallback"] == expected
    assert metrics["decisions"]["error"] == 0
    assert metrics["fallback_reasons"] == {"no-table": expected}


def test_append_bench_json(warm_run, cold_run, fast_run, report_sink):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service.json"
    history = []
    if path.exists():
        history = json.loads(path.read_text())
        if isinstance(history, dict):  # tolerate a hand-written scalar file
            history = [history]
    record = {
        "timestamp": time.time(),
        "config": {
            "sessions": LOAD_CONFIG.sessions,
            "chunks_per_session": LOAD_CONFIG.chunks_per_session,
            "concurrency": LOAD_CONFIG.concurrency,
            "dataset": LOAD_CONFIG.dataset,
        },
        "warm": {
            "throughput_dps": warm_run["report"].throughput_dps,
            "p50_us": warm_run["report"].p50_us,
            "p99_us": warm_run["report"].p99_us,
            "errors": warm_run["report"].errors,
        },
        "cold": {
            "throughput_dps": cold_run["report"].throughput_dps,
            "p50_us": cold_run["report"].p50_us,
            "p99_us": cold_run["report"].p99_us,
            "degraded": cold_run["report"].degraded,
            "errors": cold_run["report"].errors,
        },
        "fast_path": {
            "throughput_dps": fast_run["throughput_dps"],
            "batch_records": FAST_PATH_BATCH,
            "protocol": fast_run["negotiated"],
            "decisions": fast_run["decisions"],
        },
    }
    history.append(record)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    warm, cold = record["warm"], record["cold"]
    fast = record["fast_path"]
    report_sink(
        "BENCH_service",
        "\n".join(
            [
                f"warm: {warm['throughput_dps']:,.0f} decisions/s"
                f" | p50 {warm['p50_us']:,.0f} us | p99 {warm['p99_us']:,.0f} us",
                f"cold: {cold['throughput_dps']:,.0f} decisions/s"
                f" | degraded {cold['degraded']} | errors {cold['errors']}",
                f"fast-path (binary, {fast['batch_records']}-record frames):"
                f" {fast['throughput_dps']:,.0f} decisions/s",
            ]
        ),
    )
