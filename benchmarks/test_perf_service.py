"""Decision-service smoke benchmark — sustained decision throughput and
the graceful-degradation guarantee under a missing table.

Runs the closed-loop load generator against an in-process
:class:`~repro.service.server.DecisionServer` (one event loop, one
worker — the same single-process shape as ``repro serve``), twice:

* **warm** — a real FastMPC table is loaded; the acceptance bar is
  >= 5,000 table decisions per second;
* **cold** — no table at all; every session must still complete, every
  decision served by the rate-based fallback with ``degraded`` set and
  *zero* hard errors.

Appends one record per run to ``benchmarks/results/BENCH_service.json``
so future PRs can diff the service's perf trajectory.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest
from conftest import RESULTS_DIR, run_once

from repro.core.fastmpc import build_decision_table
from repro.qoe import QoEWeights
from repro.service import (
    DecisionServer,
    DecisionService,
    LoadTestConfig,
    run_loadtest,
)
from repro.video.presets import (
    DEFAULT_BUFFER_CAPACITY_S,
    ENVIVIO_CHUNK_SECONDS,
    ENVIVIO_LADDER_KBPS,
)

#: The acceptance bar: single worker, same machine, stdlib HTTP stack.
MIN_DECISIONS_PER_SEC = 5_000.0

LOAD_CONFIG = LoadTestConfig(
    sessions=48,
    chunks_per_session=65,
    concurrency=16,
    dataset="synthetic",
    seed=2015,
    trace_duration_s=320.0,
)


async def _loadtest_in_process(service: DecisionService) -> dict:
    server = DecisionServer(service, port=0)
    await server.start()
    try:
        report = await run_loadtest("127.0.0.1", server.bound_port, LOAD_CONFIG)
        snapshot = service.metrics.snapshot()
    finally:
        await server.close()
    return {"report": report, "metrics": snapshot}


@pytest.fixture(scope="module")
def warm_run():
    table = build_decision_table(
        ENVIVIO_LADDER_KBPS,
        ENVIVIO_CHUNK_SECONDS,
        DEFAULT_BUFFER_CAPACITY_S,
        QoEWeights.balanced(),
    )
    service = DecisionService(ENVIVIO_LADDER_KBPS, table=table)
    return asyncio.run(_loadtest_in_process(service))


@pytest.fixture(scope="module")
def cold_run():
    service = DecisionService(ENVIVIO_LADDER_KBPS)  # no table on purpose
    return asyncio.run(_loadtest_in_process(service))


def test_warm_throughput_meets_bar(benchmark, warm_run):
    report = warm_run["report"]
    throughput = run_once(benchmark, lambda: report.throughput_dps)
    expected = LOAD_CONFIG.sessions * LOAD_CONFIG.chunks_per_session
    assert report.errors == 0
    assert report.decisions == expected
    assert report.sessions_completed == LOAD_CONFIG.sessions
    assert report.sources.get("table", 0) == expected
    assert throughput >= MIN_DECISIONS_PER_SEC, (
        f"{throughput:,.0f} decisions/s under the {MIN_DECISIONS_PER_SEC:,.0f} bar"
    )


def test_cold_server_degrades_not_errors(benchmark, cold_run):
    """Missing table: every session completes on the fallback, 0 errors."""
    report = run_once(benchmark, lambda: cold_run["report"])
    expected = LOAD_CONFIG.sessions * LOAD_CONFIG.chunks_per_session
    assert report.errors == 0
    assert report.decisions == expected
    assert report.sessions_completed == LOAD_CONFIG.sessions
    assert report.sources == {"fallback": expected}
    assert report.degraded == expected
    assert report.reasons == {"no-table": expected}
    # The server-side view agrees: everything counted as degraded
    # fallback, nothing as a hard error.
    metrics = cold_run["metrics"]
    assert metrics["decisions"]["table"] == 0
    assert metrics["decisions"]["fallback"] == expected
    assert metrics["decisions"]["error"] == 0
    assert metrics["fallback_reasons"] == {"no-table": expected}


def test_append_bench_json(warm_run, cold_run, report_sink):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service.json"
    history = []
    if path.exists():
        history = json.loads(path.read_text())
        if isinstance(history, dict):  # tolerate a hand-written scalar file
            history = [history]
    record = {
        "timestamp": time.time(),
        "config": {
            "sessions": LOAD_CONFIG.sessions,
            "chunks_per_session": LOAD_CONFIG.chunks_per_session,
            "concurrency": LOAD_CONFIG.concurrency,
            "dataset": LOAD_CONFIG.dataset,
        },
        "warm": {
            "throughput_dps": warm_run["report"].throughput_dps,
            "p50_us": warm_run["report"].p50_us,
            "p99_us": warm_run["report"].p99_us,
            "errors": warm_run["report"].errors,
        },
        "cold": {
            "throughput_dps": cold_run["report"].throughput_dps,
            "p50_us": cold_run["report"].p50_us,
            "p99_us": cold_run["report"].p99_us,
            "degraded": cold_run["report"].degraded,
            "errors": cold_run["report"].errors,
        },
    }
    history.append(record)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    warm, cold = record["warm"], record["cold"]
    report_sink(
        "BENCH_service",
        "\n".join(
            [
                f"warm: {warm['throughput_dps']:,.0f} decisions/s"
                f" | p50 {warm['p50_us']:,.0f} us | p99 {warm['p99_us']:,.0f} us",
                f"cold: {cold['throughput_dps']:,.0f} decisions/s"
                f" | degraded {cold['degraded']} | errors {cold['errors']}",
            ]
        ),
    )
