"""Figure 9 — per-metric detail on the FCC (broadband) dataset.

Paper's three panels: CDFs of average bitrate, average bitrate change
per chunk, and total rebuffer time.  Expected shape on the stable FCC
traces: everyone keeps rebuffering low (throughput is predictable), the
MPC family reaches BB-level average bitrate, and RobustMPC does so with
fewer/smaller switches than BB — the QoE gap comes from smoothness, not
stalls.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.abr import paper_algorithms
from repro.experiments import (
    figure8,
    figure9_10,
    fraction_at_most,
    median,
    render_detail_series,
)


@pytest.fixture(scope="module")
def detail(datasets, manifest):
    results = figure8(
        {"fcc": datasets["fcc"]}, manifest,
        algorithms=paper_algorithms(), backend="emulation",
    )
    return figure9_10(results["fcc"])


def test_figure9_pipeline(benchmark, datasets, manifest, report_sink, detail):
    run_once(
        benchmark,
        lambda: figure9_10(
            figure8(
                {"fcc": datasets["fcc"][:8]}, manifest,
                algorithms=paper_algorithms(), backend="emulation",
            )["fcc"]
        ),
    )
    report_sink("fig9_fcc_detail", render_detail_series(detail))


def test_rebuffering_is_uniformly_low(benchmark, detail):
    """All algorithms achieve similarly low rebuffer time on FCC."""
    medians = run_once(
        benchmark,
        lambda: {a: median(v) for a, v in detail.total_rebuffer_s.items()},
    )
    for algorithm, value in medians.items():
        assert value < 5.0, f"{algorithm} median rebuffer {value:.1f}s on FCC"


def test_mpc_bitrate_at_least_bb_level(benchmark, detail):
    values = run_once(
        benchmark,
        lambda: (
            median(detail.average_bitrate_kbps["robust-mpc"]),
            median(detail.average_bitrate_kbps["bb"]),
        ),
    )
    assert values[0] >= 0.9 * values[1]


def test_robust_mpc_switches_less_than_bb(benchmark, detail):
    """The paper: 'RobustMPC, FastMPC and BB achieve similar average
    bitrates, but RobustMPC uses fewer bitrate switches.'"""
    values = run_once(
        benchmark,
        lambda: (
            median(detail.average_bitrate_change_kbps["robust-mpc"]),
            median(detail.average_bitrate_change_kbps["bb"]),
        ),
    )
    assert values[0] < values[1]


def test_most_sessions_stall_free(benchmark, detail):
    fractions = run_once(
        benchmark,
        lambda: {
            a: fraction_at_most(v, 1e-9)
            for a, v in detail.total_rebuffer_s.items()
        },
    )
    assert fractions["robust-mpc"] > 0.5
