"""Figure 7 — characteristics of the three datasets.

Paper's panels: CDFs of per-trace mean throughput, throughput standard
deviation, and per-session average harmonic-mean prediction error for the
FCC, HSDPA, and synthetic datasets.  Expected shape: FCC is the most
stable (lowest std, <5% average prediction error), HSDPA the most variable
(session-average error reaching ~40% in the tail, with substantial
over-estimation).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure7, median, percentile, render_figure7


def test_figure7(benchmark, datasets, report_sink):
    characteristics = run_once(benchmark, lambda: figure7(datasets))

    report_sink("fig7_dataset_characteristics", render_figure7(characteristics))

    fcc = characteristics["fcc"]
    hsdpa = characteristics["hsdpa"]
    synthetic = characteristics["synthetic"]

    # FCC: stable broadband, accurate harmonic-mean prediction (<5% avg).
    assert median(fcc.mean_abs_prediction_error) < 0.06
    assert median(fcc.std_kbps) < 0.2 * median(fcc.mean_kbps)

    # HSDPA: the stress case — much larger errors, heavy tail.
    assert median(hsdpa.mean_abs_prediction_error) > 2 * median(
        fcc.mean_abs_prediction_error
    )
    assert percentile(hsdpa.mean_abs_prediction_error, 90) > 0.25
    # Over-estimation (the rebuffer-inducing direction) is common.
    assert median(hsdpa.overestimation_fraction) > 0.2

    # Variability ordering across the three panels: FCC < synthetic/HSDPA.
    def cov(ch):
        return median(
            [s / m for s, m in zip(ch.std_kbps, ch.mean_kbps)]
        )

    assert cov(fcc) < cov(synthetic)
    assert cov(fcc) < cov(hsdpa)
