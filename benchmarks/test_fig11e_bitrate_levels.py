"""Section 7.3's bitrate-levels experiment (described, "not shown").

Paper's text: *"With BB and MPC, we can achieve better performance using
finer-grained set of bitrate levels.  With RB, however, the performance
of RB first improves as we add more bitrate levels, but decreases when
there are too many bitrate levels"* — RB starts switching on every
throughput wiggle, paying instability penalties.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.sensitivity import bitrate_levels_sweep

LEVEL_COUNTS = (2, 3, 5, 8, 12, 20)


@pytest.fixture(scope="module")
def sweep(mixed_pool, manifest):
    return bitrate_levels_sweep(mixed_pool, manifest, level_counts=LEVEL_COUNTS)


def test_figure11e_pipeline(benchmark, mixed_pool, manifest, report_sink,
                            svg_sink, sweep):
    run_once(
        benchmark,
        lambda: bitrate_levels_sweep(
            mixed_pool[:4], manifest, level_counts=(2, 5)
        ),
    )
    report_sink("fig11e_bitrate_levels", sweep.describe())
    from repro.experiments import render_lines_svg

    svg_sink(
        "fig11e_bitrate_levels",
        render_lines_svg(
            list(sweep.parameter_values), sweep.series,
            title="Bitrate-level sensitivity (§7.3)",
            x_label="ladder levels",
        ),
    )


def test_mpc_gains_from_finer_ladders(benchmark, sweep):
    values = run_once(benchmark, lambda: sweep.series["mpc"])
    assert max(values[2:]) >= values[0]  # 5+ levels beat 2 levels


def test_bb_gains_from_finer_ladders(benchmark, sweep):
    values = run_once(benchmark, lambda: sweep.series["bb"])
    assert max(values[2:]) >= values[0] - 0.02


def test_rb_gains_saturate(benchmark, sweep):
    """RB's improvement flattens out with fine ladders.

    Reproduction note (EXPERIMENTS.md): the paper reports RB eventually
    *declining* with too many levels.  Under Eq. 5's total-variation
    switching penalty with identity quality, RB's switching cost converges
    rather than grows as the ladder refines (smaller steps, more of them),
    so we observe saturation instead of decline — the crossover where RB
    stops benefiting is reproduced, the downturn is not guaranteed.
    """
    values = run_once(benchmark, lambda: sweep.series["rb"])
    early_gain = values[2] - values[0]  # 2 -> 5 levels
    late_gain = values[-1] - values[2]  # 5 -> 20 levels
    assert early_gain > 0
    assert late_gain < early_gain


def test_mpc_leads_at_coarse_ladders(benchmark, sweep):
    """With only 2-3 levels, planning matters most: MPC leads RB and BB."""
    leads = run_once(
        benchmark,
        lambda: [
            sweep.series["mpc"][i] - max(sweep.series["rb"][i],
                                         sweep.series["bb"][i])
            for i in (0, 1)
        ],
    )
    assert max(leads) > 0
