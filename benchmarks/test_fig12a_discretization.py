"""Figure 12a — FastMPC n-QoE vs table discretization levels.

Paper's shape: more bins help with diminishing returns (~90% of optimal
at 100 levels vs ~70% at 5), and the gain depends on the predictor.

Reproduction note (see EXPERIMENTS.md): the sweep uses the paper's linear
throughput binning, where coarse quantization does real damage.  The very
coarsest tables (5 bins) occasionally *benefit* from quantization acting
as accidental hysteresis against MPC limit-cycling, so the monotone-trend
assertions run over the 10 -> 100 range.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.sensitivity import discretization_sweep

LEVELS = (5, 10, 20, 50, 100)


@pytest.fixture(scope="module")
def sweep(mixed_pool, manifest):
    return discretization_sweep(
        mixed_pool, manifest, discretization_levels=LEVELS
    )


def test_figure12a_pipeline(benchmark, mixed_pool, manifest, report_sink,
                            svg_sink, sweep):
    run_once(
        benchmark,
        lambda: discretization_sweep(
            mixed_pool[:4], manifest, discretization_levels=(10, 50)
        ),
    )
    report_sink("fig12a_discretization", sweep.describe())
    from repro.experiments import render_lines_svg

    svg_sink(
        "fig12a_discretization",
        render_lines_svg(
            list(sweep.parameter_values), sweep.series,
            title="Figure 12a — n-QoE vs discretization levels",
            x_label="bins",
        ),
    )


def test_more_levels_help_beyond_coarse(benchmark, sweep):
    """From 10 bins upward, finer tables improve (perfect prediction)."""
    series = run_once(benchmark, lambda: sweep.series["fastmpc-perfect"][1:])
    assert series[-1] > series[0]


def test_harmonic_predictor_also_gains(benchmark, sweep):
    series = run_once(benchmark, lambda: sweep.series["fastmpc-harmonic"][1:])
    assert series[-1] >= series[0] - 0.03


def test_diminishing_returns(benchmark, sweep):
    """The 50 -> 100 step gains less than the 10 -> 50 step."""
    gains = run_once(
        benchmark,
        lambda: (
            sweep.series["fastmpc-perfect"][3] - sweep.series["fastmpc-perfect"][1],
            sweep.series["fastmpc-perfect"][4] - sweep.series["fastmpc-perfect"][3],
        ),
    )
    coarse_gain, fine_gain = gains
    assert fine_gain <= coarse_gain + 0.02


def test_perfect_prediction_dominates_harmonic_at_fine_bins(benchmark, sweep):
    values = run_once(
        benchmark,
        lambda: (
            sweep.series["fastmpc-perfect"][-1],
            sweep.series["fastmpc-harmonic"][-1],
        ),
    )
    assert values[0] >= values[1] - 0.03
