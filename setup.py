"""Setup shim for environments without the ``wheel`` package, where the
PEP 517 editable-install path (which must build a wheel) is unavailable.
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
