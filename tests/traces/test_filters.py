"""Trace selection/filtering utilities."""

from __future__ import annotations

import pytest

from repro.traces import (
    Trace,
    ensure_min_duration,
    filter_by_mean,
    filter_by_std,
    filter_nontrivial,
    take,
)


def traces():
    return [
        Trace.constant(200.0, 60.0, name="slow"),
        Trace.constant(1500.0, 60.0, name="mid"),
        Trace.constant(9000.0, 60.0, name="fast"),
        Trace([0.0, 30.0], [500.0, 2500.0], duration_s=60.0, name="vary"),
    ]


class TestFilterByMean:
    def test_band(self):
        kept = filter_by_mean(traces(), 300.0, 3000.0)
        assert [t.name for t in kept] == ["mid", "vary"]

    def test_paper_band_excludes_trivial_fast_links(self):
        kept = filter_by_mean(traces(), 0.0, 3000.0)
        assert all(t.mean_kbps() <= 3000.0 for t in kept)
        assert "fast" not in [t.name for t in kept]

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            filter_by_mean(traces(), 100.0, 50.0)


class TestFilterByStd:
    def test_keeps_variable_traces(self):
        kept = filter_by_std(traces(), min_kbps=100.0)
        assert [t.name for t in kept] == ["vary"]

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            filter_by_std(traces(), 100.0, 50.0)


class TestFilterNontrivial:
    def test_drops_always_max_traces(self):
        kept = filter_nontrivial(traces(), max_bitrate_kbps=3000.0)
        assert "fast" not in [t.name for t in kept]
        assert "mid" in [t.name for t in kept]

    def test_requires_positive_bitrate(self):
        with pytest.raises(ValueError):
            filter_nontrivial(traces(), 0.0)


class TestEnsureMinDuration:
    def test_extends_short_traces_by_repetition(self):
        short = Trace.constant(800.0, 10.0)
        (extended,) = ensure_min_duration([short], 35.0)
        assert extended.duration_s >= 35.0
        assert extended.mean_kbps() == pytest.approx(800.0)

    def test_leaves_long_traces_alone(self):
        long = Trace.constant(800.0, 100.0)
        (same,) = ensure_min_duration([long], 35.0)
        assert same is long

    def test_requires_positive_duration(self):
        with pytest.raises(ValueError):
            ensure_min_duration(traces(), 0.0)


class TestTake:
    def test_takes_first_n(self):
        assert [t.name for t in take(traces(), 2)] == ["slow", "mid"]

    def test_with_predicate(self):
        kept = take(traces(), 5, predicate=lambda t: t.mean_kbps() > 1000)
        assert [t.name for t in kept] == ["mid", "fast", "vary"]

    def test_negative_count(self):
        with pytest.raises(ValueError):
            take(traces(), -1)
