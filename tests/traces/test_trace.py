"""Unit and property tests for the piecewise-constant trace model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces import Trace


def sample_trace() -> Trace:
    return Trace([0.0, 2.0, 5.0], [1000.0, 500.0, 2000.0], duration_s=8.0)


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------

class TestConstruction:
    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            Trace([0.0, 1.0], [100.0])

    def test_requires_first_timestamp_zero(self):
        with pytest.raises(ValueError, match="first timestamp"):
            Trace([1.0, 2.0], [100.0, 200.0])

    def test_requires_increasing_timestamps(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Trace([0.0, 2.0, 2.0], [1.0, 2.0, 3.0])

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError, match="finite"):
            Trace([0.0], [-5.0], duration_s=1.0)

    def test_rejects_nan_bandwidth(self):
        with pytest.raises(ValueError, match="finite"):
            Trace([0.0], [float("nan")], duration_s=1.0)

    def test_rejects_duration_before_last_timestamp(self):
        with pytest.raises(ValueError, match="duration"):
            Trace([0.0, 5.0], [1.0, 2.0], duration_s=4.0)

    def test_requires_at_least_one_segment(self):
        with pytest.raises(ValueError, match="at least one"):
            Trace([], [])

    def test_default_duration_uses_median_gap(self):
        trace = Trace([0.0, 2.0, 4.0], [1.0, 2.0, 3.0])
        assert trace.duration_s == pytest.approx(6.0)

    def test_is_immutable(self):
        trace = sample_trace()
        with pytest.raises(AttributeError):
            trace.name = "other"

    def test_from_samples(self):
        trace = Trace.from_samples([100.0, 200.0, 300.0], interval_s=5.0)
        assert trace.duration_s == pytest.approx(15.0)
        assert trace.bandwidth_at(7.0) == 200.0

    def test_constant(self):
        trace = Trace.constant(800.0, 60.0)
        assert trace.mean_kbps() == pytest.approx(800.0)
        assert trace.duration_s == 60.0

    def test_repr_mentions_name_and_segments(self):
        trace = Trace.constant(800.0, 60.0, name="x")
        assert "x" in repr(trace)
        assert "segments=1" in repr(trace)


# ----------------------------------------------------------------------
# Point lookup and integration
# ----------------------------------------------------------------------

class TestBandwidthAt:
    def test_inside_segments(self):
        trace = sample_trace()
        assert trace.bandwidth_at(0.0) == 1000.0
        assert trace.bandwidth_at(1.99) == 1000.0
        assert trace.bandwidth_at(2.0) == 500.0
        assert trace.bandwidth_at(5.5) == 2000.0

    def test_wraps_after_duration(self):
        trace = sample_trace()
        assert trace.bandwidth_at(8.0) == trace.bandwidth_at(0.0)
        assert trace.bandwidth_at(10.5) == trace.bandwidth_at(2.5)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            sample_trace().bandwidth_at(-1.0)


class TestIntegration:
    def test_simple_window(self):
        trace = sample_trace()
        # [0,2): 1000*2, [2,5): 500*3, [5,8): 2000*3
        assert trace.kilobits_between(0.0, 8.0) == pytest.approx(2000 + 1500 + 6000)

    def test_partial_segments(self):
        trace = sample_trace()
        assert trace.kilobits_between(1.0, 3.0) == pytest.approx(1000 + 500)

    def test_wrapped_window(self):
        trace = sample_trace()
        one_pass = trace.kilobits_between(0.0, 8.0)
        assert trace.kilobits_between(0.0, 24.0) == pytest.approx(3 * one_pass)
        assert trace.kilobits_between(7.0, 9.0) == pytest.approx(2000 + 1000)

    def test_empty_window(self):
        assert sample_trace().kilobits_between(3.0, 3.0) == 0.0

    def test_rejects_reversed_window(self):
        with pytest.raises(ValueError):
            sample_trace().kilobits_between(5.0, 3.0)

    def test_average_kbps_between(self):
        trace = sample_trace()
        assert trace.average_kbps_between(0.0, 2.0) == pytest.approx(1000.0)
        assert trace.average_kbps_between(0.0, 8.0) == pytest.approx(9500 / 8)


class TestTimeToDownload:
    def test_within_one_segment(self):
        trace = sample_trace()
        assert trace.time_to_download(0.0, 500.0) == pytest.approx(0.5)

    def test_across_segments(self):
        trace = sample_trace()
        # 2000 kb in seg 1 (2 s) + 500 kb at 500 kbps (1 s)
        assert trace.time_to_download(0.0, 2500.0) == pytest.approx(3.0)

    def test_wraps_around(self):
        trace = sample_trace()
        one_pass_kb = trace.kilobits_between(0.0, 8.0)
        t = trace.time_to_download(0.0, one_pass_kb + 500.0)
        assert t == pytest.approx(8.0 + 0.5)

    def test_zero_size(self):
        assert sample_trace().time_to_download(3.0, 0.0) == 0.0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            sample_trace().time_to_download(0.0, -1.0)

    def test_all_zero_trace_raises(self):
        dead = Trace([0.0], [0.0], duration_s=10.0)
        with pytest.raises(ValueError, match="zero bytes"):
            dead.time_to_download(0.0, 100.0)

    def test_skips_zero_bandwidth_segment(self):
        trace = Trace([0.0, 1.0, 2.0], [1000.0, 0.0, 1000.0], duration_s=3.0)
        # 1000 kb at t=0.5: 0.5 s of seg 1 (500 kb) + 1 s dead + 0.5 s seg 3
        assert trace.time_to_download(0.5, 1000.0) == pytest.approx(2.0)


@given(
    bandwidths=st.lists(st.floats(10.0, 5000.0), min_size=1, max_size=20),
    start=st.floats(0.0, 50.0),
    size=st.floats(1.0, 50000.0),
)
def test_download_time_inverts_integral(bandwidths, start, size):
    """time_to_download is the exact inverse of kilobits_between."""
    trace = Trace.from_samples(bandwidths, interval_s=2.0)
    duration = trace.time_to_download(start, size)
    delivered = trace.kilobits_between(start, start + duration)
    assert delivered == pytest.approx(size, rel=1e-6, abs=1e-5)


@given(
    bandwidths=st.lists(st.floats(10.0, 5000.0), min_size=1, max_size=20),
    t0=st.floats(0.0, 30.0),
    d1=st.floats(0.0, 30.0),
    d2=st.floats(0.0, 30.0),
)
def test_integral_is_additive(bandwidths, t0, d1, d2):
    trace = Trace.from_samples(bandwidths, interval_s=1.5)
    whole = trace.kilobits_between(t0, t0 + d1 + d2)
    parts = trace.kilobits_between(t0, t0 + d1) + trace.kilobits_between(
        t0 + d1, t0 + d1 + d2
    )
    assert whole == pytest.approx(parts, rel=1e-9, abs=1e-6)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------

class TestStats:
    def test_mean_is_time_weighted(self):
        trace = sample_trace()
        assert trace.mean_kbps() == pytest.approx(9500 / 8)

    def test_std_of_constant_is_zero(self):
        assert Trace.constant(700.0, 30.0).std_kbps() == pytest.approx(0.0)

    def test_stats_bundle(self):
        stats = sample_trace().stats()
        assert stats.min_kbps == 500.0
        assert stats.max_kbps == 2000.0
        assert stats.num_segments == 3
        assert stats.duration_s == 8.0
        assert stats.coefficient_of_variation() > 0

    def test_cov_of_zero_mean(self):
        stats = Trace([0.0], [0.0], duration_s=1.0).stats()
        assert stats.coefficient_of_variation() == 0.0


# ----------------------------------------------------------------------
# Transformations
# ----------------------------------------------------------------------

class TestTransforms:
    def test_scaled(self):
        trace = sample_trace().scaled(2.0)
        assert trace.mean_kbps() == pytest.approx(2 * 9500 / 8)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sample_trace().scaled(0.0)

    def test_shifted_floors(self):
        trace = sample_trace().shifted(-800.0, floor_kbps=50.0)
        assert min(trace.bandwidths_kbps) == 50.0

    def test_sliced(self):
        sliced = sample_trace().sliced(1.0, 6.0)
        assert sliced.duration_s == pytest.approx(5.0)
        assert sliced.bandwidth_at(0.0) == 1000.0  # re-based
        assert sliced.bandwidth_at(1.5) == 500.0

    def test_sliced_validates_bounds(self):
        with pytest.raises(ValueError):
            sample_trace().sliced(5.0, 20.0)

    def test_concatenate(self):
        a = Trace.constant(100.0, 5.0)
        b = Trace.constant(300.0, 5.0)
        joined = Trace.concatenate([a, b])
        assert joined.duration_s == 10.0
        assert joined.bandwidth_at(2.0) == 100.0
        assert joined.bandwidth_at(7.0) == 300.0

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            Trace.concatenate([])

    def test_repeated_matches_wrapping(self):
        trace = sample_trace()
        tripled = trace.repeated(3)
        assert tripled.duration_s == pytest.approx(24.0)
        for t in (0.5, 9.3, 18.7):
            assert tripled.bandwidth_at(t) == trace.bandwidth_at(t)

    def test_resampled_preserves_mean(self):
        trace = sample_trace()
        resampled = trace.resampled(1.0)
        assert resampled.mean_kbps() == pytest.approx(trace.mean_kbps())

    def test_chunk_throughputs(self):
        trace = sample_trace()
        windows = trace.chunk_throughputs(2.0, 4)
        assert windows[0] == pytest.approx(1000.0)
        assert windows[1] == pytest.approx(500.0)
        assert len(windows) == 4


@given(bandwidths=st.lists(st.floats(10.0, 5000.0), min_size=2, max_size=15))
def test_slice_then_concat_roundtrip(bandwidths):
    trace = Trace.from_samples(bandwidths, interval_s=1.0)
    mid = trace.duration_s / 2
    left = trace.sliced(0.0, mid)
    right = trace.sliced(mid, trace.duration_s)
    rebuilt = Trace.concatenate([left, right])
    assert rebuilt.duration_s == pytest.approx(trace.duration_s)
    assert rebuilt.kilobits_between(0, rebuilt.duration_s) == pytest.approx(
        trace.kilobits_between(0, trace.duration_s), rel=1e-9
    )
