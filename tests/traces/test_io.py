"""Trace serialization: CSV and mahimahi formats."""

from __future__ import annotations

import pytest

from repro.traces import (
    Trace,
    load_dataset,
    load_trace_csv,
    load_trace_mahimahi,
    save_dataset,
    save_trace_csv,
    save_trace_mahimahi,
)


def sample_trace() -> Trace:
    return Trace([0.0, 2.0, 5.0], [1000.0, 512.5, 2000.0], duration_s=8.0, name="io")


class TestCSV:
    def test_roundtrip_exact(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        back = load_trace_csv(path)
        assert back.timestamps == trace.timestamps
        assert back.bandwidths_kbps == pytest.approx(trace.bandwidths_kbps)
        assert back.duration_s == pytest.approx(trace.duration_s)

    def test_load_uses_filename_as_default_name(self, tmp_path):
        path = tmp_path / "my-trace.csv"
        save_trace_csv(sample_trace(), path)
        assert load_trace_csv(path).name == "my-trace"

    def test_load_rejects_too_short_file(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,bandwidth_kbps\n0.0,100.0\n")
        with pytest.raises(ValueError, match="two rows"):
            load_trace_csv(path)

    def test_load_skips_comments(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("# comment\n0.0,100.0\n5.0,100.0\n")
        trace = load_trace_csv(path)
        assert trace.duration_s == pytest.approx(5.0)


class TestMahimahi:
    def test_constant_trace_roundtrip_preserves_rate(self, tmp_path):
        trace = Trace.constant(1200.0, 20.0)
        path = tmp_path / "mahimahi.txt"
        save_trace_mahimahi(trace, path)
        back = load_trace_mahimahi(path, bucket_s=1.0)
        # MTU quantisation loses a little; the mean must survive.
        assert back.mean_kbps() == pytest.approx(1200.0, rel=0.05)

    def test_variable_trace_roundtrip_shape(self, tmp_path):
        trace = Trace([0.0, 10.0], [2000.0, 500.0], duration_s=20.0)
        path = tmp_path / "mahimahi.txt"
        save_trace_mahimahi(trace, path)
        back = load_trace_mahimahi(path, bucket_s=1.0)
        assert back.average_kbps_between(0, 10) > back.average_kbps_between(10, 20)

    def test_empty_schedule_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace_mahimahi(path)

    def test_bucket_must_be_positive(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("1\n")
        with pytest.raises(ValueError):
            load_trace_mahimahi(path, bucket_s=0.0)


class TestDataset:
    def test_save_and_load_directory(self, tmp_path):
        traces = [
            Trace.constant(500.0, 10.0, name="a"),
            Trace.constant(900.0, 10.0, name="b"),
        ]
        paths = save_dataset(traces, tmp_path / "ds")
        assert len(paths) == 2
        back = load_dataset(tmp_path / "ds")
        assert [t.name for t in back] == ["a", "b"]
        assert back[1].mean_kbps() == pytest.approx(900.0)

    def test_unnamed_traces_get_indices(self, tmp_path):
        traces = [Trace.constant(500.0, 10.0)]
        paths = save_dataset(traces, tmp_path / "ds")
        assert paths[0].name == "trace-0000.csv"

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope")
