"""Tests for the FCC / HSDPA / synthetic dataset generators."""

from __future__ import annotations

import pytest

from repro.experiments import median
from repro.experiments.figures import prediction_profile
from repro.traces import (
    FCCTraceGenerator,
    HSDPATraceGenerator,
    MarkovState,
    SyntheticTraceGenerator,
    make_generator,
    shared_bottleneck_states,
    standard_datasets,
)
from repro.traces.hsdpa import HSDPARegime


class TestDeterminism:
    @pytest.mark.parametrize("dataset", ["fcc", "hsdpa", "synthetic"])
    def test_same_seed_same_trace(self, dataset):
        a = make_generator(dataset, seed=3).generate(120.0, index=5)
        b = make_generator(dataset, seed=3).generate(120.0, index=5)
        assert a.bandwidths_kbps == b.bandwidths_kbps

    @pytest.mark.parametrize("dataset", ["fcc", "hsdpa", "synthetic"])
    def test_different_indices_differ(self, dataset):
        gen = make_generator(dataset, seed=3)
        a = gen.generate(120.0, index=0)
        b = gen.generate(120.0, index=1)
        assert a.bandwidths_kbps != b.bandwidths_kbps

    def test_different_seeds_differ(self):
        a = FCCTraceGenerator(seed=1).generate(120.0)
        b = FCCTraceGenerator(seed=2).generate(120.0)
        assert a.bandwidths_kbps != b.bandwidths_kbps


class TestCoverage:
    @pytest.mark.parametrize("dataset", ["fcc", "hsdpa", "synthetic"])
    def test_duration_covers_request(self, dataset):
        trace = make_generator(dataset).generate(317.0)
        assert trace.duration_s >= 317.0

    @pytest.mark.parametrize("dataset", ["fcc", "hsdpa", "synthetic"])
    def test_positive_throughput(self, dataset):
        trace = make_generator(dataset).generate(200.0)
        assert min(trace.bandwidths_kbps) > 0

    def test_generate_many_counts_and_names(self):
        traces = HSDPATraceGenerator().generate_many(4, 60.0, start_index=10)
        assert len(traces) == 4
        assert traces[0].name == "hsdpa-0010"
        assert traces[3].name == "hsdpa-0013"

    def test_rejects_nonpositive_duration(self):
        for dataset in ("fcc", "hsdpa", "synthetic"):
            with pytest.raises(ValueError):
                make_generator(dataset).generate(0.0)


class TestSampleIntervals:
    def test_fcc_uses_5s_samples(self):
        trace = FCCTraceGenerator().generate(60.0)
        gaps = {round(b - a, 6) for a, b in zip(trace.timestamps, trace.timestamps[1:])}
        assert gaps == {5.0}

    def test_hsdpa_uses_1s_samples(self):
        trace = HSDPATraceGenerator().generate(30.0)
        gaps = {round(b - a, 6) for a, b in zip(trace.timestamps, trace.timestamps[1:])}
        assert gaps == {1.0}


class TestCalibration:
    """The generators must land in the paper's Figure 7 bands (DESIGN.md)."""

    def test_fcc_is_stable_broadband(self):
        traces = FCCTraceGenerator(seed=11).generate_many(30, 320.0)
        errors = [prediction_profile(t).mean_abs_error() for t in traces]
        # Paper: "the average error of our harmonic mean throughput
        # predictor is less than 5%" on FCC.
        assert median(errors) < 0.06
        cov = [t.std_kbps() / t.mean_kbps() for t in traces]
        assert median(cov) < 0.15

    def test_hsdpa_is_high_variability(self):
        traces = HSDPATraceGenerator(seed=11).generate_many(30, 320.0)
        errors = [prediction_profile(t).mean_abs_error() for t in traces]
        # Paper: worst-case per-session error reaches ~40% on HSDPA.
        assert median(errors) > 0.12
        assert max(errors) > 0.3
        cov = [t.std_kbps() / t.mean_kbps() for t in traces]
        assert median(cov) > 0.25

    def test_hsdpa_overestimates_a_meaningful_fraction(self):
        traces = HSDPATraceGenerator(seed=11).generate_many(30, 320.0)
        over = [prediction_profile(t).overestimation_fraction() for t in traces]
        # Paper: the predictor over-estimates >20% of the time on HSDPA.
        assert median(over) > 0.2

    def test_variability_ordering_across_datasets(self):
        """Figure 7: broadband most stable, mobile most variable."""
        fcc = FCCTraceGenerator(seed=5).generate_many(20, 320.0)
        hsdpa = HSDPATraceGenerator(seed=5).generate_many(20, 320.0)
        fcc_cov = median([t.std_kbps() / t.mean_kbps() for t in fcc])
        hsdpa_cov = median([t.std_kbps() / t.mean_kbps() for t in hsdpa])
        assert fcc_cov < hsdpa_cov


class TestSyntheticModel:
    def test_shared_bottleneck_states_scale_inversely(self):
        states = shared_bottleneck_states(capacity_kbps=4800.0, max_users=4)
        assert [s.mean_kbps for s in states] == [4800.0, 2400.0, 1600.0, 1200.0]

    def test_rejects_bad_transition_matrix(self):
        states = shared_bottleneck_states(max_users=2)
        with pytest.raises(ValueError, match="distributions"):
            SyntheticTraceGenerator(states=states, transition_matrix=[[0.5, 0.2], [0.5, 0.5]])

    def test_rejects_matrix_shape_mismatch(self):
        states = shared_bottleneck_states(max_users=3)
        with pytest.raises(ValueError, match="shape"):
            SyntheticTraceGenerator(states=states, transition_matrix=[[1.0]])

    def test_rejects_empty_states(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(states=[])

    def test_floor_respected(self):
        states = [MarkovState(mean_kbps=60.0, std_kbps=100.0)]
        gen = SyntheticTraceGenerator(
            states=states, transition_matrix=[[1.0]], floor_kbps=50.0
        )
        trace = gen.generate(600.0)
        assert min(trace.bandwidths_kbps) >= 50.0

    def test_throughput_visits_multiple_states(self):
        trace = SyntheticTraceGenerator(seed=2).generate(600.0)
        assert trace.std_kbps() > 100.0


class TestHSDPAValidation:
    def test_rejects_bad_regime_transitions(self):
        regimes = [HSDPARegime("a", 100.0, 0.1, 5.0), HSDPARegime("b", 200.0, 0.1, 5.0)]
        with pytest.raises(ValueError, match="not a distribution"):
            HSDPATraceGenerator(regimes=regimes, transitions=[[0.9, 0.0], [1.0, 0.0]])

    def test_rejects_bad_session_scales(self):
        with pytest.raises(ValueError, match="scale"):
            HSDPATraceGenerator(session_scale_low=0.0)


class TestFCCValidation:
    def test_rejects_bad_means(self):
        with pytest.raises(ValueError):
            FCCTraceGenerator(mean_low_kbps=3000.0, mean_high_kbps=300.0)

    def test_rejects_bad_ar(self):
        with pytest.raises(ValueError):
            FCCTraceGenerator(ar_coefficient=1.0)

    def test_session_means_within_filter_band(self):
        gen = FCCTraceGenerator(seed=9)
        for i in range(10):
            mean = gen.generate(320.0, index=i).mean_kbps()
            assert 100.0 < mean < 3400.0  # generous around the 0.3-3 Mbps band


class TestStandardDatasets:
    def test_builds_all_three(self):
        datasets = standard_datasets(traces_per_dataset=5, duration_s=120.0)
        assert set(datasets) == {"fcc", "hsdpa", "synthetic"}
        for traces in datasets.values():
            assert len(traces) == 5
            for t in traces:
                assert t.duration_s >= 120.0

    def test_fcc_band_filter_applied(self):
        datasets = standard_datasets(
            traces_per_dataset=8, duration_s=120.0, mean_band_kbps=(0.0, 1500.0)
        )
        for t in datasets["fcc"]:
            assert t.mean_kbps() <= 1500.0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_generator("netflix-open-connect")

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            standard_datasets(traces_per_dataset=0)
