"""Fitting the hidden-Markov model to measured traces."""

from __future__ import annotations

import pytest

from repro.traces import HSDPATraceGenerator, SyntheticTraceGenerator, Trace
from repro.traces.fitting import MarkovFit, fit_markov_model


@pytest.fixture(scope="module")
def hsdpa_pool():
    return HSDPATraceGenerator(seed=71).generate_many(10, 320.0)


class TestFitBasics:
    def test_shapes(self, hsdpa_pool):
        fit = fit_markov_model(hsdpa_pool, num_states=5)
        assert len(fit.states) == 5
        assert len(fit.bin_edges) == 4
        assert len(fit.transition_matrix) == 5
        for row in fit.transition_matrix:
            assert sum(row) == pytest.approx(1.0)
            assert all(p > 0 for p in row)  # Laplace smoothing

    def test_states_ordered_by_mean(self, hsdpa_pool):
        fit = fit_markov_model(hsdpa_pool, num_states=5)
        means = [s.mean_kbps for s in fit.states]
        assert means == sorted(means)

    def test_state_of_uses_edges(self, hsdpa_pool):
        fit = fit_markov_model(hsdpa_pool, num_states=4)
        assert fit.state_of(1.0) == 0
        assert fit.state_of(1e9) == 3

    def test_sample_interval_matches_source(self, hsdpa_pool):
        fit = fit_markov_model(hsdpa_pool)
        assert fit.sample_interval_s == pytest.approx(1.0)  # HSDPA: 1 s

    def test_validation(self, hsdpa_pool):
        with pytest.raises(ValueError):
            fit_markov_model([])
        with pytest.raises(ValueError):
            fit_markov_model(hsdpa_pool, num_states=1)
        with pytest.raises(ValueError):
            fit_markov_model(hsdpa_pool, smoothing=0.0)
        flat = [Trace.constant(500.0, 20.0)]
        with pytest.raises(ValueError):
            fit_markov_model(flat, num_states=3)


class TestFitQuality:
    def test_stationary_mean_matches_data(self, hsdpa_pool):
        fit = fit_markov_model(hsdpa_pool, num_states=6)
        pooled_mean = sum(t.mean_kbps() * t.duration_s for t in hsdpa_pool) / sum(
            t.duration_s for t in hsdpa_pool
        )
        assert fit.mean_kbps() == pytest.approx(pooled_mean, rel=0.15)

    def test_transitions_are_sticky_for_regime_traffic(self, hsdpa_pool):
        """Regime-switching traffic dwells: self-transitions dominate."""
        fit = fit_markov_model(hsdpa_pool, num_states=5)
        diagonal = sum(
            fit.transition_matrix[i][i] for i in range(5)
        ) / 5
        assert diagonal > 0.4

    def test_recovers_known_chain(self):
        """Fit traces produced by a known generator and recover its
        stickiness and mean structure."""
        source = SyntheticTraceGenerator(seed=3, stay_probability=0.9)
        traces = source.generate_many(12, 600.0)
        fit = fit_markov_model(traces, num_states=6)
        # Quantile bins don't align exactly with the hidden states (the
        # 15% emission noise smears samples across bin edges), so the
        # observed chain is less sticky than the hidden one — but still
        # far above the 1/6 a memoryless process would show.
        diagonal = sum(fit.transition_matrix[i][i] for i in range(6)) / 6
        assert diagonal > 0.4
        pooled_mean = sum(t.mean_kbps() for t in traces) / len(traces)
        assert fit.mean_kbps() == pytest.approx(pooled_mean, rel=0.2)


class TestRoundTrip:
    def test_generator_reproduces_marginals(self, hsdpa_pool):
        """Generate from the fit and compare first-order statistics."""
        fit = fit_markov_model(hsdpa_pool, num_states=6)
        generated = fit.to_generator(seed=5).generate_many(10, 320.0)
        source_mean = sum(t.mean_kbps() for t in hsdpa_pool) / len(hsdpa_pool)
        fitted_mean = sum(t.mean_kbps() for t in generated) / len(generated)
        assert fitted_mean == pytest.approx(source_mean, rel=0.25)
        source_cov = sum(t.std_kbps() / t.mean_kbps() for t in hsdpa_pool) / len(
            hsdpa_pool
        )
        fitted_cov = sum(t.std_kbps() / t.mean_kbps() for t in generated) / len(
            generated
        )
        assert fitted_cov == pytest.approx(source_cov, rel=0.6)

    def test_generated_traces_are_usable(self, hsdpa_pool, envivio_manifest):
        from repro.abr import create
        from repro.sim import simulate_session

        fit = fit_markov_model(hsdpa_pool)
        trace = fit.to_generator(seed=1).generate(320.0)
        session = simulate_session(create("bb"), trace, envivio_manifest)
        assert len(session.records) == 65
