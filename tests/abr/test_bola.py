"""BOLA (extension baseline)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.abr import BolaAlgorithm, SessionConfig, create
from repro.abr.base import PlayerObservation
from repro.sim import simulate_session
from repro.traces import SyntheticTraceGenerator, Trace
from repro.video import envivio


def prepared(gamma_p=5.0, buffer_capacity_s=30.0):
    bola = BolaAlgorithm(gamma_p=gamma_p)
    bola.prepare(envivio(), SessionConfig(buffer_capacity_s=buffer_capacity_s))
    return bola


def obs(buffer_s, prev=1):
    return PlayerObservation(
        chunk_index=5, buffer_level_s=buffer_s, prev_level_index=prev,
        wall_time_s=20.0, playback_started=True,
    )


class TestBolaDecisions:
    def test_empty_buffer_picks_lowest(self):
        assert prepared().select_bitrate(obs(0.0)) == 0

    def test_full_buffer_picks_highest(self):
        assert prepared().select_bitrate(obs(30.0)) == 4

    @given(b1=st.floats(0.0, 30.0), b2=st.floats(0.0, 30.0))
    def test_monotone_in_buffer(self, b1, b2):
        """BOLA's level choice is non-decreasing in buffer occupancy —
        the defining property of a Lyapunov buffer map."""
        bola = prepared()
        lo, hi = sorted((b1, b2))
        assert bola.select_bitrate(obs(lo)) <= bola.select_bitrate(obs(hi))

    def test_gamma_p_trades_safety_for_utility(self):
        """A larger gamma_p pins low rates until higher buffer levels."""
        eager = prepared(gamma_p=2.0)
        cautious = prepared(gamma_p=12.0)
        mid = 10.0
        assert cautious.select_bitrate(obs(mid)) <= eager.select_bitrate(obs(mid))

    def test_scores_shape(self):
        scores = prepared().scores(12.0)
        assert len(scores) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            BolaAlgorithm(gamma_p=0.0)
        bola = BolaAlgorithm()
        with pytest.raises(ValueError, match="buffer"):
            bola.prepare(envivio(), SessionConfig(buffer_capacity_s=3.0))

    def test_no_predictors(self):
        """BOLA is pure Eq. 14: buffer in, bitrate out."""
        assert list(BolaAlgorithm().predictors()) == []


class TestBolaSessions:
    def test_full_session(self, envivio_manifest):
        trace = SyntheticTraceGenerator(seed=3).generate(320.0)
        session = simulate_session(BolaAlgorithm(), trace, envivio_manifest)
        assert len(session.records) == 65

    def test_avoids_stalls_on_steady_link(self, envivio_manifest):
        trace = Trace.constant(1200.0, 600.0)
        session = simulate_session(BolaAlgorithm(), trace, envivio_manifest)
        assert session.total_rebuffer_s == 0.0

    def test_registry(self):
        assert isinstance(create("bola"), BolaAlgorithm)
