"""BOLA (extension baseline)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.abr import BolaAlgorithm, SessionConfig, create
from repro.abr.base import PlayerObservation
from repro.sim import simulate_session
from repro.traces import SyntheticTraceGenerator, Trace
from repro.video import BitrateLadder, VideoManifest, envivio


def prepared(gamma_p=5.0, buffer_capacity_s=30.0):
    bola = BolaAlgorithm(gamma_p=gamma_p)
    bola.prepare(envivio(), SessionConfig(buffer_capacity_s=buffer_capacity_s))
    return bola


def obs(buffer_s, prev=1):
    return PlayerObservation(
        chunk_index=5, buffer_level_s=buffer_s, prev_level_index=prev,
        wall_time_s=20.0, playback_started=True,
    )


class TestBolaDecisions:
    def test_empty_buffer_picks_lowest(self):
        assert prepared().select_bitrate(obs(0.0)) == 0

    def test_full_buffer_picks_highest(self):
        assert prepared().select_bitrate(obs(30.0)) == 4

    @given(b1=st.floats(0.0, 30.0), b2=st.floats(0.0, 30.0))
    def test_monotone_in_buffer(self, b1, b2):
        """BOLA's level choice is non-decreasing in buffer occupancy —
        the defining property of a Lyapunov buffer map."""
        bola = prepared()
        lo, hi = sorted((b1, b2))
        assert bola.select_bitrate(obs(lo)) <= bola.select_bitrate(obs(hi))

    def test_gamma_p_trades_safety_for_utility(self):
        """A larger gamma_p pins low rates until higher buffer levels."""
        eager = prepared(gamma_p=2.0)
        cautious = prepared(gamma_p=12.0)
        mid = 10.0
        assert cautious.select_bitrate(obs(mid)) <= eager.select_bitrate(obs(mid))

    def test_scores_shape(self):
        scores = prepared().scores(12.0)
        assert len(scores) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            BolaAlgorithm(gamma_p=0.0)
        bola = BolaAlgorithm()
        with pytest.raises(ValueError, match="buffer"):
            bola.prepare(envivio(), SessionConfig(buffer_capacity_s=3.0))

    def test_no_predictors(self):
        """BOLA is pure Eq. 14: buffer in, bitrate out."""
        assert list(BolaAlgorithm().predictors()) == []


#: A multi-Mbps ladder whose chunk sizes (~4e7..1e9 kilobits) compress
#: the BOLA scores to ~1e-8, where genuine score differences between
#: adjacent levels drop below any fixed epsilon.
BIG_LADDER = (1e7, 3e7, 9e7, 2.7e8)


def prepared_big(buffer_capacity_s=30.0):
    manifest = VideoManifest.cbr(4.0, BitrateLadder(BIG_LADDER), 10, title="big")
    bola = BolaAlgorithm()
    bola.prepare(manifest, SessionConfig(buffer_capacity_s=buffer_capacity_s))
    return bola


def exact_first_wins_argmax(scores):
    best_level, best_score = 0, -float("inf")
    for level, score in enumerate(scores):
        if score > best_score:
            best_score, best_level = score, level
    return best_level


class TestArgmaxExactness:
    """The tie-break family: select_bitrate must be the exact first-wins
    argmax of scores().  The historical ``score > best + 1e-12`` argmax
    was scale-dependent — on a large-magnitude ladder a genuinely better
    level can win by less than any fixed epsilon, and the selection then
    silently disagrees with the objective (and with the fleet twin)."""

    # Found by scanning: at this buffer, level 3's score beats level 2's
    # by a margin in (0, 1e-12) — exact argmax says 3, the old epsilon
    # argmax stuck at 2.
    ADVERSARIAL_BUFFER_S = 20.836

    def test_sub_epsilon_winner_is_chosen(self):
        bola = prepared_big()
        scores = bola.scores(self.ADVERSARIAL_BUFFER_S)
        winner = exact_first_wins_argmax(scores)
        runner_up = max(
            (level for level in range(len(scores)) if level != winner),
            key=scores.__getitem__,
        )
        gap = scores[winner] - scores[runner_up]
        # The case is only meaningful if the margin really is sub-epsilon.
        assert 0.0 < gap < 1e-12
        assert bola.select_bitrate(obs(self.ADVERSARIAL_BUFFER_S)) == winner

    def test_selection_matches_exact_argmax_everywhere(self):
        bola = prepared_big()
        buffer_s = 0.0
        while buffer_s <= 30.0:
            scores = bola.scores(buffer_s)
            assert bola.select_bitrate(obs(buffer_s)) == exact_first_wins_argmax(
                scores
            ), f"argmax mismatch at buffer {buffer_s}"
            buffer_s += 0.0527  # irregular step: off the bin boundaries

    def test_batch_twin_lockstep_on_adversarial_ladder(self):
        """The fleet twin must make the very same sub-epsilon call."""
        np = pytest.importorskip("numpy")
        from repro.fleet.controllers import _BatchBola

        manifest = VideoManifest.cbr(
            4.0, BitrateLadder(BIG_LADDER), 10, title="big"
        )
        config = SessionConfig(buffer_capacity_s=30.0)
        scalar = BolaAlgorithm()
        scalar.prepare(manifest, config)
        buffers = np.arange(0.0, 30.0, 0.0527)
        batch = _BatchBola()
        batch.prepare(manifest, config, len(buffers))
        batch_levels = batch.decide(
            5, buffers, np.ones(len(buffers), dtype=np.int64)
        )
        for buffer_s, batch_level in zip(buffers, batch_levels):
            assert scalar.select_bitrate(obs(float(buffer_s))) == int(batch_level)


class TestBolaSessions:
    def test_full_session(self, envivio_manifest):
        trace = SyntheticTraceGenerator(seed=3).generate(320.0)
        session = simulate_session(BolaAlgorithm(), trace, envivio_manifest)
        assert len(session.records) == 65

    def test_avoids_stalls_on_steady_link(self, envivio_manifest):
        trace = Trace.constant(1200.0, 600.0)
        session = simulate_session(BolaAlgorithm(), trace, envivio_manifest)
        assert session.total_rebuffer_s == 0.0

    def test_registry(self):
        assert isinstance(create("bola"), BolaAlgorithm)
