"""The algorithm registry."""

from __future__ import annotations

import pytest

from repro.abr import ABRAlgorithm, available, create, paper_algorithms, register
from repro.abr import registry as registry_module
from repro.abr.registry import _FACTORIES, unregister


class TestRegistry:
    def test_available_lists_paper_algorithms(self):
        names = available()
        for expected in ("rb", "bb", "festive", "dashjs", "mpc", "robust-mpc",
                         "fastmpc", "mpc-opt"):
            assert expected in names

    def test_create_returns_fresh_instances(self):
        a = create("rb")
        b = create("rb")
        assert a is not b
        assert isinstance(a, ABRAlgorithm)

    def test_create_unknown(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            create("skynet")

    def test_paper_algorithms_line_up(self):
        algos = paper_algorithms()
        assert set(algos) == {"rb", "bb", "fastmpc", "robust-mpc", "dashjs",
                              "festive"}
        for algo in algos.values():
            assert isinstance(algo, ABRAlgorithm)

    def test_register_custom(self):
        class Custom(ABRAlgorithm):
            name = "custom-test"

            def select_bitrate(self, observation):
                return 0

        register("custom-test", Custom)
        try:
            assert isinstance(create("custom-test"), Custom)
            with pytest.raises(ValueError, match="already registered"):
                register("custom-test", Custom)
        finally:
            _FACTORIES.pop("custom-test", None)

    def test_register_empty_name(self):
        with pytest.raises(ValueError):
            register("", lambda: None)

    def test_zoo_extensions_registered(self):
        names = available()
        for expected in ("bola", "bba-1", "das-ip"):
            assert expected in names
            assert isinstance(create(expected), ABRAlgorithm)


class CustomA(ABRAlgorithm):
    name = "custom-plugin"

    def select_bitrate(self, observation):
        return 0


class CustomB(ABRAlgorithm):
    name = "custom-plugin"

    def select_bitrate(self, observation):
        return 1


class TestRegisterOverride:
    def test_override_replaces_custom_registration(self):
        register("custom-plugin", CustomA)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register("custom-plugin", CustomB)
            register("custom-plugin", CustomB, override=True)
            assert isinstance(create("custom-plugin"), CustomB)
        finally:
            _FACTORIES.pop("custom-plugin", None)

    def test_builtin_names_cannot_be_shadowed(self):
        for name in ("bola", "fastmpc", "bb"):
            with pytest.raises(ValueError, match="built in"):
                register(name, CustomA)
            with pytest.raises(ValueError, match="built in"):
                register(name, CustomA, override=True)

    def test_mdp_protected_even_when_numpyless(self):
        # 'mdp' stays guarded whether or not NumPy put it in the live
        # registry — a plugin must never be able to claim the name.
        with pytest.raises(ValueError, match="built in"):
            register("mdp", CustomA, override=True)


class TestUnregister:
    def test_unregister_removes_custom(self):
        register("custom-plugin", CustomA)
        unregister("custom-plugin")
        assert "custom-plugin" not in available()
        with pytest.raises(ValueError, match="not registered"):
            unregister("custom-plugin")

    def test_builtins_cannot_be_unregistered(self):
        for name in ("bola", "mdp"):
            with pytest.raises(ValueError, match="built in"):
                unregister(name)
        assert "bola" in available()


class TestMdpWithoutNumpy:
    def test_create_mdp_names_the_missing_dependency(self, monkeypatch):
        """When NumPy is absent, asking for 'mdp' must say *why* it is
        unavailable, not claim the name is unknown."""
        monkeypatch.setattr(registry_module, "MDPController", None)
        monkeypatch.delitem(_FACTORIES, "mdp", raising=False)
        with pytest.raises(ValueError, match="requires NumPy"):
            create("mdp")
