"""The algorithm registry."""

from __future__ import annotations

import pytest

from repro.abr import ABRAlgorithm, available, create, paper_algorithms, register
from repro.abr.registry import _FACTORIES


class TestRegistry:
    def test_available_lists_paper_algorithms(self):
        names = available()
        for expected in ("rb", "bb", "festive", "dashjs", "mpc", "robust-mpc",
                         "fastmpc", "mpc-opt"):
            assert expected in names

    def test_create_returns_fresh_instances(self):
        a = create("rb")
        b = create("rb")
        assert a is not b
        assert isinstance(a, ABRAlgorithm)

    def test_create_unknown(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            create("skynet")

    def test_paper_algorithms_line_up(self):
        algos = paper_algorithms()
        assert set(algos) == {"rb", "bb", "fastmpc", "robust-mpc", "dashjs",
                              "festive"}
        for algo in algos.values():
            assert isinstance(algo, ABRAlgorithm)

    def test_register_custom(self):
        class Custom(ABRAlgorithm):
            name = "custom-test"

            def select_bitrate(self, observation):
                return 0

        register("custom-test", Custom)
        try:
            assert isinstance(create("custom-test"), Custom)
            with pytest.raises(ValueError, match="already registered"):
                register("custom-test", Custom)
        finally:
            _FACTORIES.pop("custom-test", None)

    def test_register_empty_name(self):
        with pytest.raises(ValueError):
            register("", lambda: None)
