"""RB, BB, FESTIVE, dash.js rules, and the fixed policies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.abr import (
    BufferBasedAlgorithm,
    ConstantLevelAlgorithm,
    DashJSRuleBased,
    FestiveAlgorithm,
    FixedPlanAlgorithm,
    RateBasedAlgorithm,
    SessionConfig,
)
from repro.abr.base import DownloadResult, PlayerObservation
from repro.prediction import LastSamplePredictor
from repro.video import envivio


def obs(chunk=5, buffer_s=10.0, prev=1, playing=True):
    return PlayerObservation(
        chunk_index=chunk, buffer_level_s=buffer_s, prev_level_index=prev,
        wall_time_s=chunk * 4.0, playback_started=playing,
    )


def result(level=1, throughput=1000.0, download_time=2.4, rebuffer=0.0, chunk=0):
    ladder = (350.0, 600.0, 1000.0, 2000.0, 3000.0)
    return DownloadResult(
        chunk_index=chunk, level_index=level, bitrate_kbps=ladder[level],
        size_kilobits=throughput * download_time, download_time_s=download_time,
        throughput_kbps=throughput, rebuffer_s=rebuffer,
        buffer_after_s=10.0, wall_time_end_s=(chunk + 1) * 4.0,
    )


def prepared(algo):
    algo.prepare(envivio(), SessionConfig())
    return algo


class TestRateBased:
    def test_picks_max_under_prediction(self):
        predictor = LastSamplePredictor()
        rb = prepared(RateBasedAlgorithm(predictor=predictor))
        predictor.observe_kbps(2100.0)
        assert rb.select_bitrate(obs()) == 3  # 2000 kbps

    def test_ignores_buffer(self):
        predictor = LastSamplePredictor()
        rb = prepared(RateBasedAlgorithm(predictor=predictor))
        predictor.observe_kbps(2100.0)
        assert rb.select_bitrate(obs(buffer_s=0.0)) == rb.select_bitrate(
            obs(buffer_s=29.0)
        )

    def test_safety_factor(self):
        predictor = LastSamplePredictor()
        rb = prepared(RateBasedAlgorithm(predictor=predictor, safety_factor=0.5))
        predictor.observe_kbps(2100.0)
        assert rb.select_bitrate(obs()) == 2  # 0.5 * 2100 -> 1000 kbps

    def test_validation(self):
        with pytest.raises(ValueError):
            RateBasedAlgorithm(safety_factor=0.0)


class TestBufferBased:
    def test_rate_map_regions(self):
        bb = prepared(BufferBasedAlgorithm(reservoir_s=5.0, cushion_s=10.0))
        assert bb.rate_map_kbps(0.0) == 350.0
        assert bb.rate_map_kbps(5.0) == 350.0
        assert bb.rate_map_kbps(15.0) == 3000.0
        assert bb.rate_map_kbps(30.0) == 3000.0
        mid = bb.rate_map_kbps(10.0)
        assert mid == pytest.approx(350.0 + 0.5 * (3000.0 - 350.0))

    def test_selection_from_map(self):
        bb = prepared(BufferBasedAlgorithm())
        assert bb.select_bitrate(obs(buffer_s=2.0)) == 0
        assert bb.select_bitrate(obs(buffer_s=15.0)) == 4
        assert bb.select_bitrate(obs(buffer_s=10.0)) == 2  # f=1675 -> 1000

    @given(b1=st.floats(0.0, 30.0), b2=st.floats(0.0, 30.0))
    def test_rate_map_monotone(self, b1, b2):
        bb = prepared(BufferBasedAlgorithm())
        lo, hi = sorted((b1, b2))
        assert bb.rate_map_kbps(lo) <= bb.rate_map_kbps(hi) + 1e-9

    def test_no_throughput_predictor(self):
        assert list(BufferBasedAlgorithm().predictors()) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferBasedAlgorithm(reservoir_s=-1.0)
        with pytest.raises(ValueError):
            BufferBasedAlgorithm(cushion_s=0.0)


class TestFestive:
    def make(self):
        predictor = LastSamplePredictor()
        festive = FestiveAlgorithm(predictor=predictor)
        prepared(festive)
        return festive, predictor

    def test_gradual_up_switch_one_level_at_a_time(self):
        festive, predictor = self.make()
        predictor.observe_kbps(50_000.0)
        festive.on_download_complete(result(level=1, chunk=0))
        festive.on_download_complete(result(level=1, chunk=1))
        level = festive.select_bitrate(obs(prev=1))
        assert level == 2  # one step up despite huge headroom

    def test_up_switch_patience_grows_with_level(self):
        """At level 3 the player must dwell 4 chunks before stepping up.

        Downloads report a high measured throughput so the predictor keeps
        favouring the top rate throughout."""
        festive, predictor = self.make()
        festive.on_download_complete(result(level=3, chunk=0, throughput=8000.0))
        assert festive.select_bitrate(obs(prev=3)) == 3  # not patient yet
        for chunk in range(1, 4):
            festive.on_download_complete(
                result(level=3, chunk=chunk, throughput=8000.0)
            )
        assert festive.select_bitrate(obs(prev=3)) == 4

    def test_down_switch_when_bandwidth_collapses(self):
        festive, predictor = self.make()
        predictor.observe_kbps(400.0)
        festive.on_download_complete(result(level=3, chunk=0))
        assert festive.select_bitrate(obs(prev=3)) == 2

    def test_stability_score_penalises_recent_switches(self):
        festive, _ = self.make()
        for chunk, level in enumerate([0, 1, 0, 1, 0]):
            festive.on_download_complete(result(level=level, chunk=chunk))
        assert festive.stability_score(0) == 2.0**4
        assert festive.stability_score(1) == 2.0**5  # candidate adds one

    def test_efficiency_score_prefers_bandwidth_fit(self):
        festive, predictor = self.make()
        predictor.observe_kbps(2100.0)
        fit = festive.efficiency_score(3, 2100.0)  # 2000 kbps ~ fits
        under = festive.efficiency_score(0, 2100.0)
        over = festive.efficiency_score(4, 2100.0)
        assert fit < under
        assert fit < over

    def test_cold_start_uses_prediction(self):
        festive, predictor = self.make()
        predictor.observe_kbps(650.0)
        assert festive.select_bitrate(obs(chunk=0, prev=None)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FestiveAlgorithm(alpha=-1.0)
        with pytest.raises(ValueError):
            FestiveAlgorithm(switch_window=0)


class TestDashJS:
    def make(self):
        dash = DashJSRuleBased()
        prepared(dash)
        return dash

    def test_cold_start_at_bottom(self):
        dash = self.make()
        assert dash.select_bitrate(obs(chunk=0, prev=None, playing=False)) == 0

    def test_down_switch_proportional_to_ratio(self):
        dash = self.make()
        # Last chunk at 2000 kbps took 8 s for 4 s of video: ratio 0.5.
        dash.on_download_complete(result(level=3, download_time=8.0,
                                         throughput=1000.0))
        # usable bandwidth = 2000 * 0.5 = 1000 -> level 2.
        assert dash.select_bitrate(obs(prev=3)) == 2

    def test_up_switch_when_ratio_covers_next_step(self):
        dash = self.make()
        # At level 1 (600), ratio 4.0 >= 1000/600: switch up one level.
        dash.on_download_complete(result(level=1, download_time=1.0,
                                         throughput=2400.0))
        assert dash.select_bitrate(obs(prev=1)) == 2

    def test_insufficient_buffer_forces_lowest(self):
        dash = self.make()
        dash.on_download_complete(result(level=3, download_time=1.0,
                                         throughput=8000.0))
        assert dash.select_bitrate(obs(prev=3, buffer_s=2.0)) == 0

    def test_low_buffer_memory_persists(self):
        dash = self.make()
        dash.on_download_complete(result(level=2, download_time=1.0,
                                         throughput=4000.0))
        dash.select_bitrate(obs(prev=2, buffer_s=1.0))  # triggers the rule
        dash.on_download_complete(result(level=0, download_time=0.5,
                                         throughput=2800.0, chunk=1))
        # Buffer recovered, but the cooldown still pins the bottom rate.
        assert dash.select_bitrate(obs(prev=0, buffer_s=10.0)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DashJSRuleBased(low_buffer_s=-1.0)
        with pytest.raises(ValueError):
            DashJSRuleBased(up_switch_margin=0.0)


class TestFixedPolicies:
    def test_constant_level(self):
        algo = prepared(ConstantLevelAlgorithm(2))
        assert algo.select_bitrate(obs()) == 2

    def test_constant_level_negative_indexing(self):
        algo = prepared(ConstantLevelAlgorithm(-1))
        assert algo.select_bitrate(obs()) == 4

    def test_constant_level_bounds(self):
        with pytest.raises(ValueError):
            prepared(ConstantLevelAlgorithm(99))

    def test_fixed_plan(self):
        plan = [0] * 65
        plan[7] = 3
        algo = prepared(FixedPlanAlgorithm(plan))
        assert algo.select_bitrate(obs(chunk=7)) == 3
        assert algo.select_bitrate(obs(chunk=8)) == 0

    def test_fixed_plan_validation(self):
        with pytest.raises(ValueError):
            FixedPlanAlgorithm([])
        with pytest.raises(ValueError):
            prepared(FixedPlanAlgorithm([0, 1]))  # wrong length
        bad = [0] * 65
        bad[3] = 9
        with pytest.raises(ValueError):
            prepared(FixedPlanAlgorithm(bad))
