"""Session-level behaviour contracts for every registered algorithm.

A registry-wide sweep: each algorithm must complete sessions on easy,
hard, and pathological traces without violating the player contract.
These are the tests that catch an algorithm regressing into returning
bad levels, crashing on cold starts, or leaking state across sessions.
"""

from __future__ import annotations

import pytest

from repro.abr import available, create
from repro.sim import simulate_session
from repro.traces import Trace
from repro.video import envivio

ALGORITHMS = [name for name in available()]

EASY = Trace.constant(2500.0, 600.0, name="easy")
HARD = Trace(
    [0.0, 30.0, 60.0, 90.0, 120.0],
    [2500.0, 120.0, 1800.0, 90.0, 3000.0],
    duration_s=600.0,
    name="hard",
)
TRICKLE = Trace.constant(120.0, 4000.0, name="trickle")


@pytest.fixture(scope="module")
def manifest():
    return envivio()


@pytest.mark.parametrize("name", ALGORITHMS)
class TestEveryAlgorithm:
    def test_easy_trace_no_stalls(self, name, manifest):
        if name == "highest":
            pytest.skip("always-highest is allowed to stall by design")
        session = simulate_session(create(name), EASY, manifest)
        assert len(session.records) == 65
        assert session.total_rebuffer_s < 5.0

    def test_hard_trace_completes(self, name, manifest):
        session = simulate_session(create(name), HARD, manifest)
        assert len(session.records) == 65
        assert all(0 <= level < 5 for level in session.level_indices)

    def test_trickle_trace_completes(self, name, manifest):
        session = simulate_session(create(name), TRICKLE, manifest)
        assert len(session.records) == 65

    def test_instance_reusable_across_sessions(self, name, manifest):
        """prepare() must fully reset state: running twice on the same
        trace gives identical sessions."""
        algorithm = create(name)
        first = simulate_session(algorithm, HARD, manifest)
        second = simulate_session(algorithm, HARD, manifest)
        assert first.level_indices == second.level_indices
        assert first.total_rebuffer_s == pytest.approx(second.total_rebuffer_s)

    def test_deterministic_across_instances(self, name, manifest):
        a = simulate_session(create(name), HARD, manifest)
        b = simulate_session(create(name), HARD, manifest)
        assert a.level_indices == b.level_indices


@pytest.mark.parametrize("name", ["rb", "bb", "festive", "dashjs", "bola",
                                  "robust-mpc"])
def test_smart_algorithms_beat_max_on_trickle(name, manifest):
    """On a starved link every adaptive algorithm must clearly beat the
    always-highest policy (the paper's motivating extreme)."""
    adaptive = simulate_session(create(name), TRICKLE, manifest)
    greedy = simulate_session(create("highest"), TRICKLE, manifest)
    assert adaptive.qoe().total > greedy.qoe().total
