"""Session-level behaviour of the dash.js rule port.

The paper's characterisation: the stock rules keep rebuffering low (the
InsufficientBufferRule is aggressive) but leave QoE on the table.  These
tests pin that characterisation on controlled traces.
"""

from __future__ import annotations

import pytest

from repro.abr import DashJSRuleBased, create
from repro.sim import simulate_session
from repro.traces import Trace
from repro.video import envivio


class TestDashJSSessions:
    def test_low_rebuffer_on_volatile_trace(self, envivio_manifest):
        """'the dash.js heuristic rule-based adaptation achieves low
        rebuffer time' — even on a nasty square wave."""
        trace = Trace(
            [0.0, 40.0, 60.0, 100.0, 120.0],
            [2500.0, 250.0, 2500.0, 250.0, 2500.0],
            duration_s=600.0,
        )
        session = simulate_session(DashJSRuleBased(), trace, envivio_manifest)
        assert session.total_rebuffer_s < 4.0

    def test_recovers_after_trough(self, envivio_manifest):
        """After a throughput trough ends, the ratio rule climbs back up
        (one level per chunk)."""
        trace = Trace([0.0, 60.0, 90.0], [2500.0, 300.0, 2500.0],
                      duration_s=600.0)
        session = simulate_session(DashJSRuleBased(), trace, envivio_manifest)
        # The session must reach a high level again after the trough.
        late_levels = session.level_indices[-10:]
        assert max(late_levels) >= 3

    def test_leaves_qoe_on_the_table_vs_mpc(self, envivio_manifest):
        """The paper's bottom line: 'its overall QoE is significantly
        worse than all algorithms' — at least versus RobustMPC here."""
        trace = Trace([0.0, 60.0, 90.0], [2200.0, 700.0, 2200.0],
                      duration_s=600.0)
        dash = simulate_session(DashJSRuleBased(), trace, envivio_manifest)
        robust = simulate_session(create("robust-mpc"), trace, envivio_manifest)
        assert robust.qoe().total > dash.qoe().total

    def test_monotone_climb_from_cold_start(self, envivio_manifest):
        """From the forced bottom start on an ample link, levels climb
        one step at a time (the up-switch rule moves a single level)."""
        trace = Trace.constant(8000.0, 600.0)
        session = simulate_session(DashJSRuleBased(), trace, envivio_manifest)
        levels = session.level_indices
        assert levels[0] == 0
        for a, b in zip(levels, levels[1:]):
            assert b - a <= 1  # never jumps more than one level up
        assert max(levels) == 4
