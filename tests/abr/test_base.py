"""The shared ABR interface types."""

from __future__ import annotations

import pytest

from repro.abr.base import (
    ABRAlgorithm,
    DownloadResult,
    PlayerObservation,
    SessionConfig,
)
from repro.qoe import QoEWeights
from repro.video import envivio


class TestSessionConfig:
    def test_defaults_match_paper(self):
        config = SessionConfig()
        assert config.buffer_capacity_s == 30.0
        assert config.weights == QoEWeights.balanced()
        assert config.quality(1000.0) == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(buffer_capacity_s=0.0)


class TestPlayerObservation:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlayerObservation(-1, 0.0, None, 0.0, False)
        with pytest.raises(ValueError):
            PlayerObservation(0, -1.0, None, 0.0, False)
        with pytest.raises(ValueError):
            PlayerObservation(0, 0.0, None, -1.0, False)


class TestDownloadResult:
    def kwargs(self, **overrides):
        base = dict(
            chunk_index=0, level_index=0, bitrate_kbps=350.0,
            size_kilobits=1400.0, download_time_s=1.0, throughput_kbps=1400.0,
            rebuffer_s=0.0, buffer_after_s=4.0, wall_time_end_s=1.0,
        )
        base.update(overrides)
        return base

    def test_valid(self):
        r = DownloadResult(**self.kwargs())
        assert r.throughput_kbps == 1400.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DownloadResult(**self.kwargs(download_time_s=-1.0))
        with pytest.raises(ValueError):
            DownloadResult(**self.kwargs(throughput_kbps=0.0))


class TestABRAlgorithmBase:
    class Dummy(ABRAlgorithm):
        name = "dummy"

        def select_bitrate(self, observation):
            self._require_prepared()
            return 0

    def test_require_prepared(self):
        with pytest.raises(RuntimeError, match="prepare"):
            self.Dummy().select_bitrate(
                PlayerObservation(0, 0.0, None, 0.0, False)
            )

    def test_prepare_binds_manifest(self):
        algo = self.Dummy()
        manifest = envivio()
        config = SessionConfig()
        algo.prepare(manifest, config)
        assert algo.manifest is manifest
        assert algo.config is config
        assert algo.select_startup_wait(
            PlayerObservation(0, 4.0, 0, 1.0, False)
        ) == 0.0

    def test_repr(self):
        assert "dummy" in repr(self.Dummy())
