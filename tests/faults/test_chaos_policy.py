"""ChaosConfig validation and the seeded per-request action draw."""

from __future__ import annotations

import pytest

from repro.faults import (
    CHAOS_ERROR,
    CHAOS_NONE,
    CHAOS_RESET,
    CHAOS_SLOW,
    CHAOS_TABLE_SWAP,
    ChaosConfig,
    ChaosPolicy,
)


class TestChaosConfig:
    def test_defaults_are_inert(self):
        config = ChaosConfig()
        assert not config.any_enabled

    def test_any_single_rate_enables(self):
        for field in ("reset_rate", "error_rate", "slow_rate", "table_swap_rate"):
            assert ChaosConfig(**{field: 0.1}).any_enabled

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            ChaosConfig(reset_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(error_rate=1.5)

    def test_rates_must_sum_to_at_most_one(self):
        ChaosConfig(reset_rate=0.5, error_rate=0.5)  # exactly 1: fine
        with pytest.raises(ValueError):
            ChaosConfig(reset_rate=0.6, error_rate=0.6)

    def test_negative_slow_delay_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(slow_delay_s=-0.1)


class TestChaosPolicy:
    def test_certain_rates_always_fire(self):
        for field, action in (
            ("reset_rate", CHAOS_RESET),
            ("error_rate", CHAOS_ERROR),
            ("slow_rate", CHAOS_SLOW),
            ("table_swap_rate", CHAOS_TABLE_SWAP),
        ):
            policy = ChaosPolicy(ChaosConfig(**{field: 1.0}))
            assert [policy.next_action() for _ in range(5)] == [action] * 5

    def test_zero_rates_never_fire(self):
        policy = ChaosPolicy(ChaosConfig())
        assert [policy.next_action() for _ in range(20)] == [CHAOS_NONE] * 20

    def test_same_seed_replays_identically(self):
        config = ChaosConfig(
            reset_rate=0.2, error_rate=0.2, slow_rate=0.2,
            table_swap_rate=0.2, seed=42,
        )
        a = ChaosPolicy(config)
        b = ChaosPolicy(config)
        seq_a = [a.next_action() for _ in range(100)]
        seq_b = [b.next_action() for _ in range(100)]
        assert seq_a == seq_b
        assert a.actions_drawn == 100
        # Each enabled action appears over 100 draws at rate 0.2.
        for action in (CHAOS_RESET, CHAOS_ERROR, CHAOS_SLOW, CHAOS_TABLE_SWAP, CHAOS_NONE):
            assert action in seq_a

    def test_different_seeds_diverge(self):
        policy_1 = ChaosPolicy(ChaosConfig(reset_rate=0.5, seed=1))
        policy_2 = ChaosPolicy(ChaosConfig(reset_rate=0.5, seed=2))
        seq_1 = [policy_1.next_action() for _ in range(50)]
        seq_2 = [policy_2.next_action() for _ in range(50)]
        assert seq_1 != seq_2
