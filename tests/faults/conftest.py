"""Shared fixtures for the fault-injection tests."""

from __future__ import annotations

import pytest

from repro.core.table import Binning, DecisionTable

#: Ladder matching the synthetic table below (same shape the service
#: tests use: decision == previous level, distinguishable from fallback).
LADDER = (400.0, 800.0, 1600.0)


def make_test_table() -> DecisionTable:
    buffer_bins = Binning(0.0, 30.0, 4)
    throughput_bins = Binning(100.0, 4000.0, 6, spacing="log")
    n = buffer_bins.count * len(LADDER) * throughput_bins.count
    decisions = [(i // throughput_bins.count) % len(LADDER) for i in range(n)]
    return DecisionTable(buffer_bins, len(LADDER), throughput_bins, decisions)


@pytest.fixture
def test_table() -> DecisionTable:
    return make_test_table()
