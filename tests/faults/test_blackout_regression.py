"""Regression: a blackout mid-session must not crash the pipeline.

Before the hardening, a chunk downloaded through a zero-bandwidth window
produced a non-positive throughput observation and the predictor raised.
Now the observation clamps to ``OBSERVATION_FLOOR_KBPS`` and everything
downstream — predictors, the RobustMPC error tracker, QoE — stays finite.
"""

from __future__ import annotations

import math

import pytest

from repro.core.robust import RobustMPCController
from repro.emulation import NetworkProfile, emulate_session
from repro.faults import Blackout, ChunkFailure
from repro.prediction import (
    OBSERVATION_FLOOR_KBPS,
    HarmonicMeanPredictor,
    PredictionErrorTracker,
)
from repro.traces import Trace
from repro.video import short_test_video


class TestObservationClamp:
    def test_predictor_absorbs_a_stalled_chunk(self):
        predictor = HarmonicMeanPredictor(window=3)
        predictor.observe_kbps(1000.0)
        predictor.observe_kbps(0.0)  # blackout chunk: clamped, not fatal
        prediction = predictor.current_estimate()
        assert math.isfinite(prediction)
        assert prediction > 0.0
        assert all(math.isfinite(v) for v in predictor.predict(horizon=5))

    def test_error_tracker_absorbs_a_stalled_chunk(self):
        tracker = PredictionErrorTracker(window=5)
        err = tracker.record(predicted_kbps=1000.0, actual_kbps=0.0)
        assert math.isfinite(err)
        assert err == pytest.approx(
            (1000.0 - OBSERVATION_FLOOR_KBPS) / OBSERVATION_FLOOR_KBPS
        )
        assert math.isfinite(tracker.robust_lower_bound(1000.0))
        assert tracker.robust_lower_bound(1000.0) > 0.0


class TestBlackoutSession:
    def make_trace(self) -> Trace:
        return Trace.constant(1500.0, 240.0, name="steady")

    def test_session_through_blackout_completes_finite(self):
        manifest = short_test_video(num_chunks=8, num_levels=3)
        # Blackout long enough to drain any buffer built up by t=5.
        session = emulate_session(
            RobustMPCController(),
            self.make_trace(),
            manifest,
            network=NetworkProfile(slow_start=False),
            faults=[Blackout(5.0, 40.0)],
        )
        assert len(session.records) == manifest.num_chunks
        for record in session.records:
            assert math.isfinite(record.throughput_kbps)
            assert record.throughput_kbps >= 0.0
        assert math.isfinite(session.total_rebuffer_s)
        # The outage is paid for honestly: the session rebuffers.
        assert session.total_rebuffer_s > 0.0
        assert math.isfinite(session.qoe().total)

    def test_clean_run_is_unchanged_by_the_fault_machinery(self):
        """faults=[] routes through the identical clean code path."""
        manifest = short_test_video(num_chunks=8, num_levels=3)
        plain = emulate_session(
            RobustMPCController(), self.make_trace(), manifest,
            network=NetworkProfile(slow_start=False),
        )
        with_empty = emulate_session(
            RobustMPCController(), self.make_trace(), manifest,
            network=NetworkProfile(slow_start=False), faults=[],
        )
        assert [r.level_index for r in plain.records] == [
            r.level_index for r in with_empty.records
        ]
        assert plain.total_wall_time_s == with_empty.total_wall_time_s

    def test_chunk_failures_are_retried_to_completion(self):
        manifest = short_test_video(num_chunks=8, num_levels=3)
        session = emulate_session(
            RobustMPCController(),
            self.make_trace(),
            manifest,
            network=NetworkProfile(slow_start=False),
            faults=[ChunkFailure(rate=0.3, detect_delay_s=0.2)],
            fault_seed=3,
        )
        assert len(session.records) == manifest.num_chunks
        assert math.isfinite(session.qoe().total)
