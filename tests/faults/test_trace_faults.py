"""Compiling bandwidth faults into traces: exact segment surgery.

The two load-bearing properties (also stated in ``docs/robustness.md``):
an empty fault list returns the *identical* trace object, and byte
integration outside fault windows is bit-for-bit unchanged.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults import (
    Blackout,
    ChunkFailure,
    LatencySpike,
    ThroughputClamp,
    apply_trace_faults,
)
from repro.traces import Trace


def step_trace() -> Trace:
    return Trace(
        [0.0, 100.0, 160.0],
        [2000.0, 400.0, 2000.0],
        duration_s=600.0,
        name="step",
    )


class TestIdentity:
    def test_empty_fault_list_returns_same_object(self):
        trace = step_trace()
        assert apply_trace_faults(trace, []) is trace

    def test_link_only_faults_return_same_object(self):
        """Per-transfer faults are the link's business, not the trace's."""
        trace = step_trace()
        faults = [ChunkFailure(rate=0.5), LatencySpike(10.0, 5.0)]
        assert apply_trace_faults(trace, faults) is trace

    def test_fault_entirely_past_trace_end_is_clipped_away(self):
        trace = step_trace()
        assert apply_trace_faults(trace, [Blackout(700.0, 5.0)]) is trace


class TestBlackout:
    def test_window_pins_capacity_to_zero(self):
        faulted = apply_trace_faults(step_trace(), [Blackout(50.0, 10.0)])
        assert faulted.bandwidth_at(49.999) == 2000.0
        assert faulted.bandwidth_at(50.0) == 0.0
        assert faulted.bandwidth_at(55.0) == 0.0
        assert faulted.bandwidth_at(60.0) == 2000.0

    def test_integration_outside_window_unchanged(self):
        clean = step_trace()
        faulted = apply_trace_faults(clean, [Blackout(50.0, 10.0)])
        for t0, t1 in ((0.0, 50.0), (60.0, 100.0), (100.0, 160.0), (160.0, 300.0)):
            assert faulted.kilobits_between(t0, t1) == pytest.approx(
                clean.kilobits_between(t0, t1), rel=1e-12
            )

    def test_window_delivers_exactly_nothing(self):
        faulted = apply_trace_faults(step_trace(), [Blackout(50.0, 10.0)])
        assert faulted.kilobits_between(50.0, 60.0) == 0.0
        # 0-100 s: 90 s of 2000 kbps around a 10 s hole.
        assert faulted.kilobits_between(0.0, 100.0) == pytest.approx(90 * 2000.0)

    def test_time_to_download_pays_the_full_outage(self):
        """From t=45, 14000 kb is 5 s at 2000, the 10 s hole, then 2 s."""
        faulted = apply_trace_faults(step_trace(), [Blackout(50.0, 10.0)])
        assert faulted.time_to_download(45.0, 14000.0) == pytest.approx(17.0)

    def test_windows_wrap_with_the_trace(self):
        faulted = apply_trace_faults(step_trace(), [Blackout(50.0, 10.0)])
        assert faulted.bandwidth_at(600.0 + 55.0) == 0.0


class TestThroughputClamp:
    def test_cap_applies_only_where_it_binds(self):
        clean = step_trace()
        # 1000-cap over 90..110: binds on the 2000 side, not the 400 side.
        faulted = apply_trace_faults(
            clean, [ThroughputClamp(90.0, 20.0, cap_kbps=1000.0)]
        )
        assert faulted.bandwidth_at(95.0) == 1000.0
        assert faulted.bandwidth_at(105.0) == 400.0
        assert faulted.kilobits_between(90.0, 110.0) == pytest.approx(
            10 * 1000.0 + 10 * 400.0
        )

    def test_overlapping_faults_compose(self):
        faulted = apply_trace_faults(
            step_trace(),
            [ThroughputClamp(40.0, 30.0, cap_kbps=1000.0), Blackout(50.0, 10.0)],
        )
        assert faulted.bandwidth_at(45.0) == 1000.0
        assert faulted.bandwidth_at(55.0) == 0.0
        assert faulted.bandwidth_at(65.0) == 1000.0
        assert faulted.bandwidth_at(75.0) == 2000.0

    def test_name_labels_the_faulted_trace(self):
        faulted = apply_trace_faults(step_trace(), [Blackout(1.0, 1.0)])
        assert faulted.name == "step+faults"
        named = apply_trace_faults(
            step_trace(), [Blackout(1.0, 1.0)], name="custom"
        )
        assert named.name == "custom"


@given(
    start=st.floats(min_value=0.0, max_value=500.0),
    duration=st.floats(min_value=0.5, max_value=80.0),
)
def test_integration_equality_outside_any_window(start, duration):
    """For arbitrary windows, every interval disjoint from the (wrapped)
    fault window integrates identically on clean and faulted traces."""
    clean = step_trace()
    fault = Blackout(start, duration)
    faulted = apply_trace_faults(clean, [fault])
    probes = [
        (t0, t1)
        for t0, t1 in ((0.0, 40.0), (110.0, 150.0), (300.0, 420.0), (500.0, 580.0))
        if t1 <= fault.start_s or t0 >= min(fault.end_s, clean.duration_s)
    ]
    for t0, t1 in probes:
        assert faulted.kilobits_between(t0, t1) == pytest.approx(
            clean.kilobits_between(t0, t1), rel=1e-12
        )
    # Total capacity never increases under a blackout.
    assert faulted.kilobits_between(0.0, 600.0) <= clean.kilobits_between(
        0.0, 600.0
    ) + 1e-9
