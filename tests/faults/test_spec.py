"""Fault specifications, the family partition helpers, and profiles."""

from __future__ import annotations

import math

import pytest

from repro.faults import (
    Blackout,
    ChunkFailure,
    FaultProfile,
    LatencySpike,
    PROFILES,
    ThroughputClamp,
    bandwidth_faults,
    get_profile,
    link_faults,
    periodic_blackouts,
)


class TestWindowedFaultValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Blackout(-1.0, 5.0)

    def test_nan_start_rejected(self):
        with pytest.raises(ValueError):
            Blackout(math.nan, 5.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            Blackout(10.0, 0.0)
        with pytest.raises(ValueError):
            Blackout(10.0, -2.0)
        with pytest.raises(ValueError):
            Blackout(10.0, math.inf)

    def test_window_is_half_open(self):
        fault = Blackout(10.0, 5.0)
        assert fault.end_s == 15.0
        assert fault.active_at(10.0)
        assert fault.active_at(14.999)
        assert not fault.active_at(15.0)
        assert not fault.active_at(9.999)

    def test_clamp_cap_validation(self):
        assert ThroughputClamp(0.0, 1.0, cap_kbps=0.0).cap_kbps == 0.0
        with pytest.raises(ValueError):
            ThroughputClamp(0.0, 1.0, cap_kbps=-1.0)
        with pytest.raises(ValueError):
            ThroughputClamp(0.0, 1.0, cap_kbps=math.inf)

    def test_latency_spike_validation(self):
        with pytest.raises(ValueError):
            LatencySpike(0.0, 1.0, extra_delay_s=0.0)
        with pytest.raises(ValueError):
            LatencySpike(0.0, 1.0, extra_delay_s=math.inf)


class TestChunkFailureValidation:
    def test_rate_bounds(self):
        assert ChunkFailure(rate=0.0).rate == 0.0
        assert ChunkFailure(rate=1.0).rate == 1.0
        with pytest.raises(ValueError):
            ChunkFailure(rate=-0.1)
        with pytest.raises(ValueError):
            ChunkFailure(rate=1.1)

    def test_negative_detect_delay_rejected(self):
        with pytest.raises(ValueError):
            ChunkFailure(detect_delay_s=-0.1)

    def test_default_window_is_whole_session(self):
        fault = ChunkFailure(rate=0.5)
        assert fault.active_at(0.0)
        assert fault.active_at(1e9)

    def test_bounded_window(self):
        fault = ChunkFailure(rate=0.5, start_s=10.0, duration_s=5.0)
        assert not fault.active_at(9.0)
        assert fault.active_at(12.0)
        assert not fault.active_at(15.0)


class TestFamilyPartition:
    def test_partition_is_exhaustive_and_disjoint(self):
        faults = [
            Blackout(0.0, 1.0),
            ThroughputClamp(0.0, 1.0, cap_kbps=100.0),
            LatencySpike(0.0, 1.0),
            ChunkFailure(rate=0.1),
        ]
        bw = bandwidth_faults(faults)
        link = link_faults(faults)
        assert bw == faults[:2]
        assert link == faults[2:]


class TestProfiles:
    def test_catalogue_contents(self):
        assert {"clean", "blackouts", "lossy-link", "resets",
                "flaky-server", "meltdown"} <= set(PROFILES)

    def test_get_profile_miss_lists_catalogue(self):
        with pytest.raises(ValueError, match="resets"):
            get_profile("nope")

    def test_clean_profile_is_inert(self):
        clean = get_profile("clean")
        assert clean.trace_faults == ()
        assert not clean.chaos.any_enabled

    def test_with_seed_reseeds_only_the_chaos_rng(self):
        resets = get_profile("resets")
        reseeded = resets.with_seed(99)
        assert isinstance(reseeded, FaultProfile)
        assert reseeded.chaos.seed == 99
        assert reseeded.chaos.reset_rate == resets.chaos.reset_rate
        assert reseeded.trace_faults == resets.trace_faults

    def test_periodic_blackouts_spacing(self):
        outages = periodic_blackouts(60.0, 5.0, 320.0, first_start_s=30.0)
        assert [b.start_s for b in outages] == [30.0, 90.0, 150.0, 210.0, 270.0]
        assert all(b.duration_s == 5.0 for b in outages)

    def test_periodic_blackouts_rejects_always_dark(self):
        with pytest.raises(ValueError):
            periodic_blackouts(5.0, 5.0, 320.0)
