"""The chaos acceptance test: loadgen vs a server injecting resets.

Every session completes (via retries and local fallback), no exception
escapes, and the whole run is deterministic for a fixed seed —
``concurrency=1`` makes request arrival sequential, so the server's
seeded chaos draws replay identically.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.faults import ChaosConfig, ChaosPolicy
from repro.service import (
    DecisionServer,
    DecisionService,
    LoadTestConfig,
    RetryPolicy,
    run_loadtest,
)

from .conftest import LADDER, make_test_table

pytestmark = pytest.mark.slow

RESET_CHAOS = ChaosConfig(reset_rate=0.20, seed=11)


def chaos_config(**overrides) -> LoadTestConfig:
    fields = dict(
        sessions=4,
        chunks_per_session=6,
        concurrency=1,  # sequential arrivals -> deterministic chaos draws
        dataset="synthetic",
        seed=7,
        trace_duration_s=60.0,
        ladder_kbps=LADDER,
        deadline_s=1.0,
        retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.05,
            budget_s=1.0, seed=5,
        ),
    )
    fields.update(overrides)
    return LoadTestConfig(**fields)


async def run_under_chaos(config):
    service = DecisionService(LADDER, table=make_test_table())
    server = DecisionServer(service, port=0, chaos=ChaosPolicy(RESET_CHAOS))
    await server.start()
    try:
        report = await run_loadtest("127.0.0.1", server.bound_port, config)
        return report, service.metrics.snapshot()
    finally:
        await server.close()


def deterministic_fields(report) -> dict:
    """The report minus wall-clock-dependent measurements."""
    d = report.to_dict()
    for key in ("wall_s", "throughput_dps", "latency_us"):
        d.pop(key)
    return d


class TestChaosIntegration:
    def test_every_session_completes_under_injected_resets(self):
        config = chaos_config()
        report, metrics = asyncio.run(run_under_chaos(config))
        expected = config.sessions * config.chunks_per_session
        # The acceptance bar: nothing raised (we got here), nothing lost.
        assert report.sessions_completed == config.sessions
        assert report.decisions == expected
        # The server really did sabotage the run (counted as injected,
        # not as a peer reset — the server aborted its own transport).
        assert metrics["chaos_injected"].get("reset", 0) > 0
        # Remote answers + local rescues account for every decision.
        served = sum(report.sources.values())
        assert served == expected

    def test_fixed_seed_is_deterministic_run_to_run(self):
        first, first_metrics = asyncio.run(run_under_chaos(chaos_config()))
        second, second_metrics = asyncio.run(run_under_chaos(chaos_config()))
        assert deterministic_fields(first) == deterministic_fields(second)
        assert first_metrics["chaos_injected"] == second_metrics["chaos_injected"]

    def test_resets_without_retries_still_complete_via_local_fallback(self):
        config = chaos_config(retry=None)
        report, _ = asyncio.run(run_under_chaos(config))
        assert report.sessions_completed == config.sessions
        assert report.decisions == config.sessions * config.chunks_per_session
