"""FaultyLink: per-transfer failure and latency injection."""

from __future__ import annotations

import pytest

from repro.emulation import EventQueue, SharedTraceLink
from repro.faults import ChunkFailure, FailedTransfer, FaultyLink, LatencySpike
from repro.traces import Trace


def make_link(faults, seed=0):
    trace = Trace.constant(1000.0, 600.0)
    queue = EventQueue()
    inner = SharedTraceLink(trace, queue, slow_start=False)
    return FaultyLink(inner, faults, seed=seed), queue


class TestCleanPassThrough:
    def test_zero_rate_behaves_like_the_clean_link(self):
        link, queue = make_link([ChunkFailure(rate=0.0)])
        done = {}
        transfer = link.start_transfer(2500.0, lambda t: done.setdefault("t", t))
        queue.run_until_idle()
        assert transfer is not None
        assert done["t"].completed_at_s == pytest.approx(2.5)
        assert link.transfers_started == 1
        assert link.transfers_failed == 0

    def test_exposes_the_inner_link_surface(self):
        link, queue = make_link([])
        assert link.trace is link.inner.trace
        assert link.queue is queue
        assert link.active_transfers == 0


class TestChunkFailureInjection:
    def test_certain_failure_reports_after_detect_delay(self):
        link, queue = make_link([ChunkFailure(rate=1.0, detect_delay_s=0.25)])
        failures = []
        completions = []
        result = link.start_transfer(
            2500.0, completions.append, on_fail=failures.append
        )
        queue.run_until_idle()
        assert result is None
        assert completions == []
        (failure,) = failures
        assert isinstance(failure, FailedTransfer)
        assert failure.size_kilobits == 2500.0
        assert failure.wasted_s == pytest.approx(0.25)
        assert link.transfers_failed == 1

    def test_no_handler_degrades_to_a_delay_not_a_deadlock(self):
        """A caller without on_fail still gets its bytes, late."""
        link, queue = make_link([ChunkFailure(rate=1.0, detect_delay_s=0.25)])
        done = {}
        # rate=1.0 would re-fail the rescheduled transfer too — but the
        # degraded path goes straight to the inner link, so it cannot.
        link.start_transfer(2500.0, lambda t: done.setdefault("t", t))
        queue.run_until_idle()
        assert done["t"].completed_at_s == pytest.approx(0.25 + 2.5)

    def test_window_bounds_the_risk(self):
        fault = ChunkFailure(rate=1.0, detect_delay_s=0.1, start_s=10.0, duration_s=5.0)
        link, queue = make_link([fault])
        outcomes = []
        link.start_transfer(1000.0, lambda t: outcomes.append("ok"))
        queue.run_until_idle()  # starts at t=0, outside the window
        assert outcomes == ["ok"]

    def test_same_seed_same_failure_sequence(self):
        fault = ChunkFailure(rate=0.4, detect_delay_s=0.1)

        def failure_pattern(seed):
            link, queue = make_link([fault], seed=seed)
            pattern = []
            for _ in range(20):
                link.start_transfer(
                    10.0, lambda t: pattern.append(False),
                    on_fail=lambda f: pattern.append(True),
                )
                queue.run_until_idle()
            return pattern

        first = failure_pattern(seed=7)
        assert first == failure_pattern(seed=7)
        assert True in first and False in first  # 0.4 over 20 draws: mixed
        assert first != failure_pattern(seed=8)


class TestLatencySpike:
    def test_transfer_starting_in_window_is_delayed(self):
        link, queue = make_link([LatencySpike(0.0, 10.0, extra_delay_s=0.5)])
        done = {}
        result = link.start_transfer(2500.0, lambda t: done.setdefault("t", t))
        queue.run_until_idle()
        assert result is None  # delayed, outcome via callback
        assert done["t"].completed_at_s == pytest.approx(0.5 + 2.5)

    def test_overlapping_spikes_stack(self):
        link, queue = make_link(
            [
                LatencySpike(0.0, 10.0, extra_delay_s=0.5),
                LatencySpike(0.0, 5.0, extra_delay_s=0.25),
            ]
        )
        done = {}
        link.start_transfer(2500.0, lambda t: done.setdefault("t", t))
        queue.run_until_idle()
        assert done["t"].completed_at_s == pytest.approx(0.75 + 2.5)
