"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.abr.base import SessionConfig
from repro.qoe import QoEWeights
from repro.traces import (
    FCCTraceGenerator,
    HSDPATraceGenerator,
    SyntheticTraceGenerator,
    Trace,
)
from repro.video import envivio, short_test_video

# Keep property tests fast and deterministic in CI.
settings.register_profile(
    "ci",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("ci")


@pytest.fixture(scope="session")
def envivio_manifest():
    """The paper's evaluation video (65 x 4 s chunks, 5 levels)."""
    return envivio()


@pytest.fixture
def short_manifest():
    """A small 8-chunk, 3-level video for exhaustive cross-checks."""
    return short_test_video(num_chunks=8, num_levels=3)


@pytest.fixture
def constant_trace():
    """A steady 1.5 Mbps link, long enough for the Envivio video."""
    return Trace.constant(1500.0, 600.0, name="constant-1500")


@pytest.fixture
def step_trace():
    """2 Mbps for 100 s, then a 400 kbps trough, then recovery."""
    return Trace(
        [0.0, 100.0, 160.0],
        [2000.0, 400.0, 2000.0],
        duration_s=600.0,
        name="step",
    )


@pytest.fixture
def fcc_traces():
    return FCCTraceGenerator(seed=7).generate_many(6, 320.0)


@pytest.fixture
def hsdpa_traces():
    return HSDPATraceGenerator(seed=7).generate_many(6, 320.0)


@pytest.fixture
def synthetic_traces():
    return SyntheticTraceGenerator(seed=7).generate_many(6, 320.0)


@pytest.fixture
def default_config():
    return SessionConfig()


@pytest.fixture
def balanced_weights():
    return QoEWeights.balanced()
