"""Request spans, trace ids, and chaos stamping on the decision server."""

from __future__ import annotations

import asyncio

import pytest

from repro.faults.chaos import CHAOS_ERROR, ChaosConfig, ChaosPolicy
from repro.obs import RequestSpan, RingBufferSink, Tracer
from repro.service import (
    DecisionRequest,
    DecisionServer,
    DecisionService,
    ServiceClient,
)
from repro.service.client import ServiceUnavailable

pytestmark = pytest.mark.slow

from .conftest import LADDER


def run(coro):
    return asyncio.run(coro)


def make_request(**overrides) -> DecisionRequest:
    fields = dict(
        session_id="s1", buffer_s=10.0, predicted_kbps=1500.0, prev_level=2
    )
    fields.update(overrides)
    return DecisionRequest(**fields)


async def with_traced_server(service, inner, **server_kwargs):
    sink = RingBufferSink()
    server = DecisionServer(
        service, port=0, tracer=Tracer([sink], session_id="svc"), **server_kwargs
    )
    await server.start()
    try:
        await inner(server)
    finally:
        await server.close()
    return list(sink.events())


def test_decide_emits_span_with_fresh_trace_ids(test_table):
    service = DecisionService(LADDER, table=test_table)

    async def inner(server):
        async with ServiceClient("127.0.0.1", server.bound_port) as client:
            await client.decide(make_request())
            await client.decide(make_request(session_id="s2"))

    events = run(with_traced_server(service, inner))
    spans = [e for e in events if isinstance(e, RequestSpan)]
    assert [s.name for s in spans] == ["decide", "decide"]
    assert [s.status for s in spans] == ["ok", "ok"]
    assert spans[0].trace_id != spans[1].trace_id
    assert all(s.wall_s >= 0.0 for s in spans)
    # Request spans carry the player's session id for correlation.
    assert [s.session_id for s in spans] == ["s1", "s2"]


def test_degraded_decide_span_reports_degraded_status(test_table):
    service = DecisionService(LADDER, table=None)  # no table -> fallback

    async def inner(server):
        async with ServiceClient("127.0.0.1", server.bound_port) as client:
            response = await client.decide(make_request())
            assert response.degraded

    events = run(with_traced_server(service, inner))
    (span,) = [e for e in events if isinstance(e, RequestSpan)]
    assert span.status == "degraded"
    assert span.chaos is None


def test_chaos_error_is_stamped_on_the_span(test_table):
    service = DecisionService(LADDER, table=test_table)
    chaos = ChaosPolicy(ChaosConfig(error_rate=1.0, seed=11))

    async def inner(server):
        async with ServiceClient("127.0.0.1", server.bound_port) as client:
            with pytest.raises(ServiceUnavailable):
                await client.decide(make_request())

    events = run(with_traced_server(service, inner, chaos=chaos))
    (span,) = [e for e in events if isinstance(e, RequestSpan)]
    assert span.status == "error-500"
    assert span.chaos == CHAOS_ERROR
