"""DecisionService: table path, robust bound, and the degradation policy."""

from __future__ import annotations

import pytest

from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    SOURCE_FALLBACK,
    SOURCE_TABLE,
    DecisionRequest,
)
from repro.service.server import (
    REASON_MALFORMED,
    REASON_NO_TABLE,
    REASON_OVER_BUDGET,
    DecisionService,
    ServiceConfig,
)

from .conftest import LADDER


class FakeClock:
    """Monotonic clock that advances by a scripted step per call."""

    def __init__(self, steps):
        self.steps = list(steps)
        self.now = 0.0

    def __call__(self) -> float:
        value = self.now
        self.now += self.steps.pop(0) if self.steps else 0.0
        return value


def make_request(**overrides) -> DecisionRequest:
    fields = dict(
        session_id="s1", buffer_s=10.0, predicted_kbps=1500.0, prev_level=2
    )
    fields.update(overrides)
    return DecisionRequest(**fields)


class TestTablePath:
    def test_decision_matches_direct_lookup(self, test_table):
        service = DecisionService(LADDER, table=test_table)
        request = make_request()
        response = service.decide(request)
        assert response.source == SOURCE_TABLE
        assert not response.degraded
        assert response.reason is None
        assert response.level_index == test_table.lookup(10.0, 2, 1500.0)
        assert response.bitrate_kbps == LADDER[response.level_index]
        assert service.metrics.decisions_table == 1
        assert service.metrics.decisions_fallback == 0

    def test_robust_lower_bound_applied(self, test_table):
        service = DecisionService(LADDER, table=test_table)
        # max |error| = 0.5 -> the table is queried at 1500 / 1.5 = 1000.
        response = service.decide(make_request(past_errors=(0.1, -0.5)))
        assert response.level_index == test_table.lookup(10.0, 2, 1000.0)
        assert response.source == SOURCE_TABLE

    def test_first_chunk_uses_level_zero(self, test_table):
        service = DecisionService(LADDER, table=test_table)
        response = service.decide(make_request(prev_level=None))
        assert response.level_index == test_table.lookup(10.0, 0, 1500.0)

    def test_mismatched_ladder_rejected(self, test_table):
        with pytest.raises(ValueError):
            DecisionService((100.0, 200.0), table=test_table)


class TestDegradation:
    def test_no_table_falls_back_rate_based(self):
        service = DecisionService(LADDER)
        response = service.decide(make_request(predicted_kbps=900.0))
        assert response.source == SOURCE_FALLBACK
        assert response.degraded
        assert response.reason == REASON_NO_TABLE
        # Rate-based rule: highest ladder rate <= 900 is 800 (index 1).
        assert response.level_index == 1
        assert response.bitrate_kbps == 800.0
        assert service.metrics.fallback_reasons == {REASON_NO_TABLE: 1}

    def test_fallback_below_ladder_clamps_to_lowest(self):
        service = DecisionService(LADDER)
        response = service.decide(make_request(predicted_kbps=50.0))
        assert response.level_index == 0

    def test_prev_level_out_of_range_degrades(self, test_table):
        service = DecisionService(LADDER, table=test_table)
        response = service.decide(make_request(prev_level=99))
        assert response.source == SOURCE_FALLBACK
        assert response.reason == REASON_MALFORMED

    def test_over_budget_degrades(self, test_table):
        # Scripted clock: the lookup "takes" 1 full second per call,
        # far over the 5 ms budget.
        clock = FakeClock(steps=[1.0, 1.0, 1.0, 1.0])
        service = DecisionService(LADDER, table=test_table, clock=clock)
        response = service.decide(make_request())
        assert response.source == SOURCE_FALLBACK
        assert response.degraded
        assert response.reason == REASON_OVER_BUDGET
        assert service.metrics.fallback_reasons == {REASON_OVER_BUDGET: 1}

    def test_within_budget_stays_table(self, test_table):
        clock = FakeClock(steps=[0.0001] * 8)
        config = ServiceConfig(lookup_budget_s=0.005)
        service = DecisionService(
            LADDER, table=test_table, config=config, clock=clock
        )
        assert service.decide(make_request()).source == SOURCE_TABLE


class TestDecidePayload:
    def test_valid_payload(self, test_table):
        service = DecisionService(LADDER, table=test_table)
        response = service.decide_payload(make_request().to_json())
        assert response.source == SOURCE_TABLE

    def test_malformed_payload_salvages_fields(self, test_table):
        service = DecisionService(LADDER, table=test_table)
        # Missing buffer_s: invalid, but session and prediction salvage.
        body = b'{"session_id":"sx","predicted_kbps":900.0}'
        response = service.decide_payload(body)
        assert response.source == SOURCE_FALLBACK
        assert response.reason == REASON_MALFORMED
        assert response.session_id == "sx"
        assert response.level_index == 1  # rate-based over 900 kbps

    def test_garbage_payload_still_answers(self, test_table):
        service = DecisionService(LADDER, table=test_table)
        response = service.decide_payload(b"\x00\xffnot json")
        assert response.source == SOURCE_FALLBACK
        assert response.session_id == "unknown"
        assert response.level_index == 0

    def test_never_raises_on_hostile_payloads(self, test_table):
        service = DecisionService(LADDER, table=test_table)
        hostile = [
            b"", b"[]", b"null", b'{"predicted_kbps":"NaN"}',
            b'{"session_id":"s","buffer_s":1e999,"predicted_kbps":1}',
            b'{"session_id":true,"buffer_s":1,"predicted_kbps":-5}',
        ]
        for body in hostile:
            response = service.decide_payload(body)
            assert response.degraded
        assert service.metrics.decisions_fallback == len(hostile)


class TestTableLifecycle:
    def test_swap_and_unload(self, test_table):
        metrics = ServiceMetrics()
        service = DecisionService(LADDER, metrics=metrics)
        assert not service.table_loaded
        service.swap_table(test_table)
        assert service.table_loaded
        assert service.decide(make_request()).source == SOURCE_TABLE
        service.unload_table()
        assert not service.table_loaded
        assert service.decide(make_request()).source == SOURCE_FALLBACK
        assert metrics.table_swaps_total == 2

    def test_swap_rejects_wrong_shape(self, test_table):
        service = DecisionService((100.0, 200.0))
        with pytest.raises(ValueError):
            service.swap_table(test_table)


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(lookup_budget_s=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(request_deadline_s=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(idle_timeout_s=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(max_body_bytes=0)
