"""Cluster soak: sustained load + repeated worker deaths, zero failures.

Opt-in (``-m soak``; ``scripts/check.sh`` runs it as its own stage): the
cluster serves a continuous closed-loop workload for ~20 seconds while
workers are killed both by injected ``worker-kill`` chaos and by an
explicit SIGKILL every few seconds.  The bar is absolute: every session
of every round completes with zero client-visible errors, every death
is repaired, and the aggregated metrics stay mergeable throughout.
"""

from __future__ import annotations

import asyncio
import signal
import time

import pytest

from repro.faults import ChaosConfig
from repro.service import (
    ClusterConfig,
    ClusterSupervisor,
    LoadTestConfig,
    RetryPolicy,
    run_loadtest,
)
from repro.traces import make_generator

from .conftest import LADDER
from .test_cluster import publish_test_table

pytestmark = [pytest.mark.slow, pytest.mark.soak]

SOAK_SECONDS = 20.0
KILL_EVERY_S = 4.0


def test_cluster_survives_sustained_load_and_kills(tmp_path):
    path = publish_test_table(tmp_path)
    traces = make_generator("fcc", seed=17).generate_many(8, 120.0)
    config = LoadTestConfig(
        sessions=8,
        chunks_per_session=30,
        concurrency=8,
        connections=4,
        ladder_kbps=LADDER,
        deadline_s=5.0,
        retry=RetryPolicy(
            max_attempts=8, base_delay_s=0.02, max_delay_s=0.5, seed=23
        ),
        local_fallback=False,
    )

    async def soak():
        cluster = ClusterConfig(
            workers=3,
            poll_interval_s=0.02,
            chaos=ChaosConfig(kill_rate=0.002, seed=29),
        )
        rounds = 0
        decisions = 0
        explicit_kills = 0
        async with ClusterSupervisor(
            LADDER, table_path=path, config=cluster
        ) as sup:
            started = time.perf_counter()
            last_kill = started
            victim = 0
            # The wall budget governs on fast hosts; slow hosts (1-core
            # CI) still run the two rounds the final assertions require.
            while rounds < 2 or time.perf_counter() - started < SOAK_SECONDS:
                load = asyncio.ensure_future(
                    run_loadtest("127.0.0.1", sup.bound_port, config, traces=traces)
                )
                while not load.done():
                    await asyncio.sleep(0.05)
                    now = time.perf_counter()
                    if now - last_kill >= KILL_EVERY_S:
                        last_kill = now
                        # A slot can be mid-restart (chaos got it, or the
                        # respawn is slow on a loaded host); scan for a
                        # live victim rather than burning the kill tick.
                        for _ in range(cluster.workers):
                            slot = victim % cluster.workers
                            victim += 1
                            try:
                                sup.kill_worker(slot, signal.SIGKILL)
                                explicit_kills += 1
                                break
                            except Exception:
                                continue
                report = await load
                rounds += 1
                decisions += report.decisions
                assert report.errors == 0, f"round {rounds} saw errors"
                assert report.sessions_completed == config.sessions
                # The telemetry plane must stay coherent mid-carnage.
                metrics = await sup.metrics()
                assert metrics["cluster"]["workers"] == cluster.workers
                assert metrics["latency_us"]["counts"] is not None
            await sup.wait_healthy(timeout_s=15.0)
            return rounds, decisions, explicit_kills, sup.restarts_total

    rounds, decisions, explicit_kills, restarts = asyncio.run(soak())
    assert rounds >= 2, "soak finished too few rounds to mean anything"
    assert decisions >= 2 * 8 * 30
    assert explicit_kills >= 2
    assert restarts >= explicit_kills
