"""Micro-batching and binary-protocol negotiation, end to end.

Covers the fast-path additions as observable behaviour:

* ``DecisionService.decide_batch`` answers exactly like per-request
  ``decide`` — including no-table degradation, invalid ``prev_level``
  handling, and NaN-poisoned batches — at every batch size (both sides
  of the scalar/vectorized crossover).
* Concurrent requests hitting one :class:`DecisionServer` coalesce into
  shared batches, visible as the ``batch_occupancy`` histogram and the
  ``protocol_requests`` counters in ``/metrics``.
* A binary client negotiates by content-type, ships multi-record frames
  through ``decide_many``, and silently downgrades to JSON against a
  server that answers JSON.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.client import ServiceClient
from repro.service.loadgen import LoadTestConfig, run_loadtest
from repro.service.protocol import (
    CONTENT_TYPE_BINARY,
    DecisionRequest,
    encode_response_batch,
)
from repro.service.server import (
    VECTOR_MIN_BATCH,
    DecisionServer,
    DecisionService,
)

from .conftest import LADDER, make_test_table


def _requests(count: int) -> list:
    return [
        DecisionRequest(
            session_id=f"s{i:04d}",
            buffer_s=(i * 1.37) % 30.0,
            predicted_kbps=120.0 + (i * 211.7) % 3800.0,
            prev_level=i % len(LADDER),
            past_errors=(0.08, -0.15) if i % 2 else (),
        )
        for i in range(count)
    ]


class TestDecideBatchParity:
    @pytest.mark.parametrize(
        "size", [1, 2, VECTOR_MIN_BATCH - 1, VECTOR_MIN_BATCH, 200]
    )
    def test_matches_scalar_decide(self, size):
        batch_service = DecisionService(LADDER, table=make_test_table())
        scalar_service = DecisionService(LADDER, table=make_test_table())
        requests = _requests(size)
        batched = batch_service.decide_batch(requests)
        scalar = [scalar_service.decide(r) for r in requests]
        assert len(batched) == size
        for got, want in zip(batched, scalar):
            assert (got.session_id, got.level_index, got.bitrate_kbps) == (
                want.session_id, want.level_index, want.bitrate_kbps
            )
            assert (got.source, got.degraded, got.reason) == (
                want.source, want.degraded, want.reason
            )

    def test_no_table_degrades_whole_batch(self):
        service = DecisionService(LADDER)  # cold on purpose
        responses = service.decide_batch(_requests(5))
        assert all(r.source == "fallback" for r in responses)
        assert all(r.degraded and r.reason == "no-table" for r in responses)

    @pytest.mark.parametrize("size", [3, VECTOR_MIN_BATCH + 3])
    def test_invalid_prev_level_degrades_only_that_request(self, size):
        service = DecisionService(LADDER, table=make_test_table())
        requests = _requests(size)
        requests[1] = DecisionRequest(
            session_id="bad", buffer_s=1.0, predicted_kbps=500.0,
            prev_level=len(LADDER) + 7,
        )
        responses = service.decide_batch(requests)
        assert responses[1].source == "fallback"
        assert responses[1].reason == "malformed"
        others = [r for i, r in enumerate(responses) if i != 1]
        assert all(r.source == "table" for r in others)

    def test_nan_poisoned_batch_degrades_per_request(self):
        # NaN would poison a whole vectorized lookup; the batch path must
        # fall back to scalar decides so only the bad request degrades.
        service = DecisionService(LADDER, table=make_test_table())
        requests = _requests(VECTOR_MIN_BATCH)
        poisoned = list(requests)
        poisoned[3] = DecisionRequest(
            session_id="nan", buffer_s=float("nan"), predicted_kbps=500.0,
        )
        responses = service.decide_batch(poisoned)
        assert responses[3].source == "fallback"
        ok = [r for i, r in enumerate(responses) if i != 3]
        assert all(r.source == "table" for r in ok)

    def test_batch_occupancy_recorded(self):
        service = DecisionService(LADDER, table=make_test_table())
        service.decide_batch(_requests(4))
        service.decide_batch(_requests(4))
        service.decide_batch(_requests(9))
        snap = service.metrics.snapshot()
        assert snap["batch_occupancy"] == {"4": 2, "9": 1}


class TestServerCoalescing:
    def test_concurrent_requests_share_a_batch(self):
        async def inner():
            service = DecisionService(LADDER, table=make_test_table())
            server = DecisionServer(service, port=0)
            await server.start()
            try:
                clients = [
                    ServiceClient("127.0.0.1", server.bound_port)
                    for _ in range(6)
                ]
                for c in clients:
                    await c.connect()
                requests = _requests(6)
                for _ in range(10):
                    await asyncio.gather(
                        *(c.decide(r) for c, r in zip(clients, requests))
                    )
                for c in clients:
                    await c.close()
                return service.metrics.snapshot()
            finally:
                await server.close()

        snap = asyncio.run(inner())
        occupancy = {int(k): v for k, v in snap["batch_occupancy"].items()}
        # At least some ticks must have coalesced several requests.
        assert max(occupancy) > 1
        assert sum(k * v for k, v in occupancy.items()) == 60
        assert "decide-batch" in snap["spans_us"]

    def test_protocol_counters_split_json_and_binary(self):
        async def inner():
            service = DecisionService(LADDER, table=make_test_table())
            server = DecisionServer(service, port=0)
            await server.start()
            try:
                request = _requests(1)[0]
                async with ServiceClient("127.0.0.1", server.bound_port) as c:
                    await c.decide(request)
                    await c.decide(request)
                async with ServiceClient(
                    "127.0.0.1", server.bound_port, protocol="binary"
                ) as c:
                    await c.decide(request)
                return service.metrics.snapshot()
            finally:
                await server.close()

        snap = asyncio.run(inner())
        assert snap["protocol_requests"] == {"json": 2, "binary": 1}


class TestBinaryNegotiation:
    def test_binary_client_stays_binary_and_matches_json(self):
        async def inner():
            service = DecisionService(LADDER, table=make_test_table())
            server = DecisionServer(service, port=0)
            await server.start()
            try:
                requests = _requests(12)
                async with ServiceClient("127.0.0.1", server.bound_port) as c:
                    json_responses = [await c.decide(r) for r in requests]
                async with ServiceClient(
                    "127.0.0.1", server.bound_port, protocol="binary"
                ) as c:
                    single = [await c.decide(r) for r in requests]
                    many = await c.decide_many(requests)
                    assert c.protocol == "binary"
                return json_responses, single, many
            finally:
                await server.close()

        json_responses, single, many = asyncio.run(inner())
        for j, s, m in zip(json_responses, single, many):
            assert (j.level_index, j.source, j.degraded) == (
                s.level_index, s.source, s.degraded
            )
            assert (j.level_index, j.source, j.degraded) == (
                m.level_index, m.source, m.degraded
            )

    def test_downgrade_against_json_only_server(self):
        """An old server that never answers binary: the client detects
        the JSON answer, downgrades the connection, and resends."""

        async def handle(reader, writer):
            try:
                while True:
                    # Minimal HTTP parse: headers, then content-length body.
                    header_blob = await reader.readuntil(b"\r\n\r\n")
                    length = 0
                    for line in header_blob.split(b"\r\n"):
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.split(b":", 1)[1])
                    if length:
                        await reader.readexactly(length)
                    from repro.service.protocol import DecisionResponse

                    payload = DecisionResponse(
                        session_id="old",
                        level_index=1,
                        bitrate_kbps=LADDER[1],
                        source="table",
                    ).to_json()
                    writer.write(
                        b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                        + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                        + payload
                    )
                    await writer.drain()
            except (asyncio.IncompleteReadError, ConnectionError):
                pass
            finally:
                writer.close()

        async def inner():
            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with ServiceClient(
                    "127.0.0.1", port, protocol="binary"
                ) as client:
                    response = await client.decide(_requests(1)[0])
                    assert client.protocol == "json"  # downgraded
                    return response
            finally:
                server.close()
                await server.wait_closed()

        response = asyncio.run(inner())
        assert response.level_index == 1
        assert response.source == "table"

    def test_client_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            ServiceClient("127.0.0.1", 1, protocol="msgpack")

    def test_server_answers_malformed_binary_with_degraded_frame(self):
        async def inner():
            service = DecisionService(LADDER, table=make_test_table())
            server = DecisionServer(service, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.bound_port
                )
                garbage = b"\x00\x01\x02 not a frame"
                writer.write(
                    b"POST /v1/decide HTTP/1.1\r\n"
                    + f"Content-Type: {CONTENT_TYPE_BINARY}\r\n".encode()
                    + f"Content-Length: {len(garbage)}\r\n\r\n".encode()
                    + garbage
                )
                await writer.drain()
                header = await reader.readuntil(b"\r\n\r\n")
                length = 0
                for line in header.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                body = await reader.readexactly(length)
                writer.close()
                return header, body
            finally:
                await server.close()

        header, body = asyncio.run(inner())
        assert CONTENT_TYPE_BINARY.encode() in header
        from repro.service.protocol import DecisionResponse

        response = DecisionResponse.from_binary(body)
        assert response.degraded and response.reason == "malformed"
        assert response.source == "fallback"


class TestLoadgenBinaryMode:
    def test_closed_loop_binary_run_is_clean(self, tmp_path):
        async def inner():
            service = DecisionService(LADDER, table=make_test_table())
            server = DecisionServer(service, port=0)
            await server.start()
            try:
                config = LoadTestConfig(
                    sessions=8,
                    chunks_per_session=10,
                    concurrency=8,
                    connections=2,
                    protocol="binary",
                    dataset="synthetic",
                    seed=7,
                    ladder_kbps=LADDER,
                )
                report = await run_loadtest(
                    "127.0.0.1", server.bound_port, config
                )
                return report, service.metrics.snapshot()
            finally:
                await server.close()

        report, snap = asyncio.run(inner())
        assert report.errors == 0
        assert report.decisions == 80
        assert report.sessions_completed == 8
        assert snap["protocol_requests"].get("binary", 0) > 0
        # Coalescing: 8 concurrent sessions over 2 connections must have
        # produced multi-record frames.
        occupancy = {int(k): v for k, v in snap["batch_occupancy"].items()}
        assert max(occupancy) > 1

    def test_config_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            LoadTestConfig(protocol="grpc")


def test_healthz_advertises_binary_protocol():
    async def inner():
        service = DecisionService(LADDER, table=make_test_table())
        server = DecisionServer(service, port=0)
        await server.start()
        try:
            async with ServiceClient("127.0.0.1", server.bound_port) as c:
                return await c.health()
        finally:
            await server.close()

    health = asyncio.run(inner())
    assert health["binary_protocol"] is True


def test_response_frame_magic():
    from repro.service.protocol import DecisionResponse

    frame = encode_response_batch(
        (
            DecisionResponse(
                session_id="s", level_index=0, bitrate_kbps=LADDER[0],
                source="table",
            ),
        )
    )
    assert frame[:2] == b"DS"
