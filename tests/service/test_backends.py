"""Per-session controller backends: lifecycle, eviction, decision flow."""

from __future__ import annotations

import pytest

from repro.service.backends import AlgorithmBackend

LADDER = (350.0, 600.0, 1000.0, 2000.0, 3000.0)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_backend(controller="bola", **kwargs):
    return AlgorithmBackend(controller, LADDER, **kwargs)


class TestConstruction:
    def test_unknown_controller_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_backend("skynet")

    def test_validation(self):
        with pytest.raises(ValueError):
            make_backend(max_sessions=0)
        with pytest.raises(ValueError):
            make_backend(idle_timeout_s=0.0)


class TestDecide:
    def test_decision_in_ladder_range(self):
        backend = make_backend("bola")
        for buffer_s in (0.0, 10.0, 25.0):
            level = backend.decide("s1", buffer_s, 1, 1500.0)
            assert 0 <= level < len(LADDER)

    def test_session_state_persists_across_decisions(self):
        """A predictor-driven controller smooths its own estimate: after a
        run of low samples, one optimistic client prediction must not send
        it straight to the top rung (fresh state would)."""
        seasoned = make_backend("rb")
        for _ in range(8):
            seasoned.decide("s1", 10.0, 0, 400.0)
        level_seasoned = seasoned.decide("s1", 10.0, 0, 50_000.0)

        fresh = make_backend("rb")
        level_fresh = fresh.decide("s2", 10.0, 0, 50_000.0)
        assert level_seasoned < level_fresh

    def test_sessions_are_independent(self):
        backend = make_backend("rb")
        for _ in range(8):
            backend.decide("slow", 10.0, 0, 400.0)
        # A brand-new session is not polluted by the slow one's history.
        assert backend.decide("fast", 10.0, 0, 50_000.0) == len(LADDER) - 1

    def test_out_of_range_client_values_clamped(self):
        backend = make_backend("bola")
        # A buffer beyond capacity and a prev_level beyond the ladder must
        # be absorbed, not crash the controller.
        level = backend.decide("s1", 500.0, 99, 1500.0)
        assert 0 <= level < len(LADDER)

    def test_invalid_controller_level_rejected(self):
        backend = make_backend("bola")
        session = backend._sessions  # force a session, then sabotage it
        backend.decide("s1", 10.0, 0, 1500.0)
        session["s1"].algorithm.select_bitrate = lambda obs: 99
        with pytest.raises(ValueError, match="invalid level"):
            backend.decide("s1", 10.0, 0, 1500.0)


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        backend = make_backend("bola", max_sessions=3)
        for sid in ("a", "b", "c"):
            backend.decide(sid, 10.0, 0, 1500.0)
        backend.decide("a", 10.0, 0, 1500.0)  # refresh "a"
        backend.decide("d", 10.0, 0, 1500.0)  # evicts "b", the LRU
        assert backend.sessions_active == 3
        assert backend.evictions_lru == 1
        assert "b" not in backend._sessions
        assert set(backend._sessions) == {"a", "c", "d"}

    def test_idle_eviction(self):
        clock = FakeClock()
        backend = make_backend("bola", idle_timeout_s=60.0, clock=clock)
        backend.decide("old", 10.0, 0, 1500.0)
        clock.now = 100.0
        backend.decide("young", 10.0, 0, 1500.0)
        assert backend.evict_idle() == 1
        assert backend.evictions_idle == 1
        assert set(backend._sessions) == {"young"}

    def test_idle_eviction_noop_within_timeout(self):
        clock = FakeClock()
        backend = make_backend("bola", idle_timeout_s=60.0, clock=clock)
        backend.decide("s", 10.0, 0, 1500.0)
        clock.now = 30.0
        assert backend.evict_idle() == 0
        assert backend.sessions_active == 1

    def test_evicted_session_restarts_cleanly(self):
        backend = make_backend("bola", max_sessions=1)
        backend.decide("a", 10.0, 0, 1500.0)
        backend.decide("b", 10.0, 0, 1500.0)  # evicts "a"
        level = backend.decide("a", 10.0, 0, 1500.0)  # fresh restart
        assert 0 <= level < len(LADDER)

    def test_clear(self):
        backend = make_backend("bola")
        backend.decide("s", 10.0, 0, 1500.0)
        backend.clear()
        assert backend.sessions_active == 0
