"""End-to-end HTTP tests: a live asyncio server driven by the client."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    DecisionRequest,
    DecisionServer,
    DecisionService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.client import ServiceUnavailable
from repro.service.protocol import SOURCE_FALLBACK, SOURCE_TABLE
from repro.service.server import REASON_MALFORMED, REASON_NO_TABLE

# Every test here binds a real socket and runs a live event loop.
pytestmark = pytest.mark.slow

from .conftest import LADDER, make_test_table


def run(coro):
    return asyncio.run(coro)


async def with_server(service, inner):
    """Start a server on an ephemeral port, run ``inner``, tear down."""
    server = DecisionServer(service, port=0)
    await server.start()
    try:
        return await inner(server)
    finally:
        await server.close()


def make_request(**overrides) -> DecisionRequest:
    fields = dict(
        session_id="s1", buffer_s=10.0, predicted_kbps=1500.0, prev_level=2
    )
    fields.update(overrides)
    return DecisionRequest(**fields)


class TestRoutes:
    def test_decide_end_to_end(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                response = await client.decide(make_request())
                assert response.source == SOURCE_TABLE
                assert response.level_index == test_table.lookup(10.0, 2, 1500.0)
                assert response.server_latency_us > 0

        run(with_server(service, inner))

    def test_healthz(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                health = await client.health()
                assert health["status"] == "ok"
                assert health["table_loaded"] is True
                assert health["num_levels"] == len(LADDER)

        run(with_server(service, inner))

    def test_metrics_counts_traffic(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                for _ in range(3):
                    await client.decide(make_request())
                snap = await client.metrics()
                assert snap["decisions"]["table"] == 3
                assert snap["decisions"]["error"] == 0
                assert snap["latency_us"]["count"] == 3
                assert snap["connections"]["opened"] >= 1

        run(with_server(service, inner))

    def test_malformed_body_gets_degraded_200(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                status, body = await client.request(
                    "POST", "/v1/decide", b'{"session_id":"x"}'
                )
                assert status == 200
                payload = json.loads(body)
                assert payload["source"] == SOURCE_FALLBACK
                assert payload["degraded"] is True
                assert payload["reason"] == REASON_MALFORMED

        run(with_server(service, inner))

    def test_unknown_route_404_and_wrong_method_405(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                status, _ = await client.request("GET", "/nope")
                assert status == 404
                status, _ = await client.request("GET", "/v1/decide")
                assert status == 405
                snap = await client.metrics()
                assert snap["decisions"]["error"] == 2

        run(with_server(service, inner))

    def test_oversized_body_413(self, test_table):
        config = ServiceConfig(max_body_bytes=64)
        service = DecisionService(LADDER, table=test_table, config=config)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                status, _ = await client.request(
                    "POST", "/v1/decide", b"x" * 1000
                )
                assert status == 413

        run(with_server(service, inner))


class TestTableSwap:
    def test_warm_swap_on_live_connection(self, test_table):
        """A keep-alive connection crosses a cold->warm swap undropped."""
        service = DecisionService(LADDER)  # cold start, no table

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                before = await client.decide(make_request())
                assert before.source == SOURCE_FALLBACK
                assert before.reason == REASON_NO_TABLE

                # Swap the table in over the same connection...
                swap = await client.swap_table(make_test_table())
                assert swap["swapped"] is True

                # ...and the very next decision on that connection is warm.
                after = await client.decide(make_request())
                assert after.source == SOURCE_TABLE
                assert after.level_index == test_table.lookup(10.0, 2, 1500.0)

                snap = await client.metrics()
                assert snap["table_swaps_total"] == 1
                assert snap["decisions"]["error"] == 0
                # One connection served the whole sequence.
                assert snap["connections"]["opened"] == 1

        run(with_server(service, inner))

    def test_bad_table_blob_rejected(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                with pytest.raises(ServiceUnavailable):
                    await client.swap_table(b"definitely not a table")
                # The connection (and the old table) survive the rejection.
                response = await client.decide(make_request())
                assert response.source == SOURCE_TABLE

        run(with_server(service, inner))


class TestConnectionHandling:
    def test_keep_alive_reuses_connection(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                for _ in range(5):
                    await client.decide(make_request())
                snap = await client.metrics()
                assert snap["connections"]["opened"] == 1

        run(with_server(service, inner))

    def test_client_reconnects_after_idle_reap(self, test_table):
        config = ServiceConfig(idle_timeout_s=0.05)
        service = DecisionService(LADDER, table=test_table, config=config)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                await client.decide(make_request())
                await asyncio.sleep(0.2)  # server reaps the idle connection
                response = await client.decide(make_request())  # re-dials
                assert response.source == SOURCE_TABLE
                snap = await client.metrics()
                assert snap["connections"]["opened"] >= 2
                assert snap["decisions"]["error"] == 0

        run(with_server(service, inner))

    def test_raw_garbage_head_answers_400(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.bound_port
            )
            writer.write(b"this is not http\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"400" in head.split(b"\r\n")[0]
            writer.close()
            await writer.wait_closed()

        run(with_server(service, inner))

    def test_concurrent_clients(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def one_client(port, n):
            async with ServiceClient("127.0.0.1", port) as client:
                for _ in range(n):
                    response = await client.decide(make_request())
                    assert response.source == SOURCE_TABLE

        async def inner(server):
            await asyncio.gather(
                *(one_client(server.bound_port, 10) for _ in range(8))
            )
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                snap = await client.metrics()
                assert snap["decisions"]["table"] == 80
                assert snap["decisions"]["error"] == 0

        run(with_server(service, inner))
