"""Property tests for the cluster's two lossless invariants.

1.  A buffer-mapped table is indistinguishable from the in-memory one:
    ``DecisionTable.from_buffer(table.to_bytes())`` answers every lookup
    identically — the zero-copy serving path the workers rely on.

2.  Histogram and snapshot merging is exact on the integer state:
    bucket counts, totals, and maxima merge associatively and
    commutatively with no loss, so cluster-wide ``/metrics`` quantiles
    are computed from the same counts a single process would have.
    (Float microsecond *sums* accumulate in arrival order and are only
    approximately order-independent, which is why the assertions below
    pin the integer state exactly and the sums approximately.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.table import Binning, DecisionTable
from repro.service.metrics import (
    LatencyHistogram,
    ServiceMetrics,
    merge_metrics_snapshots,
)

# ---------------------------------------------------------------------------
# from_buffer vs in-memory lookups
# ---------------------------------------------------------------------------

tables = st.builds(
    lambda buf_count, thr_count, levels, seed_values: DecisionTable(
        Binning(0.0, 30.0, buf_count),
        levels,
        Binning(100.0, 4000.0, thr_count, spacing="log"),
        [
            seed_values[i % len(seed_values)] % levels
            for i in range(buf_count * levels * thr_count)
        ],
    ),
    buf_count=st.integers(1, 8),
    thr_count=st.integers(1, 8),
    levels=st.integers(1, 6),
    seed_values=st.lists(st.integers(0, 255), min_size=1, max_size=40),
)


class TestFromBufferParity:
    @given(
        table=tables,
        buffer_s=st.floats(-5.0, 40.0),
        prev_level=st.integers(0, 5),
        predicted_kbps=st.floats(1.0, 8000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_lookup_parity_on_random_inputs(
        self, table, buffer_s, prev_level, predicted_kbps
    ):
        mapped = DecisionTable.from_buffer(table.to_bytes())
        prev = min(prev_level, table.num_levels - 1)
        assert mapped.lookup(buffer_s, prev, predicted_kbps) == table.lookup(
            buffer_s, prev, predicted_kbps
        )

    @given(table=tables)
    @settings(max_examples=40, deadline=None)
    def test_exhaustive_decode_parity(self, table):
        mapped = DecisionTable.from_buffer(table.to_bytes())
        assert mapped.same_decisions(table)
        assert mapped.to_bytes() == table.to_bytes()

    @given(table=tables, cut=st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_truncation_never_parses(self, table, cut):
        blob = table.to_bytes()
        with pytest.raises((ValueError, Exception)):
            DecisionTable.from_buffer(blob[: len(blob) - cut])


# ---------------------------------------------------------------------------
# Histogram merging
# ---------------------------------------------------------------------------


def histogram_from(samples) -> LatencyHistogram:
    histogram = LatencyHistogram()
    for sample in samples:
        histogram.observe(sample)
    return histogram


samples_lists = st.lists(
    st.floats(0.0, 5e7, allow_nan=False, allow_infinity=False),
    max_size=60,
)


def assert_integer_state_equal(a: LatencyHistogram, b: LatencyHistogram):
    a_dict, b_dict = a.to_dict(), b.to_dict()
    assert a_dict["counts"] == b_dict["counts"]
    assert a_dict["count"] == b_dict["count"]
    assert a_dict["max_us"] == b_dict["max_us"]


class TestHistogramMerge:
    @given(xs=samples_lists, ys=samples_lists)
    @settings(max_examples=80, deadline=None)
    def test_commutative(self, xs, ys):
        left = histogram_from(xs)
        left.merge(histogram_from(ys))
        right = histogram_from(ys)
        right.merge(histogram_from(xs))
        assert_integer_state_equal(left, right)
        assert left.to_dict()["sum_us"] == pytest.approx(
            right.to_dict()["sum_us"], rel=1e-9, abs=1e-6
        )

    @given(xs=samples_lists, ys=samples_lists, zs=samples_lists)
    @settings(max_examples=80, deadline=None)
    def test_associative(self, xs, ys, zs):
        ab = histogram_from(xs)
        ab.merge(histogram_from(ys))
        ab.merge(histogram_from(zs))

        bc = histogram_from(ys)
        bc.merge(histogram_from(zs))
        a_bc = histogram_from(xs)
        a_bc.merge(bc)

        assert_integer_state_equal(ab, a_bc)
        assert ab.to_dict()["sum_us"] == pytest.approx(
            a_bc.to_dict()["sum_us"], rel=1e-9, abs=1e-6
        )

    @given(xs=samples_lists, ys=samples_lists)
    @settings(max_examples=80, deadline=None)
    def test_merge_equals_union(self, xs, ys):
        merged = histogram_from(xs)
        merged.merge(histogram_from(ys))
        union = histogram_from(xs + ys)
        assert_integer_state_equal(merged, union)
        # Quantiles come from counts only, so they match exactly too.
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == union.quantile(q)

    @given(xs=samples_lists, ys=samples_lists)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_through_snapshot_dict(self, xs, ys):
        restored = LatencyHistogram.from_dict(histogram_from(xs).to_dict())
        restored.merge(LatencyHistogram.from_dict(histogram_from(ys).to_dict()))
        union = histogram_from(xs + ys)
        assert_integer_state_equal(restored, union)


class TestSnapshotMerge:
    @given(
        request_counts=st.lists(st.integers(0, 30), min_size=1, max_size=5),
        latencies=st.lists(samples_lists, min_size=1, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_counter_sums_and_exact_counts(self, request_counts, latencies):
        snapshots = []
        for worker, (requests, worker_latencies) in enumerate(
            zip(request_counts, latencies)
        ):
            metrics = ServiceMetrics()
            source = "table" if worker % 2 == 0 else "fallback"
            for _ in range(requests):
                metrics.record_decision(source, 100.0, False, None)
            for sample in worker_latencies:
                metrics.record_span("decide", sample)
            snapshots.append(metrics.snapshot())
        merged = merge_metrics_snapshots(snapshots)
        total = sum(r for r, _ in zip(request_counts, latencies))
        assert merged["requests_total"] == total
        assert merged["latency_us"]["count"] == total
        assert sum(merged["decisions"].values()) == total
        span_samples = sum(
            len(worker_latencies)
            for _, worker_latencies in zip(request_counts, latencies)
        )
        if span_samples:
            assert merged["spans_us"]["decide"]["count"] == span_samples
