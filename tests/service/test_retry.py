"""The client retry policy: backoff math, budgets, and live 5xx rides."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.faults import ChaosConfig, ChaosPolicy
from repro.service import (
    DecisionServer,
    DecisionService,
    RetryPolicy,
    ServiceClient,
    ServiceUnavailable,
)
from repro.service.protocol import DecisionRequest

from .conftest import LADDER, make_test_table


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        RetryPolicy()

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(budget_s=0.0)


class TestBackoff:
    def test_no_jitter_is_pure_exponential_with_ceiling(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        rng = random.Random(0)
        assert policy.backoff_s(0, rng) == pytest.approx(0.1)
        assert policy.backoff_s(1, rng) == pytest.approx(0.2)
        assert policy.backoff_s(2, rng) == pytest.approx(0.4)
        assert policy.backoff_s(3, rng) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(10, rng) == pytest.approx(0.5)

    def test_jitter_only_shrinks_and_is_seeded(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, jitter=0.5)
        series_a = [policy.backoff_s(n, random.Random(3)) for n in range(4)]
        series_b = [policy.backoff_s(n, random.Random(3)) for n in range(4)]
        assert series_a == series_b  # deterministic for a fixed seed
        for n, jittered in enumerate(series_a):
            full = min(0.1 * 2.0**n, policy.max_delay_s)
            assert full * 0.5 <= jittered <= full


class TestRetryAgainstDeadPort:
    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.02, budget_s=5.0
        )

        async def run():
            client = ServiceClient("127.0.0.1", 1, deadline_s=0.2, retry=policy)
            try:
                await client.decide(DecisionRequest(session_id="s", buffer_s=0.0, predicted_kbps=500.0))
            finally:
                await client.close()

        with pytest.raises(ServiceUnavailable, match="gave up after 3 attempt"):
            asyncio.run(run())

    def test_budget_cuts_retries_short(self):
        """base_delay > budget: the first backoff would overrun, so the
        client stops after one attempt even with attempts to spare."""
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=2.0, jitter=0.0, budget_s=0.1
        )

        async def run():
            client = ServiceClient("127.0.0.1", 1, deadline_s=0.2, retry=policy)
            try:
                await client.decide(DecisionRequest(session_id="s", buffer_s=0.0, predicted_kbps=500.0))
            finally:
                await client.close()

        with pytest.raises(ServiceUnavailable, match="gave up after 1 attempt"):
            asyncio.run(run())

    def test_no_policy_fails_on_first_error(self):
        async def run():
            client = ServiceClient("127.0.0.1", 1, deadline_s=0.2)
            try:
                await client.decide(DecisionRequest(session_id="s", buffer_s=0.0, predicted_kbps=500.0))
            finally:
                await client.close()

        with pytest.raises(ServiceUnavailable):
            asyncio.run(run())


@pytest.mark.slow
class TestRetryAgainstLiveChaos:
    def test_decide_rides_out_an_injected_500(self):
        # Seed chosen so the server's first draw injects a 500 and the
        # second passes clean — verified right here, so a stdlib RNG
        # change fails loudly instead of silently weakening the test.
        rng = random.Random(1)
        assert rng.random() < 0.5 and rng.random() >= 0.5
        chaos = ChaosPolicy(ChaosConfig(error_rate=0.5, seed=1))

        async def run():
            service = DecisionService(LADDER, table=make_test_table())
            server = DecisionServer(service, port=0, chaos=chaos)
            await server.start()
            try:
                client = ServiceClient(
                    "127.0.0.1", server.bound_port, deadline_s=1.0,
                    retry=RetryPolicy(max_attempts=3, base_delay_s=0.01),
                )
                try:
                    response = await client.decide(
                        DecisionRequest(session_id="s", buffer_s=10.0, predicted_kbps=900.0)
                    )
                finally:
                    await client.close()
                return response, service.metrics.snapshot()
            finally:
                await server.close()

        response, metrics = asyncio.run(run())
        assert response.level_index in range(len(LADDER))
        assert metrics["chaos_injected"] == {"error-500": 1}

    def test_decide_without_retry_propagates_the_500(self):
        chaos = ChaosPolicy(ChaosConfig(error_rate=1.0))

        async def run():
            service = DecisionService(LADDER, table=make_test_table())
            server = DecisionServer(service, port=0, chaos=chaos)
            await server.start()
            try:
                client = ServiceClient("127.0.0.1", server.bound_port, deadline_s=1.0)
                try:
                    await client.decide(
                        DecisionRequest(session_id="s", buffer_s=10.0, predicted_kbps=900.0)
                    )
                finally:
                    await client.close()
            finally:
                await server.close()

        with pytest.raises(ServiceUnavailable, match="HTTP 500"):
            asyncio.run(run())
