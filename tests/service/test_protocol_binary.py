"""Binary wire frames — round-trip and JSON-parity property tests.

The compact encoding is only allowed to differ from JSON in one
documented way: ``server_latency_us`` travels at full f64 precision
where ``to_json`` rounds it to 3 decimals.  Every other field must
survive encode→decode bit for bit, for any frame the dataclasses can
express — including degraded fallback responses, reason strings outside
the closed code set, NaN/inf ``past_errors``, and multi-record frames.
"""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.protocol import (
    MAX_BATCH_RECORDS,
    DecisionRequest,
    DecisionResponse,
    ProtocolError,
    decode_request_batch,
    decode_response_batch,
    encode_request_batch,
    encode_response_batch,
)

_SIDS = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1,
    max_size=60,
)

_ERROR_VALUES = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False),
    st.sampled_from([float("nan"), float("inf"), float("-inf"), 0.0, -0.0]),
)

_REQUESTS = st.builds(
    DecisionRequest,
    session_id=_SIDS,
    buffer_s=st.floats(0.0, 1e9),
    predicted_kbps=st.floats(
        min_value=1e-9, max_value=1e12, exclude_min=True
    ),
    prev_level=st.one_of(st.none(), st.integers(0, 32767)),
    past_errors=st.lists(_ERROR_VALUES, max_size=8).map(tuple),
)

_RESPONSES = st.builds(
    DecisionResponse,
    session_id=_SIDS,
    level_index=st.integers(0, 65535),
    bitrate_kbps=st.floats(0.0, 1e9),
    source=st.sampled_from(["table", "fallback"]),
    degraded=st.booleans(),
    reason=st.one_of(
        st.none(),
        st.sampled_from(["no-table", "malformed", "over-budget"]),
        st.text(min_size=1, max_size=40),  # outside the code set
    ),
    server_latency_us=st.floats(0.0, 1e12),
)


def _floats_equal(a: float, b: float) -> bool:
    return a == b or (math.isnan(a) and math.isnan(b))


class TestRequestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(request=_REQUESTS)
    def test_single(self, request):
        decoded = DecisionRequest.from_binary(request.to_binary())
        assert decoded.session_id == request.session_id
        assert decoded.buffer_s == request.buffer_s
        assert decoded.predicted_kbps == request.predicted_kbps
        assert decoded.prev_level == request.prev_level
        assert len(decoded.past_errors) == len(request.past_errors)
        for got, want in zip(decoded.past_errors, request.past_errors):
            assert _floats_equal(got, want)

    @settings(max_examples=50, deadline=None)
    @given(requests=st.lists(_REQUESTS, min_size=1, max_size=10))
    def test_batch(self, requests):
        decoded = decode_request_batch(encode_request_batch(requests))
        assert len(decoded) == len(requests)
        for got, want in zip(decoded, requests):
            assert got.session_id == want.session_id
            assert got.prev_level == want.prev_level

    @settings(max_examples=100, deadline=None)
    @given(request=_REQUESTS)
    def test_json_parity(self, request):
        """Both encodings reconstruct the same request."""
        via_json = DecisionRequest.from_json(request.to_json())
        via_binary = DecisionRequest.from_binary(request.to_binary())
        assert via_json.session_id == via_binary.session_id
        assert via_json.buffer_s == via_binary.buffer_s
        assert via_json.predicted_kbps == via_binary.predicted_kbps
        assert via_json.prev_level == via_binary.prev_level
        for a, b in zip(via_json.past_errors, via_binary.past_errors):
            assert _floats_equal(a, b)


class TestResponseRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(response=_RESPONSES)
    def test_single(self, response):
        decoded = DecisionResponse.from_binary(response.to_binary())
        assert decoded == response  # f64 latency travels losslessly

    @settings(max_examples=50, deadline=None)
    @given(responses=st.lists(_RESPONSES, min_size=1, max_size=10))
    def test_batch(self, responses):
        decoded = decode_response_batch(encode_response_batch(responses))
        assert list(decoded) == list(responses)

    @settings(max_examples=100, deadline=None)
    @given(response=_RESPONSES)
    def test_json_parity_except_latency_rounding(self, response):
        via_json = DecisionResponse.from_json(response.to_json())
        via_binary = DecisionResponse.from_binary(response.to_binary())
        assert via_json.session_id == via_binary.session_id
        assert via_json.level_index == via_binary.level_index
        assert via_json.bitrate_kbps == via_binary.bitrate_kbps
        assert via_json.source == via_binary.source
        assert via_json.degraded == via_binary.degraded
        assert via_json.reason == via_binary.reason
        # The one documented difference: JSON rounds to 3 decimals.
        assert via_json.server_latency_us == pytest.approx(
            via_binary.server_latency_us, abs=5e-4
        )
        assert via_binary.server_latency_us == response.server_latency_us

    def test_degraded_fallback_shapes(self):
        for reason in ("no-table", "malformed", "over-budget", "weird-new-one"):
            response = DecisionResponse(
                session_id="s",
                level_index=0,
                bitrate_kbps=300.0,
                source="fallback",
                degraded=True,
                reason=reason,
                server_latency_us=17.25,
            )
            assert DecisionResponse.from_binary(response.to_binary()) == response


class TestFrameValidation:
    def test_bad_magic(self):
        frame = bytearray(DecisionRequest("s", 1.0, 100.0).to_binary())
        frame[0:2] = b"ZZ"
        with pytest.raises(ProtocolError):
            decode_request_batch(bytes(frame))

    def test_request_frame_is_not_a_response(self):
        frame = DecisionRequest("s", 1.0, 100.0).to_binary()
        with pytest.raises(ProtocolError):
            decode_response_batch(frame)

    def test_truncated(self):
        frame = DecisionRequest("session", 1.0, 100.0).to_binary()
        with pytest.raises(ProtocolError):
            decode_request_batch(frame[: len(frame) - 3])

    def test_trailing_bytes(self):
        frame = DecisionRequest("s", 1.0, 100.0).to_binary()
        with pytest.raises(ProtocolError):
            decode_request_batch(frame + b"\x00")

    def test_zero_records(self):
        with pytest.raises(ProtocolError):
            encode_request_batch(())
        header = struct.pack("<2sBBH", b"DQ", 1, 0, 0)
        with pytest.raises(ProtocolError):
            decode_request_batch(header)

    def test_too_many_records(self):
        requests = [DecisionRequest("s", 1.0, 100.0)] * (MAX_BATCH_RECORDS + 1)
        with pytest.raises(ProtocolError):
            encode_request_batch(requests)

    def test_nonzero_flags_rejected(self):
        frame = bytearray(DecisionRequest("s", 1.0, 100.0).to_binary())
        frame[3] = 1
        with pytest.raises(ProtocolError):
            decode_request_batch(bytes(frame))

    def test_decoded_requests_are_validated(self):
        # A hand-forged frame with predicted_kbps = 0 must be rejected
        # exactly like the JSON path rejects it.
        good = DecisionRequest("s", 1.0, 100.0).to_binary()
        forged = bytearray(good)
        # request record layout after header(6) + sid_len(1) + sid(1):
        # f64 buffer, f64 predicted
        struct.pack_into("<d", forged, 6 + 2 + 8, 0.0)
        with pytest.raises(ProtocolError):
            decode_request_batch(bytes(forged))

    def test_multi_record_from_binary_rejected(self):
        frame = encode_request_batch(
            [DecisionRequest("a", 1.0, 100.0), DecisionRequest("b", 2.0, 200.0)]
        )
        with pytest.raises(ProtocolError):
            DecisionRequest.from_binary(frame)
