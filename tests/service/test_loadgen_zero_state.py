"""Zero-session load-test reports must summarise cleanly.

A load test aborted before any decision completes (server refuses every
connection, chaos kills every session) still produces a report; every
derived statistic must be defined at the zero state instead of dividing
by zero."""

from repro.service.loadgen import LoadTestReport


def test_zero_state_properties_are_defined():
    report = LoadTestReport()
    assert report.decisions == 0
    assert report.throughput_dps == 0.0
    assert report.qoe_mean == 0.0
    assert report.p50_us == 0.0
    assert report.p95_us == 0.0
    assert report.p99_us == 0.0


def test_zero_state_describe_renders():
    text = LoadTestReport().describe()
    assert "decisions 0" in text
    assert "sessions completed 0" in text
    assert "mean QoE 0.0" in text


def test_zero_state_to_dict_round_trips_through_json():
    import json

    payload = json.loads(json.dumps(LoadTestReport().to_dict()))
    assert payload["throughput_dps"] == 0.0
    assert payload["qoe_mean"] == 0.0
    assert payload["latency_us"]["count"] == 0


def test_zero_wall_time_with_decisions_does_not_divide_by_zero():
    report = LoadTestReport(decisions=5, wall_s=0.0)
    assert report.throughput_dps == 0.0
