"""Scale tests for the multi-process sharded decision service.

The bar these tests pin down (see docs/scaling.md):

* sharding is invisible — an N-worker cluster answers a golden request
  stream with byte-identical decisions to a single-process server over
  the same published table, in both port-sharing modes;
* supervision works — a SIGKILLed worker is detected and replaced, and
  a retrying client rides through the crash with zero failed sessions;
* telemetry is lossless — cluster ``/metrics`` equals the sum of the
  workers' counters, with exact histogram counts.

Every test forks real processes and binds real sockets.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path

import pytest

from repro.core.table import Binning, DecisionTable
from repro.experiments import publish_table
from repro.faults import ChaosConfig
from repro.service import (
    ClusterConfig,
    ClusterSupervisor,
    DecisionRequest,
    DecisionServer,
    DecisionService,
    LoadTestConfig,
    RetryPolicy,
    ServiceClient,
    run_loadtest,
)
from repro.service.cluster import supports_reuse_port
from repro.traces import make_generator

from .conftest import LADDER

pytestmark = pytest.mark.slow


def run(coro):
    return asyncio.run(coro)


def make_varied_table() -> DecisionTable:
    """A table whose decision depends on all three coordinates, so any
    routing or mapping mistake shows up as a wrong level."""
    buffer_bins = Binning(0.0, 30.0, 7)
    throughput_bins = Binning(100.0, 4000.0, 9, spacing="log")
    n = buffer_bins.count * len(LADDER) * throughput_bins.count
    t = throughput_bins.count
    decisions = [
        ((i // (t * len(LADDER))) + (i // t) % len(LADDER) * 2 + i % t)
        % len(LADDER)
        for i in range(n)
    ]
    return DecisionTable(buffer_bins, len(LADDER), throughput_bins, decisions)


GOLDEN_DIR = Path(__file__).parent.parent / "golden"


def golden_request_stream() -> list:
    """A deterministic request stream derived from the golden session
    timelines: each chunk decision's (buffer, prev_level) paired with
    the preceding download's measured throughput as the prediction."""
    requests = []
    for timeline in sorted(GOLDEN_DIR.glob("*.jsonl")):
        predicted = 1200.0
        with timeline.open() as fh:
            for line in fh:
                event = json.loads(line)
                # The golden dir also holds non-timeline fixtures (the
                # shared-prior session log) whose lines are not events.
                if event.get("kind") == "chunk-decision":
                    prev = event["prev_level"]
                    if prev is not None:
                        prev = min(prev, len(LADDER) - 1)
                    requests.append(
                        DecisionRequest(
                            session_id=f"golden-{timeline.stem}",
                            buffer_s=event["buffer_s"],
                            predicted_kbps=predicted,
                            prev_level=prev,
                        )
                    )
                elif event.get("kind") == "chunk-download":
                    predicted = event["throughput_kbps"]
    assert len(requests) >= 200, "golden timelines unexpectedly short"
    return requests


def response_key(response) -> tuple:
    """The deterministic part of a response (latency excluded)."""
    return (
        response.level_index,
        response.bitrate_kbps,
        response.source,
        response.degraded,
        response.reason,
    )


async def decide_all(port: int, requests) -> list:
    async with ServiceClient("127.0.0.1", port) as client:
        return [response_key(await client.decide(r)) for r in requests]


def publish_test_table(tmp_path, table=None) -> str:
    table = table if table is not None else make_varied_table()
    return str(publish_table(table, tmp_path / "table.rprotbl"))


async def wait_for_restarts(sup: ClusterSupervisor, n: int, timeout_s=10.0):
    """Block until the monitor has detected ``n`` deaths (SIGKILL is
    asynchronous — right after ``kill_worker`` the process may not have
    died yet, let alone been noticed)."""
    deadline = asyncio.get_running_loop().time() + timeout_s
    while sup.restarts_total < n:
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(
                f"monitor saw {sup.restarts_total}/{n} deaths in {timeout_s}s"
            )
        await asyncio.sleep(0.02)


class TestClusterParity:
    """Sharding must not change a single decision."""

    @pytest.mark.parametrize(
        "reuse",
        [
            pytest.param(
                True,
                marks=pytest.mark.skipif(
                    not supports_reuse_port(), reason="no SO_REUSEPORT"
                ),
            ),
            False,
        ],
        ids=["reuse-port", "frontend"],
    )
    def test_golden_stream_identical_to_single_process(self, tmp_path, reuse):
        table = make_varied_table()
        path = publish_test_table(tmp_path, table)
        requests = golden_request_stream()

        async def single():
            service = DecisionService(LADDER, table=table)
            server = DecisionServer(service, port=0)
            await server.start()
            try:
                return await decide_all(server.bound_port, requests)
            finally:
                await server.close()

        async def clustered():
            config = ClusterConfig(workers=3, reuse_port=reuse)
            async with ClusterSupervisor(
                LADDER, table_path=path, config=config
            ) as sup:
                # Spread the stream over several connections so more
                # than one worker actually serves it.
                chunks = [requests[i::4] for i in range(4)]
                results = await asyncio.gather(
                    *(decide_all(sup.bound_port, chunk) for chunk in chunks)
                )
                merged = [None] * len(requests)
                for i, chunk_result in enumerate(results):
                    merged[i::4] = chunk_result
                metrics = await sup.metrics()
                return merged, metrics

        expected = run(single())
        got, metrics = run(clustered())
        assert got == expected
        assert metrics["requests_total"] == len(requests)
        assert metrics["decisions"].get("table", 0) == len(requests)
        assert metrics["cluster"]["alive"] == 3

    def test_mapped_table_parity_is_checked_at_worker_startup(self, tmp_path):
        # A worker that maps a table disagreeing with nothing still
        # parity-checks structurally: corrupt bytes must not come up.
        path = tmp_path / "table.rprotbl"
        publish_table(make_varied_table(), path)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF  # corrupt inside the RLE payload
        path.write_bytes(bytes(blob))

        async def attempt():
            config = ClusterConfig(workers=1, ready_timeout_s=5.0)
            sup = ClusterSupervisor(LADDER, table_path=str(path), config=config)
            with pytest.raises(Exception) as excinfo:
                await sup.start()
            await sup.stop()
            return excinfo

        excinfo = run(attempt())
        assert "before ready" in str(excinfo.value)


class TestSupervision:
    def test_sigkilled_worker_is_replaced(self, tmp_path):
        path = publish_test_table(tmp_path)

        async def inner():
            config = ClusterConfig(workers=2, poll_interval_s=0.02)
            async with ClusterSupervisor(
                LADDER, table_path=path, config=config
            ) as sup:
                before = list(sup.worker_pids())
                sup.kill_worker(0, signal.SIGKILL)
                await wait_for_restarts(sup, 1)
                await sup.wait_healthy(timeout_s=10.0)
                after = list(sup.worker_pids())
                health = sup.health()
                return before, after, sup.restarts_total, health

        before, after, restarts, health = run(inner())
        assert after[0] != before[0], "worker 0 was not replaced"
        assert after[1] == before[1], "worker 1 should be untouched"
        assert restarts == 1
        assert health["status"] == "ok"
        assert health["alive"] == 2

    def test_retrying_client_rides_through_a_kill(self, tmp_path):
        """Every session finishes with zero failures while a worker dies
        mid-run — the cluster-level availability bar."""
        path = publish_test_table(tmp_path)
        traces = make_generator("fcc", seed=7).generate_many(6, 120.0)
        config = LoadTestConfig(
            sessions=6,
            chunks_per_session=25,
            concurrency=6,
            connections=3,
            ladder_kbps=LADDER,
            deadline_s=5.0,
            retry=RetryPolicy(
                max_attempts=6, base_delay_s=0.02, max_delay_s=0.5, seed=11
            ),
            local_fallback=False,
        )

        async def inner():
            cluster = ClusterConfig(workers=2, poll_interval_s=0.02)
            async with ClusterSupervisor(
                LADDER, table_path=path, config=cluster
            ) as sup:
                load = asyncio.ensure_future(
                    run_loadtest("127.0.0.1", sup.bound_port, config, traces=traces)
                )
                await asyncio.sleep(0.15)
                sup.kill_worker(0, signal.SIGKILL)
                report = await load
                await wait_for_restarts(sup, 1)
                await sup.wait_healthy(timeout_s=10.0)
                return report

        report = run(inner())
        assert report.sessions_completed == config.sessions
        assert report.errors == 0
        assert report.local_fallbacks == 0
        assert report.decisions == config.sessions * config.chunks_per_session

    def test_worker_kill_chaos_is_repaired(self, tmp_path):
        """The injected worker-kill action really kills the process, and
        the supervisor + retrying clients absorb it."""
        path = publish_test_table(tmp_path)
        traces = make_generator("fcc", seed=3).generate_many(4, 120.0)
        config = LoadTestConfig(
            sessions=4,
            chunks_per_session=20,
            concurrency=4,
            connections=2,
            ladder_kbps=LADDER,
            deadline_s=5.0,
            retry=RetryPolicy(
                max_attempts=6, base_delay_s=0.02, max_delay_s=0.5, seed=5
            ),
        )

        async def inner():
            cluster = ClusterConfig(
                workers=2,
                poll_interval_s=0.02,
                # High enough that ~0 kills over the run's ~80 requests
                # is astronomically unlikely whatever the kernel's
                # connection spreading does (0.92^80 ~ 1e-3).
                chaos=ChaosConfig(kill_rate=0.08, seed=1),
            )
            async with ClusterSupervisor(
                LADDER, table_path=path, config=cluster
            ) as sup:
                report = await run_loadtest(
                    "127.0.0.1", sup.bound_port, config, traces=traces
                )
                await sup.wait_healthy(timeout_s=10.0)
                return report, sup.restarts_total

        report, restarts = run(inner())
        assert restarts >= 1, "kill chaos never fired; raise kill_rate"
        assert report.sessions_completed == config.sessions
        assert report.errors == 0


class TestClusterTelemetry:
    def test_control_endpoint_serves_aggregated_metrics(self, tmp_path):
        path = publish_test_table(tmp_path)
        requests = golden_request_stream()[:30]

        async def fetch(port: int, route: str) -> dict:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                f"GET {route} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return json.loads(raw.split(b"\r\n\r\n", 1)[1])

        async def inner():
            config = ClusterConfig(workers=2)
            async with ClusterSupervisor(
                LADDER, table_path=path, config=config
            ) as sup:
                await decide_all(sup.bound_port, requests)
                port = sup.control_bound_port
                return await fetch(port, "/metrics"), await fetch(
                    port, "/healthz"
                ), await fetch(port, "/nope")

        metrics, health, missing = run(inner())
        assert metrics["requests_total"] == len(requests)
        assert metrics["latency_us"]["count"] == len(requests)
        roster = metrics["cluster"]["workers_detail"]
        assert [w["worker"] for w in roster] == [0, 1]
        assert all(w["status"] == "ok" for w in roster)
        assert health["status"] == "ok"
        assert "error" in missing

    def test_metrics_survive_a_restart_roster(self, tmp_path):
        """After a kill + repair, the roster reports the restart and the
        merged counters only cover what live workers have seen."""
        path = publish_test_table(tmp_path)
        requests = golden_request_stream()[:20]

        async def inner():
            config = ClusterConfig(workers=2, poll_interval_s=0.02)
            async with ClusterSupervisor(
                LADDER, table_path=path, config=config
            ) as sup:
                await decide_all(sup.bound_port, requests)
                sup.kill_worker(1, signal.SIGKILL)
                await wait_for_restarts(sup, 1)
                await sup.wait_healthy(timeout_s=10.0)
                return await sup.metrics()

        metrics = run(inner())
        roster = metrics["cluster"]["workers_detail"]
        assert metrics["cluster"]["restarts_total"] == 1
        assert roster[1]["restarts"] == 1
        assert all(w["status"] == "ok" for w in roster)
        # A single keep-alive connection pins to one worker, so the
        # merged total is either everything (survivor served it) or
        # nothing (the killed worker did) — never a partial mix.
        assert metrics["requests_total"] in (0, len(requests))


class TestClusterExperiment:
    def test_arm_routing_consistent_and_metrics_merge(self, tmp_path):
        """Every worker must assign a session the same arm (pure hash, no
        coordination), and the control endpoint's merged ``/metrics``
        must carry per-arm counters summing to the served traffic."""
        from repro.service import ExperimentArm, ExperimentConfig

        path = publish_test_table(tmp_path)
        experiment = ExperimentConfig(
            arms=(
                ExperimentArm("control", "table", weight=1.0),
                ExperimentArm("bola", "bola", weight=1.0),
            ),
            salt="cluster-exp",
        )
        sessions = [f"session-{i:03d}" for i in range(24)]
        rounds = 3

        async def drive(port: int) -> dict:
            seen: dict = {}
            # A fresh connection per round spreads sessions over workers.
            for _ in range(rounds):
                async with ServiceClient("127.0.0.1", port) as client:
                    for sid in sessions:
                        response = await client.decide(
                            DecisionRequest(
                                session_id=sid,
                                buffer_s=12.0,
                                predicted_kbps=1400.0,
                                prev_level=1,
                            )
                        )
                        assert response.arm is not None
                        seen.setdefault(sid, set()).add(response.arm)
            return seen

        async def inner():
            config = ClusterConfig(workers=2, experiment=experiment)
            async with ClusterSupervisor(
                LADDER, table_path=path, config=config
            ) as sup:
                seen = await drive(sup.bound_port)
                return seen, await sup.metrics()

        seen, metrics = run(inner())
        # One arm per session, no matter which worker answered.
        assert all(len(arms) == 1 for arms in seen.values())
        for sid, arms in seen.items():
            assert arms == {experiment.assign(sid).name}
        merged = metrics["arms"]
        total = len(sessions) * rounds
        assert sum(a["decisions"] for a in merged.values()) == total
        assert sum(a["latency_us"]["count"] for a in merged.values()) == total
        assert set(merged) == {arm for arms in seen.values() for arm in arms}


class TestOfferedRate:
    def test_closed_loop_offered_rate_reaches_ideal(self, tmp_path):
        """With every response slowed a fixed 50 ms and a 4-connection
        pool, the closed loop's ideal offered rate is connections/delay;
        the bounded fan-out must achieve it within 10%."""
        path = publish_test_table(tmp_path)
        delay_s = 0.05
        connections = 4
        traces = make_generator("fcc", seed=0).generate_many(8, 120.0)
        config = LoadTestConfig(
            sessions=8,
            chunks_per_session=20,
            concurrency=8,
            connections=connections,
            ladder_kbps=LADDER,
            deadline_s=5.0,
        )

        async def inner():
            cluster = ClusterConfig(
                workers=4,
                chaos=ChaosConfig(slow_rate=1.0, slow_delay_s=delay_s, seed=2),
            )
            async with ClusterSupervisor(
                LADDER, table_path=path, config=cluster
            ) as sup:
                return await run_loadtest(
                    "127.0.0.1", sup.bound_port, config, traces=traces
                )

        report = run(inner())
        ideal_dps = connections / delay_s
        assert report.errors == 0
        assert report.sessions_completed == config.sessions
        assert report.throughput_dps >= 0.9 * ideal_dps
        # The pool really bounds fan-out: the loop cannot beat the
        # physical ceiling of `connections` in-flight requests.
        assert report.throughput_dps <= 1.1 * ideal_dps
