"""The cross-session shared prior: store semantics, merge, service path.

The store's contract is the same exactness story as the rest of the
service metrics: integer bucket counts merge losslessly and
order-independently, so per-worker prior stores fold into exactly the
aggregate one shared store would have held — pinned here by splitting a
sample stream across stores and comparing snapshots with ``==``.
"""

from __future__ import annotations

import pytest

from repro.service import DecisionService
from repro.service.prior import (
    DEFAULT_PRIOR_BOUNDS_KBPS,
    SharedPriorStore,
    ThroughputHistogram,
    merge_prior_snapshots,
)
from repro.service.protocol import DecisionRequest, ProtocolError

from .conftest import LADDER, make_test_table

SAMPLES = [120.0, 480.0, 950.0, 1800.0, 2600.0, 480.0, 75.0, 5200.0]


class TestSharedPriorStore:
    def test_unseen_family_has_no_estimate(self):
        store = SharedPriorStore()
        assert store.estimate("fcc") is None
        assert store.families_active == 0

    def test_estimate_is_pooled_median(self):
        store = SharedPriorStore()
        reference = ThroughputHistogram()
        for sample in SAMPLES:
            store.observe("fcc", sample)
            reference.observe(sample)
        assert store.estimate("fcc") == reference.quantile(0.5)
        assert store.samples_total == len(SAMPLES)

    def test_families_are_independent(self):
        store = SharedPriorStore()
        store.observe("fcc", 3000.0)
        store.observe("hsdpa", 250.0)
        assert store.estimate("fcc") != store.estimate("hsdpa")
        assert store.families_active == 2

    def test_lru_eviction_drops_least_recently_observed(self):
        store = SharedPriorStore(max_families=2)
        store.observe("a", 100.0)
        store.observe("b", 200.0)
        store.observe("a", 100.0)  # revives a; b is now the oldest
        store.observe("c", 300.0)  # evicts b
        assert store.family_names() == ("a", "c")
        assert store.evictions == 1
        assert store.estimate("b") is None
        # an evicted family restarts cold
        store.observe("b", 999.0)
        assert store.estimate("b") is not None
        assert store.evictions == 2  # a or c paid for b's revival

    def test_estimate_does_not_refresh_lru_order(self):
        """Read traffic cannot keep a family alive."""
        store = SharedPriorStore(max_families=2)
        store.observe("a", 100.0)
        store.observe("b", 200.0)
        store.estimate("a")  # a read, not an observation
        store.observe("c", 300.0)  # must evict a, the oldest *observed*
        assert store.family_names() == ("b", "c")

    def test_snapshot_schema(self):
        store = SharedPriorStore(max_families=8)
        store.observe("fcc", 800.0)
        doc = store.snapshot()
        assert set(doc) == {
            "families_active", "max_families", "evictions",
            "samples_total", "families",
        }
        family = doc["families"]["fcc"]
        assert family["estimate_kbps"] == store.estimate("fcc")

    def test_validation(self):
        store = SharedPriorStore()
        with pytest.raises(ValueError):
            store.observe("", 100.0)
        with pytest.raises(ValueError):
            store.observe("fcc", -1.0)
        with pytest.raises(ValueError):
            SharedPriorStore(max_families=0)


class TestMerge:
    def test_scattered_samples_merge_losslessly(self):
        """However the samples were scattered across workers, the merged
        snapshot equals the one a single shared store would produce —
        estimates included, compared with ``==``."""
        shared = SharedPriorStore()
        workers = [SharedPriorStore() for _ in range(3)]
        for i, sample in enumerate(SAMPLES):
            family = "fcc" if i % 2 == 0 else "hsdpa"
            shared.observe(family, sample)
            workers[i % 3].observe(family, sample)
        merged = merge_prior_snapshots([w.snapshot() for w in workers])
        assert merged == shared.snapshot()

    def test_merge_is_order_independent(self):
        a = SharedPriorStore()
        b = SharedPriorStore()
        for i, sample in enumerate(SAMPLES):
            (a if i < 4 else b).observe("fcc", sample)
        forward = merge_prior_snapshots([a.snapshot(), b.snapshot()])
        backward = merge_prior_snapshots([b.snapshot(), a.snapshot()])
        assert forward == backward

    def test_merge_counts_union_families(self):
        a = SharedPriorStore()
        b = SharedPriorStore()
        a.observe("fcc", 100.0)
        b.observe("hsdpa", 200.0)
        merged = merge_prior_snapshots([a.snapshot(), b.snapshot()])
        assert merged["families_active"] == 2
        assert merged["samples_total"] == 2

    def test_merge_requires_snapshots(self):
        with pytest.raises(ValueError):
            merge_prior_snapshots([])


def make_request(i: int, family=None, predicted=1000.0) -> DecisionRequest:
    return DecisionRequest(
        session_id=f"s{i}",
        buffer_s=8.0,
        predicted_kbps=predicted,
        prev_level=1,
        family=family,
    )


class TestServicePath:
    def test_family_requests_accumulate_and_serve_prior(self):
        service = DecisionService(LADDER, table=make_test_table())
        first = service.decide(make_request(0, family="fcc", predicted=900.0))
        assert first.prior_kbps is None  # nothing pooled yet
        second = service.decide(make_request(1, family="fcc", predicted=1900.0))
        assert second.prior_kbps is not None  # pooled from the first
        doc = service.metrics_document()
        assert doc["priors"]["samples_total"] == 2
        assert "fcc" in doc["priors"]["families"]

    def test_requests_without_family_bypass_the_store(self):
        service = DecisionService(LADDER, table=make_test_table())
        response = service.decide(make_request(0))
        assert response.prior_kbps is None
        assert service.metrics_document()["priors"]["samples_total"] == 0

    def test_prior_families_are_bounded(self):
        from repro.service import ServiceConfig

        service = DecisionService(
            LADDER,
            table=make_test_table(),
            config=ServiceConfig(prior_max_families=2),
        )
        for i, family in enumerate(("a", "b", "c")):
            service.decide(make_request(i, family=family))
        priors = service.metrics_document()["priors"]
        assert priors["families_active"] == 2
        assert priors["evictions"] == 1

    def test_json_round_trip_carries_family_and_prior(self):
        request = make_request(0, family="fcc")
        decoded = DecisionRequest.from_json(request.to_json())
        assert decoded.family == "fcc"

    def test_binary_protocol_rejects_family(self):
        """The binary frame predates the field; silent dropping is the
        one behaviour the protocol must never have."""
        with pytest.raises(ProtocolError):
            make_request(0, family="fcc").to_binary()


def test_default_bounds_are_ascending():
    bounds = DEFAULT_PRIOR_BOUNDS_KBPS
    assert list(bounds) == sorted(bounds)
    assert len(set(bounds)) == len(bounds)
