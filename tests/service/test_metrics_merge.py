"""Unit tests for cluster-wide metrics aggregation (the merge path)."""

from __future__ import annotations

import pytest

from repro.service.metrics import (
    LatencyHistogram,
    ServiceMetrics,
    merge_metrics_snapshots,
)


def metrics_with(requests: int = 0, errors: int = 0, chaos: int = 0) -> ServiceMetrics:
    metrics = ServiceMetrics()
    for i in range(requests):
        metrics.record_decision("table", 50.0 * (i + 1), False, None, f"s{i}")
    for _ in range(errors):
        metrics.record_error()
    for _ in range(chaos):
        metrics.record_chaos("slow")
    return metrics


class TestMergeSnapshots:
    def test_counters_sum(self):
        a = metrics_with(requests=3, errors=1, chaos=2)
        b = metrics_with(requests=5, chaos=1)
        merged = merge_metrics_snapshots([a.snapshot(), b.snapshot()])
        assert merged["requests_total"] == 9  # 8 decisions + 1 error
        assert merged["decisions"] == {
            "table": 8, "controller": 0, "fallback": 0, "error": 1,
        }
        assert merged["chaos_injected"] == {"slow": 3}
        assert merged["latency_us"]["count"] == 8
        assert merged["sessions_seen"] == 8

    def test_single_snapshot_is_identity_on_counters(self):
        snapshot = metrics_with(requests=4, errors=2).snapshot()
        merged = merge_metrics_snapshots([snapshot])
        assert merged["requests_total"] == snapshot["requests_total"]
        assert merged["decisions"] == snapshot["decisions"]
        assert merged["latency_us"] == snapshot["latency_us"]

    def test_span_histograms_union(self):
        a, b = ServiceMetrics(), ServiceMetrics()
        a.record_span("decide", 100.0)
        a.record_span("decide", 300.0)
        b.record_span("decide", 200.0)
        b.record_span("table-swap", 900.0)
        merged = merge_metrics_snapshots([a.snapshot(), b.snapshot()])
        assert merged["spans_us"]["decide"]["count"] == 3
        assert merged["spans_us"]["table-swap"]["count"] == 1

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_metrics_snapshots([])

    def test_mismatched_buckets_rejected(self):
        a = ServiceMetrics().snapshot()
        b = ServiceMetrics(bounds_us=(100.0, 1000.0)).snapshot()
        with pytest.raises(ValueError):
            merge_metrics_snapshots([a, b])

    def test_batch_occupancy_and_protocol_counters_sum(self):
        a, b = ServiceMetrics(), ServiceMetrics()
        a.record_batch(1)
        a.record_batch(8)
        a.record_protocol("json", 2)
        b.record_batch(8)
        b.record_batch(256)
        b.record_protocol("binary")
        merged = merge_metrics_snapshots([a.snapshot(), b.snapshot()])
        assert merged["batch_occupancy"] == {"1": 1, "8": 2, "256": 1}
        assert merged["protocol_requests"] == {"json": 2, "binary": 1}

    def test_merge_tolerates_snapshots_predating_new_keys(self):
        # A cluster can mix workers from before and after the batching
        # counters existed; missing keys merge as empty, not KeyError.
        old = ServiceMetrics().snapshot()
        del old["batch_occupancy"], old["protocol_requests"]
        new = ServiceMetrics()
        new.record_batch(4)
        new.record_protocol("binary")
        merged = merge_metrics_snapshots([old, new.snapshot()])
        assert merged["batch_occupancy"] == {"4": 1}
        assert merged["protocol_requests"] == {"binary": 1}

    def test_arm_breakdowns_merge(self):
        # Two workers served disjoint slices of the same experiment: the
        # merged per-arm counters must equal what one worker would have
        # recorded, since assignment is deterministic per session.
        a, b = ServiceMetrics(), ServiceMetrics()
        a.record_decision("controller", 100.0, False, None, "s1", arm="bola")
        a.record_decision("table", 50.0, False, None, "s2", arm="control")
        b.record_decision("controller", 200.0, False, None, "s3", arm="bola")
        b.record_decision("fallback", 30.0, True, "no-table", "s4", arm="control")
        merged = merge_metrics_snapshots([a.snapshot(), b.snapshot()])
        assert set(merged["arms"]) == {"bola", "control"}
        bola = merged["arms"]["bola"]
        assert bola["decisions"] == 2
        assert bola["sources"] == {"controller": 2}
        assert bola["latency_us"]["count"] == 2
        control = merged["arms"]["control"]
        assert control["decisions"] == 2
        assert control["degraded"] == 1
        assert control["reasons"] == {"no-table": 1}

    def test_merge_tolerates_snapshots_predating_arms(self):
        old = ServiceMetrics().snapshot()
        del old["arms"]
        new = ServiceMetrics()
        new.record_decision("controller", 10.0, False, None, "s", arm="a")
        merged = merge_metrics_snapshots([old, new.snapshot()])
        assert merged["arms"]["a"]["decisions"] == 1

    def test_fallback_reason_counters_sum(self):
        a, b = ServiceMetrics(), ServiceMetrics()
        a.record_decision("fallback", 10.0, True, "no-table")
        b.record_decision("fallback", 10.0, True, "no-table")
        b.record_decision("fallback", 10.0, True, "budget")
        merged = merge_metrics_snapshots([a.snapshot(), b.snapshot()])
        assert merged["degraded_total"] == 3
        assert merged["fallback_reasons"] == {"no-table": 2, "budget": 1}


class TestHistogramFromDict:
    def test_roundtrip(self):
        histogram = LatencyHistogram()
        for sample in (10.0, 250.0, 9000.0, 1e6):
            histogram.observe(sample)
        restored = LatencyHistogram.from_dict(histogram.to_dict())
        assert restored.to_dict() == histogram.to_dict()
        assert restored.quantile(0.5) == histogram.quantile(0.5)

    def test_rejects_wrong_shape(self):
        good = LatencyHistogram().to_dict()
        for corrupt in (
            {**good, "counts": good["counts"][:-1]},
            {**good, "count": 5},
            {**good, "counts": [-1] + good["counts"][1:]},
            {"nonsense": True},
        ):
            with pytest.raises(ValueError):
                LatencyHistogram.from_dict(corrupt)
