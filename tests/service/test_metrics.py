"""Latency histogram and service counters."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.service.metrics import (
    DEFAULT_BUCKET_BOUNDS_US,
    LatencyHistogram,
    ServiceMetrics,
)


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.mean_us == 0.0
        assert h.quantile(0.5) == 0.0

    def test_basic_stats(self):
        h = LatencyHistogram()
        for v in (10.0, 20.0, 30.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean_us == pytest.approx(20.0)
        assert h.max_us == 30.0

    def test_bucket_assignment_on_boundary(self):
        # bisect_left: a latency exactly on a bound lands in that
        # bound's bucket (the bucket whose upper edge it is).
        h = LatencyHistogram(bounds_us=(100.0, 200.0))
        h.observe(100.0)
        assert h._counts == [1, 0, 0]
        h.observe(100.1)
        assert h._counts == [1, 1, 0]
        h.observe(1e9)  # overflow bucket
        assert h._counts == [1, 1, 1]

    def test_quantile_interpolates_within_bucket(self):
        h = LatencyHistogram(bounds_us=(100.0,))
        for _ in range(100):
            h.observe(50.0)
        # All mass in [0, 100): median interpolates to mid-bucket.
        assert 0.0 < h.quantile(0.5) <= 100.0
        assert h.quantile(1.0) == pytest.approx(100.0)

    def test_overflow_bucket_reports_max(self):
        h = LatencyHistogram(bounds_us=(100.0,))
        h.observe(5_000.0)
        assert h.quantile(0.99) <= 5_000.0
        assert h.max_us == 5_000.0

    def test_quantile_monotone(self):
        h = LatencyHistogram()
        for v in (10, 60, 120, 300, 900, 4000, 20_000, 200_000):
            h.observe(float(v))
        qs = [h.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(10.0)
        b.observe(1_000_000.0)
        a.merge(b)
        assert a.count == 2
        assert a.max_us == 1_000_000.0

    def test_merge_rejects_different_buckets(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(bounds_us=(1.0, 2.0)))

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds_us=())
        with pytest.raises(ValueError):
            LatencyHistogram(bounds_us=(2.0, 1.0))
        with pytest.raises(ValueError):
            LatencyHistogram(bounds_us=(1.0, 1.0))
        with pytest.raises(ValueError):
            LatencyHistogram(bounds_us=(0.0, 1.0))
        with pytest.raises(ValueError):
            LatencyHistogram().observe(-1.0)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_to_dict_schema(self):
        h = LatencyHistogram()
        h.observe(42.0)
        d = h.to_dict()
        assert set(d) == {
            "bounds_us", "counts", "count", "sum_us", "mean_us",
            "max_us", "p50_us", "p99_us",
        }
        assert len(d["counts"]) == len(d["bounds_us"]) + 1
        assert d["count"] == 1

    @given(values=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=200))
    def test_counts_conserved(self, values):
        h = LatencyHistogram()
        for v in values:
            h.observe(v)
        assert h.count == len(values) == sum(h._counts)
        # Interpolation stays within the bucket holding the max sample,
        # so its ceiling (not the true max) bounds every quantile.
        import bisect

        bounds = list(DEFAULT_BUCKET_BOUNDS_US)
        i = bisect.bisect_left(bounds, h.max_us)
        ceiling = bounds[i] if i < len(bounds) else h.max_us
        assert 0.0 <= h.quantile(0.5) <= ceiling


class TestServiceMetrics:
    def test_decision_breakdown(self):
        m = ServiceMetrics()
        m.record_decision("table", 50.0, False, None, "s1")
        m.record_decision("fallback", 30.0, True, "no-table", "s2")
        m.record_decision("fallback", 30.0, True, "no-table", "s2")
        m.record_error()
        snap = m.snapshot()
        assert snap["requests_total"] == 4
        assert snap["decisions"] == {
            "table": 1, "controller": 0, "fallback": 2, "error": 1,
        }
        assert snap["degraded_total"] == 2
        assert snap["fallback_reasons"] == {"no-table": 2}
        assert snap["sessions_seen"] == 2
        assert snap["latency_us"]["count"] == 3

    def test_table_swaps_and_connections(self):
        m = ServiceMetrics()
        m.record_table_swap()
        m.connections_opened += 1
        m.connections_active += 1
        snap = m.snapshot()
        assert snap["table_swaps_total"] == 1
        assert snap["connections"] == {"opened": 1, "active": 1, "reset": 0}

    def test_disconnects_and_chaos(self):
        m = ServiceMetrics()
        m.record_disconnect()
        m.record_disconnect()
        m.record_chaos("reset")
        m.record_chaos("slow")
        m.record_chaos("reset")
        snap = m.snapshot()
        assert snap["connections"]["reset"] == 2
        assert snap["chaos_injected"] == {"reset": 2, "slow": 1}
        # Disconnects are connection-level events, not served requests.
        assert snap["requests_total"] == 0

    def test_snapshot_schema_locked(self):
        # docs/service.md documents exactly these keys.
        snap = ServiceMetrics().snapshot()
        assert set(snap) == {
            "requests_total", "decisions", "degraded_total",
            "fallback_reasons", "sessions_seen", "table_swaps_total",
            "connections", "chaos_injected", "batch_occupancy",
            "protocol_requests", "latency_us", "spans_us", "arms",
        }
        assert set(snap["decisions"]) == {
            "table", "controller", "fallback", "error",
        }
        assert set(snap["connections"]) == {"opened", "active", "reset"}
        assert snap["spans_us"] == {}  # per-span histograms appear lazily
        assert snap["arms"] == {}  # per-arm breakdowns appear lazily

    def test_record_span_builds_named_histograms(self):
        metrics = ServiceMetrics()
        metrics.record_span("decide", 120.0)
        metrics.record_span("decide", 240.0)
        metrics.record_span("table-swap", 90.0)
        snap = metrics.snapshot()
        assert sorted(snap["spans_us"]) == ["decide", "table-swap"]
        assert snap["spans_us"]["decide"]["count"] == 2
        assert snap["spans_us"]["table-swap"]["count"] == 1

    def test_default_bounds_strictly_increasing(self):
        bounds = list(DEFAULT_BUCKET_BOUNDS_US)
        assert bounds == sorted(bounds)
        assert len(set(bounds)) == len(bounds)


class TestArmMetrics:
    def test_controller_source_counted(self):
        m = ServiceMetrics()
        m.record_decision("controller", 80.0, False, None, "s1")
        snap = m.snapshot()
        assert snap["decisions"]["controller"] == 1
        assert snap["decisions"]["table"] == 0

    def test_arm_breakdown(self):
        m = ServiceMetrics()
        m.record_decision("table", 50.0, False, None, "s1", arm="control")
        m.record_decision("controller", 90.0, False, None, "s2", arm="bola")
        m.record_decision("fallback", 30.0, True, "no-table", "s3", arm="control")
        # Arm-less traffic never shows up in the per-arm breakdowns.
        m.record_decision("table", 40.0, False, None, "s4")
        snap = m.snapshot()
        assert set(snap["arms"]) == {"control", "bola"}
        control = snap["arms"]["control"]
        assert control["decisions"] == 2
        assert control["degraded"] == 1
        assert control["sources"] == {"table": 1, "fallback": 1}
        assert control["reasons"] == {"no-table": 1}
        assert control["latency_us"]["count"] == 2
        bola = snap["arms"]["bola"]
        assert bola["decisions"] == 1
        assert bola["sources"] == {"controller": 1}
        assert bola["latency_us"]["count"] == 1

    def test_arm_slice_schema(self):
        m = ServiceMetrics()
        m.record_decision("controller", 10.0, False, None, "s", arm="a")
        slice_ = m.snapshot()["arms"]["a"]
        assert set(slice_) == {
            "decisions", "degraded", "sources", "reasons", "latency_us",
        }
