"""A/B routing through the service: arms pick code paths, end to end."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    CONTROLLER_TABLE,
    DecisionRequest,
    DecisionServer,
    DecisionService,
    ExperimentArm,
    ExperimentConfig,
    ServiceClient,
)
from repro.service.protocol import (
    SOURCE_CONTROLLER,
    SOURCE_FALLBACK,
    SOURCE_TABLE,
    decode_response_batch,
    encode_response_batch,
)

pytestmark = pytest.mark.slow

from .conftest import LADDER, make_test_table


EXPERIMENT = ExperimentConfig(
    arms=(
        ExperimentArm("control", CONTROLLER_TABLE, weight=1.0),
        ExperimentArm("bola", "bola", weight=1.0),
        ExperimentArm("bb", "bb", weight=1.0),
    ),
    salt="routing-test",
)


def session_on(arm_name: str, prefix: str = "s") -> str:
    """A session id the experiment assigns to the requested arm."""
    for i in range(10_000):
        sid = f"{prefix}{i}"
        if EXPERIMENT.assign(sid).name == arm_name:
            return sid
    raise AssertionError(f"no session found for arm {arm_name}")


def make_request(session_id: str, **overrides) -> DecisionRequest:
    fields = dict(
        session_id=session_id, buffer_s=10.0, predicted_kbps=1500.0, prev_level=1
    )
    fields.update(overrides)
    return DecisionRequest(**fields)


def run(coro):
    return asyncio.run(coro)


async def with_server(service, inner):
    server = DecisionServer(service, port=0)
    await server.start()
    try:
        return await inner(server)
    finally:
        await server.close()


class TestServiceRouting:
    def test_table_arm_keeps_table_path(self, test_table):
        service = DecisionService(LADDER, table=test_table, experiment=EXPERIMENT)
        sid = session_on("control")
        response = service.decide(make_request(sid))
        assert response.source == SOURCE_TABLE
        assert response.arm == "control"
        assert response.level_index == test_table.lookup(10.0, 1, 1500.0)

    def test_controller_arm_runs_backend(self, test_table):
        service = DecisionService(LADDER, table=test_table, experiment=EXPERIMENT)
        sid = session_on("bola")
        response = service.decide(make_request(sid))
        assert response.source == SOURCE_CONTROLLER
        assert response.arm == "bola"
        assert not response.degraded
        assert 0 <= response.level_index < len(LADDER)

    def test_no_experiment_means_no_arm(self, test_table):
        service = DecisionService(LADDER, table=test_table)
        response = service.decide(make_request("anyone"))
        assert response.arm is None
        assert service.metrics.snapshot()["arms"] == {}

    def test_cold_table_arm_falls_back_with_arm_label(self):
        service = DecisionService(LADDER, experiment=EXPERIMENT)  # no table
        sid = session_on("control")
        response = service.decide(make_request(sid))
        assert response.source == SOURCE_FALLBACK
        assert response.degraded
        assert response.arm == "control"
        # Controller arms keep serving healthily without any table.
        healthy = service.decide(make_request(session_on("bola")))
        assert healthy.source == SOURCE_CONTROLLER
        assert not healthy.degraded

    def test_unknown_controller_rejected_at_config_time(self, test_table):
        bad = ExperimentConfig(arms=(ExperimentArm("x", "skynet"),))
        with pytest.raises(ValueError, match="unknown algorithm"):
            DecisionService(LADDER, table=test_table, experiment=bad)

    def test_set_experiment_clears_backends(self, test_table):
        service = DecisionService(LADDER, table=test_table, experiment=EXPERIMENT)
        assert set(service.backends) == {"bola", "bb"}
        service.set_experiment(None)
        assert service.backends == {}
        assert service.decide(make_request("s0")).arm is None

    def test_reconfigure_keeps_surviving_backend_sessions(self, test_table):
        service = DecisionService(LADDER, table=test_table, experiment=EXPERIMENT)
        sid = session_on("bola")
        service.decide(make_request(sid))
        before = service.backends["bola"]
        assert before.sessions_active == 1
        # A new config still naming "bola" keeps the live backend.
        service.set_experiment(
            ExperimentConfig(arms=(ExperimentArm("bola", "bola"),), salt="v2")
        )
        assert service.backends["bola"] is before
        assert service.backends["bola"].sessions_active == 1

    def test_per_arm_metrics_recorded(self, test_table):
        service = DecisionService(LADDER, table=test_table, experiment=EXPERIMENT)
        for arm, count in (("control", 3), ("bola", 2)):
            for i in range(count):
                service.decide(make_request(session_on(arm, prefix=f"m{i}-")))
        arms = service.metrics.snapshot()["arms"]
        assert arms["control"]["decisions"] == 3
        assert arms["control"]["sources"] == {"table": 3}
        assert arms["bola"]["decisions"] == 2
        assert arms["bola"]["sources"] == {"controller": 2}


class TestBatchRouting:
    def test_batch_matches_scalar_and_preserves_order(self, test_table):
        scalar = DecisionService(LADDER, table=test_table, experiment=EXPERIMENT)
        batched = DecisionService(LADDER, table=test_table, experiment=EXPERIMENT)
        requests = [make_request(f"s{i}", buffer_s=5.0 + i % 7) for i in range(40)]
        expected = [scalar.decide(r) for r in requests]
        got = batched.decide_batch(requests)
        assert [r.session_id for r in got] == [r.session_id for r in requests]
        for want, have in zip(expected, got):
            assert (want.level_index, want.source, want.arm) == (
                have.level_index,
                have.source,
                have.arm,
            )

    def test_batch_mixes_sources(self, test_table):
        service = DecisionService(LADDER, table=test_table, experiment=EXPERIMENT)
        requests = [make_request(f"s{i}") for i in range(60)]
        responses = service.decide_batch(requests)
        sources = {r.source for r in responses}
        assert SOURCE_TABLE in sources and SOURCE_CONTROLLER in sources
        assert all(r.arm is not None for r in responses)


class TestBinaryArmEncoding:
    def test_response_arm_roundtrip(self, test_table):
        service = DecisionService(LADDER, table=test_table, experiment=EXPERIMENT)
        responses = [service.decide(make_request(f"s{i}")) for i in range(8)]
        decoded = decode_response_batch(encode_response_batch(responses))
        assert [r.arm for r in decoded] == [r.arm for r in responses]
        assert [r.level_index for r in decoded] == [
            r.level_index for r in responses
        ]

    def test_armless_frames_unchanged(self, test_table):
        """No experiment -> the arm flag stays clear and the frame is
        byte-identical to the pre-experiment encoding (wire compat)."""
        service = DecisionService(LADDER, table=test_table)
        responses = [service.decide(make_request(f"s{i}")) for i in range(4)]
        blob = encode_response_batch(responses)
        assert blob[3] == 0  # flags byte
        decoded = decode_response_batch(blob)
        assert all(r.arm is None for r in decoded)


class TestExperimentRoutes:
    def test_get_post_clear_cycle(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                assert await client.get_experiment() is None
                active = await client.set_experiment(EXPERIMENT.to_dict())
                assert active == EXPERIMENT.to_dict()
                assert await client.get_experiment() == EXPERIMENT.to_dict()
                health = await client.health()
                assert health["experiment_arms"] == ["control", "bola", "bb"]
                # A decision now carries its arm over the wire.
                sid = session_on("bola")
                response = await client.decide(make_request(sid))
                assert response.arm == "bola"
                assert response.source == SOURCE_CONTROLLER
                # Clear: back to arm-less serving.
                assert await client.set_experiment(None) is None
                assert await client.get_experiment() is None
                response = await client.decide(make_request(sid))
                assert response.arm is None

        run(with_server(service, inner))

    def test_bad_experiment_rejected_400(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                status, _ = await client.request(
                    "POST", "/v1/experiment", b"not json"
                )
                assert status == 400
                status, _ = await client.request(
                    "POST",
                    "/v1/experiment",
                    b'{"arms": [{"name": "x", "controller": "skynet"}]}',
                )
                assert status == 400
                # A rejected config never partially installs.
                assert await client.get_experiment() is None

        run(with_server(service, inner))

    def test_healthz_without_experiment(self, test_table):
        service = DecisionService(LADDER, table=test_table)

        async def inner(server):
            async with ServiceClient("127.0.0.1", server.bound_port) as client:
                health = await client.health()
                assert health["experiment_arms"] is None

        run(with_server(service, inner))


class TestBackendReaper:
    def test_evict_idle_backends_counts_across_arms(self, test_table):
        service = DecisionService(LADDER, table=test_table, experiment=EXPERIMENT)
        for prefix in ("a", "b", "c"):
            service.decide(make_request(session_on("bola", prefix=prefix)))
            service.decide(make_request(session_on("bb", prefix=prefix)))
        # Age every backend session past the timeout by hand.
        for backend in service.backends.values():
            for session in backend._sessions.values():
                session.last_active = -1e9
        assert service.evict_idle_backends() == 6
        assert all(
            backend.sessions_active == 0 for backend in service.backends.values()
        )
