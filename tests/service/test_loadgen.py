"""Closed-loop load generator against an in-process server."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    DecisionServer,
    DecisionService,
    LoadTestConfig,
    run_loadtest,
)
from repro.service.loadgen import _VirtualPlayer
from repro.traces import Trace

from .conftest import LADDER, make_test_table

# Live-server suites: each load test drives a real socket + event loop.
pytestmark = pytest.mark.slow


def small_config(**overrides) -> LoadTestConfig:
    fields = dict(
        sessions=6,
        chunks_per_session=10,
        concurrency=3,
        dataset="synthetic",
        seed=7,
        trace_duration_s=60.0,
        ladder_kbps=LADDER,
    )
    fields.update(overrides)
    return LoadTestConfig(**fields)


async def loadtest_against(service, config):
    server = DecisionServer(service, port=0)
    await server.start()
    try:
        return await run_loadtest("127.0.0.1", server.bound_port, config)
    finally:
        await server.close()


class TestLoadTest:
    def test_warm_server_all_table_decisions(self):
        service = DecisionService(LADDER, table=make_test_table())
        config = small_config()
        report = asyncio.run(loadtest_against(service, config))
        expected = config.sessions * config.chunks_per_session
        assert report.decisions == expected
        assert report.errors == 0
        assert report.sessions_completed == config.sessions
        assert report.sources.get("table", 0) == expected
        assert report.degraded == 0
        assert report.latency.count == expected
        assert report.throughput_dps > 0

    def test_cold_server_degrades_every_decision_without_errors(self):
        """The acceptance scenario: no table -> 100% fallback, 0 errors."""
        service = DecisionService(LADDER)  # no table
        config = small_config()
        report = asyncio.run(loadtest_against(service, config))
        expected = config.sessions * config.chunks_per_session
        assert report.errors == 0
        assert report.decisions == expected
        assert report.sessions_completed == config.sessions
        assert report.sources == {"fallback": expected}
        assert report.degraded == expected
        assert report.reasons == {"no-table": expected}

    def test_unreachable_server_completes_sessions_via_local_fallback(self):
        """The availability acceptance: server down -> every session
        still completes, served by the client-side rate-based rule."""
        config = small_config(sessions=2, chunks_per_session=2, deadline_s=0.2)
        report = asyncio.run(run_loadtest("127.0.0.1", 1, config))
        expected = config.sessions * config.chunks_per_session
        assert report.errors == expected  # every remote attempt failed
        assert report.local_fallbacks == expected
        assert report.decisions == expected
        assert report.sessions_completed == config.sessions
        assert report.sources == {"local": expected}

    def test_unreachable_server_without_fallback_reports_errors(self):
        config = small_config(
            sessions=2, chunks_per_session=2, deadline_s=0.2, local_fallback=False
        )
        report = asyncio.run(run_loadtest("127.0.0.1", 1, config))
        assert report.errors > 0
        assert report.local_fallbacks == 0
        assert report.sessions_completed == 0

    def test_explicit_traces_drive_session_count(self):
        service = DecisionService(LADDER, table=make_test_table())
        traces = [
            Trace([0.0], [1200.0], duration_s=60.0, name=f"t{i}")
            for i in range(4)
        ]
        config = small_config(sessions=6)  # overridden by explicit traces
        report = asyncio.run(loadtest_against_traces(service, config, traces))
        assert report.sessions_completed == len(traces)
        assert report.decisions == len(traces) * config.chunks_per_session

    def test_report_dict_schema(self):
        service = DecisionService(LADDER, table=make_test_table())
        report = asyncio.run(
            loadtest_against(service, small_config(sessions=2, chunks_per_session=3))
        )
        d = report.to_dict()
        assert set(d) == {
            "decisions", "errors", "degraded", "sessions_completed",
            "local_fallbacks", "wall_s", "throughput_dps", "sources",
            "reasons", "latency_us", "qoe_mean", "arms",
            "predictors", "prior_hits",
        }
        assert "decisions/s" in report.describe()
        assert report.qoe_mean != 0.0  # completed sessions were scored
        assert d["arms"] == {}  # no experiment on the server -> no arms

    def test_experiment_arms_rolled_up(self):
        from repro.service import ExperimentArm, ExperimentConfig

        experiment = ExperimentConfig(
            arms=(
                ExperimentArm("control", "table", weight=1.0),
                ExperimentArm("bola", "bola", weight=1.0),
            ),
            salt="loadgen-test",
        )
        service = DecisionService(
            LADDER, table=make_test_table(), experiment=experiment
        )
        config = small_config(sessions=12, chunks_per_session=5)
        report = asyncio.run(loadtest_against(service, config))
        assert report.errors == 0
        assert set(report.arms) <= {"control", "bola"}
        assert len(report.arms) == 2  # 12 hashed sessions cover both arms
        total = config.sessions * config.chunks_per_session
        assert sum(a["decisions"] for a in report.arms.values()) == total
        assert sum(a["sessions"] for a in report.arms.values()) == config.sessions
        for name, stats in report.arms.items():
            assert stats["qoe_count"] == stats["sessions"]
        d = report.to_dict()
        for name, stats in d["arms"].items():
            assert "qoe_mean" in stats
        assert "arm control:" in report.describe()
        assert "arm bola:" in report.describe()


async def loadtest_against_traces(service, config, traces):
    server = DecisionServer(service, port=0)
    await server.start()
    try:
        return await run_loadtest(
            "127.0.0.1", server.bound_port, config, traces=traces
        )
    finally:
        await server.close()


class TestVirtualPlayer:
    def make_player(self):
        trace = Trace([0.0, 30.0], [1000.0, 2000.0], duration_s=60.0, name="t")
        return _VirtualPlayer("s", trace, small_config())

    def test_first_request_uses_trace_start(self):
        player = self.make_player()
        request = player.next_request()
        assert request.predicted_kbps == pytest.approx(1000.0)
        assert request.prev_level is None
        assert request.buffer_s == 0.0

    def test_harmonic_mean_prediction(self):
        player = self.make_player()
        player.next_request()
        player.apply_decision(0)  # measures 1000 kbps at t=0
        player._measured.clear()
        player._measured.extend([500.0, 2000.0])
        predicted = player.next_request().predicted_kbps
        assert predicted == pytest.approx(2.0 / (1 / 500.0 + 1 / 2000.0))

    def test_buffer_dynamics(self):
        player = self.make_player()
        player.next_request()
        player.apply_decision(0)
        # Chunk of 4 s * 400 kbps = 1600 kb at 1000 kbps -> 1.6 s download;
        # buffer gains one chunk duration.
        assert player.wall_s == pytest.approx(1.6)
        assert player.buffer_s == pytest.approx(4.0)
        assert player.prev_level == 0

    def test_buffer_respects_capacity(self):
        player = self.make_player()
        for _ in range(40):
            player.next_request()
            player.apply_decision(0)
        assert player.buffer_s <= player.config.buffer_capacity_s

    def test_decision_clamped_to_ladder(self):
        player = self.make_player()
        player.next_request()
        player.apply_decision(99)
        assert player.prev_level == len(LADDER) - 1

    def test_errors_recorded_for_robust_requests(self):
        player = self.make_player()
        player.next_request()
        player.apply_decision(1)
        request = player.next_request()
        assert len(request.past_errors) == 1


class TestLoadTestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTestConfig(sessions=0)
        with pytest.raises(ValueError):
            LoadTestConfig(concurrency=0)
        with pytest.raises(ValueError):
            LoadTestConfig(prediction_window=0)
        with pytest.raises(ValueError):
            LoadTestConfig(ladder_kbps=())
