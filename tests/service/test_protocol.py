"""Wire-format round-trips and validation for the decision protocol."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.service.protocol import (
    PROTOCOL_VERSION,
    SOURCE_FALLBACK,
    SOURCE_TABLE,
    DecisionRequest,
    DecisionResponse,
    ProtocolError,
)


class TestDecisionRequest:
    def test_json_roundtrip(self):
        request = DecisionRequest(
            session_id="abc",
            buffer_s=12.5,
            predicted_kbps=1800.0,
            prev_level=2,
            past_errors=(0.1, -0.2),
        )
        back = DecisionRequest.from_json(request.to_json())
        assert back == request

    def test_optional_fields_omitted(self):
        request = DecisionRequest(session_id="s", buffer_s=0.0, predicted_kbps=500.0)
        payload = request.to_dict()
        assert "prev_level" not in payload
        assert "past_errors" not in payload
        assert payload["v"] == PROTOCOL_VERSION
        back = DecisionRequest.from_json(request.to_json())
        assert back.prev_level is None
        assert back.past_errors == ()

    def test_missing_version_accepted(self):
        # A body without "v" is treated as the current version.
        body = json.dumps(
            {"session_id": "s", "buffer_s": 1.0, "predicted_kbps": 100.0}
        ).encode()
        assert DecisionRequest.from_json(body).session_id == "s"

    def test_wrong_version_rejected(self):
        body = json.dumps(
            {"v": 99, "session_id": "s", "buffer_s": 1.0, "predicted_kbps": 100.0}
        ).encode()
        with pytest.raises(ProtocolError):
            DecisionRequest.from_json(body)

    @pytest.mark.parametrize(
        "mutation",
        [
            {"session_id": ""},
            {"session_id": 7},
            {"buffer_s": -1.0},
            {"buffer_s": "deep"},
            {"buffer_s": float("nan")},
            {"buffer_s": True},
            {"predicted_kbps": 0.0},
            {"predicted_kbps": None},
            {"prev_level": -1},
            {"prev_level": 1.5},
            {"prev_level": True},
            {"past_errors": "oops"},
            {"past_errors": [0.1, "x"]},
            {"past_errors": [0.0] * 65},
        ],
    )
    def test_invalid_fields_rejected(self, mutation):
        payload = {
            "session_id": "s",
            "buffer_s": 5.0,
            "predicted_kbps": 1000.0,
            "prev_level": 1,
            "past_errors": [0.1],
        }
        payload.update(mutation)
        with pytest.raises(ProtocolError):
            DecisionRequest.from_dict(payload)

    @pytest.mark.parametrize("blob", [b"", b"{", b"[1,2]", b"null", b"\xff\xfe"])
    def test_non_object_bodies_rejected(self, blob):
        with pytest.raises(ProtocolError):
            DecisionRequest.from_json(blob)

    @given(
        buffer_s=st.floats(0.0, 60.0),
        predicted=st.floats(1.0, 10_000.0),
        prev=st.one_of(st.none(), st.integers(0, 10)),
        errors=st.lists(st.floats(-0.9, 5.0), max_size=8),
    )
    def test_roundtrip_property(self, buffer_s, predicted, prev, errors):
        request = DecisionRequest(
            session_id="prop",
            buffer_s=buffer_s,
            predicted_kbps=predicted,
            prev_level=prev,
            past_errors=tuple(errors),
        )
        assert DecisionRequest.from_json(request.to_json()) == request


class TestDecisionResponse:
    def test_json_roundtrip(self):
        response = DecisionResponse(
            session_id="abc",
            level_index=3,
            bitrate_kbps=1850.0,
            source=SOURCE_TABLE,
            server_latency_us=42.5,
        )
        back = DecisionResponse.from_json(response.to_json())
        assert back.session_id == "abc"
        assert back.level_index == 3
        assert back.source == SOURCE_TABLE
        assert not back.degraded
        assert back.reason is None

    def test_degraded_roundtrip(self):
        response = DecisionResponse(
            session_id="abc",
            level_index=0,
            bitrate_kbps=300.0,
            source=SOURCE_FALLBACK,
            degraded=True,
            reason="no-table",
        )
        back = DecisionResponse.from_json(response.to_json())
        assert back.degraded
        assert back.reason == "no-table"

    def test_invalid_source_rejected(self):
        with pytest.raises(ProtocolError):
            DecisionResponse("s", 0, 300.0, source="oracle")

    def test_negative_level_rejected(self):
        with pytest.raises(ProtocolError):
            DecisionResponse("s", -1, 300.0, source=SOURCE_TABLE)

    def test_malformed_body_rejected(self):
        with pytest.raises(ProtocolError):
            DecisionResponse.from_json(b'{"level_index": 1}')
        with pytest.raises(ProtocolError):
            DecisionResponse.from_json(b"not json")
