"""Open-loop (live/low-latency) load generation and predictor routing.

The arrival schedule is a pure function of the config — deterministic by
construction, pinned here with ``==`` — and the driven runs assert the
routing invariants: every configured predictor takes traffic, and
family-keyed sessions hit the server's shared prior.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    DecisionServer,
    DecisionService,
    LoadTestConfig,
    run_loadtest,
)
from repro.service.loadgen import open_loop_arrivals

from .conftest import LADDER, make_test_table


def small_config(**overrides) -> LoadTestConfig:
    fields = dict(
        sessions=6,
        chunks_per_session=8,
        concurrency=3,
        dataset="synthetic",
        seed=7,
        trace_duration_s=60.0,
        ladder_kbps=LADDER,
    )
    fields.update(overrides)
    return LoadTestConfig(**fields)


async def loadtest_against(service, config):
    server = DecisionServer(service, port=0)
    await server.start()
    try:
        return await run_loadtest("127.0.0.1", server.bound_port, config)
    finally:
        await server.close()


class TestOpenLoopArrivals:
    def test_deterministic_and_exact_count(self):
        config = small_config(
            sessions=40, open_loop=True, arrival_rate_hz=50.0
        )
        first = open_loop_arrivals(config)
        assert len(first) == 40
        assert first == open_loop_arrivals(config)  # same config, same schedule
        assert first == sorted(first)

    def test_constant_rate_spacing(self):
        config = small_config(
            sessions=10, open_loop=True, arrival_rate_hz=10.0
        )
        times = open_loop_arrivals(config)
        # 10 arrivals/s -> one per 100 ms of integrated credit
        gaps = [b - a for a, b in zip(times, times[1:])]
        for gap in gaps:
            assert gap == pytest.approx(0.1, abs=0.02)

    def test_diurnal_modulation_shifts_arrivals(self):
        flat = small_config(sessions=30, open_loop=True, arrival_rate_hz=10.0)
        wavy = small_config(
            sessions=30,
            open_loop=True,
            arrival_rate_hz=10.0,
            diurnal_amplitude=0.9,
            diurnal_period_s=4.0,
        )
        flat_times = open_loop_arrivals(flat)
        wavy_times = open_loop_arrivals(wavy)
        assert flat_times != wavy_times
        # the sinusoid's first half-period runs above the base rate, so
        # early arrivals come faster than the flat schedule's
        assert wavy_times[10] < flat_times[10]

    def test_burst_injects_a_flash_crowd(self):
        config = small_config(
            sessions=20,
            open_loop=True,
            arrival_rate_hz=5.0,
            burst_at_s=1.0,
            burst_sessions=8,
        )
        times = open_loop_arrivals(config)
        assert len(times) == 20
        assert sum(1 for t in times if t == 1.0) >= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            small_config(arrival_rate_hz=0.0)
        with pytest.raises(ValueError):
            small_config(diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            small_config(diurnal_period_s=0.0)
        with pytest.raises(ValueError):
            small_config(burst_sessions=-1)
        with pytest.raises(ValueError):
            small_config(burst_at_s=-0.5)
        with pytest.raises(ValueError):
            small_config(family="fcc", protocol="binary")


@pytest.mark.slow
class TestOpenLoopRuns:
    def test_open_loop_completes_every_arrived_session(self):
        service = DecisionService(LADDER, table=make_test_table())
        config = small_config(
            open_loop=True, arrival_rate_hz=200.0, concurrency=8
        )
        report = asyncio.run(loadtest_against(service, config))
        assert report.errors == 0
        assert report.sessions_completed == config.sessions
        assert report.decisions == config.sessions * config.chunks_per_session

    def test_burst_mode_still_serves_everything(self):
        service = DecisionService(LADDER, table=make_test_table())
        config = small_config(
            open_loop=True,
            arrival_rate_hz=100.0,
            burst_at_s=0.0,
            burst_sessions=4,
        )
        report = asyncio.run(loadtest_against(service, config))
        assert report.sessions_completed == config.sessions
        assert report.errors == 0


@pytest.mark.slow
class TestPredictorRouting:
    def test_every_predictor_takes_traffic(self):
        service = DecisionService(LADDER, table=make_test_table())
        names = ("harmonic", "gap-harmonic", "ewma")
        config = small_config(sessions=6, predictors=names)
        report = asyncio.run(loadtest_against(service, config))
        assert report.errors == 0
        assert set(report.predictors) == set(names)
        for name in names:
            stats = report.predictors[name]
            assert stats["sessions"] == 2  # 6 sessions round-robin over 3
            assert stats["decisions"] == 2 * config.chunks_per_session
            assert stats["qoe_count"] == stats["sessions"]
        doc = report.to_dict()
        for name in names:
            assert "qoe_mean" in doc["predictors"][name]

    def test_family_keyed_sessions_hit_the_shared_prior(self):
        service = DecisionService(LADDER, table=make_test_table())
        config = small_config(family="fcc")
        report = asyncio.run(loadtest_against(service, config))
        assert report.errors == 0
        assert report.prior_hits > 0
        priors = service.metrics_document()["priors"]
        assert "fcc" in priors["families"]
        assert priors["samples_total"] == config.sessions * config.chunks_per_session

    def test_no_family_means_no_prior_hits(self):
        service = DecisionService(LADDER, table=make_test_table())
        report = asyncio.run(loadtest_against(service, small_config()))
        assert report.prior_hits == 0
        assert service.metrics_document()["priors"]["samples_total"] == 0
