"""Deterministic A/B assignment: the experiment layer's contract.

The property that makes per-arm metrics mergeable and cluster routing
coordination-free is that ``ExperimentConfig.assign`` is a pure function
of ``(arms, salt, session_id)`` — the same session lands on the same arm
in every process, under every ``PYTHONHASHSEED``, across restarts.
"""

from __future__ import annotations

import pickle
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    CONTROLLER_TABLE,
    ExperimentArm,
    ExperimentConfig,
    parse_arms_spec,
)


def three_arm_config(salt: str = "") -> ExperimentConfig:
    return ExperimentConfig(
        arms=(
            ExperimentArm("control", CONTROLLER_TABLE, weight=2.0),
            ExperimentArm("bola", "bola", weight=1.0),
            ExperimentArm("bb", "bb", weight=1.0),
        ),
        salt=salt,
    )


class TestAssignmentDeterminism:
    @given(session_id=st.text(min_size=1, max_size=64))
    @settings(max_examples=200)
    def test_same_session_same_arm(self, session_id):
        config = three_arm_config(salt="s")
        first = config.assign(session_id)
        assert all(config.assign(session_id) is first for _ in range(3))

    @given(session_id=st.text(min_size=1, max_size=64))
    @settings(max_examples=100)
    def test_reconstructed_config_agrees(self, session_id):
        """A config rebuilt from its serialized form (what a restarted
        worker sees) assigns identically."""
        config = three_arm_config(salt="restart")
        clone = ExperimentConfig.from_dict(config.to_dict())
        assert clone.assign(session_id).name == config.assign(session_id).name

    def test_pickled_config_agrees(self):
        """Cluster worker specs ship the config via pickle."""
        config = three_arm_config(salt="pickle")
        clone = pickle.loads(pickle.dumps(config))
        for i in range(500):
            sid = f"session-{i:05d}"
            assert clone.assign(sid).name == config.assign(sid).name

    def test_assignment_survives_interpreter_restart(self):
        """The killer property: assignment cannot depend on Python's
        randomised ``hash`` — two interpreters with different
        PYTHONHASHSEEDs must agree on every session."""
        script = (
            "from repro.service import ExperimentArm, ExperimentConfig\n"
            "config = ExperimentConfig(arms=("
            "ExperimentArm('control', 'table', weight=2.0),"
            "ExperimentArm('bola', 'bola', weight=1.0),"
            "ExperimentArm('bb', 'bb', weight=1.0)), salt='restart')\n"
            "print(','.join(config.assign(f'session-{i:05d}').name"
            " for i in range(200)))\n"
        )
        import pathlib

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        outputs = []
        for hashseed in ("0", "1", "31337"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": hashseed, "PYTHONPATH": src},
                check=True,
            )
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1] == outputs[2]
        assert len(set(outputs[0].split(","))) == 3  # all arms in play

    def test_weights_respected_over_population(self):
        """Over 10k ids the observed split tracks the configured 2:1:1
        weights within a few percent (BLAKE2b is uniform; 5 sigma of a
        binomial at n=10_000 is ~2.5%)."""
        config = three_arm_config(salt="weights")
        counts = {arm.name: 0 for arm in config.arms}
        n = 10_000
        for i in range(n):
            counts[config.assign(f"session-{i:05d}").name] += 1
        assert counts["control"] / n == pytest.approx(0.50, abs=0.03)
        assert counts["bola"] / n == pytest.approx(0.25, abs=0.03)
        assert counts["bb"] / n == pytest.approx(0.25, abs=0.03)

    def test_salt_reshuffles_population(self):
        a = three_arm_config(salt="alpha")
        b = three_arm_config(salt="beta")
        moved = sum(
            a.assign(f"session-{i:05d}").name != b.assign(f"session-{i:05d}").name
            for i in range(1000)
        )
        # Re-salting should move a big chunk of the population (expected
        # ~62% under a 2:1:1 split), not approximately nobody.
        assert moved > 300

    def test_single_arm_gets_everything(self):
        config = ExperimentConfig(arms=(ExperimentArm("only", "bola"),))
        assert all(
            config.assign(f"s{i}").name == "only" for i in range(100)
        )


class TestConfigValidation:
    def test_empty_arms_rejected(self):
        with pytest.raises(ValueError, match="at least one arm"):
            ExperimentConfig(arms=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ExperimentConfig(
                arms=(ExperimentArm("a", "bola"), ExperimentArm("a", "bb"))
            )

    def test_bad_arm_fields_rejected(self):
        with pytest.raises(ValueError):
            ExperimentArm("", "bola")
        with pytest.raises(ValueError):
            ExperimentArm("a", "")
        with pytest.raises(ValueError):
            ExperimentArm("a", "bola", weight=0.0)
        with pytest.raises(ValueError):
            ExperimentArm("a", "bola", weight=-1.0)
        with pytest.raises(ValueError):
            ExperimentArm("a", "bola", weight=float("inf"))

    def test_dict_roundtrip(self):
        config = three_arm_config(salt="round")
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError):
            ExperimentConfig.from_dict("nope")
        with pytest.raises(ValueError):
            ExperimentConfig.from_dict({"arms": []})
        with pytest.raises(ValueError):
            ExperimentConfig.from_dict({"arms": [{"name": 3}]})
        with pytest.raises(ValueError):
            ExperimentConfig.from_dict(
                {"arms": [{"name": "a", "weight": "heavy"}]}
            )


class TestParseArmsSpec:
    def test_simple_spec(self):
        config = parse_arms_spec("table=2,bola,bb=0.5", salt="s1")
        assert [a.name for a in config.arms] == ["table", "bola", "bb"]
        assert [a.controller for a in config.arms] == ["table", "bola", "bb"]
        assert [a.weight for a in config.arms] == [2.0, 1.0, 0.5]
        assert config.salt == "s1"

    def test_labelled_arms_for_aa_tests(self):
        config = parse_arms_spec("a1:bola,a2:bola")
        assert [a.name for a in config.arms] == ["a1", "a2"]
        assert all(a.controller == "bola" for a in config.arms)

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            parse_arms_spec("")
        with pytest.raises(ValueError):
            parse_arms_spec("bola=heavy")
        with pytest.raises(ValueError):
            parse_arms_spec("bola,bola")  # duplicate arm names
