"""Arena behaviour: churn, cross traffic, windowed metrics, obs events,
and the ``repro-abr arena`` CLI."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.arena import (
    ArenaConfig,
    CrossTrafficSpec,
    ScheduleConfig,
    run_arena,
)
from repro.arena.metrics import compute_windows
from repro.emulation.harness import NetworkProfile
from repro.obs import RingBufferSink, Tracer
from repro.obs.events import ArenaSummary, ArenaWindow
from repro.service.experiment import ExperimentArm, ExperimentConfig
from repro.traces import Trace
from repro.video import short_test_video


def _mix(*names):
    return ExperimentConfig(
        arms=tuple(ExperimentArm(name=n, controller=n) for n in names)
    )


def _base_config(**overrides):
    schedule_kwargs = dict(
        players=12,
        seed=6,
        mix=_mix("bola"),
        arrivals="poisson",
        mean_interarrival_s=0.5,
    )
    schedule_kwargs.update(overrides.pop("schedule_kwargs", {}))
    defaults = dict(
        schedule=ScheduleConfig(**schedule_kwargs),
        trace=Trace.constant(20_000.0, 600.0, name="behave-const"),
        manifest=short_test_video(num_chunks=12, num_levels=3),
        network=NetworkProfile(slow_start=False),
        window_s=10.0,
    )
    defaults.update(overrides)
    return ArenaConfig(**defaults)


def test_churn_departs_players_at_chunk_boundaries():
    result = run_arena(
        _base_config(
            schedule_kwargs=dict(
                players=40, min_watch_chunks=2, max_watch_chunks=40
            )
        )
    )
    departed = [o for o in result.outcomes if o.departed_early]
    stayed = [o for o in result.outcomes if not o.departed_early]
    assert departed and stayed  # uniform draw over [2, 12] hits both
    for o in departed:
        assert 2 <= o.chunks < 12
    for o in stayed:
        assert o.chunks == 12
    # Cohort accounting sees the same split.
    assert sum(r.departed for r in result.cohorts.values()) == len(departed)


def test_cross_traffic_takes_real_bandwidth():
    quiet = run_arena(_base_config())
    loud = run_arena(
        _base_config(
            schedule_kwargs=dict(
                cross_traffic=(
                    CrossTrafficSpec(label="hog", rate_kbps=15_000.0),
                )
            )
        )
    )
    assert not quiet.cross_kilobits
    assert loud.cross_kilobits["hog"] > 0
    # The hog slows the players down: same workload takes longer wall
    # time and the video share of the link drops.
    assert loud.totals.duration_s > quiet.totals.duration_s
    assert loud.totals.video_utilization < quiet.totals.video_utilization


def test_on_off_cross_traffic_delivers_less_than_constant():
    constant = run_arena(
        _base_config(
            schedule_kwargs=dict(
                cross_traffic=(CrossTrafficSpec(label="x", rate_kbps=6000.0),)
            )
        )
    )
    pulsed = run_arena(
        _base_config(
            schedule_kwargs=dict(
                cross_traffic=(
                    CrossTrafficSpec(
                        label="x", rate_kbps=6000.0, period_s=6.0, duty=0.5
                    ),
                )
            )
        )
    )
    assert 0 < pulsed.cross_kilobits["x"] < constant.cross_kilobits["x"]


def test_windows_partition_the_run():
    result = run_arena(_base_config())
    windows = result.windows
    assert windows[0].t0_s == 0.0
    assert windows[-1].t1_s == result.totals.duration_s
    for w, nxt in zip(windows, windows[1:]):
        assert w.t1_s == nxt.t0_s
    # Windowed delivery sums back to the total video payload.
    total = sum(w.delivered_kilobits for w in windows)
    assert total == pytest.approx(result.totals.delivered_kilobits)
    for w in windows:
        if w.jain is not None:
            assert 0.0 < w.jain <= 1.0
        if w.active_players:
            assert w.instability == w.switches / w.active_players


def test_windowed_presence_weights_mid_window_departure():
    # One player present 2s of a 10s window must not weigh like one
    # present throughout: rates identical => jain exactly 1 regardless,
    # so use unequal rates and check the weighted index moves with the
    # short-timer's weight.
    specs_sessions = run_arena(
        _base_config(
            schedule_kwargs=dict(min_watch_chunks=2, max_watch_chunks=40)
        )
    )
    assert any(
        o.departed_early and o.end_s % specs_sessions.config.window_s != 0
        for o in specs_sessions.outcomes
    )
    # The run completes and every window's player count only counts
    # players actually present in that window.
    ends = [o.end_s for o in specs_sessions.outcomes]
    for w in specs_sessions.windows:
        present = sum(
            1
            for o, end in zip(specs_sessions.outcomes, ends)
            if min(end, w.t1_s) > max(o.arrival_s, w.t0_s)
        )
        assert w.active_players == present


def test_compute_windows_edge_cases():
    trace = Trace.constant(1000.0, 60.0, name="edge")
    with pytest.raises(ValueError, match="window"):
        compute_windows([], [], trace, 0.0, 10.0)
    assert compute_windows([], [], trace, 10.0, 0.0) == []


def test_zero_capacity_window_reports_none_utilization():
    trace = Trace(
        [0.0, 10.0, 20.0],
        [5000.0, 0.0, 5000.0],
        duration_s=600.0,
        name="hole",
    )
    result = run_arena(
        _base_config(
            trace=trace,
            schedule_kwargs=dict(players=3, mean_interarrival_s=0.1),
        )
    )
    holes = [w for w in result.windows if w.capacity_kilobits == 0.0]
    assert all(w.utilization is None for w in holes)


def test_tracer_receives_arena_events():
    sink = RingBufferSink(capacity=100_000)
    tracer = Tracer([sink])
    result = run_arena(_base_config(), tracer=tracer)
    events = list(sink.events())
    windows = [e for e in events if isinstance(e, ArenaWindow)]
    summaries = [e for e in events if isinstance(e, ArenaSummary)]
    assert len(windows) == len(result.windows)
    assert len(summaries) == 1
    assert summaries[0].players == result.num_players
    assert summaries[0].jain == result.totals.jain
    # Per-player chunk timelines arrived too, keyed by arm#pid.
    assert any(e.session_id.startswith("bola#p") for e in events)


def test_cli_arena_smoke(tmp_path, capsys):
    out = tmp_path / "arena.json"
    rc = cli.main(
        [
            "arena",
            "--players", "20",
            "--seed", "3",
            "--mix", "bola,fair-bola,rb",
            "--max-watch", "12",
            "--chunks", "12",
            "--cross", "4000:10:0.5",
            "--profile", "lossy-link",
            "--no-slow-start",
            "--json", str(out),
        ]
    )
    assert rc == 0
    printed = capsys.readouterr().out
    assert "jain" in printed and "cohort" in printed and "cross traffic" in printed
    payload = json.loads(out.read_text())
    assert payload["players"] == 20
    assert set(payload["cohorts"]) == {"bola", "fair-bola", "rb"}
    assert all(c["sessions"] > 0 for c in payload["cohorts"].values())
    assert 0.0 < payload["totals"]["jain"] <= 1.0
