"""Determinism regressions: same seed => byte-identical arena results,
in one process, across repeated runs, across 1-vs-N matrix workers, and
under composed fault profiles."""

from __future__ import annotations

import pytest

from repro.arena import ArenaConfig, CrossTrafficSpec, ScheduleConfig, run_arena
from repro.emulation.harness import NetworkProfile
from repro.experiments.arena import (
    build_arena_matrix,
    render_arena_matrix,
    run_arena_matrix,
)
from repro.service.experiment import ExperimentArm, ExperimentConfig
from repro.traces import Trace
from repro.video import short_test_video


def _mix(*names):
    return ExperimentConfig(
        arms=tuple(ExperimentArm(name=n, controller=n) for n in names)
    )


def _config(profile="clean", seed=9, players=40, cross=()):
    return ArenaConfig(
        schedule=ScheduleConfig(
            players=players,
            seed=seed,
            mix=_mix("bola", "rb", "fair-bola"),
            arrivals="poisson",
            mean_interarrival_s=0.3,
            min_watch_chunks=3,
            max_watch_chunks=16,
            cross_traffic=tuple(cross),
        ),
        trace=Trace.constant(1500.0 * players, 600.0, name="det-const"),
        manifest=short_test_video(num_chunks=16, num_levels=3),
        network=NetworkProfile(slow_start=False),
        profile=profile,
        fault_seed=4,
        window_s=10.0,
    )


def test_run_twice_is_byte_identical():
    config = _config()
    assert run_arena(config).to_json() == run_arena(config).to_json()


def test_lossy_link_profile_is_byte_identical():
    # Seeded Bernoulli chunk failures + latency spikes: the fault draws
    # are consumed in event order, which the engine fixes.
    config = _config(profile="lossy-link")
    first = run_arena(config)
    assert first.to_json() == run_arena(config).to_json()
    assert first.to_dict()["profile"] == "lossy-link"


def test_flash_crowd_with_cross_traffic_is_byte_identical():
    config = ArenaConfig(
        schedule=ScheduleConfig(
            players=30,
            seed=2,
            mix=_mix("bola", "fair-bola"),
            arrivals="flash-crowd",
            flash_crowds=3,
            flash_gap_s=15.0,
            flash_spread_s=1.0,
            max_watch_chunks=12,
            cross_traffic=(
                CrossTrafficSpec(label="pulse", rate_kbps=8000.0, period_s=8.0, duty=0.5),
                CrossTrafficSpec(label="steady", rate_kbps=2000.0),
            ),
        ),
        trace=Trace.constant(40_000.0, 600.0, name="flash-const"),
        manifest=short_test_video(num_chunks=12, num_levels=3),
        network=NetworkProfile(slow_start=False),
        profile="blackouts",
        window_s=5.0,
    )
    assert run_arena(config).to_json() == run_arena(config).to_json()


def test_different_seed_changes_the_result():
    assert run_arena(_config(seed=1)).to_json() != run_arena(_config(seed=2)).to_json()


@pytest.fixture(scope="module")
def matrix_cells():
    base = _config(players=10)
    return build_arena_matrix(
        base,
        player_counts=[8, 12],
        mixes={"all-bola": _mix("bola"), "mixed": _mix("bola", "fair-bola")},
        profiles=["clean", "lossy-link"],
    )


def test_matrix_one_vs_three_workers_byte_identical(matrix_cells):
    serial = run_arena_matrix(matrix_cells, workers=1)
    pooled = run_arena_matrix(matrix_cells, workers=3)
    assert serial.to_json() == pooled.to_json()
    assert len(serial.cells) == 8  # 2 counts x 2 mixes x 2 profiles
    # Matrix-wide cohort rollup accounts every player exactly once.
    assert serial.sessions == sum(
        cell["players"] for cell in serial.cells.values()
    )
    assert sum(r.sessions for r in serial.cohorts.values()) == serial.sessions
    rendered = render_arena_matrix(serial)
    assert "8p|all-bola|clean" in rendered
    assert "12p|mixed|lossy-link" in rendered


def test_matrix_validates_inputs(matrix_cells):
    with pytest.raises(ValueError, match="at least one cell"):
        run_arena_matrix([])
    with pytest.raises(ValueError, match="unique"):
        run_arena_matrix([matrix_cells[0], matrix_cells[0]])
    with pytest.raises(ValueError, match="workers"):
        run_arena_matrix(matrix_cells, workers=0)
