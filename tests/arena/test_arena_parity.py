"""The parity pin: a churn-free arena IS ``emulate_shared_link``.

With staggered arrivals, full watch time, no cross traffic, and the
clean profile, the arena constructs the same link/server/client objects
in the same order as :func:`repro.emulation.harness.emulate_shared_link`
— so every per-chunk record, rebuffer second, and QoE score must match
with ``==``, not approx.  This is the contract that makes arena results
interpretable against the rest of the repo.
"""

import pytest

from repro.abr import registry
from repro.arena import ArenaConfig, ScheduleConfig, run_arena
from repro.emulation import emulate_shared_link
from repro.emulation.harness import NetworkProfile
from repro.service.experiment import ExperimentArm, ExperimentConfig
from repro.traces import Trace
from repro.video import short_test_video


def _pin_case(controller, players, stagger_s, slow_start):
    manifest = short_test_video(num_chunks=10, num_levels=3)
    trace = Trace(
        [0.0, 40.0, 80.0],
        [4000.0, 1200.0, 2600.0],
        duration_s=240.0,
        name="pin-steps",
    )
    network = NetworkProfile(slow_start=slow_start)
    config = ArenaConfig(
        schedule=ScheduleConfig(
            players=players,
            mix=ExperimentConfig(
                arms=(ExperimentArm(name=controller, controller=controller),)
            ),
            arrivals="stagger",
            stagger_s=stagger_s,
        ),
        trace=trace,
        manifest=manifest,
        network=network,
    )
    arena = run_arena(config)
    reference = emulate_shared_link(
        [registry.create(controller) for _ in range(players)],
        trace,
        manifest,
        network=network,
        start_stagger_s=stagger_s,
    )
    return arena, reference


@pytest.mark.parametrize("controller", ["bola", "rb", "fair-bola"])
def test_two_player_arena_reproduces_emulate_shared_link(controller):
    arena, reference = _pin_case(controller, players=2, stagger_s=5.0, slow_start=True)
    assert len(arena.sessions) == len(reference) == 2
    for mine, theirs in zip(arena.sessions, reference):
        assert mine.records == theirs.records  # every field, ==
        assert mine.startup_delay_s == theirs.startup_delay_s
        assert mine.total_rebuffer_s == theirs.total_rebuffer_s
        assert mine.total_wall_time_s == theirs.total_wall_time_s
        assert mine.qoe().total == theirs.qoe().total


def test_parity_holds_for_wider_population_without_ramps():
    arena, reference = _pin_case("bola", players=6, stagger_s=2.0, slow_start=False)
    for mine, theirs in zip(arena.sessions, reference):
        assert mine.records == theirs.records
        assert mine.qoe().total == theirs.qoe().total


def test_parity_fairness_report_agrees():
    arena, reference = _pin_case("bola", players=2, stagger_s=5.0, slow_start=True)
    report = reference.fairness()
    bitrates = [o.mean_bitrate_kbps for o in arena.outcomes]
    assert bitrates == list(report.average_bitrates_kbps)
