"""Seeded population schedules: determinism, arrival models, churn."""

import pytest

from repro.arena import (
    ARRIVAL_MODES,
    CrossTrafficSpec,
    ScheduleConfig,
    build_schedule,
)
from repro.service.experiment import ExperimentArm, ExperimentConfig


def _mix(*names):
    return ExperimentConfig(
        arms=tuple(ExperimentArm(name=n, controller=n) for n in names)
    )


@pytest.mark.parametrize("arrivals", ARRIVAL_MODES)
def test_same_seed_same_schedule(arrivals):
    config = ScheduleConfig(
        players=40,
        seed=11,
        mix=_mix("bola", "rb"),
        arrivals=arrivals,
        stagger_s=2.0,
        max_watch_chunks=20,
    )
    assert build_schedule(config, 24) == build_schedule(config, 24)


def test_different_seeds_differ():
    base = dict(players=40, mix=_mix("bola"), arrivals="poisson")
    a = build_schedule(ScheduleConfig(seed=1, **base), 24)
    b = build_schedule(ScheduleConfig(seed=2, **base), 24)
    assert a != b


def test_stagger_arrivals_are_exact_multiples():
    config = ScheduleConfig(
        players=5, mix=_mix("bola"), arrivals="stagger", stagger_s=3.5
    )
    schedule = build_schedule(config, 10)
    assert [p.arrival_s for p in schedule.players] == [0.0, 3.5, 7.0, 10.5, 14.0]
    # No churn configured: everyone watches to the end.
    assert all(p.watch_chunks is None for p in schedule.players)


def test_poisson_arrivals_are_nondecreasing():
    config = ScheduleConfig(
        players=100, seed=3, mix=_mix("bola"), arrivals="poisson",
        mean_interarrival_s=0.5,
    )
    arrivals = [p.arrival_s for p in build_schedule(config, 10).players]
    assert arrivals[0] == 0.0
    assert all(a <= b for a, b in zip(arrivals, arrivals[1:]))


def test_flash_crowd_forms_bursts():
    config = ScheduleConfig(
        players=90, seed=7, mix=_mix("bola"), arrivals="flash-crowd",
        flash_crowds=3, flash_gap_s=60.0, flash_spread_s=2.0,
    )
    schedule = build_schedule(config, 10)
    for crowd in range(3):
        block = schedule.players[crowd * 30 : (crowd + 1) * 30]
        lo = crowd * 60.0
        assert all(lo <= p.arrival_s <= lo + 2.0 for p in block)


def test_watch_chunks_respect_bounds_and_churn_flag():
    config = ScheduleConfig(
        players=200, seed=5, mix=_mix("bola"), arrivals="poisson",
        min_watch_chunks=3, max_watch_chunks=50,
    )
    schedule = build_schedule(config, num_chunks=12)
    for p in schedule.players:
        # None = watches all 12; otherwise a strict truncation in bounds.
        assert p.watch_chunks is None or 3 <= p.watch_chunks < 12
    assert any(p.watch_chunks is not None for p in schedule.players)
    assert any(p.watch_chunks is None for p in schedule.players)


def test_arm_assignment_uses_service_hash_split():
    mix = _mix("bola", "rb")
    config = ScheduleConfig(players=50, mix=mix, arrivals="poisson")
    schedule = build_schedule(config, 10)
    for p in schedule.players:
        assert p.arm == mix.assign(f"player-{p.player_id}").name
    assert set(schedule.cohorts()) == {"bola", "rb"}


def test_cross_traffic_spec_validation():
    with pytest.raises(ValueError):
        CrossTrafficSpec(label="x", rate_kbps=0.0)
    with pytest.raises(ValueError):
        CrossTrafficSpec(label="x", rate_kbps=float("inf"))
    with pytest.raises(ValueError):
        CrossTrafficSpec(label="x", rate_kbps=100.0, start_s=5.0, stop_s=5.0)
    with pytest.raises(ValueError):
        CrossTrafficSpec(label="x", rate_kbps=100.0, period_s=0.0)
    with pytest.raises(ValueError):
        CrossTrafficSpec(label="x", rate_kbps=100.0, duty=0.0)
    # On-time per cycle: infinite when constant, period*duty when pulsed.
    assert CrossTrafficSpec(label="x", rate_kbps=100.0).on_s == float("inf")
    assert CrossTrafficSpec(
        label="x", rate_kbps=100.0, period_s=10.0, duty=0.25
    ).on_s == 2.5


def test_schedule_config_validation():
    with pytest.raises(ValueError):
        ScheduleConfig(players=0)
    with pytest.raises(ValueError):
        ScheduleConfig(players=1, arrivals="warp")
    with pytest.raises(ValueError):
        ScheduleConfig(players=1, mean_interarrival_s=0.0)
    with pytest.raises(ValueError):
        ScheduleConfig(players=1, min_watch_chunks=0)
    with pytest.raises(ValueError):
        ScheduleConfig(players=1, min_watch_chunks=5, max_watch_chunks=4)
    with pytest.raises(ValueError):
        build_schedule(ScheduleConfig(players=1), num_chunks=0)
