"""The chunk server, the emulated client, and the harness."""

from __future__ import annotations

import pytest

from repro.abr import ConstantLevelAlgorithm, SessionConfig
from repro.core.robust import RobustMPCController
from repro.emulation import (
    ChunkRequest,
    ChunkServer,
    NetworkProfile,
    emulate_session,
    emulate_shared_link,
)
from repro.sim import StartupPolicy, simulate_session
from repro.traces import Trace
from repro.video import envivio


class TestChunkServer:
    def test_response_includes_header(self, envivio_manifest):
        server = ChunkServer(envivio_manifest, header_kilobits=4.0)
        assert server.response_kilobits(0, 0) == pytest.approx(4.0 * 350.0 + 4.0)

    def test_handle_request_logs(self, envivio_manifest):
        server = ChunkServer(envivio_manifest)
        size, delay = server.handle_request(ChunkRequest(0, 3, 2, 1.0))
        assert size == server.response_kilobits(3, 2)
        assert delay == server.processing_delay_s
        assert server.requests_served == 1
        assert server.requests_by_client() == {0: 1}

    def test_rejects_unknown_chunk(self, envivio_manifest):
        server = ChunkServer(envivio_manifest)
        with pytest.raises(ValueError):
            server.handle_request(ChunkRequest(0, 999, 0, 0.0))
        with pytest.raises(ValueError):
            server.handle_request(ChunkRequest(0, 0, 99, 0.0))

    def test_validation(self, envivio_manifest):
        with pytest.raises(ValueError):
            ChunkServer(envivio_manifest, header_kilobits=-1.0)
        with pytest.raises(ValueError):
            ChunkServer(envivio_manifest, processing_delay_s=-1.0)


IDEAL = NetworkProfile(
    rtt_s=0.0, header_kilobits=0.0, server_processing_delay_s=0.0, slow_start=False
)


class TestEmulateSession:
    def test_completes_all_chunks(self, envivio_manifest, constant_trace):
        session = emulate_session(
            ConstantLevelAlgorithm(0), constant_trace, envivio_manifest
        )
        assert len(session.records) == 65

    def test_ideal_network_matches_simulator(self, envivio_manifest, step_trace):
        """With zero RTT, zero overhead, and no slow start, the byte-level
        emulator degenerates to the chunk-level simulator exactly."""
        sim = simulate_session(
            ConstantLevelAlgorithm(1), step_trace, envivio_manifest
        )
        emu = emulate_session(
            ConstantLevelAlgorithm(1), step_trace, envivio_manifest,
            network=IDEAL,
        )
        assert emu.total_rebuffer_s == pytest.approx(sim.total_rebuffer_s, abs=1e-6)
        assert emu.startup_delay_s == pytest.approx(sim.startup_delay_s, abs=1e-6)
        assert emu.total_wall_time_s == pytest.approx(sim.total_wall_time_s, abs=1e-6)
        for a, b in zip(emu.records, sim.records):
            assert a.download_time_s == pytest.approx(b.download_time_s, abs=1e-9)

    def test_network_overheads_slow_things_down(self, envivio_manifest, constant_trace):
        ideal = emulate_session(
            ConstantLevelAlgorithm(1), constant_trace, envivio_manifest,
            network=IDEAL,
        )
        lossy = emulate_session(
            ConstantLevelAlgorithm(1), constant_trace, envivio_manifest,
            network=NetworkProfile(rtt_s=0.2, header_kilobits=8.0, slow_start=True),
        )
        assert lossy.total_wall_time_s > ideal.total_wall_time_s
        # Measured throughput carries the HTTP bias: below link capacity.
        measured = [r.throughput_kbps for r in lossy.records]
        assert max(measured) < 1500.0

    def test_fixed_startup_policy(self, envivio_manifest, constant_trace):
        session = emulate_session(
            ConstantLevelAlgorithm(0), constant_trace, envivio_manifest,
            network=IDEAL, startup_policy=StartupPolicy.FIXED,
            fixed_startup_delay_s=5.0,
        )
        assert session.startup_delay_s == pytest.approx(5.0)

    def test_mpc_runs_in_emulation(self, envivio_manifest, hsdpa_traces):
        session = emulate_session(
            RobustMPCController(), hsdpa_traces[0], envivio_manifest
        )
        assert len(session.records) == 65
        assert session.qoe().total == session.qoe().total  # finite


class TestSharedLinkEmulation:
    def test_two_players_complete(self, envivio_manifest):
        trace = Trace.constant(3000.0, 3000.0)
        results = emulate_shared_link(
            [ConstantLevelAlgorithm(1), ConstantLevelAlgorithm(1)],
            trace, envivio_manifest, network=IDEAL,
        )
        assert len(results) == 2
        for r in results:
            assert len(r.records) == 65

    def test_competition_reduces_throughput(self, envivio_manifest):
        trace = Trace.constant(2000.0, 3000.0)
        solo = emulate_session(
            ConstantLevelAlgorithm(2), trace, envivio_manifest, network=IDEAL
        )
        pair = emulate_shared_link(
            [ConstantLevelAlgorithm(2), ConstantLevelAlgorithm(2)],
            trace, envivio_manifest, network=IDEAL,
        )
        solo_tput = solo.metrics().average_throughput_kbps
        pair_tput = pair[0].metrics().average_throughput_kbps
        assert pair_tput < solo_tput

    def test_stagger_offsets_start(self, envivio_manifest):
        trace = Trace.constant(5000.0, 3000.0)
        results = emulate_shared_link(
            [ConstantLevelAlgorithm(0), ConstantLevelAlgorithm(0)],
            trace, envivio_manifest, network=IDEAL, start_stagger_s=7.0,
        )
        # Startup delays are relative to each client's own start time.
        assert results[0].startup_delay_s >= 0
        assert results[1].startup_delay_s >= 0

    def test_validation(self, envivio_manifest, constant_trace):
        with pytest.raises(ValueError):
            emulate_shared_link([], constant_trace, envivio_manifest)
        with pytest.raises(ValueError):
            emulate_shared_link(
                [ConstantLevelAlgorithm(0)], constant_trace, envivio_manifest,
                start_stagger_s=-1.0,
            )


class TestNetworkProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkProfile(rtt_s=-0.1)
        with pytest.raises(ValueError):
            NetworkProfile(header_kilobits=-1.0)
        with pytest.raises(ValueError):
            NetworkProfile(server_processing_delay_s=-1.0)
