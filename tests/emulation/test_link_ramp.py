"""Slow-start ramp mechanics of the shared link, in detail."""

from __future__ import annotations

import math

import pytest

from repro.emulation import EventQueue, SharedTraceLink
from repro.traces import Trace


def make_link(bw_kbps=8000.0, rtt_s=0.1, slow_start=True, iw_kilobits=120.0):
    queue = EventQueue()
    link = SharedTraceLink(
        Trace.constant(bw_kbps, 600.0), queue, rtt_s=rtt_s,
        slow_start=slow_start, initial_window_kilobits=iw_kilobits,
    )
    return queue, link


class TestWindowRamp:
    def test_first_rtt_limited_by_initial_window(self):
        """During the first RTT the rate cap is IW/RTT regardless of link
        capacity."""
        queue, link = make_link(bw_kbps=100_000.0, rtt_s=0.1, iw_kilobits=120.0)
        done = {}
        # 120 kilobits = exactly one initial window -> one RTT to deliver.
        link.start_transfer(120.0, lambda t: done.setdefault("t", t))
        queue.run_until_idle()
        assert done["t"].completed_at_s == pytest.approx(0.1, rel=1e-6)

    def test_doubling_schedule(self):
        """k windows of geometric growth: IW * (2^k - 1) bits arrive in
        k RTTs (while the cap binds)."""
        queue, link = make_link(bw_kbps=1_000_000.0, rtt_s=0.1, iw_kilobits=120.0)
        done = {}
        # IW + 2IW + 4IW = 7 * 120 = 840 kb -> exactly 3 RTTs.
        link.start_transfer(840.0, lambda t: done.setdefault("t", t))
        queue.run_until_idle()
        assert done["t"].completed_at_s == pytest.approx(0.3, rel=1e-6)

    def test_ramp_stops_binding_at_capacity(self):
        """Once the window exceeds the bandwidth-delay product, the link
        rate takes over and throughput approaches capacity."""
        queue, link = make_link(bw_kbps=2000.0, rtt_s=0.05)
        done = {}
        link.start_transfer(60_000.0, lambda t: done.setdefault("t", t))
        queue.run_until_idle()
        assert done["t"].throughput_kbps() > 0.95 * 2000.0

    def test_each_transfer_ramps_independently(self):
        """Slow-start restart: a later transfer begins from IW again even
        though an earlier one already ramped up."""
        queue, link = make_link(bw_kbps=50_000.0, rtt_s=0.1, iw_kilobits=120.0)
        times = {}
        link.start_transfer(120.0, lambda t: times.setdefault("first", t))
        queue.run_until_idle()
        # Second identical transfer, much later: same 1-RTT duration.
        queue.schedule_at(5.0, lambda: link.start_transfer(
            120.0, lambda t: times.setdefault("second", t)))
        queue.run_until_idle()
        assert times["first"].duration_s == pytest.approx(0.1, rel=1e-6)
        assert times["second"].duration_s == pytest.approx(0.1, rel=1e-6)

    def test_disabled_ramp_ignores_window(self):
        queue, link = make_link(bw_kbps=1000.0, slow_start=False)
        done = {}
        link.start_transfer(500.0, lambda t: done.setdefault("t", t))
        queue.run_until_idle()
        assert done["t"].completed_at_s == pytest.approx(0.5)

    def test_validation(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            SharedTraceLink(Trace.constant(100.0, 10.0), queue, rtt_s=0.0)
        with pytest.raises(ValueError):
            SharedTraceLink(
                Trace.constant(100.0, 10.0), queue,
                initial_window_kilobits=0.0,
            )


class TestRampWithSharing:
    def test_ramping_transfer_leaves_capacity_to_others(self):
        """While one transfer is window-limited, a ramped-up competitor
        gets the leftover capacity (max-min with caps)."""
        queue, link = make_link(bw_kbps=2000.0, rtt_s=0.2, iw_kilobits=120.0)
        done = {}
        # First transfer: big, given time to finish its ramp.
        link.start_transfer(20_000.0, lambda t: done.setdefault("big", t))
        # Second arrives at t=5 (big is ramped) and is tiny: during its
        # first RTT its cap is 120/0.2 = 600 kbps, so the big one keeps
        # at least 1400 kbps rather than being halved.
        def start_small():
            link.start_transfer(60.0, lambda t: done.setdefault("small", t))

        queue.schedule_at(5.0, start_small)
        queue.run_until_idle()
        small = done["small"]
        assert small.duration_s == pytest.approx(0.1, rel=1e-6)  # 60kb at 600kbps
        big = done["big"]
        # Total time: 20000 kb with only a brief 600 kbps diversion ->
        # well under the 20 s a fair half-split would suggest.
        assert big.completed_at_s < 12.0
