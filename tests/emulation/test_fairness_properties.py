"""Property suite for max-min water-filling and (weighted) Jain fairness.

The water-fill properties run on exact ``Fraction`` arithmetic —
``_fill_level``/``_water_fill`` are numeric-generic, so conservation and
monotonicity can be asserted with ``==``/``<=`` rather than approx,
which is what makes them trustworthy as *allocator* laws rather than
float accidents.  The float-specific laws (identical share objects for
symmetric uncapped flows; Jain's exact-1.0 fast path) are tested on
floats, because they are promises about floats.
"""

from fractions import Fraction

import math

import pytest
from hypothesis import given, strategies as st

from repro.emulation.fairness import jain_fairness_index, unfairness
from repro.emulation.link import _water_fill

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_frac = st.fractions(min_value=0, max_value=10_000, max_denominator=997)
_pos_frac = st.fractions(
    min_value=Fraction(1, 997), max_value=10_000, max_denominator=997
)
_caps = st.lists(_pos_frac, min_size=1, max_size=12)

_rate = st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
)
_pos_weight = st.floats(
    min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# Water-fill: conservation, order-invariance, join/leave monotonicity
# ----------------------------------------------------------------------


@given(capacity=_pos_frac, caps=_caps)
def test_water_fill_conserves_capacity_exactly(capacity, caps):
    allocation = _water_fill(capacity, caps)
    assert sum(allocation) == min(capacity, sum(caps))


@given(capacity=_pos_frac, caps=_caps)
def test_water_fill_never_exceeds_caps(capacity, caps):
    allocation = _water_fill(capacity, caps)
    for got, cap in zip(allocation, caps):
        assert 0 <= got <= cap


@given(capacity=_pos_frac, caps=_caps, seed=st.integers(0, 2**32 - 1))
def test_water_fill_is_order_invariant(capacity, caps, seed):
    import random

    order = list(range(len(caps)))
    random.Random(seed).shuffle(order)
    base = _water_fill(capacity, caps)
    shuffled = _water_fill(capacity, [caps[i] for i in order])
    for pos, i in enumerate(order):
        assert shuffled[pos] == base[i]


@given(capacity=_pos_frac, caps=_caps, joiner=_pos_frac)
def test_water_fill_join_never_raises_anyone(capacity, caps, joiner):
    """A new flow can only take bandwidth, never grant it (max-min)."""
    before = _water_fill(capacity, caps)
    after = _water_fill(capacity, caps + [joiner])
    for b, a in zip(before, after):
        assert a <= b


@given(capacity=_pos_frac, caps=_caps)
def test_water_fill_leave_never_hurts_the_rest(capacity, caps):
    """Symmetric monotonicity: a departure frees capacity for everyone."""
    if len(caps) < 2:
        return
    full = _water_fill(capacity, caps)
    without_last = _water_fill(capacity, caps[:-1])
    for b, a in zip(full, without_last):
        assert a >= b


@given(
    capacity=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    finite=st.lists(
        st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
        max_size=6,
    ),
    uncapped=st.integers(min_value=2, max_value=8),
)
def test_water_fill_uncapped_flows_share_one_float(capacity, finite, uncapped):
    """Symmetric flows get the *bit-identical* share float — the property
    the incremental pool's single shared rate relies on."""
    caps = finite + [math.inf] * uncapped
    allocation = _water_fill(capacity, caps)
    shares = {allocation[i] for i in range(len(finite), len(caps))}
    assert len(shares) == 1


def test_water_fill_empty_is_empty():
    assert _water_fill(1000.0, []) == []


# ----------------------------------------------------------------------
# Jain index: exact-1.0 fast path, range, weighting semantics
# ----------------------------------------------------------------------


@given(value=_rate, n=st.integers(min_value=1, max_value=50))
def test_jain_equal_allocations_is_exactly_one(value, n):
    assert jain_fairness_index([value] * n) == 1.0


@given(values=st.lists(_rate, min_size=1, max_size=30))
def test_jain_always_in_unit_interval(values):
    j = jain_fairness_index(values)
    assert 0.0 < j <= 1.0


@given(values=st.lists(_rate, min_size=1, max_size=30))
def test_unfairness_matches_jain(values):
    j = jain_fairness_index(values)
    u = unfairness(values)
    assert u == pytest.approx(math.sqrt(max(0.0, 1.0 - j)))
    assert 0.0 <= u < 1.0


@given(
    values=st.lists(_rate, min_size=1, max_size=20),
    weights=st.data(),
)
def test_jain_weighted_in_unit_interval(values, weights):
    ws = weights.draw(
        st.lists(
            _pos_weight, min_size=len(values), max_size=len(values)
        )
    )
    j = jain_fairness_index(values, ws)
    assert 0.0 < j <= 1.0


@given(
    values=st.lists(_rate, min_size=1, max_size=20),
    extra=_rate,
)
def test_jain_zero_weight_entries_cast_no_vote(values, extra):
    ws = [1.0] * len(values)
    with_ghost = jain_fairness_index(values + [extra], ws + [0.0])
    without = jain_fairness_index(values, ws)
    assert with_ghost == without


@given(value=_rate, weight=_pos_weight)
def test_jain_single_player_is_perfectly_fair(value, weight):
    assert jain_fairness_index([value]) == 1.0
    assert jain_fairness_index([value], [weight]) == 1.0


def test_jain_empty_window_raises():
    with pytest.raises(ValueError):
        jain_fairness_index([])
    # All-zero weights: nobody was present — no allocation to measure.
    with pytest.raises(ValueError):
        jain_fairness_index([100.0, 200.0], [0.0, 0.0])


def test_jain_rejects_bad_inputs():
    with pytest.raises(ValueError):
        jain_fairness_index([-1.0])
    with pytest.raises(ValueError):
        jain_fairness_index([1.0, 2.0], [1.0])  # misaligned weights
    with pytest.raises(ValueError):
        jain_fairness_index([1.0], [-0.5])  # negative presence


def test_jain_starved_player_drags_the_index_down():
    # One player takes everything: J -> 1/n.
    n = 4
    j = jain_fairness_index([1000.0] + [0.0] * (n - 1))
    assert j == pytest.approx(1.0 / n)
