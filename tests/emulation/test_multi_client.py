"""Multi-client shared-link emulation — the Section 8 scenario in depth."""

from __future__ import annotations

import pytest

from repro.abr import ConstantLevelAlgorithm, create
from repro.emulation import (
    ChunkServer,
    EventQueue,
    NetworkProfile,
    SharedTraceLink,
    emulate_shared_link,
)
from repro.traces import Trace
from repro.video import envivio

IDEAL = NetworkProfile(
    rtt_s=0.0, header_kilobits=0.0, server_processing_delay_s=0.0,
    slow_start=False,
)


class TestCapacityConservation:
    def test_total_bits_bounded_by_link(self, envivio_manifest):
        """N greedy clients can never jointly pull more than the link
        carries."""
        trace = Trace.constant(3000.0, 4000.0)
        results = emulate_shared_link(
            [ConstantLevelAlgorithm(-1) for _ in range(3)],
            trace, envivio_manifest, network=IDEAL,
        )
        finish = max(r.total_wall_time_s for r in results)
        total_kilobits = sum(
            sum(rec.size_kilobits for rec in r.records) for r in results
        )
        assert total_kilobits <= trace.kilobits_between(0, finish) + 1e-3

    def test_symmetric_clients_get_symmetric_outcomes(self, envivio_manifest):
        trace = Trace.constant(2400.0, 4000.0)
        results = emulate_shared_link(
            [ConstantLevelAlgorithm(1), ConstantLevelAlgorithm(1)],
            trace, envivio_manifest, network=IDEAL,
        )
        a, b = results
        assert a.metrics().average_bitrate_kbps == pytest.approx(
            b.metrics().average_bitrate_kbps
        )
        assert a.total_wall_time_s == pytest.approx(b.total_wall_time_s, rel=0.05)


class TestScalingDown:
    def test_more_players_less_throughput_each(self, envivio_manifest):
        trace = Trace.constant(3000.0, 6000.0)
        measured = []
        for n in (1, 2, 4):
            results = emulate_shared_link(
                [create("bb") for _ in range(n)], trace, envivio_manifest,
                network=IDEAL,
            )
            measured.append(
                sum(r.metrics().average_throughput_kbps for r in results) / n
            )
        assert measured[0] > measured[1] > measured[2]

    def test_adaptive_players_converge_to_fair_share(self, envivio_manifest):
        """Two BB players on a 2 Mbps link each end up near 1 Mbps of
        delivered video."""
        trace = Trace.constant(2000.0, 6000.0)
        results = emulate_shared_link(
            [create("bb"), create("bb")], trace, envivio_manifest,
            network=IDEAL,
        )
        for r in results:
            assert 600.0 <= r.metrics().average_bitrate_kbps <= 1400.0


class TestServerSharedState:
    def test_server_counts_both_clients(self, envivio_manifest):
        queue = EventQueue()
        trace = Trace.constant(5000.0, 4000.0)
        link = SharedTraceLink(trace, queue, slow_start=False)
        server = ChunkServer(envivio_manifest)
        from repro.abr import SessionConfig
        from repro.emulation import EmulatedClient

        clients = [
            EmulatedClient(
                client_id=i,
                algorithm=ConstantLevelAlgorithm(0),
                manifest=envivio_manifest,
                config=SessionConfig(),
                queue=queue,
                link=link,
                server=server,
                rtt_s=0.0,
            )
            for i in range(2)
        ]
        queue.run_until_idle()
        assert all(c.finished for c in clients)
        assert server.requests_served == 2 * 65
        assert server.requests_by_client() == {0: 65, 1: 65}
