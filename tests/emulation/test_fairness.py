"""Fairness metrics and their attachment to shared-link results."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.abr import create
from repro.emulation import (
    FairnessReport,
    NetworkProfile,
    SharedLinkResult,
    emulate_shared_link,
    fairness_report,
    jain_fairness_index,
    unfairness,
)
from repro.traces import Trace
from repro.video import short_test_video


class TestJainIndex:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_client_is_fair(self):
        assert jain_fairness_index([123.0]) == pytest.approx(1.0)

    def test_one_taker_gives_one_over_n(self):
        assert jain_fairness_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        # Everyone equally starved: defined as fair, not a ZeroDivision.
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_known_value(self):
        # (1+2+3)^2 / (3 * (1+4+9)) = 36/42
        assert jain_fairness_index([1.0, 2.0, 3.0]) == pytest.approx(36 / 42)

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_fairness_index([])
        with pytest.raises(ValueError):
            jain_fairness_index([1.0, -0.1])

    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=20))
    def test_bounded_between_one_over_n_and_one(self, values):
        jain = jain_fairness_index(values)
        assert 1.0 / len(values) - 1e-9 <= jain <= 1.0 + 1e-9

    @given(
        values=st.lists(st.floats(0.01, 1e4), min_size=1, max_size=10),
        scale=st.floats(0.01, 100.0),
    )
    def test_scale_invariant(self, values, scale):
        assert jain_fairness_index([v * scale for v in values]) == pytest.approx(
            jain_fairness_index(values), rel=1e-9
        )


class TestUnfairness:
    def test_zero_for_equal_shares(self):
        assert unfairness([4.0, 4.0]) == pytest.approx(0.0)

    def test_matches_definition(self):
        values = [1.0, 2.0, 3.0]
        assert unfairness(values) == pytest.approx(
            math.sqrt(1.0 - jain_fairness_index(values))
        )

    def test_never_nan_on_equal_inputs(self):
        # Float error can push Jain slightly above 1; sqrt must not NaN.
        assert unfairness([1 / 3, 1 / 3, 1 / 3]) == pytest.approx(0.0, abs=1e-6)


class TestFairnessReport:
    def test_from_sessions(self):
        class FakeMetrics:
            def __init__(self, rate):
                self.average_bitrate_kbps = rate

        class FakeSession:
            def __init__(self, rate):
                self._rate = rate

            def metrics(self):
                return FakeMetrics(self._rate)

        report = fairness_report([FakeSession(800.0), FakeSession(1200.0)])
        assert isinstance(report, FairnessReport)
        assert report.num_clients == 2
        assert report.average_bitrates_kbps == (800.0, 1200.0)
        assert report.jain_index == pytest.approx(
            jain_fairness_index([800.0, 1200.0])
        )
        assert "Jain" in report.describe()
        assert "unfairness" in report.describe()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fairness_report([])


class TestSharedLinkIntegration:
    def test_emulate_shared_link_result_carries_fairness(self):
        manifest = short_test_video(num_chunks=6, num_levels=3)
        trace = Trace(
            [0.0], [3000.0], duration_s=4 * manifest.total_duration_s, name="t"
        )
        results = emulate_shared_link(
            [create("rb"), create("rb")],
            trace,
            manifest,
            network=NetworkProfile(rtt_s=0.02, slow_start=False),
        )
        assert isinstance(results, SharedLinkResult)
        assert len(results) == 2  # still a list of per-player results
        report = results.fairness()
        assert isinstance(report, FairnessReport)
        assert report.num_clients == 2
        assert 0.5 <= report.jain_index <= 1.0
        # Identical algorithms on a fat link should split nearly evenly.
        assert report.unfairness < 0.5


class TestZeroChunkSessions:
    """Fault-injected runs can leave clients with zero chunks; the index
    must skip them (and say so) instead of crashing mid-report."""

    class _Good:
        def __init__(self, rate):
            self._rate = rate

        def metrics(self):
            class M:
                pass

            m = M()
            m.average_bitrate_kbps = self._rate
            return m

    class _ZeroChunk:
        def metrics(self):
            raise ValueError("session has no chunks")

    def test_zero_chunk_sessions_are_excluded_and_counted(self):
        report = fairness_report(
            [self._Good(800.0), self._ZeroChunk(), self._Good(800.0)]
        )
        assert report.num_clients == 2
        assert report.num_zero_chunk_sessions == 1
        assert report.jain_index == pytest.approx(1.0)
        assert "1 zero-chunk excluded" in report.describe()

    def test_no_zero_chunk_sessions_keeps_describe_unchanged(self):
        report = fairness_report([self._Good(800.0), self._Good(1200.0)])
        assert report.num_zero_chunk_sessions == 0
        assert "zero-chunk" not in report.describe()

    def test_all_zero_chunk_is_a_clear_error(self):
        with pytest.raises(ValueError, match="zero chunks"):
            fairness_report([self._ZeroChunk(), self._ZeroChunk()])

    def test_real_zero_chunk_session_result_is_excluded(self):
        from repro.abr.base import SessionConfig
        from repro.sim.session import SessionResult

        empty = SessionResult(
            algorithm_name="mpc",
            trace_name="t",
            records=(),
            startup_delay_s=0.0,
            total_rebuffer_s=0.0,
            total_wall_time_s=0.0,
            config=SessionConfig(),
        )
        report = fairness_report([self._Good(640.0), empty])
        assert report.average_bitrates_kbps == (640.0,)
        assert report.num_zero_chunk_sessions == 1
