"""The trace-shaped shared bottleneck link."""

from __future__ import annotations

import pytest

from repro.emulation import EventQueue, SharedTraceLink
from repro.emulation.link import _water_fill
from repro.traces import Trace


def run_transfer(link, queue, size):
    done = {}
    link.start_transfer(size, lambda t: done.setdefault("transfer", t))
    queue.run_until_idle()
    return done["transfer"]


class TestWaterFill:
    def test_uncapped_equal_split(self):
        assert _water_fill(900.0, [float("inf")] * 3) == pytest.approx([300.0] * 3)

    def test_capped_flow_redistributes(self):
        rates = _water_fill(900.0, [100.0, float("inf"), float("inf")])
        assert rates == pytest.approx([100.0, 400.0, 400.0])

    def test_all_capped_below_capacity(self):
        rates = _water_fill(900.0, [100.0, 200.0])
        assert rates == pytest.approx([100.0, 200.0])

    def test_empty(self):
        assert _water_fill(900.0, []) == []

    def test_conservation(self):
        caps = [150.0, 600.0, float("inf"), 80.0]
        rates = _water_fill(1000.0, caps)
        assert sum(rates) == pytest.approx(1000.0)
        assert all(r <= c + 1e-9 for r, c in zip(rates, caps))


class TestSingleTransfer:
    def test_no_ramp_matches_trace_inverse(self, step_trace):
        queue = EventQueue()
        link = SharedTraceLink(step_trace, queue, slow_start=False)
        transfer = run_transfer(link, queue, 5000.0)
        assert transfer.completed_at_s == pytest.approx(
            step_trace.time_to_download(0.0, 5000.0), rel=1e-9
        )

    def test_no_ramp_constant_link(self):
        trace = Trace.constant(1000.0, 600.0)
        queue = EventQueue()
        link = SharedTraceLink(trace, queue, slow_start=False)
        transfer = run_transfer(link, queue, 2500.0)
        assert transfer.completed_at_s == pytest.approx(2.5)
        assert transfer.throughput_kbps() == pytest.approx(1000.0)

    def test_slow_start_delays_short_transfers(self):
        trace = Trace.constant(8000.0, 600.0)
        plain_q = EventQueue()
        ramp_q = EventQueue()
        plain = SharedTraceLink(trace, plain_q, slow_start=False)
        ramped = SharedTraceLink(trace, ramp_q, rtt_s=0.1, slow_start=True)
        t_plain = run_transfer(plain, plain_q, 1400.0).completed_at_s
        t_ramp = run_transfer(ramped, ramp_q, 1400.0).completed_at_s
        assert t_ramp > t_plain

    def test_slow_start_bias_shrinks_for_long_transfers(self):
        """The HTTP measurement bias: short chunks under-report bandwidth
        far more than long ones."""
        trace = Trace.constant(6000.0, 600.0)

        def measured(size):
            queue = EventQueue()
            link = SharedTraceLink(trace, queue, rtt_s=0.1, slow_start=True)
            return run_transfer(link, queue, size).throughput_kbps()

        short_bias = measured(600.0) / 6000.0
        long_bias = measured(60_000.0) / 6000.0
        assert short_bias < long_bias
        assert long_bias > 0.9

    def test_transfer_validation(self):
        queue = EventQueue()
        link = SharedTraceLink(Trace.constant(1000.0, 60.0), queue)
        with pytest.raises(ValueError):
            link.start_transfer(0.0, lambda t: None)

    def test_throughput_requires_completion(self):
        queue = EventQueue()
        link = SharedTraceLink(Trace.constant(1000.0, 60.0), queue)
        transfer = link.start_transfer(100.0, lambda t: None)
        with pytest.raises(RuntimeError):
            transfer.throughput_kbps()

    def test_zero_bandwidth_interval_stalls_then_resumes(self):
        trace = Trace([0.0, 1.0, 3.0], [1000.0, 0.0, 1000.0], duration_s=10.0)
        queue = EventQueue()
        link = SharedTraceLink(trace, queue, slow_start=False)
        transfer = run_transfer(link, queue, 2000.0)
        # 1 s at 1000, 2 s dead, 1 s at 1000.
        assert transfer.completed_at_s == pytest.approx(4.0)


class TestSharedTransfers:
    def test_two_equal_transfers_share_fairly(self):
        trace = Trace.constant(1000.0, 600.0)
        queue = EventQueue()
        link = SharedTraceLink(trace, queue, slow_start=False)
        done = []
        link.start_transfer(1000.0, done.append)
        link.start_transfer(1000.0, done.append)
        queue.run_until_idle()
        # Both progress at 500 kbps until the first finishes; identical
        # sizes finish together at t=2.
        assert [t.completed_at_s for t in done] == pytest.approx([2.0, 2.0])

    def test_short_transfer_releases_capacity(self):
        trace = Trace.constant(1000.0, 600.0)
        queue = EventQueue()
        link = SharedTraceLink(trace, queue, slow_start=False)
        done = {}
        link.start_transfer(3000.0, lambda t: done.setdefault("long", t))
        link.start_transfer(500.0, lambda t: done.setdefault("short", t))
        queue.run_until_idle()
        # Short: 500 kb at 500 kbps -> t=1.  Long: 500 kb by t=1, then
        # full rate: remaining 2500 kb -> finishes at t=3.5.
        assert done["short"].completed_at_s == pytest.approx(1.0)
        assert done["long"].completed_at_s == pytest.approx(3.5)

    def test_staggered_arrival(self):
        trace = Trace.constant(1000.0, 600.0)
        queue = EventQueue()
        link = SharedTraceLink(trace, queue, slow_start=False)
        done = {}
        link.start_transfer(2000.0, lambda t: done.setdefault("first", t))
        queue.schedule_at(
            1.0,
            lambda: link.start_transfer(500.0, lambda t: done.setdefault("second", t)),
        )
        queue.run_until_idle()
        # First runs alone for 1 s (1000 kb), then shares at 500 kbps.
        # Second: 500 kb at 500 kbps -> t=2.  First then has 500 kb left
        # and the full 1000 kbps again -> t=2.5.
        assert done["second"].completed_at_s == pytest.approx(2.0)
        assert done["first"].completed_at_s == pytest.approx(2.5)

    def test_conservation_across_many_transfers(self):
        """Total delivered bits never exceed link capacity x time."""
        trace = Trace([0.0, 5.0], [800.0, 1600.0], duration_s=20.0)
        queue = EventQueue()
        link = SharedTraceLink(trace, queue, slow_start=False)
        done = []
        for size in (1000.0, 2000.0, 500.0, 1500.0):
            link.start_transfer(size, done.append)
        queue.run_until_idle()
        finish = max(t.completed_at_s for t in done)
        total = sum(t.size_kilobits for t in done)
        assert total <= trace.kilobits_between(0.0, finish) + 1e-6
        # And the link was never idle while work remained: the last finish
        # time matches the trace's exact inverse for the aggregate size.
        assert finish == pytest.approx(trace.time_to_download(0.0, total), rel=1e-9)
