"""The incremental link is float-identical to the all-pairs oracle.

Random workloads (seeded arrivals, sizes, step traces, with and without
slow-start) run through both :class:`SharedTraceLink` and the preserved
:class:`AllPairsSharedTraceLink`; completion times and callback order
must match with ``==`` — both engines share ``_fill_level`` arithmetic
and the pool's uniform delta is bit-identical to per-flow scalar
subtraction, so any drift is a bug, not noise.
"""

import random

import pytest

from repro.emulation.clock import EventQueue
from repro.emulation.link import SharedTraceLink
from repro.emulation.reference import AllPairsSharedTraceLink
from repro.traces.trace import Trace


def _random_workload(seed, n_transfers):
    """(start_time, size_kilobits) pairs, seeded."""
    rng = random.Random(seed)
    jobs = []
    t = 0.0
    for _ in range(n_transfers):
        t += rng.uniform(0.0, 3.0)
        jobs.append((t, rng.uniform(50.0, 8000.0)))
    return jobs


def _run(link_cls, trace, jobs, slow_start):
    queue = EventQueue()
    link = link_cls(trace, queue, rtt_s=0.08, slow_start=slow_start)
    completions = []

    def schedule(when, size, tag):
        queue.schedule_at(
            when,
            lambda: link.start_transfer(
                size, lambda tr: completions.append((tag, queue.now))
            ),
        )

    for tag, (when, size) in enumerate(jobs):
        schedule(when, size, tag)
    queue.run_until_idle()
    return completions


_TRACES = [
    Trace.constant(3000.0, 400.0, name="const"),
    Trace(
        [0.0, 30.0, 60.0, 90.0],
        [5000.0, 800.0, 2500.0, 1200.0],
        duration_s=120.0,
        name="steps",
    ),
    # A dead segment: transfers must stall through it identically.
    Trace(
        [0.0, 20.0, 25.0],
        [4000.0, 0.0, 4000.0],
        duration_s=60.0,
        name="blackout",
    ),
]


@pytest.mark.parametrize("trace", _TRACES, ids=lambda t: t.name)
@pytest.mark.parametrize("slow_start", [False, True], ids=["no-ramp", "ramp"])
@pytest.mark.parametrize("seed", range(6))
def test_incremental_matches_all_pairs_oracle(trace, slow_start, seed):
    jobs = _random_workload(seed, n_transfers=25)
    got = _run(SharedTraceLink, trace, jobs, slow_start)
    want = _run(AllPairsSharedTraceLink, trace, jobs, slow_start)
    assert got == want  # same order, float-identical times


@pytest.mark.parametrize("slow_start", [False, True], ids=["no-ramp", "ramp"])
def test_simultaneous_arrivals_complete_in_id_order(slow_start):
    """Symmetric transfers all land at once; both engines must break the
    tie the same way (transfer-id order)."""
    trace = Trace.constant(2000.0, 400.0, name="const")
    jobs = [(1.0, 640.0)] * 8
    got = _run(SharedTraceLink, trace, jobs, slow_start)
    want = _run(AllPairsSharedTraceLink, trace, jobs, slow_start)
    assert got == want
    assert [tag for tag, _ in got] == sorted(tag for tag, _ in got)


def test_large_population_still_exact():
    trace = Trace(
        [0.0, 40.0], [60_000.0, 20_000.0], duration_s=80.0, name="two-step"
    )
    jobs = _random_workload(99, n_transfers=120)
    got = _run(SharedTraceLink, trace, jobs, slow_start=False)
    want = _run(AllPairsSharedTraceLink, trace, jobs, slow_start=False)
    assert got == want
