"""The discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.emulation import EventQueue


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(3.0, lambda: seen.append("c"))
        queue.schedule_at(1.0, lambda: seen.append("a"))
        queue.schedule_at(2.0, lambda: seen.append("b"))
        queue.run_until_idle()
        assert seen == ["a", "b", "c"]

    def test_fifo_on_ties(self):
        queue = EventQueue()
        seen = []
        for tag in ("first", "second", "third"):
            queue.schedule_at(5.0, lambda t=tag: seen.append(t))
        queue.run_until_idle()
        assert seen == ["first", "second", "third"]

    def test_now_advances(self):
        queue = EventQueue()
        times = []
        queue.schedule_at(2.5, lambda: times.append(queue.now))
        queue.schedule_in(4.0, lambda: times.append(queue.now))
        queue.run_until_idle()
        assert times == [2.5, 4.0]

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        seen = []

        def first():
            seen.append("first")
            queue.schedule_in(1.0, lambda: seen.append("second"))

        queue.schedule_at(1.0, first)
        queue.run_until_idle()
        assert seen == ["first", "second"]
        assert queue.now == pytest.approx(2.0)

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.schedule_at(5.0, lambda: queue.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError, match="past"):
            queue.run_until_idle()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_in(-1.0, lambda: None)

    def test_event_budget(self):
        queue = EventQueue()

        def forever():
            queue.schedule_in(1.0, forever)

        queue.schedule_at(0.0, forever)
        with pytest.raises(RuntimeError, match="budget"):
            queue.run_until_idle(max_events=100)

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert len(queue) == 0
        queue.schedule_at(7.0, lambda: None)
        assert queue.peek_time() == 7.0
        assert len(queue) == 1

    def test_run_next_returns_false_when_idle(self):
        assert EventQueue().run_next() is False
