"""Trace-replay contract: a timeline re-scores to the live QoE exactly."""

import dataclasses
import io

import itertools

import pytest

from repro.abr.registry import available, create
from repro.emulation.harness import emulate_session
from repro.obs import (
    ChunkDownload,
    JsonlSink,
    RingBufferSink,
    SessionSummary,
    Tracer,
    read_timeline,
    replay_session,
    split_sessions,
    verify_timeline,
)
from repro.sim.session import simulate_session


def _traced_sim(algorithm_name, trace, manifest, config=None):
    sink = RingBufferSink(capacity=100_000)
    tracer = Tracer([sink])
    session = simulate_session(
        create(algorithm_name), trace, manifest, config, tracer=tracer
    )
    return session, list(sink.events())


def test_replay_matches_live_qoe_exactly(short_manifest, step_trace):
    session, events = _traced_sim("mpc", step_trace, short_manifest)
    replayed = replay_session(events)
    assert replayed.qoe.total == session.qoe().total  # bitwise equality
    assert replayed.total_rebuffer_s == session.total_rebuffer_s
    assert list(replayed.level_indices) == session.level_indices
    assert replayed.mismatches() == []


@pytest.mark.parametrize("name", sorted(available()))
def test_every_registered_abr_replays_exactly(name, short_manifest, constant_trace):
    session, events = _traced_sim(name, constant_trace, short_manifest)
    replayed = replay_session(events)
    assert replayed.qoe.total == session.qoe().total
    assert replayed.mismatches() == []


def test_emulation_backend_replays_exactly(short_manifest, constant_trace):
    sink = RingBufferSink()
    tracer = Tracer([sink])
    session = emulate_session(
        create("fastmpc"), constant_trace, short_manifest, tracer=tracer
    )
    replayed = replay_session(list(sink.events()))
    assert replayed.qoe.total == session.qoe().total
    assert replayed.mismatches() == []


def test_replay_through_jsonl_file(tmp_path, short_manifest, constant_trace):
    path = str(tmp_path / "timeline.jsonl")
    tracer = Tracer([JsonlSink(path)])
    session = simulate_session(
        create("robust-mpc"), constant_trace, short_manifest, tracer=tracer
    )
    tracer.close()
    events = read_timeline(path)
    assert verify_timeline(events) == {}
    assert replay_session(events).qoe.total == session.qoe().total


def test_read_timeline_accepts_stream_and_blank_lines():
    stream = io.StringIO(
        '{"kind":"rebuffer","session_id":"s","t_mono":0.0,'
        '"chunk_index":1,"duration_s":0.5,"wall_time_s":9.0}\n'
        "\n"
    )
    events = read_timeline(stream)
    assert len(events) == 1
    assert events[0].duration_s == 0.5


def test_verify_timeline_flags_tampered_rebuffer(short_manifest, step_trace):
    _, events = _traced_sim("bb", step_trace, short_manifest)
    tampered = [
        dataclasses.replace(e, rebuffer_s=e.rebuffer_s + 1.0)
        if isinstance(e, ChunkDownload) and e.chunk_index == 2
        else e
        for e in events
    ]
    problems = verify_timeline(tampered)
    assert list(problems) == ["bb:step"]
    assert any("rebuffer" in p for p in problems["bb:step"])
    assert any("qoe" in p for p in problems["bb:step"])


def test_verify_timeline_flags_missing_summary(short_manifest, constant_trace):
    _, events = _traced_sim("rb", constant_trace, short_manifest)
    without_summary = [e for e in events if not isinstance(e, SessionSummary)]
    problems = verify_timeline(without_summary)
    assert problems == {"rb:constant-1500": ["timeline has no session-summary event"]}


def test_split_sessions_preserves_order(short_manifest, constant_trace):
    _, a = _traced_sim("rb", constant_trace, short_manifest)
    _, b = _traced_sim("bb", constant_trace, short_manifest)
    mixed = [
        x
        for pair in itertools.zip_longest(a, b)
        for x in pair
        if x is not None
    ]
    sessions = split_sessions(mixed)
    assert sessions["rb:constant-1500"] == a
    assert sessions["bb:constant-1500"] == b


def test_replay_rejects_empty_timeline():
    with pytest.raises(ValueError, match="no chunk-download"):
        replay_session([])


def test_session_events_cover_eq_accounting(short_manifest, step_trace):
    """Per-chunk events carry the Eq. 1-4 quantities self-consistently."""
    session, events = _traced_sim("mpc", step_trace, short_manifest)
    downloads = [e for e in events if isinstance(e, ChunkDownload)]
    assert len(downloads) == short_manifest.num_chunks
    for event, record in zip(downloads, session.records):
        assert event.chunk_index == record.chunk_index
        assert event.level == record.level_index
        assert event.size_kilobits == record.size_kilobits
        assert event.download_time_s == record.download_time_s
        assert event.rebuffer_s == record.rebuffer_s
        assert event.buffer_after_s == record.buffer_after_s


def test_prediction_spans_replay_error_sequences_exactly(
    short_manifest, step_trace
):
    """The PredictionSpan stream reproduces the live run's predicted-vs-
    actual error sequence bit for bit: each span's recorded error equals
    ``(predicted - active) / active`` recomputed from its own floats,
    and spans arrive per predictor in chunk order."""
    from repro.obs import prediction_errors

    session, events = _traced_sim("fastmpc-gap", step_trace, short_manifest)
    by_predictor = prediction_errors(events)  # re-verifies every span
    assert set(by_predictor) == {"gap-harmonic"}
    spans = by_predictor["gap-harmonic"]
    assert [s.chunk_index for s in spans] == [
        r.chunk_index for r in session.records
    ]
    for span, record in zip(spans, session.records):
        assert span.actual_kbps == record.throughput_kbps
        assert span.duration_s == record.download_time_s
        # gap-free link: active rate IS the wall rate, same float
        assert span.active_kbps == span.actual_kbps


def test_prediction_errors_reject_corrupt_span(short_manifest, step_trace):
    from repro.obs import prediction_errors

    _, events = _traced_sim("fastmpc", step_trace, short_manifest)
    tampered = [
        dataclasses.replace(e, error=e.error + 1.0)
        if e.kind == "prediction-span"
        else e
        for e in events
    ]
    with pytest.raises(ValueError, match="does not replay"):
        prediction_errors(tampered)


def test_prediction_spans_survive_jsonl_round_trip(
    tmp_path, short_manifest, step_trace
):
    """Serialized spans decode to the same floats, so the replay check
    passes on a timeline read back from disk."""
    from repro.obs import prediction_errors, read_timeline

    path = tmp_path / "live.jsonl"
    sink = JsonlSink(str(path))
    tracer = Tracer([sink])
    simulate_session(
        create("fastmpc"), step_trace, short_manifest, tracer=tracer
    )
    sink.close()
    events = read_timeline(str(path))
    direct = prediction_errors(events)
    assert set(direct) == {"harmonic"}
    assert len(direct["harmonic"]) == short_manifest.num_chunks
