"""Unit tests for the event vocabulary and its JSONL codec."""

import dataclasses
import math

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    ArenaSummary,
    ArenaWindow,
    ChunkDecision,
    ChunkDownload,
    FleetShard,
    FleetSummary,
    PredictionSpan,
    Rebuffer,
    RequestSpan,
    SessionSummary,
    SolverCall,
    TableLookup,
    event_from_dict,
    event_from_json,
    event_to_dict,
    event_to_json,
)


def _one_of_each():
    return [
        ChunkDecision(
            session_id="s",
            t_mono=1.0,
            chunk_index=0,
            buffer_s=4.0,
            prev_level=None,
            level=2,
            bitrate_kbps=1200.0,
            wall_time_s=0.0,
            decide_wall_s=0.001,
        ),
        ChunkDownload(
            session_id="s",
            t_mono=2.0,
            chunk_index=0,
            level=2,
            bitrate_kbps=1200.0,
            size_kilobits=4800.0,
            download_time_s=1.5,
            throughput_kbps=3200.0,
            rebuffer_s=0.25,
            buffer_before_s=4.0,
            buffer_after_s=6.25,
            wall_time_end_s=1.5,
            waited_s=0.0,
        ),
        Rebuffer(session_id="s", t_mono=2.5, chunk_index=0, duration_s=0.25, wall_time_s=1.5),
        SolverCall(
            session_id="s", t_mono=3.0, op="solve-horizon", instances=1, plans=3125, wall_s=0.02
        ),
        TableLookup(
            session_id="s",
            t_mono=4.0,
            buffer_bin=3,
            prev_level=1,
            throughput_bin=17,
            level=2,
            num_runs=211,
            depth=8,
            wall_s=1e-5,
        ),
        RequestSpan(
            session_id="s",
            t_mono=5.0,
            trace_id="t-00000001",
            name="decide",
            wall_s=0.0004,
            status="ok",
            chaos=None,
        ),
        PredictionSpan(
            session_id="s",
            t_mono=5.5,
            chunk_index=7,
            predictor="gap-harmonic",
            predicted_kbps=1450.25,
            actual_kbps=1212.5,
            active_kbps=1617.9012345678901,
            error=-0.1036288148148148,
            duration_s=4.125,
            idle_s=0.75,
            stall_s=1.03125,
        ),
        SessionSummary(
            session_id="s",
            t_mono=6.0,
            algorithm="mpc",
            trace_name="fcc-0000",
            num_chunks=48,
            startup_delay_s=1.2,
            total_rebuffer_s=0.25,
            total_wall_time_s=192.0,
            qoe_total=38000.5,
            weight_switching=1.0,
            weight_rebuffering=3000.0,
            weight_startup=3000.0,
        ),
        FleetShard(
            session_id="fleet", t_mono=7.0, shard_index=3, sessions=4096, wall_s=1.25
        ),
        FleetSummary(
            session_id="fleet",
            t_mono=8.0,
            sessions=1000000,
            shards=245,
            workers=8,
            wall_s=210.5,
            sessions_per_s=4750.6,
        ),
        ArenaWindow(
            session_id="arena:fcc-0000#seed7",
            t_mono=9.0,
            index=2,
            t0_s=20.0,
            t1_s=30.0,
            active_players=48,
            utilization=0.93,
            jain=0.87,
            switches=5,
            instability=5 / 48,
        ),
        ArenaSummary(
            session_id="arena:fcc-0000#seed7",
            t_mono=10.0,
            players=1000,
            duration_s=412.5,
            utilization=0.91,
            jain=0.84,
            unfairness=0.4,
            switches=1310,
            cross_kilobits=250000.0,
        ),
    ]


def test_registry_covers_every_event_type():
    classes = {type(e) for e in _one_of_each()}
    assert set(EVENT_TYPES.values()) == classes
    for kind, cls in EVENT_TYPES.items():
        assert cls.kind == kind


@pytest.mark.parametrize("event", _one_of_each(), ids=lambda e: e.kind)
def test_json_round_trip_is_lossless(event):
    line = event_to_json(event)
    assert "\n" not in line
    restored = event_from_json(line)
    assert restored == event
    assert type(restored) is type(event)


def test_round_trip_preserves_awkward_floats():
    event = SolverCall(
        session_id="s",
        t_mono=0.1 + 0.2,  # the classic non-representable sum
        op="solve-horizon",
        instances=1,
        plans=1,
        wall_s=math.inf,
    )
    restored = event_from_json(event_to_json(event))
    assert restored.t_mono == event.t_mono
    assert restored.wall_s == math.inf


def test_dict_encoding_leads_with_kind():
    payload = event_to_dict(_one_of_each()[0])
    assert next(iter(payload)) == "kind"
    assert payload["kind"] == "chunk-decision"


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown event kind"):
        event_from_dict({"kind": "nope", "session_id": "s", "t_mono": 0.0})


def test_unknown_field_rejected():
    payload = event_to_dict(_one_of_each()[2])
    payload["bogus"] = 1
    with pytest.raises(ValueError, match="unknown fields"):
        event_from_dict(payload)


def test_non_object_payload_rejected():
    with pytest.raises(ValueError):
        event_from_dict([1, 2, 3])
    with pytest.raises(ValueError, match="not a valid JSONL"):
        event_from_json("{broken")


def test_events_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        _one_of_each()[0].level = 1
