"""Unit tests for the tracer, its sinks, and spans."""

import io

import pytest

from repro.obs.events import Rebuffer, RequestSpan, SolverCall, event_from_json
from repro.obs.tracer import NULL_TRACER, JsonlSink, RingBufferSink, Tracer


def _event(i: int, session_id: str = "s") -> SolverCall:
    return SolverCall(
        session_id=session_id, t_mono=float(i), op="solve-horizon",
        instances=1, plans=i, wall_s=0.0,
    )


class TestRingBufferSink:
    def test_below_capacity_keeps_everything(self):
        sink = RingBufferSink(capacity=8)
        for i in range(5):
            sink.emit(_event(i))
        assert len(sink) == 5
        assert sink.dropped == 0
        assert [e.plans for e in sink.events()] == [0, 1, 2, 3, 4]

    def test_above_capacity_drops_oldest(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.emit(_event(i))
        assert len(sink) == 3
        assert sink.dropped == 7
        assert [e.plans for e in sink.events()] == [7, 8, 9]

    def test_clear_resets_contents_not_counter(self):
        sink = RingBufferSink(capacity=2)
        for i in range(4):
            sink.emit(_event(i))
        sink.clear()
        assert len(sink) == 0
        assert sink.events() == ()
        assert sink.dropped == 2
        sink.emit(_event(9))
        assert [e.plans for e in sink.events()] == [9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_writes_one_line_per_event(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        sink = JsonlSink(path)
        events = [_event(i) for i in range(3)]
        for e in events:
            sink.emit(e)
        sink.close()
        lines = open(path).read().splitlines()
        assert [event_from_json(line) for line in lines] == events
        assert sink.emitted == 3

    def test_stream_target_not_closed(self):
        stream = io.StringIO()
        sink = JsonlSink(stream, flush_every=1)
        sink.emit(_event(1))
        sink.close()
        assert not stream.closed  # caller owns the stream
        assert event_from_json(stream.getvalue().strip()) == _event(1)

    def test_flush_every_validated(self):
        with pytest.raises(ValueError):
            JsonlSink(io.StringIO(), flush_every=0)


class TestTracer:
    def test_emit_fans_out_to_all_sinks(self):
        a, b = RingBufferSink(), RingBufferSink()
        tracer = Tracer([a])
        tracer.add_sink(b)
        tracer.emit(_event(1))
        assert len(a) == len(b) == 1
        assert tracer.events_emitted == 1

    def test_disabled_tracer_is_inert(self):
        sink = RingBufferSink()
        tracer = Tracer([sink], enabled=False)
        tracer.emit(_event(1))
        assert len(sink) == 0
        assert tracer.events_emitted == 0

    def test_null_tracer_exists_and_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_restamps_empty_session_id(self):
        sink = RingBufferSink()
        tracer = Tracer([sink], session_id="attributed")
        tracer.emit(_event(1, session_id=""))
        tracer.emit(_event(2, session_id="explicit"))
        got = [e.session_id for e in sink.events()]
        assert got == ["attributed", "explicit"]

    def test_now_is_non_decreasing_even_with_bad_clock(self):
        readings = iter([5.0, 4.0, 6.0])
        tracer = Tracer(clock=lambda: next(readings))
        values = [tracer.now() for _ in range(3)]
        assert values == [5.0, 5.0, 6.0]

    def test_close_closes_sinks(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer([sink])
        tracer.emit(_event(1))
        tracer.close()
        assert len(open(path).read().splitlines()) == 1


class TestSpan:
    def test_span_emits_request_span(self):
        sink = RingBufferSink()
        tracer = Tracer([sink], session_id="svc")
        with tracer.span("decide", trace_id="t-1") as span:
            span.chaos = "slow"
        (event,) = sink.events()
        assert isinstance(event, RequestSpan)
        assert event.name == "decide"
        assert event.trace_id == "t-1"
        assert event.session_id == "svc"
        assert event.status == "ok"
        assert event.chaos == "slow"
        assert event.wall_s >= 0.0

    def test_span_records_exception_status(self):
        sink = RingBufferSink()
        tracer = Tracer([sink])
        with pytest.raises(RuntimeError):
            with tracer.span("decide"):
                raise RuntimeError("boom")
        (event,) = sink.events()
        assert event.status == "exception"

    def test_explicit_status_survives_exception(self):
        sink = RingBufferSink()
        tracer = Tracer([sink])
        with pytest.raises(RuntimeError):
            with tracer.span("decide") as span:
                span.status = "reset"
                raise RuntimeError("boom")
        (event,) = sink.events()
        assert event.status == "reset"


def test_rebuffer_event_through_full_stack(tmp_path):
    """One event through tracer -> jsonl -> decode keeps identity."""
    path = str(tmp_path / "e.jsonl")
    tracer = Tracer([JsonlSink(path)], session_id="s")
    event = Rebuffer(session_id="", t_mono=tracer.now(), chunk_index=3,
                     duration_s=0.75, wall_time_s=12.0)
    tracer.emit(event)
    tracer.close()
    restored = event_from_json(open(path).read().strip())
    assert restored.session_id == "s"
    assert restored.duration_s == 0.75
