"""Hypothesis properties of the observability layer.

The three invariants the issue names:

* per-session timestamps are monotonic (non-decreasing) in every
  timeline a tracer produces, whatever the underlying clock does;
* ring-buffer sinks never exceed their capacity and evict oldest-first;
* the JSONL codec round-trips every event type losslessly.
"""

import math

from hypothesis import given, strategies as st

from repro.obs.events import (
    ChunkDecision,
    ChunkDownload,
    Rebuffer,
    RequestSpan,
    SessionSummary,
    SolverCall,
    TableLookup,
    event_from_json,
    event_to_json,
)
from repro.obs.tracer import RingBufferSink, Tracer

# NaN never compares equal so it cannot round-trip "losslessly" by ==;
# every other float (including infinities and subnormals) must survive.
finite_or_inf = st.floats(allow_nan=False)
nonneg = st.floats(min_value=0.0, allow_nan=False, allow_infinity=False)
ints = st.integers(min_value=0, max_value=10**9)
names = st.text(min_size=0, max_size=40)
opt_int = st.one_of(st.none(), st.integers(min_value=0, max_value=50))

EVENT_STRATEGIES = st.one_of(
    st.builds(
        ChunkDecision,
        session_id=names, t_mono=finite_or_inf, chunk_index=ints,
        buffer_s=nonneg, prev_level=opt_int, level=ints,
        bitrate_kbps=finite_or_inf, wall_time_s=nonneg, decide_wall_s=nonneg,
    ),
    st.builds(
        ChunkDownload,
        session_id=names, t_mono=finite_or_inf, chunk_index=ints, level=ints,
        bitrate_kbps=finite_or_inf, size_kilobits=nonneg,
        download_time_s=nonneg, throughput_kbps=finite_or_inf,
        rebuffer_s=nonneg, buffer_before_s=nonneg, buffer_after_s=nonneg,
        wall_time_end_s=nonneg, waited_s=nonneg,
    ),
    st.builds(
        Rebuffer,
        session_id=names, t_mono=finite_or_inf, chunk_index=ints,
        duration_s=nonneg, wall_time_s=nonneg,
    ),
    st.builds(
        SolverCall,
        session_id=names, t_mono=finite_or_inf, op=names,
        instances=ints, plans=ints, wall_s=nonneg,
    ),
    st.builds(
        TableLookup,
        session_id=names, t_mono=finite_or_inf, buffer_bin=ints,
        prev_level=ints, throughput_bin=ints, level=ints,
        num_runs=ints, depth=ints, wall_s=nonneg,
    ),
    st.builds(
        RequestSpan,
        session_id=names, t_mono=finite_or_inf, trace_id=names, name=names,
        wall_s=nonneg, status=names, chaos=st.one_of(st.none(), names),
    ),
    st.builds(
        SessionSummary,
        session_id=names, t_mono=finite_or_inf, algorithm=names,
        trace_name=names, num_chunks=ints, startup_delay_s=nonneg,
        total_rebuffer_s=nonneg, total_wall_time_s=nonneg,
        qoe_total=finite_or_inf, weight_switching=nonneg,
        weight_rebuffering=nonneg, weight_startup=nonneg,
    ),
)


@given(EVENT_STRATEGIES)
def test_jsonl_round_trip_lossless(event):
    restored = event_from_json(event_to_json(event))
    assert restored == event
    assert type(restored) is type(event)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e9, allow_nan=False), max_size=50)
)
def test_tracer_timestamps_monotonic_per_session(readings):
    """Whatever the clock returns, the stamped timeline is sortable."""
    clock_values = iter(readings)
    tracer = Tracer(
        [sink := RingBufferSink()],
        session_id="s",
        clock=lambda: next(clock_values),
    )
    for _ in range(len(readings)):
        tracer.emit(
            Rebuffer(session_id="", t_mono=tracer.now(), chunk_index=0,
                     duration_s=0.0, wall_time_s=0.0)
        )
    stamps = [e.t_mono for e in sink.events()]
    assert all(a <= b for a, b in zip(stamps, stamps[1:]))
    if readings:
        assert stamps[0] == readings[0]


@given(
    capacity=st.integers(min_value=1, max_value=32),
    count=st.integers(min_value=0, max_value=200),
)
def test_ring_buffer_bounded_and_drop_oldest(capacity, count):
    sink = RingBufferSink(capacity=capacity)
    events = [
        SolverCall(session_id="s", t_mono=float(i), op="x",
                   instances=1, plans=i, wall_s=0.0)
        for i in range(count)
    ]
    for event in events:
        sink.emit(event)
        assert len(sink) <= capacity  # never exceeds capacity at any point
    kept = sink.events()
    assert list(kept) == events[max(0, count - capacity):]  # oldest dropped
    assert sink.dropped == max(0, count - capacity)
    assert len(kept) == min(count, capacity)


@given(st.data())
def test_ring_buffer_matches_list_model(data):
    """Interleaved emit/clear agrees with a plain-list reference model."""
    capacity = data.draw(st.integers(min_value=1, max_value=8))
    sink = RingBufferSink(capacity=capacity)
    model = []
    operations = data.draw(
        st.lists(st.one_of(st.just("clear"), st.integers(0, 1000)), max_size=60)
    )
    for op in operations:
        if op == "clear":
            sink.clear()
            model.clear()
        else:
            event = SolverCall(session_id="s", t_mono=0.0, op="x",
                               instances=1, plans=op, wall_s=0.0)
            sink.emit(event)
            model.append(event)
            del model[:-capacity]
    assert list(sink.events()) == model


def test_infinity_survives_json():
    event = SolverCall(session_id="s", t_mono=math.inf, op="x",
                       instances=0, plans=0, wall_s=0.0)
    assert event_from_json(event_to_json(event)).t_mono == math.inf
