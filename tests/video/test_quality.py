"""Quality functions q(.) — Section 3.1's perceived-quality models."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.video.quality import (
    IdentityQuality,
    LogQuality,
    PiecewiseLinearQuality,
    QualityFunction,
    SaturatingQuality,
    as_quality_function,
)

ALL_QUALITIES = [
    IdentityQuality(),
    LogQuality(),
    SaturatingQuality(),
    PiecewiseLinearQuality([(350, 0.0), (1000, 2.0), (3000, 3.0)]),
]


@pytest.mark.parametrize("q", ALL_QUALITIES, ids=lambda q: q.name)
@given(a=st.floats(1.0, 5000.0), b=st.floats(1.0, 5000.0))
def test_non_decreasing(q, a, b):
    """Section 3.1: q must be non-decreasing in bitrate."""
    lo, hi = sorted((a, b))
    assert q(lo) <= q(hi) + 1e-12


@pytest.mark.parametrize("q", ALL_QUALITIES, ids=lambda q: q.name)
def test_rejects_negative_bitrate(q):
    with pytest.raises(ValueError):
        q(-1.0)


class TestIdentity:
    def test_is_identity(self):
        q = IdentityQuality()
        assert q(350.0) == 350.0
        assert q(3000.0) == 3000.0


class TestLog:
    def test_zero_at_reference(self):
        q = LogQuality(reference_kbps=300.0, scale=1000.0)
        assert q(300.0) == pytest.approx(0.0)

    def test_diminishing_returns(self):
        q = LogQuality()
        gain_low = q(700.0) - q(350.0)
        gain_high = q(3000.0) - q(2650.0)
        assert gain_low > gain_high

    def test_validation(self):
        with pytest.raises(ValueError):
            LogQuality(reference_kbps=0.0)
        with pytest.raises(ValueError):
            LogQuality(scale=-1.0)


class TestSaturating:
    def test_mobile_example_from_paper(self):
        """On a small screen, 1 Mbps and 3 Mbps should look similar while
        350 kbps and 1 Mbps differ a lot."""
        q = SaturatingQuality(knee_kbps=400.0, cap=1000.0)
        low_gap = q(1000.0) - q(350.0)
        high_gap = q(3000.0) - q(1000.0)
        assert low_gap > 3 * high_gap

    def test_caps(self):
        q = SaturatingQuality(knee_kbps=400.0, cap=1000.0)
        assert q(1e9) <= 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SaturatingQuality(knee_kbps=0.0)


class TestPiecewise:
    def test_interpolates(self):
        q = PiecewiseLinearQuality([(0, 0.0), (100, 10.0)])
        assert q(50.0) == pytest.approx(5.0)

    def test_clamps_outside_anchors(self):
        q = PiecewiseLinearQuality([(100, 1.0), (200, 2.0)])
        assert q(10.0) == 1.0
        assert q(900.0) == 2.0

    def test_requires_two_anchors(self):
        with pytest.raises(ValueError):
            PiecewiseLinearQuality([(100, 1.0)])

    def test_requires_monotone_quality(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            PiecewiseLinearQuality([(100, 2.0), (200, 1.0)])

    def test_requires_distinct_rates(self):
        with pytest.raises(ValueError, match="distinct"):
            PiecewiseLinearQuality([(100, 1.0), (100, 2.0)])


class TestCoercion:
    def test_none_becomes_identity(self):
        q = as_quality_function(None)
        assert q(123.0) == 123.0

    def test_passthrough(self):
        q = IdentityQuality()
        assert as_quality_function(q) is q

    def test_wraps_plain_callable(self):
        q = as_quality_function(lambda r: 2 * r)
        assert isinstance(q, QualityFunction)
        assert q(10.0) == 20.0
