"""Video presets and the paper's evaluation constants."""

from __future__ import annotations

import pytest

from repro.video import (
    DEFAULT_BUFFER_CAPACITY_S,
    ENVIVIO_CHUNK_SECONDS,
    ENVIVIO_LADDER_KBPS,
    ENVIVIO_NUM_CHUNKS,
    envivio,
    envivio_vbr,
    short_test_video,
)


class TestPaperConstants:
    def test_envivio_constants_match_section_711(self):
        """Section 7.1.1: 260 s video, 65 x 4 s chunks, YouTube-aligned
        ladder {350, 600, 1000, 2000, 3000} kbps, Bmax = 30 s."""
        assert ENVIVIO_NUM_CHUNKS == 65
        assert ENVIVIO_CHUNK_SECONDS == 4.0
        assert ENVIVIO_NUM_CHUNKS * ENVIVIO_CHUNK_SECONDS == 260.0
        assert ENVIVIO_LADDER_KBPS == (350.0, 600.0, 1000.0, 2000.0, 3000.0)
        assert DEFAULT_BUFFER_CAPACITY_S == 30.0

    def test_envivio_fresh_instances(self):
        assert envivio() is not envivio()
        assert envivio().ladder == envivio().ladder

    def test_envivio_vbr_seeded(self):
        a = envivio_vbr(seed=1)
        b = envivio_vbr(seed=1)
        c = envivio_vbr(seed=2)
        assert a.chunk_size_kilobits(5, 2) == b.chunk_size_kilobits(5, 2)
        assert a.chunk_size_kilobits(5, 2) != c.chunk_size_kilobits(5, 2)

    def test_short_test_video_bounds(self):
        video = short_test_video(num_chunks=4, num_levels=2)
        assert video.num_chunks == 4
        assert len(video.ladder) == 2
        assert video.ladder.levels_kbps == (350.0, 600.0)
