"""VBR chunk-size generation."""

from __future__ import annotations

import statistics

import pytest

from repro.video import BitrateLadder, complexity_profile, envivio_vbr, vbr_manifest


class TestComplexityProfile:
    def test_mean_is_near_one(self):
        factors = complexity_profile(2000, variability=0.3, seed=1)
        assert statistics.mean(factors) == pytest.approx(1.0, abs=0.05)

    def test_deterministic_by_seed(self):
        assert complexity_profile(50, seed=4) == complexity_profile(50, seed=4)
        assert complexity_profile(50, seed=4) != complexity_profile(50, seed=5)

    def test_zero_variability_is_flat(self):
        factors = complexity_profile(10, variability=0.0)
        assert all(f == pytest.approx(1.0) for f in factors)

    def test_temporal_correlation(self):
        """Adjacent chunks should be more alike than distant ones."""
        factors = complexity_profile(3000, variability=0.4, correlation=0.9, seed=2)
        adjacent = statistics.mean(
            abs(b - a) for a, b in zip(factors, factors[1:])
        )
        shuffled = statistics.mean(
            abs(factors[i] - factors[(i * 997) % len(factors)])
            for i in range(len(factors))
        )
        assert adjacent < shuffled

    def test_validation(self):
        with pytest.raises(ValueError):
            complexity_profile(0)
        with pytest.raises(ValueError):
            complexity_profile(5, variability=-0.1)
        with pytest.raises(ValueError):
            complexity_profile(5, correlation=1.0)


class TestVBRManifest:
    def test_not_cbr_but_valid(self):
        video = vbr_manifest(4.0, BitrateLadder([350.0, 600.0, 1000.0]), 20, seed=3)
        assert not video.is_cbr()
        assert video.num_chunks == 20
        # Sizes still increase with level within each chunk.
        for k in range(20):
            sizes = [video.chunk_size_kilobits(k, j) for j in range(3)]
            assert sizes == sorted(sizes)

    def test_complexity_shared_across_levels(self):
        """A hard scene is hard at every bitrate: per-chunk factors are the
        same across levels."""
        video = vbr_manifest(4.0, BitrateLadder([350.0, 600.0]), 10, seed=3)
        for k in range(10):
            f0 = video.chunk_size_kilobits(k, 0) / (4.0 * 350.0)
            f1 = video.chunk_size_kilobits(k, 1) / (4.0 * 600.0)
            assert f0 == pytest.approx(f1)

    def test_envivio_vbr_preset(self):
        video = envivio_vbr(seed=0)
        assert video.num_chunks == 65
        assert not video.is_cbr()
