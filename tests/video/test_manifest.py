"""Bitrate ladders and video manifests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.video import (
    BitrateLadder,
    ENVIVIO_LADDER_KBPS,
    VideoManifest,
    envivio,
    short_test_video,
)


class TestBitrateLadder:
    def test_paper_ladder(self):
        ladder = BitrateLadder(ENVIVIO_LADDER_KBPS)
        assert len(ladder) == 5
        assert ladder.min_kbps == 350.0
        assert ladder.max_kbps == 3000.0

    def test_requires_sorted(self):
        with pytest.raises(ValueError, match="ascending"):
            BitrateLadder([600.0, 350.0])

    def test_requires_distinct(self):
        with pytest.raises(ValueError, match="distinct"):
            BitrateLadder([350.0, 350.0])

    def test_requires_positive(self):
        with pytest.raises(ValueError, match="positive"):
            BitrateLadder([0.0, 100.0])

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            BitrateLadder([])

    def test_index_of(self):
        ladder = BitrateLadder(ENVIVIO_LADDER_KBPS)
        assert ladder.index_of(1000.0) == 2
        with pytest.raises(ValueError):
            ladder.index_of(999.0)

    def test_highest_at_most(self):
        ladder = BitrateLadder(ENVIVIO_LADDER_KBPS)
        assert ladder.highest_at_most(2500.0) == 3  # 2000 kbps
        assert ladder.highest_at_most(3000.0) == 4
        assert ladder.highest_at_most(100.0) == 0  # below Rmin -> lowest
        assert ladder.highest_at_most(10_000.0) == 4

    def test_equality_and_hash(self):
        a = BitrateLadder([100.0, 200.0])
        b = BitrateLadder([100.0, 200.0])
        assert a == b
        assert hash(a) == hash(b)

    def test_uniform(self):
        ladder = BitrateLadder.uniform(100.0, 500.0, 5)
        assert list(ladder) == pytest.approx([100, 200, 300, 400, 500])

    def test_uniform_single_level(self):
        assert list(BitrateLadder.uniform(100.0, 500.0, 1)) == [100.0]

    def test_geometric(self):
        ladder = BitrateLadder.geometric(100.0, 1600.0, 5)
        assert list(ladder) == pytest.approx([100, 200, 400, 800, 1600])

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            BitrateLadder.uniform(500.0, 100.0, 3)
        with pytest.raises(ValueError):
            BitrateLadder.uniform(100.0, 500.0, 0)


@given(budget=st.floats(1.0, 10_000.0))
def test_highest_at_most_is_maximal(budget):
    """The chosen level is the largest one not exceeding the budget
    (or the minimum level when nothing fits) — the paper's RB rule."""
    ladder = BitrateLadder(ENVIVIO_LADDER_KBPS)
    idx = ladder.highest_at_most(budget)
    if ladder[idx] > budget:
        assert idx == 0  # nothing fits: pinned at Rmin
    elif idx + 1 < len(ladder):
        assert ladder[idx + 1] > budget


class TestVideoManifest:
    def test_envivio_preset_matches_paper(self):
        video = envivio()
        assert video.num_chunks == 65
        assert video.chunk_duration_s == 4.0
        assert video.total_duration_s == 260.0
        assert video.ladder.levels_kbps == ENVIVIO_LADDER_KBPS
        assert video.is_cbr()

    def test_cbr_sizes(self):
        video = envivio()
        assert video.chunk_size_kilobits(0, 0) == pytest.approx(4.0 * 350.0)
        assert video.chunk_size_kilobits(64, 4) == pytest.approx(4.0 * 3000.0)

    def test_effective_bitrate_cbr(self):
        video = envivio()
        assert video.effective_bitrate_kbps(10, 2) == pytest.approx(1000.0)

    def test_chunk_sizes_at_level(self):
        video = short_test_video(num_chunks=4)
        sizes = video.chunk_sizes_at_level(1)
        assert len(sizes) == 4
        assert all(s == pytest.approx(4.0 * 600.0) for s in sizes)

    def test_chunk_index_bounds(self):
        video = short_test_video()
        with pytest.raises(IndexError):
            video.chunk_size_kilobits(video.num_chunks, 0)
        with pytest.raises(IndexError):
            video.chunk_sizes_at_level(99)

    def test_sizes_must_increase_with_level(self):
        ladder = BitrateLadder([100.0, 200.0])
        with pytest.raises(ValueError, match="increase"):
            VideoManifest(4.0, ladder, [[800.0, 400.0]])

    def test_rows_must_match_ladder(self):
        ladder = BitrateLadder([100.0, 200.0])
        with pytest.raises(ValueError, match="levels"):
            VideoManifest(4.0, ladder, [[400.0]])

    def test_rejects_empty_video(self):
        with pytest.raises(ValueError):
            VideoManifest(4.0, BitrateLadder([100.0]), [])

    def test_truncated(self):
        video = envivio().truncated(10)
        assert video.num_chunks == 10
        assert video.ladder == envivio().ladder
        with pytest.raises(ValueError):
            envivio().truncated(0)

    def test_with_ladder(self):
        new_ladder = BitrateLadder.uniform(350.0, 3000.0, 8)
        video = envivio().with_ladder(new_ladder)
        assert len(video.ladder) == 8
        assert video.num_chunks == 65
        assert video.is_cbr()

    def test_repr(self):
        assert "envivio" in repr(envivio())
