"""Population aggregates: lossless merge, exact round-trip, empty guards."""

from __future__ import annotations

import json
import random

import pytest

from repro.fleet import (
    ArmAggregate,
    BITRATE_BOUNDS_KBPS,
    FleetResult,
    QOE_PER_CHUNK_BOUNDS,
    REBUFFER_BOUNDS_S,
)


def observed_arm(values):
    arm = ArmAggregate()
    arm.observe_sessions(
        values, [abs(v) % 7.0 for v in values], [abs(v) % 4300.0 for v in values]
    )
    return arm


def test_bounds_are_strictly_increasing():
    for bounds in (QOE_PER_CHUNK_BOUNDS, REBUFFER_BOUNDS_S, BITRATE_BOUNDS_KBPS):
        assert list(bounds) == sorted(set(bounds))


def test_sharded_merge_equals_single_aggregate():
    # The losslessness statement: scattering observations across shards
    # and merging produces byte-identical serialized aggregates.
    rng = random.Random(13)
    values = [rng.uniform(-7000.0, 4000.0) for _ in range(997)]
    whole = observed_arm(values)
    merged = ArmAggregate()
    for start in range(0, len(values), 100):
        merged.merge(observed_arm(values[start : start + 100]))
    assert json.dumps(merged.to_dict(), sort_keys=True) == json.dumps(
        whole.to_dict(), sort_keys=True
    )


def test_arm_roundtrip_exact():
    arm = observed_arm([-123.25, 0.0, 999.5, 4250.0])
    payload = json.loads(json.dumps(arm.to_dict()))
    back = ArmAggregate.from_dict(payload)
    assert back.to_dict() == arm.to_dict()
    assert back.sessions == 4


def test_misaligned_sequences_rejected():
    arm = ArmAggregate()
    with pytest.raises(ValueError, match="align"):
        arm.observe_sessions([1.0, 2.0], [0.0], [100.0, 200.0])


def test_bounds_mismatch_rejected():
    payload = observed_arm([1.0]).to_dict()
    payload["rebuffer_s"]["bounds"] = [1.0, 2.0, 3.0]
    payload["rebuffer_s"]["counts"] = [1, 0, 0, 0]
    with pytest.raises(ValueError, match="bounds do not match"):
        ArmAggregate.from_dict(payload)


def test_malformed_arm_payloads_rejected():
    with pytest.raises(ValueError, match="JSON object"):
        ArmAggregate.from_dict([1, 2])
    with pytest.raises(ValueError, match="missing"):
        ArmAggregate.from_dict({"sessions": 1})


def test_qoe_percentiles_ordered():
    arm = observed_arm([float(v) for v in range(-2000, 2000, 10)])
    p = arm.qoe_percentiles()
    assert list(p) == ["p5", "p25", "p50", "p75", "p95"]
    assert p["p5"] <= p["p25"] <= p["p50"] <= p["p75"] <= p["p95"]


def test_empty_fleet_wellformed():
    result = FleetResult.empty()
    assert result.to_dict() == {"sessions": 0, "arms": {}}
    assert result.controller_rollup() == {}
    empty_arm = ArmAggregate()
    assert empty_arm.qoe_percentiles() == {
        "p5": 0.0,
        "p25": 0.0,
        "p50": 0.0,
        "p75": 0.0,
        "p95": 0.0,
    }


def test_fleet_merge_and_rollup():
    a = FleetResult()
    a.arm("bola|fcc|balanced|envivio").observe_sessions([10.0], [0.0], [1000.0])
    a.sessions += 1
    b = FleetResult()
    b.arm("bola|hsdpa|balanced|envivio").observe_sessions([20.0], [1.0], [500.0])
    b.arm("rb|fcc|balanced|envivio").observe_sessions([30.0], [2.0], [750.0])
    b.sessions += 2
    a.merge(b)
    assert a.sessions == 3
    assert len(a.arms) == 3
    rollup = a.controller_rollup()
    assert set(rollup) == {"bola", "rb"}
    assert rollup["bola"].sessions == 2
    assert rollup["rb"].sessions == 1


def test_fleet_roundtrip_and_validation():
    result = FleetResult()
    result.arm("bb|fcc|balanced|envivio").observe_sessions([5.0], [0.5], [800.0])
    result.sessions = 1
    back = FleetResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert back.to_dict() == result.to_dict()
    with pytest.raises(ValueError, match="JSON object"):
        FleetResult.from_dict("nope")
    with pytest.raises(ValueError, match="missing"):
        FleetResult.from_dict({"sessions": 0})
    with pytest.raises(ValueError, match="arms"):
        FleetResult.from_dict({"sessions": 0, "arms": [1]})
