"""Lockstep parity: scalar gap-corrected predictors vs their batch twins.

The fleet's exactness doctrine applies to predictors too: feeding the
same sample stream (throughput, download time, stall) to a scalar
``GapCorrectedHarmonicPredictor`` / ``GapCorrectedEWMAPredictor`` and to
one row of its vectorized twin must produce bit-identical estimates at
every step — ``==`` on floats, no tolerances.  Each batch row carries an
independent stream, so the lockstep matrices cannot leak state sideways.
"""

from __future__ import annotations

import random

import pytest

from repro.core.npcompat import HAVE_NUMPY, np
from repro.prediction.streaming import (
    GapCorrectedEWMAPredictor,
    GapCorrectedHarmonicPredictor,
)

if HAVE_NUMPY:
    from repro.fleet.controllers import _BatchGapEWMA, _BatchGapHarmonic

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="batch predictor twins require NumPy"
)


def make_streams(n_rows, n_steps, seed, stall_every=3):
    """Per-row (throughput, duration, stall) sequences; every
    ``stall_every``-th sample carries an in-window stall, the rest are
    gap-free so both the corrected and the pure path stay exercised."""
    rng = random.Random(seed)
    streams = []
    for _ in range(n_rows):
        rows = []
        for step in range(n_steps):
            duration = rng.uniform(0.5, 6.0)
            if stall_every and step % stall_every == 1:
                stall = rng.uniform(0.05, 0.9) * duration
            else:
                stall = 0.0
            throughput = rng.uniform(80.0, 4000.0)
            rows.append((throughput, duration, stall))
        streams.append(rows)
    return streams


def assert_lockstep(scalar_factory, batch, streams, n_steps):
    """Drive scalars and the batch twin through identical samples and
    compare every row's estimate at every step with ``==``."""
    scalars = [scalar_factory() for _ in streams]
    for step in range(n_steps):
        batch_est = batch.estimate()
        for i, predictor in enumerate(scalars):
            assert float(batch_est[i]) == predictor.current_estimate(), (
                f"row {i} diverged at step {step}"
            )
        column = [stream[step] for stream in streams]
        throughput = np.asarray([c[0] for c in column])
        duration = np.asarray([c[1] for c in column])
        stall = np.asarray([c[2] for c in column])
        batch.observe(throughput, duration, stall)
        for predictor, (x, d, s) in zip(scalars, column):
            predictor.observe_kbps(x, d, stall_s=s)
    final = batch.estimate()
    for i, predictor in enumerate(scalars):
        assert float(final[i]) == predictor.current_estimate()


N_ROWS, N_STEPS = 8, 24


@pytest.mark.parametrize("robust_discount", (0.0, 0.25))
def test_gap_harmonic_twin_lockstep(robust_discount):
    streams = make_streams(N_ROWS, N_STEPS, seed=101)
    batch = _BatchGapHarmonic(N_ROWS, robust_discount=robust_discount)
    assert_lockstep(
        lambda: GapCorrectedHarmonicPredictor(robust_discount=robust_discount),
        batch,
        streams,
        N_STEPS,
    )


@pytest.mark.parametrize("robust_discount", (0.0, 0.25))
def test_gap_ewma_twin_lockstep(robust_discount):
    streams = make_streams(N_ROWS, N_STEPS, seed=202)
    batch = _BatchGapEWMA(N_ROWS, robust_discount=robust_discount)
    assert_lockstep(
        lambda: GapCorrectedEWMAPredictor(robust_discount=robust_discount),
        batch,
        streams,
        N_STEPS,
    )


def test_gap_free_streams_degrade_to_plain_twins():
    """With no stalls anywhere, the gap twins must equal the plain
    harmonic window bit for bit (the batch side of the scalar
    degradation contract)."""
    from repro.fleet.controllers import _BatchHarmonic

    streams = make_streams(N_ROWS, N_STEPS, seed=303, stall_every=0)
    gap = _BatchGapHarmonic(N_ROWS)
    plain = _BatchHarmonic(N_ROWS)
    for step in range(N_STEPS):
        assert list(gap.estimate()) == list(plain.estimate())
        column = [stream[step] for stream in streams]
        throughput = np.asarray([c[0] for c in column])
        duration = np.asarray([c[1] for c in column])
        stall = np.zeros(N_ROWS)
        gap.observe(throughput, duration, stall)
        plain.observe(throughput)
    assert list(gap.estimate()) == list(plain.estimate())


def test_stalled_rows_estimate_above_wall_rate():
    """A row whose downloads always stall half the window must estimate
    double the wall rate; a gap-free row must stay at the wall rate."""
    batch = _BatchGapHarmonic(2)
    for _ in range(5):
        batch.observe(
            np.asarray([1000.0, 1000.0]),
            np.asarray([4.0, 4.0]),
            np.asarray([2.0, 0.0]),
        )
    est = batch.estimate()
    assert float(est[0]) == 2000.0
    assert float(est[1]) == 1000.0
