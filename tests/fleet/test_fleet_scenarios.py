"""Scenario sampling: seeded, prefix-stable, validated up front."""

from __future__ import annotations

import pytest

from repro.fleet import SUPPORTED_CONTROLLERS, ScenarioSpace, sample_scenarios
from repro.fleet.scenarios import (
    LADDER_NAMES,
    PRESET_NAMES,
    ladder_by_name,
    manifest_for,
    session_config_for,
    trace_pools,
)
from repro.qoe import QoEWeights
from repro.traces.datasets import DATASET_NAMES


def small_space(**overrides):
    defaults = dict(traces_per_dataset=5, num_chunks=10, trace_duration_s=60.0)
    defaults.update(overrides)
    return ScenarioSpace(**defaults)


def test_same_seed_identical_stream():
    space = small_space()
    assert sample_scenarios(space, 200, 42) == sample_scenarios(space, 200, 42)


def test_prefix_property():
    # Growing a fleet never reshuffles the sessions already run.
    space = small_space()
    long = sample_scenarios(space, 500, 11)
    for n in (0, 1, 7, 123, 500):
        assert sample_scenarios(space, n, 11) == long[:n]


def test_different_seeds_differ():
    space = small_space()
    assert sample_scenarios(space, 100, 1) != sample_scenarios(space, 100, 2)


def test_scenarios_cover_the_space_and_respect_bounds():
    space = small_space()
    scenarios = sample_scenarios(space, 2000, 7)
    assert [s.index for s in scenarios] == list(range(2000))
    assert {s.controller for s in scenarios} == set(SUPPORTED_CONTROLLERS)
    assert {s.dataset for s in scenarios} == set(DATASET_NAMES)
    assert {s.preset for s in scenarios} == set(PRESET_NAMES)
    assert {s.ladder for s in scenarios} == {"envivio"}
    assert all(0 <= s.trace_index < 5 for s in scenarios)


def test_arm_key_format():
    space = small_space()
    scenario = sample_scenarios(space, 1, 0)[0]
    controller, dataset, preset, ladder = scenario.arm_key.split("|")
    assert (controller, dataset, preset, ladder) == (
        scenario.controller,
        scenario.dataset,
        scenario.preset,
        scenario.ladder,
    )


def test_negative_sample_count_rejected():
    with pytest.raises(ValueError, match="negative"):
        sample_scenarios(small_space(), -1, 0)


@pytest.mark.parametrize(
    "overrides, match",
    [
        (dict(controllers=("mpc",)), "unsupported fleet controller"),
        (dict(controllers=()), "at least one controller"),
        (dict(datasets=("netflix",)), "unknown dataset"),
        (dict(datasets=()), "at least one dataset"),
        (dict(presets=("chaotic",)), "preset"),
        (dict(ladders=("imaginary",)), "unknown ladder"),
        (dict(num_chunks=0), "num_chunks"),
        (dict(traces_per_dataset=0), "traces_per_dataset"),
        (dict(trace_duration_s=0.0), "duration"),
    ],
)
def test_space_validation(overrides, match):
    with pytest.raises(ValueError, match=match):
        small_space(**overrides)


def test_ladder_names_and_lookup():
    assert "envivio" in LADDER_NAMES
    for name in LADDER_NAMES:
        assert len(ladder_by_name(name)) >= 2
    with pytest.raises(ValueError, match="unknown ladder"):
        ladder_by_name("nope")


def test_trace_pools_memoized_and_seeded():
    space = small_space()
    pools = trace_pools(space)
    assert set(pools) == set(DATASET_NAMES)
    assert all(len(traces) >= 5 for traces in pools.values())
    # Same parameters -> the very same memoized pool object.
    assert trace_pools(small_space()) is pools
    assert trace_pools(small_space(trace_seed=99)) is not pools


def test_manifest_for_memoized():
    manifest = manifest_for("envivio", 10)
    assert manifest.num_chunks == 10
    assert manifest_for("envivio", 10) is manifest
    assert manifest_for("uniform-6", 10) is not manifest


def test_session_config_for_presets():
    for preset in PRESET_NAMES:
        config = session_config_for(preset)
        assert config.weights == QoEWeights.preset(preset)
