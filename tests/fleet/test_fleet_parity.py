"""Exact parity: the batch stepper vs the reference simulator.

The fleet's correctness bar is not statistical — for every session in a
batch, the vector engine must reproduce :func:`simulate_session`'s level
sequence, rebuffer/buffer trajectory, download times, startup delay, and
Eq. 5 QoE breakdown *bit for bit* (``==`` on floats, no tolerances).
The scalar engine IS the reference simulator, so vector-vs-scalar
equality is the parity statement; one test additionally pins the scalar
engine against ``simulate_session`` directly to keep that anchor honest.

The no-numpy subprocess tests mirror ``tests/core/test_numpy_fallback``:
a child with ``sys.modules['numpy'] = None`` runs the batch API (which
degrades to the scalar engine) and its JSON-serialized outputs — floats
round-trip exactly through ``repr`` — must equal the in-process
numpy-backed vector run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.abr.base import SessionConfig
from repro.core.fastmpc import FastMPCConfig
from repro.core.npcompat import HAVE_NUMPY
from repro.fleet import SUPPORTED_CONTROLLERS, run_batch
from repro.fleet.controllers import make_scalar_algorithm
from repro.qoe import QoEWeights
from repro.sim.session import simulate_session
from repro.traces import (
    FCCTraceGenerator,
    HSDPATraceGenerator,
    SyntheticTraceGenerator,
)
from repro.video import envivio, envivio_vbr
from repro.video.manifest import BitrateLadder, VideoManifest
from repro.video.presets import ENVIVIO_LADDER_KBPS

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the vector engine requires NumPy"
)

#: Small table so the fastmpc variants build in seconds, shared by both
#: engines (the stepper threads it through to the scalar algorithm too).
TABLE_CONFIG = FastMPCConfig(buffer_bins=24, throughput_bins=24, horizon=5)


@pytest.fixture(scope="module")
def mixed_traces():
    """A cross-dataset pool: every generator family, one fixed seed."""
    traces = []
    traces += FCCTraceGenerator(seed=11).generate_many(4, 320.0)
    traces += HSDPATraceGenerator(seed=11).generate_many(4, 320.0)
    traces += SyntheticTraceGenerator(seed=11).generate_many(4, 320.0)
    return traces


@pytest.fixture(scope="module")
def manifest():
    return envivio()


def assert_exact_parity(vec, sca):
    """Field-by-field ``==`` between the two engines — no tolerances."""
    assert vec.num_sessions == sca.num_sessions
    assert vec.num_chunks == sca.num_chunks
    for i in range(vec.num_sessions):
        assert vec.session_levels(i) == [int(x) for x in sca.levels[i]]
        assert list(vec.rebuffer_s[i]) == list(sca.rebuffer_s[i])
        assert list(vec.buffer_after_s[i]) == list(sca.buffer_after_s[i])
        assert list(vec.download_time_s[i]) == list(sca.download_time_s[i])
    assert list(vec.startup_delay_s) == list(sca.startup_delay_s)
    assert list(vec.total_rebuffer_s) == list(sca.total_rebuffer_s)
    assert list(vec.total_wall_time_s) == list(sca.total_wall_time_s)
    assert list(vec.quality_total) == list(sca.quality_total)
    assert list(vec.switching_total) == list(sca.switching_total)
    assert list(vec.qoe_total) == list(sca.qoe_total)
    assert list(vec.mean_bitrate_kbps) == list(sca.mean_bitrate_kbps)


def run_both(controller, traces, manifest, config=None):
    kwargs = dict(config=config, table_config=TABLE_CONFIG)
    vec = run_batch(controller, traces, manifest, engine="vector", **kwargs)
    sca = run_batch(controller, traces, manifest, engine="scalar", **kwargs)
    assert vec.engine == "vector" and sca.engine == "scalar"
    return vec, sca


@needs_numpy
@pytest.mark.parametrize("controller", SUPPORTED_CONTROLLERS)
def test_vector_matches_scalar_everywhere(controller, mixed_traces, manifest):
    vec, sca = run_both(controller, mixed_traces, manifest)
    assert_exact_parity(vec, sca)


@needs_numpy
@pytest.mark.parametrize("preset", ("avoid-rebuffering", "avoid-instability"))
@pytest.mark.parametrize("controller", ("bola", "robust-fastmpc"))
def test_parity_holds_across_qoe_presets(controller, preset, mixed_traces, manifest):
    config = SessionConfig(weights=QoEWeights.preset(preset))
    vec, sca = run_both(controller, mixed_traces[:6], manifest, config)
    assert_exact_parity(vec, sca)


@needs_numpy
@pytest.mark.parametrize("controller", ("rb", "bb", "fastmpc"))
def test_parity_with_request_pacing_target(controller, mixed_traces, manifest):
    # Eq. 4 pacing at a target below Bmax exercises the wait branch on
    # nearly every chunk instead of only at capacity.
    config = SessionConfig(request_target_buffer_s=12.0)
    vec, sca = run_both(controller, mixed_traces[:6], manifest, config)
    assert_exact_parity(vec, sca)


@needs_numpy
@pytest.mark.parametrize("controller", ("rb", "bola", "fastmpc"))
def test_parity_on_vbr_manifest(controller, mixed_traces):
    # Per-chunk sizes deviate from d(R) = L*R, so the stepper's size
    # gather must follow the manifest, not the CBR shortcut.
    vec, sca = run_both(controller, mixed_traces[:6], envivio_vbr(seed=4))
    assert_exact_parity(vec, sca)


@needs_numpy
@pytest.mark.parametrize("controller", ("lowest", "bb", "bola"))
def test_parity_when_traces_wrap_around(controller):
    # 40 s traces under a 260 s video force every session through the
    # trace-wrap path (floor-division repetition skip + restarted walk).
    traces = SyntheticTraceGenerator(seed=3).generate_many(5, 40.0)
    vec, sca = run_both(controller, traces, envivio())
    assert_exact_parity(vec, sca)


@needs_numpy
@pytest.mark.parametrize("controller", ("fastmpc-gap", "fastmpc", "robust-fastmpc"))
def test_parity_through_blackouts(controller):
    # Zero-bandwidth windows exercise the stall-collecting trace walk and
    # (for fastmpc-gap) the active-rate reconstruction — the correction
    # must engage identically in both engines, bit for bit.
    from repro.faults import Blackout, apply_trace_faults

    faults = [
        Blackout(start_s=20.0, duration_s=6.0),
        Blackout(start_s=70.0, duration_s=9.0),
    ]
    traces = [
        apply_trace_faults(trace, faults)
        for trace in SyntheticTraceGenerator(seed=13).generate_many(5, 120.0)
    ]
    vec, sca = run_both(controller, traces, envivio())
    assert_exact_parity(vec, sca)


@needs_numpy
def test_parity_on_single_chunk_video(mixed_traces):
    manifest = VideoManifest.cbr(4.0, BitrateLadder(ENVIVIO_LADDER_KBPS), 1)
    for controller in ("lowest", "rb", "bola"):
        vec, sca = run_both(controller, mixed_traces[:4], manifest)
        assert_exact_parity(vec, sca)
        assert vec.num_chunks == 1


@needs_numpy
def test_duplicate_traces_share_bank_rows(manifest):
    # The TraceBank deduplicates by identity; repeated rows must still
    # produce per-session results equal to the lone-session run.
    trace = SyntheticTraceGenerator(seed=9).generate_many(1, 320.0)[0]
    vec = run_batch("bb", [trace, trace, trace], manifest, engine="vector")
    solo = run_batch("bb", [trace], manifest, engine="vector")
    for i in range(3):
        assert vec.session_levels(i) == solo.session_levels(0)
        assert float(vec.qoe_total[i]) == float(solo.qoe_total[0])


def test_scalar_engine_is_simulate_session(manifest):
    # The anchor: the scalar engine's rows are literally the reference
    # simulator's outputs, field by field.
    traces = SyntheticTraceGenerator(seed=21).generate_many(3, 320.0)
    batch = run_batch("bola", traces, manifest, engine="scalar")
    for i, trace in enumerate(traces):
        result = simulate_session(
            make_scalar_algorithm("bola"), trace, manifest, SessionConfig()
        )
        breakdown = result.qoe()
        assert batch.levels[i] == [r.level_index for r in result.records]
        assert batch.startup_delay_s[i] == result.startup_delay_s
        assert batch.total_rebuffer_s[i] == result.total_rebuffer_s
        assert batch.qoe_total[i] == breakdown.total
        assert batch.quality_total[i] == breakdown.quality_total
        assert batch.switching_total[i] == breakdown.switching_total


def test_empty_batch_returns_wellformed_result(manifest):
    batch = run_batch("bola", [], manifest)
    assert batch.num_sessions == 0
    assert batch.num_chunks == manifest.num_chunks
    assert batch.qoe_per_chunk() == []
    assert list(batch.levels) == []


def test_unknown_controller_and_engine_are_rejected(manifest):
    trace = SyntheticTraceGenerator(seed=1).generate_many(1, 320.0)[0]
    with pytest.raises(ValueError, match="unsupported fleet controller"):
        run_batch("mpc", [trace], manifest)
    with pytest.raises(ValueError, match="unknown engine"):
        run_batch("bola", [trace], manifest, engine="warp")


# ----------------------------------------------------------------------
# The pure-Python fallback: batch API without NumPy, identically
# ----------------------------------------------------------------------

_CHILD_SCRIPT = r"""
import json, sys
sys.modules["numpy"] = None  # make `import numpy` raise ImportError

from repro.core.npcompat import HAVE_NUMPY
assert not HAVE_NUMPY, "numpy import should have been blocked"

from repro.core.fastmpc import FastMPCConfig
from repro.fleet import run_batch
from repro.traces import SyntheticTraceGenerator
from repro.video.manifest import BitrateLadder, VideoManifest
from repro.video.presets import ENVIVIO_LADDER_KBPS

traces = SyntheticTraceGenerator(seed=5).generate_many(3, 200.0)
manifest = VideoManifest.cbr(4.0, BitrateLadder(ENVIVIO_LADDER_KBPS), 20)
table_config = FastMPCConfig(buffer_bins=12, throughput_bins=12, horizon=4)

out = {}
for name in ("rb", "bola", "fastmpc", "robust-fastmpc"):
    batch = run_batch(
        name, traces, manifest, table_config=table_config, engine="auto"
    )
    assert batch.engine == "scalar", batch.engine
    out[name] = {
        "levels": [[int(l) for l in row] for row in batch.levels],
        "qoe": [float(v) for v in batch.qoe_total],
        "rebuffer": [float(v) for v in batch.total_rebuffer_s],
        "startup": [float(v) for v in batch.startup_delay_s],
        "download": [[float(v) for v in row] for row in batch.download_time_s],
    }
print(json.dumps(out))
"""


@pytest.fixture(scope="module")
def numpyless_run():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout.strip().splitlines()[-1])


def test_batch_api_usable_without_numpy(numpyless_run):
    assert set(numpyless_run) == {"rb", "bola", "fastmpc", "robust-fastmpc"}
    for payload in numpyless_run.values():
        assert len(payload["levels"]) == 3
        assert all(len(row) == 20 for row in payload["levels"])


@needs_numpy
def test_batch_identical_with_and_without_numpy(numpyless_run):
    traces = SyntheticTraceGenerator(seed=5).generate_many(3, 200.0)
    manifest = VideoManifest.cbr(4.0, BitrateLadder(ENVIVIO_LADDER_KBPS), 20)
    table_config = FastMPCConfig(buffer_bins=12, throughput_bins=12, horizon=4)
    for name, child in numpyless_run.items():
        batch = run_batch(
            name, traces, manifest, table_config=table_config, engine="vector"
        )
        assert [batch.session_levels(i) for i in range(3)] == child["levels"]
        assert [float(v) for v in batch.qoe_total] == child["qoe"]
        assert [float(v) for v in batch.total_rebuffer_s] == child["rebuffer"]
        assert [float(v) for v in batch.startup_delay_s] == child["startup"]
        assert [
            [float(v) for v in row] for row in batch.download_time_s
        ] == child["download"]
