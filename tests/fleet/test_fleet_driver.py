"""The fleet driver end to end: sharding, determinism across worker
counts, tracer events, and the CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.fleet import FleetConfig, ScenarioSpace, run_fleet, sample_scenarios
from repro.fleet.driver import run_shard
from repro.obs import FleetShard, FleetSummary, RingBufferSink, Tracer

#: A space small enough for CI: cheap controllers, short video, tiny
#: trace pools — still 2+ controllers x 3 datasets x presets of arms.
SPACE = ScenarioSpace(
    controllers=("lowest", "rb", "bb", "bola"),
    ladders=("envivio",),
    num_chunks=12,
    traces_per_dataset=4,
    trace_duration_s=60.0,
)


@pytest.fixture(scope="module")
def fleet_result():
    return run_fleet(FleetConfig(sessions=120, seed=5, shard_size=32, space=SPACE))


def test_fleet_accounts_every_session(fleet_result):
    assert fleet_result.sessions == 120
    assert sum(arm.sessions for arm in fleet_result.arms.values()) == 120
    for key, arm in fleet_result.arms.items():
        controller, dataset, preset, ladder = key.split("|")
        assert controller in SPACE.controllers
        assert dataset in SPACE.datasets
        assert preset in SPACE.presets
        assert ladder == "envivio"
        assert arm.qoe_per_chunk.count == arm.sessions
        assert arm.rebuffer_s.count == arm.sessions
        assert arm.mean_bitrate_kbps.count == arm.sessions


def test_workers_do_not_change_the_result(fleet_result):
    # The determinism bar: 1 worker and a 3-worker pool produce
    # byte-identical serialized results.
    pooled = run_fleet(
        FleetConfig(sessions=120, seed=5, shard_size=32, space=SPACE), workers=3
    )
    assert json.dumps(pooled.to_dict(), sort_keys=True) == json.dumps(
        fleet_result.to_dict(), sort_keys=True
    )


def test_single_shard_run_matches_run_shard(fleet_result):
    # A shard size covering the whole stream reduces the driver to one
    # run_shard call; and a different shard size may move float sums by
    # an ulp, but the bucket counts — what the quantiles are read from —
    # are exactly partition-independent.
    scenarios = sample_scenarios(SPACE, 120, 5)
    whole = run_shard(SPACE, scenarios)
    single = run_fleet(
        FleetConfig(sessions=120, seed=5, shard_size=1024, space=SPACE)
    )
    assert json.dumps(whole, sort_keys=True) == json.dumps(
        single.to_dict(), sort_keys=True
    )
    assert set(single.arms) == set(fleet_result.arms)
    for key, arm in single.arms.items():
        other = fleet_result.arms[key]
        assert arm.sessions == other.sessions
        assert arm.qoe_per_chunk.bucket_counts == other.qoe_per_chunk.bucket_counts
        assert arm.rebuffer_s.bucket_counts == other.rebuffer_s.bucket_counts
        assert (
            arm.mean_bitrate_kbps.bucket_counts
            == other.mean_bitrate_kbps.bucket_counts
        )


def test_engine_choice_does_not_change_the_result(fleet_result):
    scalar = run_fleet(
        FleetConfig(
            sessions=120, seed=5, shard_size=32, space=SPACE, engine="scalar"
        )
    )
    assert json.dumps(scalar.to_dict(), sort_keys=True) == json.dumps(
        fleet_result.to_dict(), sort_keys=True
    )


def test_tracer_sees_shards_and_summary():
    sink = RingBufferSink()
    tracer = Tracer(sinks=[sink], session_id="fleet-test")
    result = run_fleet(
        FleetConfig(sessions=50, seed=2, shard_size=20, space=SPACE), tracer=tracer
    )
    shards = [e for e in sink.events() if isinstance(e, FleetShard)]
    summaries = [e for e in sink.events() if isinstance(e, FleetSummary)]
    assert [s.shard_index for s in shards] == [0, 1, 2]
    assert [s.sessions for s in shards] == [20, 20, 10]
    assert all(s.wall_s > 0 for s in shards)
    (summary,) = summaries
    assert summary.sessions == result.sessions == 50
    assert summary.shards == 3
    assert summary.workers == 1
    assert summary.sessions_per_s > 0


def test_empty_fleet_is_wellformed():
    result = run_fleet(FleetConfig(sessions=0, space=SPACE), workers=4)
    assert result.to_dict() == {"sessions": 0, "arms": {}}


def test_config_and_worker_validation():
    with pytest.raises(ValueError, match="sessions"):
        FleetConfig(sessions=-1)
    with pytest.raises(ValueError, match="shard_size"):
        FleetConfig(sessions=1, shard_size=0)
    with pytest.raises(ValueError, match="workers"):
        run_fleet(FleetConfig(sessions=1, space=SPACE), workers=0)


def test_cli_fleet_smoke(tmp_path, capsys):
    out_path = tmp_path / "fleet.json"
    rc = cli.main(
        [
            "fleet",
            "--sessions", "60",
            "--seed", "5",
            "--shard-size", "25",
            "--controllers", "lowest", "bb",
            "--chunks", "12",
            "--traces", "4",
            "--duration", "60",
            "--json", str(out_path),
        ]
    )
    assert rc == 0
    printed = capsys.readouterr().out
    assert "controller" in printed and "sessions/s" in printed
    payload = json.loads(out_path.read_text())
    assert payload["sessions"] == 60
    assert payload["result"]["sessions"] == 60
    rollup_controllers = {
        key.split("|")[0] for key in payload["result"]["arms"]
    }
    assert rollup_controllers == {"lowest", "bb"}
