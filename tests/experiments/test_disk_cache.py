"""The persistent disk cache: tables and offline bounds."""

from __future__ import annotations

import json
import logging
import struct

import pytest

from repro.core import fastmpc
from repro.core.fastmpc import (
    FastMPCConfig,
    build_decision_table,
    clear_table_cache,
    table_size_sweep,
)
from repro.core.offline import fluid_upper_bound
from repro.experiments import persistence
from repro.qoe import QoEWeights
from repro.traces import FCCTraceGenerator
from repro.video import envivio
from repro.video.quality import LogQuality

LADDER = (300.0, 750.0, 1200.0, 1850.0, 2850.0)
SMALL = FastMPCConfig(buffer_bins=20, throughput_bins=25)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_table_cache()
    yield
    clear_table_cache()


def build(tmp_path, **kwargs):
    return build_decision_table(
        LADDER, 4.0, 30.0, QoEWeights.balanced(), config=SMALL,
        cache_dir=tmp_path, **kwargs
    )


class TestCacheRoot:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(persistence.CACHE_DIR_ENV, raising=False)
        assert persistence.cache_root() is None

    def test_env_var_fallback(self, monkeypatch, tmp_path):
        monkeypatch.setenv(persistence.CACHE_DIR_ENV, str(tmp_path))
        assert persistence.cache_root() == tmp_path
        assert persistence.cache_root(tmp_path / "explicit") == tmp_path / "explicit"


class TestTableDiskCache:
    def test_round_trip_bitwise_identical(self, tmp_path):
        first = build(tmp_path)
        clear_table_cache()  # drop the in-process memo, keep the disk entry
        second = build(tmp_path)
        assert second is not first
        assert second.rle.to_bytes() == first.rle.to_bytes()
        assert second.num_levels == first.num_levels
        for attr in ("low", "high", "count", "spacing"):
            assert getattr(second.buffer_bins, attr) == getattr(
                first.buffer_bins, attr
            )
            assert getattr(second.throughput_bins, attr) == getattr(
                first.throughput_bins, attr
            )
        # Identical behaviour, not just identical bytes.
        for buf, prev, kbps in ((3.0, 0, 400.0), (15.0, 2, 1500.0), (29.0, 4, 6000.0)):
            assert second.lookup(buf, prev, kbps) == first.lookup(buf, prev, kbps)

    def test_second_build_does_not_recompute(self, tmp_path, monkeypatch):
        build(tmp_path)
        clear_table_cache()

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("table was rebuilt despite a disk cache hit")

        monkeypatch.setattr(fastmpc, "build_table_decisions", boom)
        build(tmp_path)  # served from disk

    def test_sweep_hits_cache_on_repeat(self, tmp_path, monkeypatch):
        levels = (10, 20)
        table_size_sweep(
            LADDER, 4.0, 30.0, QoEWeights.balanced(),
            discretization_levels=levels, cache_dir=tmp_path,
        )
        clear_table_cache()
        monkeypatch.setattr(
            fastmpc,
            "build_table_decisions",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("sweep rebuilt a cached table")
            ),
        )
        repeat = table_size_sweep(
            LADDER, 4.0, 30.0, QoEWeights.balanced(),
            discretization_levels=levels, cache_dir=tmp_path,
        )
        assert [r.discretization_levels for r in repeat] == list(levels)

    def test_different_config_misses(self, tmp_path):
        build(tmp_path)
        clear_table_cache()
        other = build_decision_table(
            LADDER, 4.0, 30.0, QoEWeights.balanced(),
            config=FastMPCConfig(buffer_bins=21, throughput_bins=25),
            cache_dir=tmp_path,
        )
        assert other.buffer_bins.count == 21

    def test_corrupt_entry_falls_back_to_build(self, tmp_path):
        first = build(tmp_path)
        clear_table_cache()
        (entry,) = (tmp_path / "tables").iterdir()
        entry.write_bytes(b"garbage")
        rebuilt = build(tmp_path)
        assert rebuilt.rle.to_bytes() == first.rle.to_bytes()

    def test_no_cache_dir_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv(persistence.CACHE_DIR_ENV, raising=False)
        build_decision_table(
            LADDER, 4.0, 30.0, QoEWeights.balanced(), config=SMALL
        )
        assert not (tmp_path / "tables").exists()


class TestBoundDiskCache:
    @pytest.fixture(scope="class")
    def trace(self):
        return FCCTraceGenerator(seed=5).generate_many(1, 320.0)[0]

    def test_round_trip_and_hit(self, trace, tmp_path, monkeypatch):
        manifest = envivio()
        weights = QoEWeights.balanced()
        direct = fluid_upper_bound(trace, manifest, weights=weights)
        cached = persistence.cached_fluid_upper_bound(
            trace, manifest, weights=weights, cache_dir=tmp_path
        )
        assert cached == direct
        calls = []
        monkeypatch.setattr(
            persistence,
            "fluid_upper_bound",
            lambda *a, **k: calls.append(1) or 0.0,
        )
        again = persistence.cached_fluid_upper_bound(
            trace, manifest, weights=weights, cache_dir=tmp_path
        )
        assert again == direct
        assert calls == []  # served from disk, never recomputed

    def test_keyed_quality_function_cached(self, trace, tmp_path):
        manifest = envivio()
        quality = LogQuality(reference_kbps=250.0)
        value = persistence.cached_fluid_upper_bound(
            trace, manifest, quality=quality, cache_dir=tmp_path
        )
        assert value == fluid_upper_bound(trace, manifest, quality=quality)
        assert any((tmp_path / "bounds").iterdir())

    def test_unkeyable_quality_computes_directly(self, trace, tmp_path):
        manifest = envivio()
        value = persistence.cached_fluid_upper_bound(
            trace, manifest, quality=lambda r: r, cache_dir=tmp_path
        )
        # An anonymous callable cannot be fingerprinted: correct value,
        # but nothing is written.
        assert value == pytest.approx(fluid_upper_bound(trace, manifest))
        assert not (tmp_path / "bounds").exists()


class TestCorruptEntryHygiene:
    """Parse failures are warned about and unlinked; honest misses are
    left alone — a corrupt entry must not look like a hit forever."""

    KEY = ("ladder", 4.0, 30.0, "balanced")

    def entry_path(self, tmp_path):
        return persistence._entry_path(
            tmp_path, "tables", repr(self.KEY), ".table"
        )

    def test_truncated_table_blob_warns_and_unlinks(self, tmp_path, caplog):
        path = self.entry_path(tmp_path)
        path.parent.mkdir(parents=True)
        # Header claims a 500-byte key; the blob ends long before that.
        path.write_bytes(struct.pack("<I", 500) + b"short")
        with caplog.at_level(logging.WARNING, logger="repro.experiments.persistence"):
            assert persistence.load_cached_table(self.KEY, cache_dir=tmp_path) is None
        assert not path.exists()
        assert "discarding corrupt cache entry" in caplog.text

    def test_unparseable_table_blob_warns_and_unlinks(self, tmp_path, caplog):
        path = self.entry_path(tmp_path)
        path.parent.mkdir(parents=True)
        key_bytes = repr(self.KEY).encode()
        # Valid key frame, garbage table payload.
        path.write_bytes(struct.pack("<I", len(key_bytes)) + key_bytes + b"garbage")
        with caplog.at_level(logging.WARNING, logger="repro.experiments.persistence"):
            assert persistence.load_cached_table(self.KEY, cache_dir=tmp_path) is None
        assert not path.exists()
        assert "discarding corrupt cache entry" in caplog.text

    def test_key_mismatch_is_a_miss_not_corruption(self, tmp_path, caplog):
        """A parseable entry for a different key (collision / stale
        format) is someone else's data: miss, but leave the file alone."""
        path = self.entry_path(tmp_path)
        path.parent.mkdir(parents=True)
        other = repr(("some", "other", "key")).encode()
        path.write_bytes(struct.pack("<I", len(other)) + other + b"payload")
        with caplog.at_level(logging.WARNING, logger="repro.experiments.persistence"):
            assert persistence.load_cached_table(self.KEY, cache_dir=tmp_path) is None
        assert path.exists()
        assert "discarding corrupt" not in caplog.text

    def test_corrupt_bound_json_warns_unlinks_and_recomputes(self, tmp_path, caplog):
        trace = FCCTraceGenerator(seed=11).generate_many(1, 320.0)[0]
        manifest = envivio()
        value = persistence.cached_fluid_upper_bound(
            trace, manifest, cache_dir=tmp_path
        )
        (entry,) = (tmp_path / "bounds").iterdir()
        entry.write_text("not json at all")
        with caplog.at_level(logging.WARNING, logger="repro.experiments.persistence"):
            again = persistence.cached_fluid_upper_bound(
                trace, manifest, cache_dir=tmp_path
            )
        assert again == value
        assert "discarding corrupt cache entry" in caplog.text
        # The recompute rewrote a healthy entry in its place.
        payload = json.loads(entry.read_text())
        assert payload["value"] == value

    def test_bound_entry_missing_value_field_is_discarded(self, tmp_path, caplog):
        trace = FCCTraceGenerator(seed=12).generate_many(1, 320.0)[0]
        manifest = envivio()
        value = persistence.cached_fluid_upper_bound(
            trace, manifest, cache_dir=tmp_path
        )
        (entry,) = (tmp_path / "bounds").iterdir()
        stored_key = json.loads(entry.read_text())["key"]
        entry.write_text(json.dumps({"key": stored_key}))  # value lost
        with caplog.at_level(logging.WARNING, logger="repro.experiments.persistence"):
            again = persistence.cached_fluid_upper_bound(
                trace, manifest, cache_dir=tmp_path
            )
        assert again == value
        assert "discarding corrupt cache entry" in caplog.text


class TestClearDiskCache:
    def test_clears_both_layers(self, tmp_path):
        build(tmp_path)
        trace = FCCTraceGenerator(seed=9).generate_many(1, 320.0)[0]
        persistence.cached_fluid_upper_bound(
            trace, envivio(), cache_dir=tmp_path
        )
        removed = persistence.clear_disk_cache(tmp_path)
        assert removed == 2
        assert persistence.clear_disk_cache(tmp_path) == 0
