"""The served controller leaderboard (docs/controllers.md)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    DEFAULT_LEADERBOARD_CONTROLLERS,
    LeaderboardConfig,
    run_leaderboard,
)

pytestmark = pytest.mark.slow


def tiny_config(**overrides) -> LeaderboardConfig:
    fields = dict(
        controllers=("table", "bola", "bb"),
        datasets=("synthetic",),
        sessions=12,
        chunks_per_session=4,
        concurrency=4,
        seed=3,
        trace_duration_s=60.0,
        bins=8,
    )
    fields.update(overrides)
    return LeaderboardConfig(**fields)


class TestConfigValidation:
    def test_default_lineup_spans_families(self):
        assert "table" in DEFAULT_LEADERBOARD_CONTROLLERS
        assert len(DEFAULT_LEADERBOARD_CONTROLLERS) >= 4

    def test_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            tiny_config(controllers=())
        with pytest.raises(ValueError):
            tiny_config(controllers=("bola", "bola"))
        with pytest.raises(ValueError):
            tiny_config(datasets=())
        with pytest.raises(ValueError):
            tiny_config(sessions=0)


class TestLeaderboardRun:
    def test_every_arm_gets_a_cell_and_traffic_accounts(self):
        config = tiny_config()
        result = run_leaderboard(config)
        assert result.errors == 0
        assert len(result.cells) == len(config.controllers)
        assert {c.arm for c in result.cells} == set(config.controllers)
        total = sum(c.decisions for c in result.cells)
        assert total == config.sessions * config.chunks_per_session
        assert sum(c.sessions for c in result.cells) == config.sessions
        # Arms that saw sessions have a QoE mean; the table rendered every
        # arm (a zero-traffic arm shows up as a visible gap, not silence).
        for cell in result.cells:
            if cell.sessions:
                assert cell.qoe_mean is not None
            assert cell.arm in result.render()

    def test_deterministic_arm_split(self):
        """Same salt + sessions -> identical per-arm session counts."""
        a = run_leaderboard(tiny_config())
        b = run_leaderboard(tiny_config())
        split_a = {(c.dataset, c.arm): c.sessions for c in a.cells}
        split_b = {(c.dataset, c.arm): c.sessions for c in b.cells}
        assert split_a == split_b

    def test_to_dict_schema(self):
        result = run_leaderboard(tiny_config(controllers=("bola", "bb")))
        d = result.to_dict()
        assert set(d) == {
            "controllers", "datasets", "sessions", "chunks_per_session",
            "seed", "salt", "errors", "wall_s", "cells",
        }
        assert len(d["cells"]) == 2
        for cell in d["cells"]:
            assert set(cell) == {
                "dataset", "arm", "controller", "sessions", "decisions",
                "degraded", "qoe_mean",
            }
