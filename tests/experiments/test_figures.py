"""Per-figure reproduction entry points and reports."""

from __future__ import annotations

import pytest

from repro.abr import BufferBasedAlgorithm, RateBasedAlgorithm
from repro.core.fastmpc import FastMPCConfig, FastMPCController
from repro.experiments import (
    figure7,
    figure8,
    figure9_10,
    measure_overhead,
    prediction_profile,
    render_detail_series,
    render_distribution_summary,
    render_figure7,
    render_result_set,
    render_table,
    table1,
)
from repro.traces import FCCTraceGenerator, HSDPATraceGenerator, Trace
from repro.video import envivio


@pytest.fixture(scope="module")
def mini_datasets():
    return {
        "fcc": FCCTraceGenerator(seed=31).generate_many(3, 320.0),
        "hsdpa": HSDPATraceGenerator(seed=31).generate_many(3, 320.0),
    }


class TestFigure7:
    def test_characteristics_per_dataset(self, mini_datasets):
        chars = figure7(mini_datasets)
        assert set(chars) == {"fcc", "hsdpa"}
        for ch in chars.values():
            assert len(ch.mean_kbps) == 3
            assert len(ch.mean_abs_prediction_error) == 3
            assert all(0 <= f <= 1 for f in ch.overestimation_fraction)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            figure7({"empty": []})

    def test_prediction_profile_on_constant_trace(self):
        tracker = prediction_profile(Trace.constant(1000.0, 320.0))
        assert tracker.mean_abs_error() == pytest.approx(0.0)

    def test_render(self, mini_datasets):
        text = render_figure7(figure7(mini_datasets))
        assert "dataset" in text
        assert "fcc" in text and "hsdpa" in text


class TestFigure8And910:
    @pytest.fixture(scope="class")
    def results(self, mini_datasets):
        algorithms = {
            "rb": RateBasedAlgorithm(),
            "bb": BufferBasedAlgorithm(),
            "fastmpc": FastMPCController(
                config=FastMPCConfig(buffer_bins=15, throughput_bins=15)
            ),
        }
        return figure8(mini_datasets, envivio(), algorithms=algorithms,
                       backend="sim")

    def test_one_result_set_per_dataset(self, results):
        assert set(results) == {"fcc", "hsdpa"}
        for rs in results.values():
            assert rs.algorithms() == ["rb", "bb", "fastmpc"]

    def test_detail_series(self, results):
        detail = figure9_10(results["fcc"])
        assert set(detail.average_bitrate_kbps) == {"rb", "bb", "fastmpc"}
        assert len(detail.total_rebuffer_s["rb"]) == 3

    def test_renders(self, results):
        text = render_result_set(results["fcc"])
        assert "median" in text and "rb" in text
        detail_text = render_detail_series(figure9_10(results["hsdpa"]))
        assert "rebuffer" in detail_text
        assert "zero-rebuffer" in detail_text


class TestTable1:
    def test_small_sweep(self):
        reports = table1(discretization_levels=(8, 16), horizon=3)
        assert [r.discretization_levels for r in reports] == [8, 16]
        for r in reports:
            assert r.rle_bytes > 0
            assert r.full_bytes == r.num_entries


class TestOverhead:
    def test_measures_each_algorithm(self):
        trace = FCCTraceGenerator(seed=5).generate(320.0)
        algorithms = {
            "rb": RateBasedAlgorithm(),
            "fastmpc": FastMPCController(
                config=FastMPCConfig(buffer_bins=15, throughput_bins=15)
            ),
        }
        samples = measure_overhead(algorithms, trace, envivio())
        assert [s.algorithm for s in samples] == ["rb", "fastmpc"]
        for s in samples:
            assert s.decisions == 65
            assert s.mean_decision_us > 0
        fast = samples[1]
        assert fast.table_bytes > 0
        assert "kB" in fast.describe()


class TestRenderHelpers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_render_table_validation(self):
        with pytest.raises(ValueError):
            render_table([], [])
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_distribution_summary(self):
        text = render_distribution_summary("metric", [1.0, 2.0, 3.0], "kbps")
        assert "median" in text and "kbps" in text
