"""Sensitivity sweeps (Figures 11/12), run at miniature scale."""

from __future__ import annotations

import pytest

from repro.experiments.sensitivity import (
    SweepResult,
    bitrate_levels_sweep,
    buffer_size_sweep,
    discretization_sweep,
    horizon_sweep,
    prediction_error_sweep,
    qoe_preference_sweep,
    startup_time_sweep,
)
from repro.traces import FCCTraceGenerator, HSDPATraceGenerator
from repro.video import envivio


@pytest.fixture(scope="module")
def traces():
    # A small mixed pool, like the paper's cross-dataset training set.
    return (
        FCCTraceGenerator(seed=41).generate_many(2, 320.0)
        + HSDPATraceGenerator(seed=41).generate_many(2, 320.0)
    )


@pytest.fixture(scope="module")
def manifest():
    return envivio()


class TestPredictionErrorSweep:
    def test_shapes_and_flat_bb(self, traces, manifest):
        sweep = prediction_error_sweep(
            traces, manifest, error_levels=(0.05, 0.4), include_robust=False
        )
        assert sweep.parameter_values == (0.05, 0.4)
        assert set(sweep.series) == {"mpc", "rb", "bb"}
        # BB ignores throughput: its series is exactly flat.
        assert sweep.series["bb"][0] == pytest.approx(sweep.series["bb"][1])

    def test_mpc_degrades_with_error(self, traces, manifest):
        sweep = prediction_error_sweep(
            traces, manifest, error_levels=(0.0, 0.45), include_robust=False
        )
        assert sweep.series["mpc"][1] <= sweep.series["mpc"][0] + 0.05


class TestQoEPreferenceSweep:
    def test_three_presets(self, traces, manifest):
        sweep = qoe_preference_sweep(traces[:2], manifest)
        assert sweep.parameter_values == (
            "balanced", "avoid-instability", "avoid-rebuffering"
        )
        assert set(sweep.series) == {"mpc-opt", "fastmpc", "bb", "rb"}


class TestBufferSizeSweep:
    def test_runs(self, traces, manifest):
        sweep = buffer_size_sweep(traces[:2], manifest,
                                  buffer_sizes_s=(10.0, 30.0))
        assert len(sweep.series["bb"]) == 2


class TestStartupTimeSweep:
    def test_runs_and_improves(self, traces, manifest):
        sweep = startup_time_sweep(traces[:2], manifest,
                                   startup_times_s=(2.0, 10.0))
        # More pre-roll should not hurt (QoE excludes the startup term).
        for series in sweep.series.values():
            assert series[1] >= series[0] - 0.05


class TestBitrateLevelsSweep:
    def test_runs(self, traces, manifest):
        sweep = bitrate_levels_sweep(traces[:2], manifest, level_counts=(2, 5))
        assert set(sweep.series) == {"mpc", "bb", "rb"}
        assert len(sweep.parameter_values) == 2


class TestDiscretizationSweep:
    def test_finer_bins_do_not_hurt(self, traces, manifest):
        sweep = discretization_sweep(
            traces[:2], manifest, discretization_levels=(4, 40)
        )
        assert set(sweep.series) == {"fastmpc-perfect", "fastmpc-harmonic"}
        assert sweep.series["fastmpc-perfect"][1] >= (
            sweep.series["fastmpc-perfect"][0] - 0.05
        )


class TestHorizonSweep:
    def test_runs(self, traces, manifest):
        sweep = horizon_sweep(
            traces[:2], manifest, horizons=(2, 5), error_levels=(0.10,)
        )
        assert set(sweep.series) == {"mpc-err10"}
        assert len(sweep.series["mpc-err10"]) == 2


class TestSweepResult:
    def test_describe_and_best(self):
        sweep = SweepResult(
            parameter_name="x",
            parameter_values=(1, 2),
            series={"a": (0.5, 0.7), "b": (0.6, 0.6)},
        )
        assert sweep.best_algorithm_at(0) == "b"
        assert sweep.best_algorithm_at(1) == "a"
        text = sweep.describe()
        assert "sweep over x" in text
        assert "0.7000" in text
