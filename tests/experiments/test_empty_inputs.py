"""Empty-session / zero-chunk guards in the summary-statistics paths.

Fault injection (PR 3) made runs with dropped or zero-chunk sessions a
normal outcome, so the reporting layer must render something useful
instead of crashing — while the low-level CDF helpers keep their strict
"at least one value" contract (an empty percentile has no meaning)."""

import pytest

from repro.experiments.cdf import (
    cdf_at,
    ecdf,
    fraction_at_most,
    fraction_below,
    median,
    percentile,
)
from repro.experiments.figures import DatasetCharacteristics, DetailSeries
from repro.experiments.report import (
    render_distribution_summary,
    render_detail_series,
    render_figure7,
    render_result_set,
)


class TestCdfContractStaysStrict:
    """The primitives keep raising: callers decide how to render "empty"."""

    def test_percentile_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one value"):
            percentile([], 50)

    def test_median_rejects_empty(self):
        with pytest.raises(ValueError):
            median([])

    def test_fractions_reject_empty(self):
        with pytest.raises(ValueError):
            fraction_below([], 0.0)
        with pytest.raises(ValueError):
            fraction_at_most([], 0.0)

    def test_ecdf_and_grid_reject_empty(self):
        with pytest.raises(ValueError):
            ecdf([])
        with pytest.raises(ValueError):
            cdf_at([], [0.0, 1.0])


class TestDistributionSummary:
    def test_empty_values_render_placeholder(self):
        line = render_distribution_summary("mpc", [])
        assert "(no values)" in line
        assert "mpc" in line

    def test_non_empty_still_renders_percentiles(self):
        line = render_distribution_summary("mpc", [1.0, 2.0, 3.0], "kbps")
        assert "median" in line and "kbps" in line


class _StubResults:
    """Quacks like ResultSet for rendering: one algorithm lost all its
    sessions (e.g. every run hit a fault) and has no values."""

    dataset = "synthetic"

    def algorithms(self):
        return ["mpc", "ghost"]

    def n_qoe_values(self, algorithm):
        return [0.8, 0.9, 1.0] if algorithm == "mpc" else []


def test_result_set_rendering_marks_empty_algorithm():
    text = render_result_set(_StubResults())
    assert "ghost" in text
    assert "n/a" in text
    assert "0.9" in text  # the populated algorithm still gets real numbers


def test_figure7_rendering_marks_empty_dataset():
    empty = DatasetCharacteristics(
        dataset="void",
        mean_kbps=(),
        std_kbps=(),
        mean_abs_prediction_error=(),
        mean_signed_prediction_error=(),
        overestimation_fraction=(),
        worst_abs_prediction_error=(),
    )
    text = render_figure7({"void": empty})
    assert "void" in text
    assert "n/a" in text


def test_detail_series_rendering_survives_empty_algorithm():
    detail = DetailSeries(
        dataset="synthetic",
        average_bitrate_kbps={"mpc": (1200.0,), "ghost": ()},
        average_bitrate_change_kbps={"mpc": (80.0,), "ghost": ()},
        total_rebuffer_s={"mpc": (0.0,), "ghost": ()},
    )
    text = render_detail_series(detail)
    assert "(no values)" in text
    assert "zero-rebuffer sessions n/a" in text
    assert "zero-rebuffer sessions 100%" in text
