"""Report rendering edge cases."""

from __future__ import annotations

import pytest

from repro.experiments import (
    render_distribution_summary,
    render_figure7,
    render_table,
)
from repro.experiments.figures import DatasetCharacteristics


class TestRenderTable:
    def test_float_formatting(self):
        text = render_table(["x"], [[1.23456789]])
        assert "1.2346" in text

    def test_mixed_types(self):
        text = render_table(["name", "count", "ratio"], [["a", 3, 0.5]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "0.5000" in lines[2]

    def test_columns_right_aligned(self):
        text = render_table(["alpha", "b"], [["x", "yyyy"]])
        header, _, row = text.splitlines()
        assert header.index("alpha") <= row.index("x")


class TestDistributionSummary:
    def test_without_unit(self):
        text = render_distribution_summary("metric", [1.0])
        assert text.rstrip().endswith("1.000")

    def test_percentiles_ordered(self):
        text = render_distribution_summary("m", [1.0, 5.0, 9.0, 2.0, 7.0])
        assert "p10" in text and "p90" in text


class TestRenderFigure7:
    def test_single_dataset(self):
        ch = DatasetCharacteristics(
            dataset="tiny",
            mean_kbps=(1000.0, 2000.0),
            std_kbps=(100.0, 150.0),
            mean_abs_prediction_error=(0.05, 0.07),
            mean_signed_prediction_error=(0.0, 0.01),
            overestimation_fraction=(0.4, 0.6),
            worst_abs_prediction_error=(0.2, 0.3),
        )
        text = render_figure7({"tiny": ch})
        assert "tiny" in text
        assert "1500" in text  # median of the two means
