"""The predictor-accuracy race: determinism, degradation, strict wins.

Pins the acceptance contract of the §7.3 extension: the gap-corrected
predictors *strictly* reduce active-rate MAE vs their plain counterparts
on the stall-heavy fault profiles, degrade bit-identically on the clean
profile, and the whole table reproduces exactly whether computed by one
worker or a pool.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    PREDICTOR_RACE_PREDICTORS,
    PREDICTOR_RACE_PROFILES,
    run_predictor_race,
)
from repro.traces import FCCTraceGenerator, HSDPATraceGenerator
from repro.video.presets import envivio


def make_traces():
    return FCCTraceGenerator(seed=11).generate_many(
        2, 240.0
    ) + HSDPATraceGenerator(seed=11).generate_many(2, 240.0)


@pytest.fixture(scope="module")
def race():
    return run_predictor_race(make_traces(), envivio(), workers=1)


def test_shape(race):
    profiles = set(PREDICTOR_RACE_PROFILES)
    predictors = set(PREDICTOR_RACE_PREDICTORS)
    assert len(race.cells) == len(profiles) * len(predictors) * 4
    rows = race.rows()
    assert len(rows) == len(profiles) * len(predictors)
    for row in rows:
        assert row.sessions == 4
        assert row.chunks > 0


@pytest.mark.parametrize("profile", ("blackouts", "lossy-link"))
@pytest.mark.parametrize(
    "corrected,baseline", (("gap-harmonic", "harmonic"), ("gap-ewma", "ewma"))
)
def test_gap_correction_strictly_reduces_active_mae(
    race, profile, corrected, baseline
):
    """The headline claim: on stall-heavy profiles the corrected
    predictor's active-rate MAE is strictly below the plain one's."""
    assert race.strictly_reduces(profile, corrected, baseline), (
        f"{corrected} did not beat {baseline} on {profile}: "
        f"{race.row(profile, corrected).active_mae} vs "
        f"{race.row(profile, baseline).active_mae}"
    )


@pytest.mark.parametrize(
    "corrected,baseline", (("gap-harmonic", "harmonic"), ("gap-ewma", "ewma"))
)
def test_clean_profile_degrades_exactly(race, corrected, baseline):
    """No stalls -> the gap predictors are their plain counterparts:
    every per-trace cell matches bit for bit, QoE included."""
    for cell in race.cells:
        if cell.profile != "clean" or cell.predictor != corrected:
            continue
        twin = next(
            c
            for c in race.cells
            if c.profile == "clean"
            and c.predictor == baseline
            and c.trace_name == cell.trace_name
        )
        assert cell.active_abs_error_sum == twin.active_abs_error_sum
        assert cell.wall_abs_error_sum == twin.wall_abs_error_sum
        assert cell.qoe_total == twin.qoe_total
        assert cell.rebuffer_s == twin.rebuffer_s
        assert cell.mean_bitrate_kbps == twin.mean_bitrate_kbps


def test_clean_wall_equals_active(race):
    """Without stalls the active rate *is* the wall rate (same float),
    so the two MAE columns coincide exactly."""
    for row in race.rows():
        if row.profile == "clean":
            assert row.wall_mae == row.active_mae
            assert row.idle_gap_fraction == 0.0


def test_oracle_is_the_accuracy_anchor(race):
    for profile in PREDICTOR_RACE_PROFILES:
        oracle = race.row(profile, "oracle").active_mae
        for predictor in PREDICTOR_RACE_PREDICTORS:
            if predictor != "oracle":
                assert oracle < race.row(profile, predictor).active_mae


def test_stall_profiles_report_nonzero_gap_fraction(race):
    """The previously-discarded on/off context flows end to end: the
    fault profiles that inject dead time show up in the diagnostic."""
    for profile in ("blackouts", "lossy-link"):
        for predictor in PREDICTOR_RACE_PREDICTORS:
            row = race.row(profile, predictor)
            assert row.idle_gap_fraction > 0.0
            assert row.gapped_chunks > 0


def test_workers_do_not_change_results(race):
    """1 worker vs a pool of 2: bit-identical cells, rows, and table."""
    pooled = run_predictor_race(make_traces(), envivio(), workers=2)
    assert pooled == race
    assert [r.to_dict() for r in pooled.rows()] == [
        r.to_dict() for r in race.rows()
    ]
    assert pooled.table() == race.table()


def test_render_and_serialize(race):
    text = race.table()
    assert "active_mae" in text and "gap-harmonic" in text
    assert race.describe() == text
    doc = json.loads(json.dumps(race.to_dict()))
    assert doc["profiles"] == list(PREDICTOR_RACE_PROFILES)
    assert len(doc["rows"]) == len(race.rows())
    assert doc["rows"][0]["chunks"] > 0


def test_row_lookup_raises_on_unknown(race):
    with pytest.raises(KeyError):
        race.row("clean", "nope")


def test_input_validation():
    manifest = envivio()
    trace = FCCTraceGenerator(seed=1).generate_many(1, 60.0)
    with pytest.raises(ValueError):
        run_predictor_race([], manifest)
    with pytest.raises(ValueError):
        run_predictor_race(trace, manifest, predictors=())
    with pytest.raises(ValueError):
        run_predictor_race(trace, manifest, profiles=())
    with pytest.raises(ValueError):
        run_predictor_race(trace, manifest, workers=0)
    with pytest.raises(ValueError):
        run_predictor_race(trace, manifest, profiles=("no-such-profile",))
