"""The batch experiment runner and result sets."""

from __future__ import annotations

import pytest

from repro.abr import BufferBasedAlgorithm, RateBasedAlgorithm, SessionConfig
from repro.experiments import ResultSet, run_matrix
from repro.qoe import QoEWeights
from repro.sim import StartupPolicy
from repro.traces import FCCTraceGenerator
from repro.video import envivio


@pytest.fixture(scope="module")
def traces():
    return FCCTraceGenerator(seed=21).generate_many(4, 320.0)


@pytest.fixture(scope="module")
def results(traces):
    algorithms = {"rb": RateBasedAlgorithm(), "bb": BufferBasedAlgorithm()}
    return run_matrix(algorithms, traces, envivio(), dataset="unit")


class TestRunMatrix:
    def test_record_count(self, results, traces):
        assert len(results.records) == 2 * len(traces)

    def test_algorithms_listed_in_order(self, results):
        assert results.algorithms() == ["rb", "bb"]

    def test_normalization_in_unit_range_mostly(self, results):
        for record in results.records:
            assert record.optimal_qoe > 0
            assert record.n_qoe <= 1.0 + 1e-9  # bound dominates

    def test_metric_values(self, results, traces):
        bitrates = results.metric_values("rb", "average_bitrate_kbps")
        assert len(bitrates) == len(traces)
        assert all(350.0 <= b <= 3000.0 for b in bitrates)

    def test_qoe_matches_breakdown(self, results):
        for record in results.records:
            assert record.qoe == pytest.approx(record.breakdown.total)

    def test_unknown_algorithm_raises(self, results):
        with pytest.raises(KeyError):
            results.for_algorithm("nope")

    def test_median_improvement(self, results):
        value = results.median_improvement("bb", "rb")
        assert isinstance(value, float)

    def test_validation(self, traces):
        with pytest.raises(ValueError, match="backend"):
            run_matrix({"rb": RateBasedAlgorithm()}, traces, envivio(),
                       backend="fpga")
        with pytest.raises(ValueError):
            run_matrix({}, traces, envivio())
        with pytest.raises(ValueError):
            run_matrix({"rb": RateBasedAlgorithm()}, [], envivio())

    def test_mapping_key_names_records(self, traces):
        """Records are keyed by the caller's name, not the instance name."""
        results = run_matrix(
            {"my-rb": RateBasedAlgorithm()}, traces[:1], envivio()
        )
        assert results.algorithms() == ["my-rb"]

    def test_emulation_backend(self, traces):
        results = run_matrix(
            {"bb": BufferBasedAlgorithm()}, traces[:2], envivio(),
            backend="emulation",
        )
        assert len(results.records) == 2

    def test_progress_callback(self, traces):
        calls = []
        run_matrix(
            {"bb": BufferBasedAlgorithm()}, traces[:2], envivio(),
            progress=lambda name, done, total: calls.append((name, done, total)),
        )
        assert calls == [("bb", 1, 2), ("bb", 2, 2)]

    def test_exclude_startup_normalisation(self, traces):
        """With startup excluded, both QoE and the bound drop the term."""
        included = run_matrix(
            {"bb": BufferBasedAlgorithm()}, traces[:2], envivio(),
            startup_policy=StartupPolicy.FIXED, fixed_startup_delay_s=4.0,
            include_startup_in_qoe=True,
        )
        excluded = run_matrix(
            {"bb": BufferBasedAlgorithm()}, traces[:2], envivio(),
            startup_policy=StartupPolicy.FIXED, fixed_startup_delay_s=4.0,
            include_startup_in_qoe=False,
        )
        for a, b in zip(included.records, excluded.records):
            assert b.breakdown.startup_seconds == 0.0
            assert b.qoe >= a.qoe

    def test_custom_weights_flow_through(self, traces):
        config = SessionConfig(weights=QoEWeights.avoid_rebuffering())
        results = run_matrix(
            {"bb": BufferBasedAlgorithm()}, traces[:1], envivio(), config
        )
        assert results.records[0].breakdown.weights.rebuffering == 6000.0


class TestResultSet:
    def test_requires_records(self):
        with pytest.raises(ValueError):
            ResultSet([])

    def test_merge(self, results):
        merged = results.merged_with(results)
        assert len(merged.records) == 2 * len(results.records)
