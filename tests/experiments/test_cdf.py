"""Distribution helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments import (
    cdf_at,
    ecdf,
    fraction_at_most,
    fraction_below,
    median,
    percentile,
)


class TestECDF:
    def test_basic(self):
        xs, fs = ecdf([3.0, 1.0, 2.0])
        assert xs == [1.0, 2.0, 3.0]
        assert fs == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf([])


class TestPercentile:
    def test_median_odd(self):
        assert median([5.0, 1.0, 3.0]) == 3.0

    def test_median_even_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == pytest.approx(2.5)

    def test_extremes(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_single_value(self):
        assert percentile([7.0], 35) == 7.0

    def test_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(values=st.lists(st.floats(-100, 100), min_size=1, max_size=50),
           q=st.floats(0, 100))
    def test_within_range(self, values, q):
        p = percentile(values, q)
        assert min(values) - 1e-9 <= p <= max(values) + 1e-9

    @given(values=st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    def test_monotone_in_q(self, values):
        assert percentile(values, 25) <= percentile(values, 75) + 1e-9


class TestFractions:
    def test_below_is_strict(self):
        values = [0.0, 0.0, 1.0, -1.0]
        assert fraction_below(values, 0.0) == pytest.approx(0.25)

    def test_at_most_is_inclusive(self):
        values = [0.0, 0.0, 1.0, -1.0]
        assert fraction_at_most(values, 0.0) == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_below([], 0.0)
        with pytest.raises(ValueError):
            fraction_at_most([], 0.0)


class TestCdfAt:
    def test_grid_evaluation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, [0.0, 2.0, 2.5, 10.0]) == pytest.approx(
            [0.0, 0.5, 0.5, 1.0]
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_at([], [1.0])
