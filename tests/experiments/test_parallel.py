"""Parallel runner: equality with the serial runner, pool behaviour."""

from __future__ import annotations

import pytest

from repro.abr import create
from repro.experiments import run_matrix
from repro.experiments.parallel import run_matrix_parallel
from repro.traces import FCCTraceGenerator
from repro.video import envivio


@pytest.fixture(scope="module")
def traces():
    return FCCTraceGenerator(seed=61).generate_many(4, 320.0)


NAMES = ["rb", "bb", "dashjs"]


class TestParallelRunner:
    def test_matches_serial_exactly(self, traces):
        serial = run_matrix(
            {name: create(name) for name in NAMES}, traces, envivio(),
            dataset="par",
        )
        parallel = run_matrix_parallel(
            NAMES, traces, envivio(), workers=2, dataset="par"
        )
        assert parallel.algorithms() == serial.algorithms()
        for name in NAMES:
            assert parallel.n_qoe_values(name) == pytest.approx(
                serial.n_qoe_values(name)
            )
            assert parallel.metric_values(name, "total_rebuffer_s") == pytest.approx(
                serial.metric_values(name, "total_rebuffer_s")
            )

    def test_single_worker_inline_path(self, traces):
        results = run_matrix_parallel(["bb"], traces[:2], envivio(), workers=1)
        assert len(results.records) == 2

    def test_validation(self, traces):
        with pytest.raises(ValueError):
            run_matrix_parallel([], traces, envivio())
        with pytest.raises(ValueError):
            run_matrix_parallel(["bb"], [], envivio())
        with pytest.raises(ValueError):
            run_matrix_parallel(["bb"], traces, envivio(), workers=0)

    def test_mpc_runs_in_pool(self, traces):
        """Controllers with numpy state must survive pickling of the
        work units (they are created inside the worker)."""
        results = run_matrix_parallel(
            ["robust-mpc"], traces[:2], envivio(), workers=2
        )
        assert len(results.records) == 2
