"""Bootstrap statistics and SVG figure rendering."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.stats import (
    ConfidenceInterval,
    bootstrap_median_ci,
    paired_median_difference_ci,
    sign_test_fraction,
)
from repro.experiments.svgplot import render_cdf_svg, render_lines_svg, save_svg


class TestBootstrapCI:
    def test_interval_brackets_estimate(self):
        rng = random.Random(0)
        values = [rng.gauss(10.0, 2.0) for _ in range(60)]
        ci = bootstrap_median_ci(values, n_boot=500, seed=1)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.contains(ci.estimate)

    def test_tight_data_tight_interval(self):
        ci = bootstrap_median_ci([5.0] * 30, n_boot=200)
        assert ci.low == ci.high == 5.0

    def test_higher_confidence_is_wider(self):
        rng = random.Random(2)
        values = [rng.uniform(0, 1) for _ in range(50)]
        narrow = bootstrap_median_ci(values, confidence=0.8, n_boot=800, seed=3)
        wide = bootstrap_median_ci(values, confidence=0.99, n_boot=800, seed=3)
        assert wide.high - wide.low >= narrow.high - narrow.low - 1e-12

    def test_deterministic_by_seed(self):
        values = [1.0, 2.0, 5.0, 9.0, 3.0]
        a = bootstrap_median_ci(values, seed=7, n_boot=200)
        b = bootstrap_median_ci(values, seed=7, n_boot=200)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_median_ci([])
        with pytest.raises(ValueError):
            bootstrap_median_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_median_ci([1.0], n_boot=2)

    def test_describe(self):
        text = ConfidenceInterval(0.5, 0.4, 0.6, 0.95).describe()
        assert "95%" in text


class TestPairedDifference:
    def test_clear_winner_excludes_zero(self):
        rng = random.Random(4)
        base = [rng.uniform(0, 1) for _ in range(40)]
        better = [v + 0.2 + rng.uniform(0, 0.05) for v in base]
        ci = paired_median_difference_ci(better, base, n_boot=500, seed=5)
        assert ci.excludes_zero()
        assert ci.estimate > 0.15

    def test_tie_includes_zero(self):
        rng = random.Random(6)
        a = [rng.gauss(0, 1) for _ in range(40)]
        b = [v + rng.gauss(0, 1) for v in a]
        ci = paired_median_difference_ci(a, b, n_boot=500, seed=7)
        assert ci.contains(0.0) or abs(ci.estimate) < 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_median_difference_ci([1.0], [1.0, 2.0])


class TestSignTest:
    def test_fraction(self):
        assert sign_test_fraction([2, 2, 0], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            sign_test_fraction([], [])


class TestSVG:
    def test_cdf_plot_structure(self):
        svg = render_cdf_svg(
            {"rb": [0.1, 0.4, 0.5], "mpc": [0.3, 0.6, 0.9]},
            title="normalized QoE", x_label="n-QoE",
        )
        assert svg.startswith("<svg")
        assert svg.count("<polyline") == 2
        assert "rb" in svg and "mpc" in svg
        assert "normalized QoE" in svg

    def test_lines_plot_structure(self):
        svg = render_lines_svg(
            [1, 2, 3], {"a": [0.1, 0.2, 0.3], "b": [0.3, 0.2, 0.1]},
            title="sweep",
        )
        assert svg.count("<polyline") == 2
        assert "sweep" in svg

    def test_lines_length_mismatch(self):
        with pytest.raises(ValueError):
            render_lines_svg([1, 2], {"a": [0.1]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_cdf_svg({})
        with pytest.raises(ValueError):
            render_cdf_svg({"a": []})
        with pytest.raises(ValueError):
            render_lines_svg([], {})

    def test_save(self, tmp_path):
        svg = render_lines_svg([1, 2], {"a": [0.0, 1.0]})
        path = save_svg(svg, tmp_path / "figure.svg")
        assert path.read_text().startswith("<svg")
        with pytest.raises(ValueError):
            save_svg("not svg", tmp_path / "x.svg")

    @given(
        values=st.lists(st.floats(-10, 10), min_size=1, max_size=40),
    )
    def test_cdf_never_crashes(self, values):
        svg = render_cdf_svg({"s": values})
        assert "<polyline" in svg
