"""Result persistence (CSV result sets, JSON sweeps)."""

from __future__ import annotations

import pytest

from repro.abr import BufferBasedAlgorithm, RateBasedAlgorithm
from repro.experiments import (
    load_result_set_csv,
    load_sweep_json,
    run_matrix,
    save_result_set_csv,
    save_sweep_json,
)
from repro.experiments.sensitivity import SweepResult
from repro.traces import FCCTraceGenerator
from repro.video import envivio


@pytest.fixture(scope="module")
def results():
    traces = FCCTraceGenerator(seed=55).generate_many(3, 320.0)
    return run_matrix(
        {"rb": RateBasedAlgorithm(), "bb": BufferBasedAlgorithm()},
        traces, envivio(), dataset="persist",
    )


class TestResultSetCSV:
    def test_roundtrip_preserves_everything_figures_need(self, results, tmp_path):
        path = tmp_path / "results.csv"
        save_result_set_csv(results, path)
        back = load_result_set_csv(path)
        assert back.dataset == "persist"
        assert back.algorithms() == results.algorithms()
        for algo in results.algorithms():
            assert back.n_qoe_values(algo) == pytest.approx(
                results.n_qoe_values(algo)
            )
            assert back.metric_values(algo, "average_bitrate_kbps") == pytest.approx(
                results.metric_values(algo, "average_bitrate_kbps")
            )
            assert back.median_n_qoe(algo) == pytest.approx(
                results.median_n_qoe(algo)
            )

    def test_qoe_recomputable_from_breakdown(self, results, tmp_path):
        path = tmp_path / "results.csv"
        save_result_set_csv(results, path)
        back = load_result_set_csv(path)
        for a, b in zip(results.records, back.records):
            assert b.qoe == pytest.approx(a.qoe)
            assert b.breakdown.weights == a.breakdown.weights

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("dataset,algorithm\n")
        with pytest.raises((ValueError, KeyError)):
            load_result_set_csv(path)


class TestSweepJSON:
    def test_roundtrip(self, tmp_path):
        sweep = SweepResult(
            parameter_name="x",
            parameter_values=(1, 2, 3),
            series={"a": (0.1, 0.2, 0.3), "b": (0.3, 0.2, 0.1)},
        )
        path = tmp_path / "sweep.json"
        save_sweep_json(sweep, path)
        back = load_sweep_json(path)
        assert back.parameter_name == "x"
        assert back.parameter_values == (1, 2, 3)
        assert back.series == {"a": (0.1, 0.2, 0.3), "b": (0.3, 0.2, 0.1)}

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"parameter_name": "x"}')
        with pytest.raises(ValueError, match="missing"):
            load_sweep_json(path)


class TestSessionLog:
    def test_per_chunk_log_export(self, tmp_path):
        import csv

        from repro import quick_session
        from repro.experiments import save_session_log_csv

        session = quick_session(algorithm="bb", dataset="fcc")
        path = tmp_path / "session.csv"
        save_session_log_csv(session, path)
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 65
        assert [int(r["chunk_index"]) for r in rows] == list(range(65))
        for row in rows:
            assert float(row["download_time_s"]) > 0
            assert float(row["buffer_after_s"]) >= 0
        # Totals in the log reconcile with the session summary.
        assert sum(float(r["rebuffer_s"]) for r in rows) == pytest.approx(
            session.total_rebuffer_s
        )
