"""FastMPC: offline table enumeration and the table-driven controller."""

from __future__ import annotations

import pytest

from repro.abr.base import DownloadResult, PlayerObservation, SessionConfig
from repro.core.fastmpc import (
    FastMPCConfig,
    FastMPCController,
    build_decision_table,
    clear_table_cache,
    table_size_sweep,
)
from repro.core.horizon import HorizonProblem, solve_horizon
from repro.prediction import LastSamplePredictor
from repro.qoe import QoEWeights
from repro.sim import simulate_session
from repro.traces import Trace
from repro.video import envivio

LADDER = (350.0, 600.0, 1000.0, 2000.0, 3000.0)
SMALL = FastMPCConfig(buffer_bins=12, throughput_bins=16, horizon=4)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_table_cache()
    yield
    clear_table_cache()


def small_table(weights=None, config=SMALL):
    return build_decision_table(
        LADDER, 4.0, 30.0, weights or QoEWeights.balanced(), config=config
    )


class TestBuild:
    def test_dimensions(self):
        table = small_table()
        assert table.num_entries == 12 * 5 * 16

    def test_decisions_match_online_solver_at_bin_centers(self):
        """The table must store exactly what the exact solver returns for
        each bin-representative state — FastMPC's core contract."""
        table = small_table()
        weights = QoEWeights.balanced()
        for b_idx in (0, 5, 11):
            for prev in (0, 2, 4):
                for c_idx in (0, 7, 15):
                    buffer_s = table.buffer_bins.center(b_idx)
                    pred = table.throughput_bins.center(c_idx)
                    problem = HorizonProblem(
                        buffer_level_s=buffer_s,
                        prev_quality=LADDER[prev],
                        chunk_sizes_kilobits=tuple(
                            tuple(4.0 * r for r in LADDER) for _ in range(4)
                        ),
                        quality_values=LADDER,
                        predicted_kbps=(pred,) * 4,
                        chunk_duration_s=4.0,
                        buffer_capacity_s=30.0,
                        weights=weights,
                    )
                    expected = solve_horizon(problem).first_level
                    assert table.lookup(buffer_s, prev, pred) == expected

    def test_decisions_sane_at_extremes(self):
        """Starved states pick the bottom of the ladder; saturated states
        the top.  (Note: decisions are NOT globally monotone in predicted
        throughput — the optimal first chunk can dip to ramp the rest of
        the plan — so only the extremes are certain.)"""
        table = small_table()
        lowest_c = table.throughput_bins.center(0)
        highest_c = table.throughput_bins.center(15)
        assert table.lookup(0.0, 0, lowest_c) == 0
        assert table.lookup(30.0, 4, highest_c) == 4

    def test_cache_returns_same_object(self):
        a = small_table()
        b = small_table()
        assert a is b
        clear_table_cache()
        c = small_table()
        assert c is not a

    def test_weights_change_table(self):
        balanced = small_table(QoEWeights.balanced())
        cautious = small_table(QoEWeights.avoid_rebuffering())
        flat_b = [balanced.rle.lookup(i) for i in range(balanced.num_entries)]
        flat_c = [cautious.rle.lookup(i) for i in range(cautious.num_entries)]
        assert flat_b != flat_c

    def test_validation(self):
        with pytest.raises(ValueError):
            build_decision_table((600.0, 350.0), 4.0, 30.0, QoEWeights.balanced())
        with pytest.raises(ValueError):
            build_decision_table(LADDER, 4.0, 30.0, QoEWeights.balanced(),
                                 quality_values=(1.0, 2.0))
        with pytest.raises(ValueError):
            FastMPCConfig(buffer_bins=0)


class TestTableSizeSweep:
    def test_reports_for_each_level(self):
        reports = table_size_sweep(
            LADDER, 4.0, 30.0, QoEWeights.balanced(),
            discretization_levels=(8, 16), horizon=3,
        )
        assert [r.discretization_levels for r in reports] == [8, 16]
        assert reports[1].num_entries > reports[0].num_entries

    def test_compression_improves_with_granularity(self):
        """Table 1's trend: the RLE ratio falls as bins grow."""
        reports = table_size_sweep(
            LADDER, 4.0, 30.0, QoEWeights.balanced(),
            discretization_levels=(20, 80), horizon=3,
        )
        assert reports[1].compression_ratio < reports[0].compression_ratio


class TestController:
    def make(self, robust=False):
        predictor = LastSamplePredictor()
        controller = FastMPCController(predictor=predictor, config=SMALL, robust=robust)
        controller.prepare(envivio(), SessionConfig())
        return controller, predictor

    def obs(self, buffer_s=10.0, prev=1):
        return PlayerObservation(
            chunk_index=5, buffer_level_s=buffer_s, prev_level_index=prev,
            wall_time_s=20.0, playback_started=True,
        )

    def test_lookup_decision(self):
        controller, predictor = self.make()
        predictor.observe_kbps(50_000.0)
        assert controller.select_bitrate(self.obs(buffer_s=25.0, prev=4)) == 4
        predictor.observe_kbps(90.0)
        assert controller.select_bitrate(self.obs(buffer_s=0.5, prev=0)) == 0

    def test_first_chunk_uses_lowest_prev(self):
        controller, predictor = self.make()
        predictor.observe_kbps(1500.0)
        level = controller.select_bitrate(
            PlayerObservation(chunk_index=0, buffer_level_s=0.0,
                              prev_level_index=None, wall_time_s=0.0,
                              playback_started=False)
        )
        assert 0 <= level < 5

    def test_robust_variant_queries_lower_bound(self):
        """Theorem 1 applied to the table: the robust controller queries
        the throughput axis at C_hat / (1 + err)."""
        robust, predictor = self.make(robust=True)
        # Seed a 40% over-estimation into the robust tracker.
        robust._pending_raw_prediction = 1400.0
        robust.on_download_complete(
            DownloadResult(
                chunk_index=0, level_index=1, bitrate_kbps=600.0,
                size_kilobits=2400.0, download_time_s=2.4,
                throughput_kbps=1000.0, rebuffer_s=0.0, buffer_after_s=8.0,
                wall_time_end_s=2.4,
            )
        )
        predictor.reset()
        predictor.observe_kbps(1000.0)
        assert robust.error_tracker.max_recent_abs_error() == pytest.approx(0.4)
        observation = self.obs()
        chosen = robust.select_bitrate(observation)
        expected = robust.table.lookup(
            observation.buffer_level_s,
            observation.prev_level_index,
            1000.0 / 1.4,  # the Theorem-1 lower bound
        )
        assert chosen == expected

    def test_names(self):
        assert FastMPCController().name == "fastmpc"
        assert FastMPCController(robust=True).name == "robust-fastmpc"
        assert FastMPCController(name="custom").name == "custom"

    def test_matches_online_mpc_closely_over_session(self):
        """With fine binning, FastMPC should track online MPC's QoE."""
        from repro.core.mpc import MPCController

        trace = Trace([0.0, 60.0, 120.0], [1800.0, 700.0, 2400.0], duration_s=300.0)
        manifest = envivio()
        fine = FastMPCConfig(buffer_bins=60, throughput_bins=60, horizon=5)
        fast = simulate_session(FastMPCController(config=fine), trace, manifest)
        online = simulate_session(MPCController(), trace, manifest)
        assert fast.qoe().total >= 0.9 * online.qoe().total
