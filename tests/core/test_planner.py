"""The offline beam-search planner."""

from __future__ import annotations

import random

import pytest

from repro.abr import FixedPlanAlgorithm, create
from repro.core.offline import (
    exhaustive_optimal,
    fluid_upper_bound,
    simulate_fixed_plan,
)
from repro.core.planner import OfflineBeamPlanner
from repro.sim import simulate_session
from repro.traces import SyntheticTraceGenerator, Trace
from repro.video import envivio, short_test_video


class TestExactnessOnSmallInstances:
    def test_matches_exhaustive_optimal(self):
        """On instances brute force can certify, the beam (at default
        width) must find the same optimum."""
        manifest = short_test_video(num_chunks=5, num_levels=3)
        planner = OfflineBeamPlanner(
            beam_width=512, startup_wait_grid_s=(0.0, 2.0, 4.0, 8.0)
        )
        rng = random.Random(3)
        for trial in range(5):
            samples = [rng.uniform(150.0, 3500.0) for _ in range(30)]
            trace = Trace.from_samples(samples, 3.0)
            _, best = exhaustive_optimal(
                trace, manifest, startup_wait_grid_s=(0.0, 2.0, 4.0, 8.0)
            )
            result = planner.plan(trace, manifest)
            assert result.qoe == pytest.approx(best, rel=1e-9, abs=1e-6)

    def test_plan_qoe_is_realised(self):
        """The reported QoE equals a replay of the plan through the
        independent forward model (startup handled identically)."""
        manifest = short_test_video(num_chunks=6, num_levels=3)
        trace = Trace([0.0, 20.0], [1500.0, 600.0], duration_s=200.0)
        planner = OfflineBeamPlanner(startup_wait_grid_s=(0.0,))
        result = planner.plan(trace, manifest)
        replay = simulate_fixed_plan(trace, manifest, result.plan)
        assert result.qoe == pytest.approx(replay.total, rel=1e-9, abs=1e-6)


class TestBracketsTheOptimum:
    @pytest.fixture(scope="class")
    def setting(self):
        manifest = envivio()
        trace = SyntheticTraceGenerator(seed=23).generate(320.0)
        planner = OfflineBeamPlanner(beam_width=128)
        return manifest, trace, planner.plan(trace, manifest)

    def test_below_fluid_upper_bound(self, setting):
        manifest, trace, result = setting
        assert result.qoe <= fluid_upper_bound(trace, manifest) + 1e-6

    def test_above_every_online_algorithm(self, setting):
        """Full future knowledge beats every causal controller."""
        manifest, trace, result = setting
        for name in ("rb", "bb", "robust-mpc", "mpc-opt"):
            session = simulate_session(create(name), trace, manifest)
            assert result.qoe >= session.qoe().total - 1e-6, name

    def test_plan_replayable_through_simulator(self, setting):
        manifest, trace, result = setting
        session = simulate_session(
            FixedPlanAlgorithm(list(result.plan)), trace, manifest
        )
        assert len(session.records) == manifest.num_chunks


class TestBeamBehaviour:
    def test_wider_beam_never_worse(self):
        manifest = envivio().truncated(20)
        trace = SyntheticTraceGenerator(seed=29).generate(200.0)
        narrow = OfflineBeamPlanner(beam_width=4).plan(trace, manifest)
        wide = OfflineBeamPlanner(beam_width=256).plan(trace, manifest)
        assert wide.qoe >= narrow.qoe - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            OfflineBeamPlanner(beam_width=0)
        with pytest.raises(ValueError):
            OfflineBeamPlanner(time_bucket_s=0.0)
        with pytest.raises(ValueError):
            OfflineBeamPlanner(startup_wait_grid_s=())
        with pytest.raises(ValueError):
            OfflineBeamPlanner(startup_wait_grid_s=(-1.0,))
