"""The MPC controller (Algorithm 1) and MPC-OPT."""

from __future__ import annotations

import pytest

from repro.abr.base import PlayerObservation, SessionConfig
from repro.core.mpc import DEFAULT_HORIZON, MPCController, make_mpc_opt
from repro.prediction import HarmonicMeanPredictor, LastSamplePredictor, OraclePredictor
from repro.sim import simulate_session
from repro.traces import Trace
from repro.video import envivio, short_test_video


def prepared_mpc(manifest, predictor=None, **kwargs):
    mpc = MPCController(predictor=predictor, **kwargs)
    mpc.prepare(manifest, SessionConfig())
    return mpc


def obs(chunk=10, buffer_s=15.0, prev=1, playing=True):
    return PlayerObservation(
        chunk_index=chunk,
        buffer_level_s=buffer_s,
        prev_level_index=prev,
        wall_time_s=chunk * 4.0,
        playback_started=playing,
    )


class TestMPCController:
    def test_default_horizon_matches_paper(self):
        assert MPCController().horizon == DEFAULT_HORIZON == 5

    def test_requires_prepare(self):
        with pytest.raises(RuntimeError, match="prepare"):
            MPCController().select_bitrate(obs())

    def test_high_prediction_high_bitrate(self, envivio_manifest):
        predictor = LastSamplePredictor()
        mpc = prepared_mpc(envivio_manifest, predictor)
        predictor.observe_kbps(50_000.0)  # after prepare(): it resets state
        assert mpc.select_bitrate(obs(prev=4)) == 4

    def test_low_prediction_low_bitrate(self, envivio_manifest):
        predictor = LastSamplePredictor()
        mpc = prepared_mpc(envivio_manifest, predictor)
        predictor.observe_kbps(90.0)
        assert mpc.select_bitrate(obs(buffer_s=0.5, prev=0)) == 0

    def test_horizon_clipped_at_video_end(self, envivio_manifest):
        mpc = prepared_mpc(envivio_manifest)
        assert mpc._effective_horizon(0) == 5
        assert mpc._effective_horizon(62) == 3
        assert mpc._effective_horizon(64) == 1

    def test_decision_on_last_chunk_works(self, envivio_manifest):
        mpc = prepared_mpc(envivio_manifest)
        level = mpc.select_bitrate(obs(chunk=64))
        assert 0 <= level < 5

    def test_prediction_error_tracked_after_download(self, envivio_manifest):
        from repro.abr.base import DownloadResult

        predictor = LastSamplePredictor()
        mpc = prepared_mpc(envivio_manifest, predictor)
        predictor.observe_kbps(1000.0)
        mpc.select_bitrate(obs())
        mpc.on_download_complete(
            DownloadResult(
                chunk_index=10, level_index=1, bitrate_kbps=600.0,
                size_kilobits=2400.0, download_time_s=3.0,
                throughput_kbps=800.0, rebuffer_s=0.0, buffer_after_s=16.0,
                wall_time_end_s=43.0,
            )
        )
        # predicted 1000, actual 800 -> 25% error recorded
        assert mpc.error_tracker.max_recent_abs_error() == pytest.approx(0.25)

    def test_startup_wait_zero_in_steady_state(self, envivio_manifest):
        mpc = prepared_mpc(envivio_manifest)
        mpc.select_bitrate(obs(playing=True))
        assert mpc.select_startup_wait(obs()) == 0.0

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            MPCController(horizon=0)

    def test_prepare_resets_state(self, envivio_manifest):
        mpc = prepared_mpc(envivio_manifest)
        mpc.error_tracker.record(1500.0, 1000.0)
        mpc.prepare(envivio_manifest, SessionConfig())
        assert mpc.error_tracker.max_recent_abs_error() == 0.0

    def test_custom_name(self):
        assert MPCController(name="my-mpc").name == "my-mpc"

    def test_quality_values_follow_config(self, envivio_manifest):
        from repro.video.quality import LogQuality

        mpc = MPCController()
        mpc.prepare(envivio_manifest, SessionConfig(quality=LogQuality()))
        assert mpc._quality_values[0] == pytest.approx(LogQuality()(350.0))


class TestMPCOpt:
    def test_uses_oracle(self):
        mpc = make_mpc_opt()
        assert isinstance(mpc.predictor, OraclePredictor)
        assert mpc.name == "mpc-opt"

    def test_beats_harmonic_mpc_on_volatile_trace(self, envivio_manifest):
        """Perfect prediction should not lose to harmonic-mean prediction
        on a trace with sharp throughput swings."""
        trace = Trace(
            [0.0, 40.0, 80.0, 120.0, 160.0, 200.0],
            [2500.0, 300.0, 2500.0, 300.0, 2500.0, 300.0],
            duration_s=400.0,
        )
        opt = simulate_session(make_mpc_opt(), trace, envivio_manifest)
        plain = simulate_session(MPCController(), trace, envivio_manifest)
        assert opt.qoe().total >= plain.qoe().total


class TestMPCStartupPhase:
    def test_startup_decision_records_wait(self, envivio_manifest):
        predictor = LastSamplePredictor()
        mpc = prepared_mpc(envivio_manifest, predictor)
        predictor.observe_kbps(500.0)
        mpc.select_bitrate(obs(chunk=0, buffer_s=0.0, prev=None, playing=False))
        assert mpc.select_startup_wait(obs(chunk=0, playing=False)) >= 0.0

    def test_startup_optimisation_can_be_disabled(self, envivio_manifest):
        mpc = prepared_mpc(envivio_manifest, optimize_startup=False)
        mpc.select_bitrate(obs(chunk=0, buffer_s=0.0, prev=None, playing=False))
        assert mpc.select_startup_wait(obs(chunk=0, playing=False)) == 0.0
