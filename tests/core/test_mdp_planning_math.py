"""Value-iteration internals of the MDP controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr.base import SessionConfig
from repro.core.mdp import MDPController
from repro.qoe import QoEWeights
from repro.video import envivio


def prepared(**kwargs):
    controller = MDPController(**kwargs)
    controller.prepare(envivio(), SessionConfig())
    return controller


class TestDynamicsPrecomputation:
    def test_shapes(self):
        c = prepared(buffer_bins=10, throughput_bins=6)
        assert c._stage_rebuffer.shape == (5, 10, 6)
        assert c._next_buffer_index.shape == (5, 10, 6)

    def test_rebuffer_zero_when_buffer_covers_download(self):
        c = prepared(buffer_bins=10, throughput_bins=6)
        # Highest buffer bin, highest throughput state, lowest action:
        # download time is tiny compared to the buffer.
        assert c._stage_rebuffer[0, -1, -1] == pytest.approx(0.0)

    def test_next_buffer_indices_valid(self):
        c = prepared(buffer_bins=10, throughput_bins=6)
        assert c._next_buffer_index.min() >= 0
        assert c._next_buffer_index.max() < 10

    def test_higher_action_never_smaller_rebuffer(self):
        """At fixed (buffer, throughput), a bigger chunk stalls at least
        as long."""
        c = prepared(buffer_bins=8, throughput_bins=5)
        for b in range(8):
            for s in range(5):
                column = c._stage_rebuffer[:, b, s]
                assert all(x <= y + 1e-12 for x, y in zip(column, column[1:]))


class TestValueIteration:
    def test_policy_shape_and_range(self):
        c = prepared(buffer_bins=8, throughput_bins=5)
        c.model.observe(1000.0)
        policy = c._value_iteration()
        assert policy.shape == (8, 5, 5)
        assert policy.min() >= 0 and policy.max() < 5

    def test_policy_extremes_in_buffer(self):
        """The *argmax* action need not be monotone in buffer (switching
        interactions — same phenomenon as FastMPC's table), but the
        extremes are certain: an empty buffer never picks a higher level
        than a full one, per (state, prev)."""
        c = prepared(buffer_bins=12, throughput_bins=5)
        for _ in range(20):
            c.model.observe(1400.0)
        policy = c._value_iteration()
        for s in range(5):
            for prev in range(5):
                assert policy[0, s, prev] <= policy[-1, s, prev], (s, prev)

    def test_heavier_rebuffer_weight_is_more_cautious(self):
        careful = MDPController(buffer_bins=10, throughput_bins=5)
        careful.prepare(
            envivio(), SessionConfig(weights=QoEWeights.avoid_rebuffering())
        )
        relaxed = prepared(buffer_bins=10, throughput_bins=5)
        for controller in (careful, relaxed):
            for _ in range(10):
                controller.model.observe(1500.0)
        p_careful = careful._value_iteration()
        p_relaxed = relaxed._value_iteration()
        assert p_careful.sum() <= p_relaxed.sum()

    def test_iteration_converges_quickly(self):
        import time

        c = prepared()
        c.model.observe(1200.0)
        start = time.perf_counter()
        c._value_iteration()
        assert time.perf_counter() - start < 2.0
