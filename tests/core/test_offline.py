"""Offline-optimal bound, fixed-plan forward model, normalized QoE."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.fixed import FixedPlanAlgorithm
from repro.core.offline import (
    CumulativeBits,
    exhaustive_optimal,
    fluid_upper_bound,
    normalized_qoe,
    simulate_fixed_plan,
)
from repro.qoe import QoEWeights
from repro.sim import simulate_session
from repro.traces import Trace
from repro.video import short_test_video


class TestCumulativeBits:
    def test_matches_trace_integral(self, step_trace):
        cb = CumulativeBits(step_trace)
        for t in (0.0, 10.0, 105.0, 200.0, 700.0, 1234.5):
            assert cb.bits(t) == pytest.approx(
                step_trace.kilobits_between(0.0, t), rel=1e-9, abs=1e-6
            )

    def test_rejects_negative(self, step_trace):
        with pytest.raises(ValueError):
            CumulativeBits(step_trace).bits(-1.0)


class TestSimulateFixedPlan:
    def test_matches_simulator(self, short_manifest):
        """The standalone forward model and the event loop in repro.sim
        are independent implementations of Eqs. (1)-(4); they must agree
        for any fixed plan."""
        rng = random.Random(0)
        for trial in range(10):
            samples = [rng.uniform(200.0, 3000.0) for _ in range(40)]
            trace = Trace.from_samples(samples, 2.0)
            plan = [rng.randrange(3) for _ in range(short_manifest.num_chunks)]
            via_model = simulate_fixed_plan(trace, short_manifest, plan)
            session = simulate_session(
                FixedPlanAlgorithm(plan), trace, short_manifest
            )
            via_sim = session.qoe()
            assert via_model.total == pytest.approx(via_sim.total, rel=1e-9, abs=1e-6)
            assert via_model.rebuffer_seconds == pytest.approx(
                via_sim.rebuffer_seconds, abs=1e-9
            )
            assert via_model.startup_seconds == pytest.approx(
                via_sim.startup_seconds, abs=1e-9
            )

    def test_plan_length_validated(self, short_manifest):
        with pytest.raises(ValueError):
            simulate_fixed_plan(Trace.constant(1000, 60), short_manifest, [0])

    def test_extra_wait_counts_toward_startup(self, short_manifest):
        trace = Trace.constant(1000.0, 200.0)
        plan = [0] * short_manifest.num_chunks
        without = simulate_fixed_plan(trace, short_manifest, plan)
        with_wait = simulate_fixed_plan(
            trace, short_manifest, plan, extra_startup_wait_s=3.0
        )
        assert with_wait.startup_seconds == pytest.approx(
            without.startup_seconds + 3.0
        )


class TestFluidUpperBound:
    def test_dominates_exhaustive_optimal(self):
        """The bound must sit above the true discrete optimum."""
        manifest = short_test_video(num_chunks=5, num_levels=3)
        rng = random.Random(1)
        for trial in range(6):
            samples = [rng.uniform(150.0, 3500.0) for _ in range(30)]
            trace = Trace.from_samples(samples, 3.0)
            _, best_qoe = exhaustive_optimal(trace, manifest)
            bound = fluid_upper_bound(trace, manifest)
            assert bound >= best_qoe - 1e-6

    def test_dominates_any_fixed_plan(self, short_manifest):
        rng = random.Random(2)
        for trial in range(5):
            samples = [rng.uniform(100.0, 4000.0) for _ in range(25)]
            trace = Trace.from_samples(samples, 4.0)
            bound = fluid_upper_bound(trace, short_manifest)
            for _ in range(20):
                plan = [rng.randrange(3) for _ in range(short_manifest.num_chunks)]
                wait = rng.choice([0.0, 1.0, 5.0])
                achieved = simulate_fixed_plan(
                    trace, short_manifest, plan, extra_startup_wait_s=wait
                ).total
                assert bound >= achieved - 1e-6

    def test_abundant_throughput_approaches_max_quality(self, short_manifest):
        trace = Trace.constant(100_000.0, 600.0)
        bound = fluid_upper_bound(trace, short_manifest)
        k = short_manifest.num_chunks
        r_max = short_manifest.ladder.max_kbps
        assert bound <= k * r_max + 1e-6
        assert bound >= 0.9 * k * r_max

    def test_bound_monotone_in_throughput(self, short_manifest):
        slow = Trace.constant(500.0, 600.0)
        fast = Trace.constant(1500.0, 600.0)
        assert fluid_upper_bound(fast, short_manifest) >= fluid_upper_bound(
            slow, short_manifest
        )

    def test_respects_weights(self, short_manifest):
        """A stingier weight set can only lower the bound."""
        trace = Trace.constant(700.0, 600.0)
        balanced = fluid_upper_bound(trace, short_manifest,
                                     weights=QoEWeights.balanced())
        harsh = fluid_upper_bound(trace, short_manifest,
                                  weights=QoEWeights.avoid_rebuffering())
        assert harsh <= balanced + 1e-9


class TestExhaustiveOptimal:
    def test_finds_constant_max_plan_when_throughput_is_ample(self):
        manifest = short_test_video(num_chunks=4, num_levels=2)
        trace = Trace.constant(50_000.0, 600.0)
        plan, qoe = exhaustive_optimal(trace, manifest)
        assert plan == (1, 1, 1, 1)

    def test_respects_plan_budget(self):
        manifest = short_test_video(num_chunks=8, num_levels=3)
        with pytest.raises(ValueError, match="max_plans"):
            exhaustive_optimal(Trace.constant(1000, 60), manifest, max_plans=10)

    def test_beats_mpc_opt(self, short_manifest):
        """The exhaustive optimum upper-bounds any online algorithm."""
        from repro.core.mpc import make_mpc_opt

        trace = Trace([0.0, 20.0], [1500.0, 500.0], duration_s=120.0)
        _, best = exhaustive_optimal(trace, short_manifest)
        mpc = simulate_session(make_mpc_opt(), trace, short_manifest)
        assert best >= mpc.qoe().total - 1e-6


class TestNormalizedQoE:
    def test_ratio(self):
        assert normalized_qoe(50.0, 100.0) == pytest.approx(0.5)
        assert normalized_qoe(-20.0, 100.0) == pytest.approx(-0.2)

    def test_rejects_nonpositive_optimal(self):
        with pytest.raises(ValueError):
            normalized_qoe(10.0, 0.0)
