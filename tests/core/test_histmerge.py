"""The shared lossless-histogram primitive behind /metrics and the fleet."""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.core.histmerge import (
    FixedBucketHistogram,
    merge_histogram_dicts,
    merge_histograms,
)

BOUNDS = (-10.0, 0.0, 5.0, 50.0)


def test_bounds_must_be_strictly_increasing():
    for bad in ((), (1.0, 1.0), (2.0, 1.0)):
        with pytest.raises(ValueError, match="strictly increasing"):
            FixedBucketHistogram(bad)


def test_observe_many_matches_observe_exactly():
    rng = random.Random(3)
    values = [rng.uniform(-20.0, 80.0) for _ in range(500)]
    one_by_one = FixedBucketHistogram(BOUNDS)
    for v in values:
        one_by_one.observe(v)
    bulk = FixedBucketHistogram(BOUNDS)
    bulk.observe_many(values)
    assert bulk.bucket_counts == one_by_one.bucket_counts
    assert bulk.count == one_by_one.count == 500
    assert bulk.max_value == one_by_one.max_value
    # fsum is correctly rounded, the sequential += sum merely close.
    assert bulk.sum_value == pytest.approx(one_by_one.sum_value)
    assert bulk.sum_value == math.fsum(values)


def test_observe_many_sum_is_order_independent():
    rng = random.Random(9)
    values = [rng.uniform(-1e9, 1e9) for _ in range(300)]
    forward = FixedBucketHistogram(BOUNDS)
    forward.observe_many(values)
    backward = FixedBucketHistogram(BOUNDS)
    backward.observe_many(list(reversed(values)))
    assert forward.sum_value == backward.sum_value
    assert forward.bucket_counts == backward.bucket_counts


def test_observe_many_empty_is_noop():
    histogram = FixedBucketHistogram(BOUNDS)
    histogram.observe_many([])
    assert histogram.count == 0
    assert histogram.mean == 0.0
    assert histogram.max_value == 0.0
    assert histogram.quantile(0.5) == 0.0


def test_merge_is_lossless():
    rng = random.Random(4)
    values = [rng.uniform(-50.0, 200.0) for _ in range(400)]
    whole = FixedBucketHistogram(BOUNDS)
    whole.observe_many(values)
    parts = []
    for start in range(0, 400, 50):
        part = FixedBucketHistogram(BOUNDS)
        part.observe_many(values[start : start + 50])
        parts.append(part)
    merged = merge_histograms(parts)
    assert merged.bucket_counts == whole.bucket_counts
    assert merged.count == whole.count
    assert merged.max_value == whole.max_value
    assert merged.quantile(0.5) == whole.quantile(0.5)


def test_merge_requires_matching_bounds():
    with pytest.raises(ValueError, match="different buckets"):
        FixedBucketHistogram(BOUNDS).merge(FixedBucketHistogram((1.0, 2.0)))
    with pytest.raises(ValueError, match="at least one"):
        merge_histograms([])


def test_roundtrip_through_json_exact():
    histogram = FixedBucketHistogram(BOUNDS)
    histogram.observe_many([-3.25, 0.1, 7.75, 1000.0])
    payload = json.loads(json.dumps(histogram.to_dict()))
    back = FixedBucketHistogram.from_dict(payload)
    assert back.to_dict() == histogram.to_dict()


def test_merge_histogram_dicts_path():
    a = FixedBucketHistogram(BOUNDS)
    a.observe_many([1.0, 2.0])
    b = FixedBucketHistogram(BOUNDS)
    b.observe_many([60.0])
    merged = merge_histogram_dicts([a.to_dict(), b.to_dict()])
    assert merged["count"] == 3
    assert merged["max"] == 60.0


def test_from_dict_validation():
    with pytest.raises(ValueError, match="JSON object"):
        FixedBucketHistogram.from_dict("x")
    with pytest.raises(ValueError, match="malformed"):
        FixedBucketHistogram.from_dict({"bounds": [1.0]})
    good = FixedBucketHistogram(BOUNDS)
    good.observe(1.0)
    payload = good.to_dict()
    tampered = dict(payload, counts=[1] * 3)
    with pytest.raises(ValueError, match="bucket counts"):
        FixedBucketHistogram.from_dict(tampered)
    tampered = dict(payload, count=99)
    with pytest.raises(ValueError, match="sum to the count"):
        FixedBucketHistogram.from_dict(tampered)


def test_quantiles_are_bucket_bounded():
    histogram = FixedBucketHistogram(BOUNDS)
    histogram.observe_many([2.0] * 100)  # all in the (0, 5] bucket
    assert 0.0 <= histogram.quantile(0.5) <= 5.0
    with pytest.raises(ValueError, match="quantile"):
        histogram.quantile(1.5)


def test_overflow_bucket_reports_up_to_max():
    histogram = FixedBucketHistogram(BOUNDS)
    histogram.observe_many([75.0, 100.0, 125.0])
    assert histogram.quantile(1.0) == 125.0
