"""Additional FastMPC coverage: spacing variants, quality functions,
session-level near-optimality at the paper's deployed configuration."""

from __future__ import annotations

import pytest

from repro.abr.base import SessionConfig
from repro.core.fastmpc import (
    FastMPCConfig,
    FastMPCController,
    build_decision_table,
    clear_table_cache,
)
from repro.core.mpc import MPCController
from repro.qoe import QoEWeights
from repro.sim import simulate_session
from repro.traces import SyntheticTraceGenerator
from repro.video import envivio
from repro.video.quality import LogQuality

LADDER = (350.0, 600.0, 1000.0, 2000.0, 3000.0)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_table_cache()
    yield
    clear_table_cache()


class TestSpacingVariants:
    @pytest.mark.parametrize("spacing", ["log", "linear"])
    def test_both_spacings_build_and_answer(self, spacing):
        config = FastMPCConfig(
            buffer_bins=10, throughput_bins=10, horizon=3,
            throughput_spacing=spacing,
        )
        table = build_decision_table(
            LADDER, 4.0, 30.0, QoEWeights.balanced(), config=config
        )
        assert table.lookup(0.0, 0, 50.0) == 0
        assert table.lookup(30.0, 4, 10_000.0) == 4

    def test_custom_range(self):
        config = FastMPCConfig(
            buffer_bins=8, throughput_bins=8, horizon=3,
            throughput_low_kbps=200.0, throughput_high_kbps=4000.0,
        )
        table = build_decision_table(
            LADDER, 4.0, 30.0, QoEWeights.balanced(), config=config
        )
        assert table.throughput_bins.low == 200.0
        assert table.throughput_bins.high == 4000.0

    def test_invalid_range_rejected(self):
        config = FastMPCConfig(
            throughput_low_kbps=4000.0, throughput_high_kbps=200.0
        )
        with pytest.raises(ValueError):
            config.resolved_range(LADDER)


class TestQualityFunctions:
    def test_log_quality_table_differs_from_identity(self):
        config = FastMPCConfig(buffer_bins=10, throughput_bins=10, horizon=3)
        identity = build_decision_table(
            LADDER, 4.0, 30.0, QoEWeights.balanced(), config=config
        )
        log_q = LogQuality(reference_kbps=300.0, scale=700.0)
        logarithmic = build_decision_table(
            LADDER, 4.0, 30.0, QoEWeights(1.0, 700.0, 700.0, label="log"),
            quality_values=tuple(log_q(r) for r in LADDER),
            config=config,
        )
        flat_a = [identity.rle.lookup(i) for i in range(identity.num_entries)]
        flat_b = [logarithmic.rle.lookup(i) for i in range(logarithmic.num_entries)]
        assert flat_a != flat_b

    def test_controller_respects_config_quality(self):
        """The table the controller builds keys on the session's q(.)."""
        controller = FastMPCController(
            config=FastMPCConfig(buffer_bins=8, throughput_bins=8, horizon=3)
        )
        controller.prepare(
            envivio(), SessionConfig(quality=LogQuality())
        )
        assert controller.table is not None


class TestDeployedConfiguration:
    def test_paper_config_tracks_online_solver_across_sessions(self):
        """At the deployed 100x100 configuration, FastMPC's whole-session
        QoE stays within a few percent of online MPC on several traces —
        the 'near-optimal' claim of Section 5."""
        manifest = envivio()
        traces = SyntheticTraceGenerator(seed=17).generate_many(3, 320.0)
        ratios = []
        for trace in traces:
            fast = simulate_session(FastMPCController(), trace, manifest)
            online = simulate_session(MPCController(), trace, manifest)
            if online.qoe().total > 0:
                ratios.append(fast.qoe().total / online.qoe().total)
        assert ratios, "need at least one positive-QoE session"
        assert min(ratios) > 0.85
