"""The MDP-based controller (the paper's Section 4.1 future-work item)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr.base import PlayerObservation, SessionConfig
from repro.core.mdp import MDPController, ThroughputMarkovModel
from repro.core.table import Binning
from repro.sim import simulate_session
from repro.traces import SyntheticTraceGenerator, Trace
from repro.video import envivio


class TestThroughputMarkovModel:
    def make(self, bins=6):
        return ThroughputMarkovModel(Binning(100.0, 6000.0, bins, "log"))

    def test_prior_is_row_stochastic(self):
        model = self.make()
        P = model.transition_matrix()
        assert np.allclose(P.sum(axis=1), 1.0)
        assert (P >= 0).all()

    def test_prior_is_sticky(self):
        P = self.make().transition_matrix()
        for i in range(P.shape[0]):
            assert P[i, i] == max(P[i])

    def test_learning_shifts_the_estimate(self):
        model = self.make(bins=4)
        # Observe a deterministic cycle between two far-apart states.
        low = 150.0
        high = 5000.0
        for _ in range(100):
            model.observe(low)
            model.observe(high)
        P = model.transition_matrix()
        low_state = model.state_of(low)
        high_state = model.state_of(high)
        assert P[low_state, high_state] > 0.8
        assert P[high_state, low_state] > 0.8

    def test_first_observation_counts_nothing(self):
        model = self.make()
        before = model.transition_matrix().copy()
        model.observe(1000.0)
        assert np.allclose(model.transition_matrix(), before)
        assert model.last_state == model.state_of(1000.0)

    def test_validation(self):
        binning = Binning(100.0, 6000.0, 4, "log")
        with pytest.raises(ValueError):
            ThroughputMarkovModel(binning, prior_stickiness=1.0)
        with pytest.raises(ValueError):
            ThroughputMarkovModel(binning, prior_weight=0.0)


class TestMDPController:
    def prepared(self, **kwargs):
        controller = MDPController(**kwargs)
        controller.prepare(envivio(), SessionConfig())
        return controller

    def obs(self, buffer_s=15.0, prev=1):
        return PlayerObservation(
            chunk_index=5, buffer_level_s=buffer_s, prev_level_index=prev,
            wall_time_s=20.0, playback_started=True,
        )

    def test_cold_start_is_lowest(self):
        controller = self.prepared()
        assert controller.select_bitrate(self.obs()) == 0

    def test_policy_extremes(self):
        controller = self.prepared()
        # Teach the model a fast, stable link.
        for _ in range(30):
            controller.model.observe(5500.0)
        assert controller.select_bitrate(self.obs(buffer_s=28.0, prev=4)) == 4
        # And a starved one.
        controller = self.prepared()
        for _ in range(30):
            controller.model.observe(90.0)
        assert controller.select_bitrate(self.obs(buffer_s=0.5, prev=0)) == 0

    def test_policy_refresh_cadence(self):
        from repro.abr.base import DownloadResult

        controller = self.prepared(replan_every=3)
        controller.model.observe(1000.0)
        controller.select_bitrate(self.obs())
        first_policy = controller._policy
        result = DownloadResult(
            chunk_index=0, level_index=1, bitrate_kbps=600.0,
            size_kilobits=2400.0, download_time_s=2.0, throughput_kbps=1200.0,
            rebuffer_s=0.0, buffer_after_s=10.0, wall_time_end_s=4.0,
        )
        controller.on_download_complete(result)
        controller.select_bitrate(self.obs())
        assert controller._policy is first_policy  # not yet stale
        for _ in range(3):
            controller.on_download_complete(result)
        controller.select_bitrate(self.obs())
        assert controller._policy is not first_policy

    def test_runs_full_session(self, envivio_manifest):
        trace = SyntheticTraceGenerator(seed=13).generate(320.0)
        session = simulate_session(MDPController(), trace, envivio_manifest)
        assert len(session.records) == 65

    def test_competitive_on_markov_traces(self, envivio_manifest):
        """On the synthetic (genuinely Markov) dataset the learned policy
        must beat the trivial always-lowest baseline by a wide margin and
        land in the same band as buffer-based control."""
        from repro.abr import BufferBasedAlgorithm, ConstantLevelAlgorithm

        totals = {"mdp": 0.0, "bb": 0.0, "lowest": 0.0}
        for i in range(4):
            trace = SyntheticTraceGenerator(seed=31).generate(320.0, index=i)
            for name, algo in (
                ("mdp", MDPController()),
                ("bb", BufferBasedAlgorithm()),
                ("lowest", ConstantLevelAlgorithm(0)),
            ):
                session = simulate_session(algo, trace, envivio_manifest)
                totals[name] += session.qoe().total
        assert totals["mdp"] > totals["lowest"]
        assert totals["mdp"] > 0.7 * totals["bb"]

    def test_validation(self):
        with pytest.raises(ValueError):
            MDPController(buffer_bins=1)
        with pytest.raises(ValueError):
            MDPController(discount=1.0)
        with pytest.raises(ValueError):
            MDPController(replan_every=0)

    def test_registry_integration(self):
        from repro.abr import create

        assert isinstance(create("mdp"), MDPController)
