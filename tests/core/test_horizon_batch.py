"""The batched horizon kernel: exact equivalence with the reference solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.horizon import (
    _ENUMERATION_LIMIT,
    _plan_matrix,
    HorizonProblem,
    solve_horizon,
    solve_horizon_reference,
    solve_startup,
)
from repro.core.kernel import _BatchEvaluator, solve_horizon_batch
from repro.core.table import Binning
from repro.qoe import QoEWeights

LADDER = (350.0, 600.0, 1000.0, 2000.0, 3000.0)


def random_problem(rng, vbr=False, allow_no_prev=True):
    """A randomized valid instance: random ladder subset, sizes, state."""
    num_levels = int(rng.integers(1, 6))
    horizon = int(rng.integers(1, 5))
    ladder = tuple(sorted(rng.uniform(100.0, 4000.0, size=num_levels)))
    chunk_s = float(rng.uniform(1.0, 6.0))
    if vbr:
        # Per-chunk sizes deviate from CBR but stay ascending per row.
        sizes = tuple(
            tuple(
                float(chunk_s * r * rng.uniform(0.5, 1.5) + i)
                for i, r in enumerate(ladder)
            )
            for _ in range(horizon)
        )
        sizes = tuple(tuple(sorted(row)) for row in sizes)
    else:
        sizes = tuple(tuple(chunk_s * r for r in ladder) for _ in range(horizon))
    prev = None
    if not allow_no_prev or rng.uniform() > 0.3:
        prev = float(ladder[int(rng.integers(0, num_levels))])
    return HorizonProblem(
        buffer_level_s=float(rng.uniform(0.0, 25.0)),
        prev_quality=prev,
        chunk_sizes_kilobits=sizes,
        quality_values=ladder,
        predicted_kbps=tuple(rng.uniform(200.0, 5000.0, size=horizon)),
        chunk_duration_s=chunk_s,
        buffer_capacity_s=float(rng.uniform(15.0, 60.0)),
        weights=QoEWeights(
            switching=float(rng.uniform(0.0, 2.0)),
            rebuffering=float(rng.uniform(0.0, 5000.0)),
            startup=float(rng.uniform(0.0, 5000.0)),
        ),
    )


def scalar_strict_argmax(problem):
    """The documented tie-break, in plain Python: evaluate every plan with
    the reference recurrence and keep the first *exact* maximum — i.e. the
    lexicographically smallest optimal plan.

    (``solve_horizon_reference`` itself breaks ties with a ``1e-12``
    epsilon, which on sub-ULP ties between distinct plans may keep an
    earlier, infinitesimally worse plan; the enumeration solvers have
    always used the strict argmax.)
    """
    import itertools

    lam, mu = problem.weights.switching, problem.weights.rebuffering
    best = None
    for plan in itertools.product(
        range(problem.num_levels), repeat=problem.horizon
    ):
        buffer_s = problem.buffer_level_s
        qoe = 0.0
        rebuf_total = 0.0
        prev_q = problem.prev_quality
        for i, level in enumerate(plan):
            dt = problem.chunk_sizes_kilobits[i][level] / problem.predicted_kbps[i]
            rebuffer = max(dt - buffer_s, 0.0)
            buffer_s = min(
                max(buffer_s - dt, 0.0) + problem.chunk_duration_s,
                problem.buffer_capacity_s,
            )
            q_now = problem.quality_values[level]
            qoe += q_now - mu * rebuffer
            rebuf_total += rebuffer
            if prev_q is not None:
                qoe -= lam * abs(q_now - prev_q)
            prev_q = q_now
        if best is None or qoe > best[0]:
            best = (qoe, plan, rebuf_total, buffer_s)
    return best


def assert_same_solution(batch, problem):
    # Bitwise equality on purpose: the kernel's element-wise arithmetic
    # associates identically to the scalar recurrence, so even the floats
    # must match bit for bit (and with them, every argmax tie-break).
    qoe, plan, rebuf, final_buf = scalar_strict_argmax(problem)
    assert batch.plan == plan
    assert batch.qoe == qoe
    assert batch.rebuffer_s == rebuf
    assert batch.final_buffer_s == final_buf
    # Against the epsilon-tie-break reference: the same optimum up to the
    # solver's own tie tolerance, and the same first decision unless two
    # optimal plans are exactly tied within it.
    reference = solve_horizon_reference(problem)
    assert batch.qoe == pytest.approx(reference.qoe, rel=1e-12, abs=1e-9)
    if abs(batch.qoe - reference.qoe) == 0.0:
        assert batch.plan == reference.plan


class TestBatchVsReference:
    def test_randomized_cbr_and_vbr(self):
        rng = np.random.default_rng(7)
        problems = [
            random_problem(rng, vbr=bool(i % 2)) for i in range(120)
        ]
        solutions = solve_horizon_batch(problems)
        assert len(solutions) == len(problems)
        for problem, solution in zip(problems, solutions):
            assert_same_solution(solution, problem)

    def test_no_previous_chunk(self):
        rng = np.random.default_rng(11)
        problems = []
        for _ in range(30):
            p = random_problem(rng, allow_no_prev=False)
            problems.append(
                HorizonProblem(
                    buffer_level_s=p.buffer_level_s,
                    prev_quality=None,
                    chunk_sizes_kilobits=p.chunk_sizes_kilobits,
                    quality_values=p.quality_values,
                    predicted_kbps=p.predicted_kbps,
                    chunk_duration_s=p.chunk_duration_s,
                    buffer_capacity_s=p.buffer_capacity_s,
                    weights=p.weights,
                )
            )
        for problem, solution in zip(problems, solve_horizon_batch(problems)):
            assert_same_solution(solution, problem)

    def test_mixed_shapes_one_batch(self):
        """Heterogeneous problems (different ladders/horizons) in one call."""
        rng = np.random.default_rng(13)
        problems = [random_problem(rng) for _ in range(40)]
        solutions = solve_horizon_batch(problems)
        for problem, solution in zip(problems, solutions):
            assert_same_solution(solution, problem)

    def test_dp_crossover_falls_back_consistently(self):
        """Above the enumeration limit the batch must agree with solve_horizon."""
        horizon = 8
        assert len(LADDER) ** horizon > _ENUMERATION_LIMIT
        problem = HorizonProblem(
            buffer_level_s=8.0,
            prev_quality=1000.0,
            chunk_sizes_kilobits=tuple(
                tuple(4.0 * r for r in LADDER) for _ in range(horizon)
            ),
            quality_values=LADDER,
            predicted_kbps=(1500.0,) * horizon,
            chunk_duration_s=4.0,
            buffer_capacity_s=30.0,
            weights=QoEWeights.balanced(),
        )
        (batch,) = solve_horizon_batch([problem])
        direct = solve_horizon(problem)
        assert batch.plan == direct.plan
        assert batch.qoe == direct.qoe

    def test_empty_batch(self):
        assert solve_horizon_batch([]) == []

    def test_evaluator_reuse_across_shapes(self):
        """One evaluator serves batches of different shapes back to back."""
        rng = np.random.default_rng(17)
        evaluator = _BatchEvaluator()
        for _ in range(5):
            problems = [random_problem(rng) for _ in range(int(rng.integers(1, 9)))]
            solutions = solve_horizon_batch(problems, evaluator=evaluator)
            for problem, solution in zip(problems, solutions):
                assert_same_solution(solution, problem)


class TestStartupBatched:
    def make(self, rng):
        p = random_problem(rng, allow_no_prev=False)
        return HorizonProblem(
            buffer_level_s=float(rng.uniform(0.0, 10.0)),
            prev_quality=None,
            chunk_sizes_kilobits=p.chunk_sizes_kilobits,
            quality_values=p.quality_values,
            predicted_kbps=p.predicted_kbps,
            chunk_duration_s=p.chunk_duration_s,
            buffer_capacity_s=p.buffer_capacity_s,
            weights=p.weights,
        )

    def manual_grid(self, problem, max_wait_s, wait_step_s):
        """The old per-grid-point formulation, reproduced literally."""
        mu_s = problem.weights.startup
        steps = int(round(max_wait_s / wait_step_s))
        best = None
        for j in range(steps + 1):
            wait = min(j * wait_step_s, max_wait_s)
            shifted = HorizonProblem(
                buffer_level_s=problem.buffer_level_s + wait,
                prev_quality=problem.prev_quality,
                chunk_sizes_kilobits=problem.chunk_sizes_kilobits,
                quality_values=problem.quality_values,
                predicted_kbps=problem.predicted_kbps,
                chunk_duration_s=problem.chunk_duration_s,
                buffer_capacity_s=problem.buffer_capacity_s,
                weights=problem.weights,
            )
            solution = solve_horizon_reference(shifted)
            adjusted = solution.qoe - mu_s * wait
            if best is None or adjusted > best[0] + 1e-12:
                best = (adjusted, solution.plan, wait)
        return best

    def test_matches_per_point_loop(self):
        rng = np.random.default_rng(23)
        for _ in range(40):
            problem = self.make(rng)
            solution = solve_startup(problem)
            max_wait = max(
                problem.buffer_capacity_s - problem.buffer_level_s, 0.0
            )
            qoe, plan, wait = self.manual_grid(problem, max_wait, 0.25)
            assert solution.plan == plan
            assert solution.qoe == qoe
            assert solution.startup_wait_s == wait

    def test_explicit_grid_arguments(self):
        rng = np.random.default_rng(29)
        for _ in range(10):
            problem = self.make(rng)
            solution = solve_startup(problem, max_wait_s=3.3, wait_step_s=0.5)
            qoe, plan, wait = self.manual_grid(problem, 3.3, 0.5)
            assert solution.plan == plan
            assert solution.qoe == qoe
            assert solution.startup_wait_s == wait


class TestSharedArraysReadOnly:
    def test_plan_matrix_is_read_only(self):
        plans = _plan_matrix(3, 4)
        assert not plans.flags.writeable
        with pytest.raises(ValueError):
            plans[0, 0] = 99
        # The cached instance is shared — a second call returns it intact.
        assert _plan_matrix(3, 4) is plans

    def test_binning_views_read_only_and_shared(self):
        binning = Binning(0.0, 30.0, 10)
        edges = binning.edges
        centers = binning.centers
        assert not edges.flags.writeable
        assert not centers.flags.writeable
        with pytest.raises(ValueError):
            edges[0] = -1.0
        with pytest.raises(ValueError):
            centers[0] = -1.0
        # Views, not copies: repeated access does not allocate.
        assert binning.edges is edges
        assert binning.centers is centers
