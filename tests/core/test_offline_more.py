"""Additional offline-bound coverage: hypothesis-driven dominance and
relationships between the normalizer and real algorithms at scale."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr import create
from repro.core.offline import fluid_upper_bound
from repro.qoe import QoEWeights
from repro.sim import simulate_session
from repro.traces import Trace
from repro.video import short_test_video
from repro.video.quality import LogQuality


@given(
    bandwidths=st.lists(st.floats(60.0, 4000.0), min_size=2, max_size=20),
    seed=st.integers(0, 1000),
)
@settings(max_examples=25)
def test_bound_dominates_online_algorithms(bandwidths, seed):
    """The fluid bound upper-bounds whatever any real algorithm achieves,
    for arbitrary traces — the property that keeps n-QoE <= 1."""
    manifest = short_test_video(num_chunks=10, num_levels=3)
    trace = Trace.from_samples(bandwidths, interval_s=3.0)
    bound = fluid_upper_bound(trace, manifest)
    for name in ("rb", "bb", "dashjs"):
        session = simulate_session(create(name), trace, manifest)
        assert session.qoe().total <= bound + 1e-6


@given(bandwidths=st.lists(st.floats(60.0, 4000.0), min_size=2, max_size=15))
@settings(max_examples=25)
def test_bound_positive_for_live_links(bandwidths):
    """Any trace with non-trivial capacity admits a positive optimum."""
    manifest = short_test_video(num_chunks=6, num_levels=3)
    trace = Trace.from_samples(bandwidths, interval_s=4.0)
    assert fluid_upper_bound(trace, manifest) > 0


class TestBoundWithConcaveQuality:
    def test_dominates_with_log_quality(self):
        """The Jensen step (K*q(S/K)) keeps the bound valid for concave
        non-identity quality functions."""
        manifest = short_test_video(num_chunks=8, num_levels=3)
        quality = LogQuality(reference_kbps=100.0, scale=500.0)
        rng = random.Random(5)
        for _ in range(5):
            trace = Trace.from_samples(
                [rng.uniform(150.0, 3000.0) for _ in range(20)], 4.0
            )
            bound = fluid_upper_bound(trace, manifest, quality=quality)
            for name in ("rb", "bb"):
                algo = create(name)
                from repro.abr import SessionConfig

                config = SessionConfig(quality=quality)
                session = simulate_session(algo, trace, manifest, config)
                assert session.qoe().total <= bound + 1e-6


class TestBoundParameters:
    def test_startup_weight_lowers_bound(self, step_trace, short_manifest):
        cheap_startup = fluid_upper_bound(
            step_trace, short_manifest,
            weights=QoEWeights(1.0, 3000.0, 0.0, label="x"),
        )
        costly_startup = fluid_upper_bound(
            step_trace, short_manifest,
            weights=QoEWeights(1.0, 3000.0, 9000.0, label="y"),
        )
        assert costly_startup <= cheap_startup + 1e-9

    def test_larger_buffer_never_lowers_bound(self, step_trace, short_manifest):
        small = fluid_upper_bound(step_trace, short_manifest,
                                  buffer_capacity_s=10.0)
        large = fluid_upper_bound(step_trace, short_manifest,
                                  buffer_capacity_s=40.0)
        assert large >= small - 1e-9
