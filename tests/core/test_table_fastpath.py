"""Flat-array quantization fast path — parity with the bisect oracle.

The online lookup replaced per-request ``bisect`` with precomputed
inverse-scale multiply + clip index arithmetic (scalar and batch).
These tests pin the contract: for every value, the arithmetic path must
return exactly what ``bisect_right(edges, v) - 1`` (clamped) returns —
including values sitting exactly on bin edges, one ULP to either side
of them, and out-of-range values.  Scalar and batch paths share the
same precomputed ``(offset, scale)`` and edges, so they cannot drift;
the batch lookups over the RLE/full layouts must match per-element
scalar lookups.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.table import Binning, DecisionTable, RunLengthEncodedTable

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


def _binnings():
    """Random but valid binnings, both spacings."""
    return st.builds(
        Binning,
        low=st.floats(0.01, 50.0),
        high=st.floats(51.0, 10_000.0),
        count=st.integers(1, 200),
        spacing=st.sampled_from(["linear", "log"]),
    )


class TestIndexOfMatchesBisectOracle:
    @settings(max_examples=200, deadline=None)
    @given(binning=_binnings(), value=st.floats(0.0, 20_000.0))
    def test_random_values(self, binning, value):
        assert binning.index_of(value) == binning.index_of_reference(value)

    @settings(max_examples=60, deadline=None)
    @given(binning=_binnings())
    def test_every_edge_and_ulp_neighbours(self, binning):
        # Exactly on each edge, and one ULP to either side — the spots
        # where naive multiply-and-truncate arithmetic goes wrong.
        for edge in binning.edges:
            for probe in (
                edge,
                math.nextafter(edge, -math.inf),
                math.nextafter(edge, math.inf),
            ):
                assert binning.index_of(probe) == binning.index_of_reference(
                    probe
                ), f"diverged at {probe!r} near edge {edge!r} of {binning!r}"

    def test_out_of_range_clamps(self):
        binning = Binning(1.0, 100.0, 25, spacing="log")
        assert binning.index_of(-5.0) == 0
        assert binning.index_of(0.0) == 0
        assert binning.index_of(1.0) == 0
        assert binning.index_of(100.0) == 24
        assert binning.index_of(1e12) == 24

    def test_nan_rejected(self):
        binning = Binning(0.0, 10.0, 5)
        with pytest.raises(ValueError):
            binning.index_of(float("nan"))

    def test_regression_linear_bin_edges(self):
        # The historic bug shape: an interior edge whose product
        # ``(v - low) * scale`` lands a hair under the integer, so a
        # truncating path would misplace the exact-edge value by one bin.
        binning = Binning(0.0, 30.0, 7)
        for i, edge in enumerate(binning.edges[:-1]):
            assert binning.index_of(edge) == binning.index_of_reference(edge)
            assert binning.index_of(edge) == i


@pytest.mark.skipif(_np is None, reason="numpy not available")
class TestBatchMatchesScalar:
    @settings(max_examples=60, deadline=None)
    @given(
        binning=_binnings(),
        values=st.lists(st.floats(0.0, 20_000.0), min_size=1, max_size=64),
    )
    def test_index_of_batch(self, binning, values):
        batch = binning.index_of_batch(values)
        assert [int(i) for i in batch] == [binning.index_of(v) for v in values]

    def test_index_of_batch_hits_edges(self):
        binning = Binning(2.0, 512.0, 40, spacing="log")
        probes = []
        for edge in binning.edges:
            probes += [
                edge,
                math.nextafter(edge, -math.inf),
                math.nextafter(edge, math.inf),
            ]
        probes += [-1.0, 0.0, 1e9]
        batch = binning.index_of_batch(probes)
        assert [int(i) for i in batch] == [binning.index_of(v) for v in probes]

    def test_rle_lookup_batch(self):
        values = [0, 0, 1, 1, 1, 2, 0, 0, 3, 3]
        rle = RunLengthEncodedTable.encode(values)
        indices = list(range(len(values)))
        assert [int(v) for v in rle.lookup_batch(indices)] == values
        with pytest.raises(IndexError):
            rle.lookup_batch([len(values)])
        with pytest.raises(IndexError):
            rle.lookup_batch([-1])

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        keep_full=st.booleans(),
    )
    def test_decision_table_lookup_batch(self, seed, keep_full):
        import random

        rng = random.Random(seed)
        buffers = Binning(0.0, 30.0, rng.randint(2, 20))
        throughputs = Binning(10.0, 8000.0, rng.randint(2, 20), spacing="log")
        levels = rng.randint(1, 6)
        flat = [
            rng.randint(0, levels - 1)
            for _ in range(buffers.count * levels * throughputs.count)
        ]
        table = DecisionTable(buffers, levels, throughputs, flat, keep_full=keep_full)
        states = [
            (rng.uniform(-2, 35), rng.randrange(levels), rng.uniform(1, 10_000))
            for _ in range(50)
        ]
        batch = table.lookup_batch(
            [s[0] for s in states], [s[1] for s in states], [s[2] for s in states]
        )
        scalar = [table.lookup(*s) for s in states]
        assert [int(v) for v in batch] == scalar

    def test_decision_table_batch_rejects_bad_prev(self):
        buffers = Binning(0.0, 30.0, 4)
        throughputs = Binning(10.0, 1000.0, 4)
        table = DecisionTable(buffers, 3, throughputs, [0] * (4 * 3 * 4))
        with pytest.raises(IndexError):
            table.lookup_batch([1.0], [3], [100.0])
        with pytest.raises(IndexError):
            table.lookup_batch([1.0], [-1], [100.0])
