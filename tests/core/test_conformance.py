"""Differential conformance: every solver implementation must agree.

Section 5 sells FastMPC as a *faithful* table compilation of the online
MPC optimisation, and PR 1's batched kernel promises bit-identical
results to the scalar solver.  This sweep pins all three down on shared
state: at every table bin centre, the online :func:`solve_horizon`, the
batched :func:`solve_horizon_batch`, a full :class:`MPCController`, and
the :class:`DecisionTable` built from the same configuration must choose
the same bitrate.  Theorem 1's corollary is checked too: RobustMPC with
zero past prediction error *is* plain MPC.
"""

import itertools
from typing import List

import pytest

from repro.core.fastmpc import FastMPCConfig, build_decision_table
from repro.core.horizon import HorizonProblem, solve_horizon
from repro.core.kernel import solve_horizon_batch
from repro.core.mpc import MPCController
from repro.core.robust import RobustMPCController
from repro.abr.base import PlayerObservation, SessionConfig
from repro.prediction.base import ThroughputPredictor
from repro.prediction.oracle import OraclePredictor
from repro.qoe import QoEWeights
from repro.sim.session import simulate_session
from repro.video import short_test_video

HORIZON = 3
WEIGHTS = QoEWeights.balanced()


class FixedPredictor(ThroughputPredictor):
    """Predicts one constant rate — pins the MPC input to a bin centre."""

    def __init__(self, kbps: float = 1000.0) -> None:
        self.kbps = kbps

    def reset(self) -> None:
        pass

    def observe(self, observation) -> None:
        pass

    def predict(self, horizon: int) -> List[float]:
        return [self.kbps] * horizon


@pytest.fixture(scope="module")
def setup():
    manifest = short_test_video(num_chunks=8, num_levels=3)
    config = FastMPCConfig(buffer_bins=8, throughput_bins=10, horizon=HORIZON)
    table = build_decision_table(
        manifest.ladder.levels_kbps,
        manifest.chunk_duration_s,
        30.0,
        WEIGHTS,
        config=config,
        use_cache=False,
    )
    return manifest, table


def _states(manifest, table):
    """Every (buffer centre, prev level, throughput centre) of the table."""
    return itertools.product(
        [float(c) for c in table.buffer_bins.centers],
        range(len(manifest.ladder)),
        [float(c) for c in table.throughput_bins.centers],
    )


def _problem(manifest, buffer_s, prev_level, kbps):
    """The exact instance the offline enumeration solves for this bin:
    CBR sizes ``L * R``, flat predictions, identity quality."""
    L = manifest.chunk_duration_s
    ladder = tuple(float(r) for r in manifest.ladder)
    sizes = tuple(tuple(L * r for r in ladder) for _ in range(HORIZON))
    return HorizonProblem(
        buffer_level_s=buffer_s,
        prev_quality=ladder[prev_level],
        chunk_sizes_kilobits=sizes,
        quality_values=ladder,
        predicted_kbps=(kbps,) * HORIZON,
        chunk_duration_s=L,
        buffer_capacity_s=30.0,
        weights=WEIGHTS,
    )


def test_table_scalar_and_batch_agree_on_every_bin(setup):
    manifest, table = setup
    states = list(_states(manifest, table))
    problems = [_problem(manifest, b, p, c) for b, p, c in states]

    scalar_levels = [solve_horizon(pr).first_level for pr in problems]
    batch_levels = [s.first_level for s in solve_horizon_batch(problems)]
    table_levels = [table.lookup(b, p, c) for b, p, c in states]

    assert scalar_levels == batch_levels  # PR 1's bit-identical contract
    disagreements = [
        (state, s, t)
        for state, s, t in zip(states, scalar_levels, table_levels)
        if s != t
    ]
    assert disagreements == []


def test_mpc_controller_agrees_with_table_at_bin_centers(setup):
    """The full controller (predictor pinned to the bin centre) picks the
    table's decision at every table state."""
    manifest, table = setup
    predictor = FixedPredictor()
    controller = MPCController(
        predictor=predictor, horizon=HORIZON, optimize_startup=False
    )
    controller.prepare(manifest, SessionConfig(buffer_capacity_s=30.0, weights=WEIGHTS))
    for buffer_s, prev_level, kbps in _states(manifest, table):
        predictor.kbps = kbps
        level = controller.select_bitrate(
            PlayerObservation(
                chunk_index=0,
                buffer_level_s=buffer_s,
                prev_level_index=prev_level,
                wall_time_s=0.0,
                playback_started=True,
            )
        )
        assert level == table.lookup(buffer_s, prev_level, kbps), (
            f"controller {level} != table at "
            f"(B={buffer_s:.2f}, prev={prev_level}, C={kbps:.1f})"
        )


def test_robust_mpc_transform_is_identity_at_zero_error():
    controller = RobustMPCController()
    assert controller.current_error_bound() == 0.0
    raw = [812.5, 1300.0, 2950.75]
    assert controller._transform_predictions(list(raw)) == raw


@pytest.mark.parametrize("trace_fixture", ["constant_trace", "step_trace"])
def test_robust_mpc_with_zero_error_equals_mpc(trace_fixture, request, short_manifest):
    """Theorem 1 corollary: perfect predictions keep the error tracker at
    zero, so RobustMPC's lower bound is the prediction itself and the two
    controllers produce the *same session*, decision for decision."""
    trace = request.getfixturevalue(trace_fixture)
    mpc = simulate_session(
        MPCController(predictor=OraclePredictor()), trace, short_manifest
    )
    robust = simulate_session(
        RobustMPCController(predictor=OraclePredictor()), trace, short_manifest
    )
    assert robust.level_indices == mpc.level_indices
    assert robust.startup_delay_s == mpc.startup_delay_s
    assert robust.total_rebuffer_s == mpc.total_rebuffer_s
    assert robust.qoe().total == mpc.qoe().total


def test_robust_mpc_with_error_floor_diverges_when_constrained(short_manifest, step_trace):
    """Sanity counterpoint: a forced error bound shifts the lower bound,
    so the zero-error equality above is not vacuous."""
    plain = simulate_session(
        MPCController(predictor=OraclePredictor()), step_trace, short_manifest
    )
    padded = simulate_session(
        RobustMPCController(predictor=OraclePredictor(), error_floor=1.5),
        step_trace,
        short_manifest,
    )
    assert padded.level_indices != plain.level_indices
