"""Extra solver coverage: large horizons, VBR rows, degenerate ladders."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.horizon import (
    HorizonProblem,
    solve_horizon,
    solve_horizon_dp,
    solve_horizon_enumerate,
)
from repro.qoe import QoEWeights

LADDER = (350.0, 600.0, 1000.0, 2000.0, 3000.0)


def vbr_problem(factors, predictions, buffer_s=10.0):
    horizon = len(factors)
    return HorizonProblem(
        buffer_level_s=buffer_s,
        prev_quality=600.0,
        chunk_sizes_kilobits=tuple(
            tuple(4.0 * r * f for r in LADDER) for f in factors
        ),
        quality_values=LADDER,
        predicted_kbps=tuple(predictions),
        chunk_duration_s=4.0,
        buffer_capacity_s=30.0,
        weights=QoEWeights.balanced(),
    )


class TestVBRHorizon:
    def test_vbr_rows_respected(self):
        """A horizon chunk that is twice as heavy must push the plan down
        for that chunk when throughput is tight."""
        flat = vbr_problem([1.0, 1.0, 1.0], [1000.0] * 3, buffer_s=4.0)
        heavy_mid = vbr_problem([1.0, 2.2, 1.0], [1000.0] * 3, buffer_s=4.0)
        sol_flat = solve_horizon(flat)
        sol_heavy = solve_horizon(heavy_mid)
        assert sol_heavy.plan[1] <= sol_flat.plan[1]

    @given(
        factors=st.lists(st.floats(0.5, 2.0), min_size=1, max_size=4),
        predictions=st.lists(st.floats(100.0, 5000.0), min_size=4, max_size=4),
    )
    @settings(max_examples=40)
    def test_solvers_agree_under_vbr(self, factors, predictions):
        problem = vbr_problem(factors, predictions[: len(factors)])
        a = solve_horizon_enumerate(problem)
        b = solve_horizon_dp(problem)
        assert a.qoe == pytest.approx(b.qoe, rel=1e-9, abs=1e-6)


class TestLargeInstances:
    def test_dispatch_to_dp_for_long_horizons(self):
        """horizon 9 exceeds the enumeration limit; solve_horizon must
        still return the exact optimum (checked against DP directly)."""
        problem = HorizonProblem(
            buffer_level_s=12.0,
            prev_quality=1000.0,
            chunk_sizes_kilobits=tuple(
                tuple(4.0 * r for r in LADDER) for _ in range(9)
            ),
            quality_values=LADDER,
            predicted_kbps=(1400.0,) * 9,
            chunk_duration_s=4.0,
            buffer_capacity_s=30.0,
            weights=QoEWeights.balanced(),
        )
        via_dispatch = solve_horizon(problem)
        via_dp = solve_horizon_dp(problem)
        assert via_dispatch.qoe == pytest.approx(via_dp.qoe)

    def test_fine_ladder_long_horizon(self):
        """20 levels x horizon 6 (6.4e7 raw plans) solves exactly via DP."""
        ladder = tuple(350.0 + i * (2650.0 / 19) for i in range(20))
        problem = HorizonProblem(
            buffer_level_s=15.0,
            prev_quality=ladder[4],
            chunk_sizes_kilobits=tuple(
                tuple(4.0 * r for r in ladder) for _ in range(6)
            ),
            quality_values=ladder,
            predicted_kbps=(1100.0,) * 6,
            chunk_duration_s=4.0,
            buffer_capacity_s=30.0,
            weights=QoEWeights.balanced(),
        )
        solution = solve_horizon(problem)
        assert len(solution.plan) == 6
        assert all(0 <= level < 20 for level in solution.plan)
        # Cross-check against enumeration on a truncated 3-chunk variant.
        truncated = HorizonProblem(
            problem.buffer_level_s,
            problem.prev_quality,
            problem.chunk_sizes_kilobits[:3],
            problem.quality_values,
            problem.predicted_kbps[:3],
            problem.chunk_duration_s,
            problem.buffer_capacity_s,
            problem.weights,
        )
        assert solve_horizon_dp(truncated).qoe == pytest.approx(
            solve_horizon_enumerate(truncated).qoe
        )


class TestDegenerateLadders:
    def test_single_level_ladder(self):
        problem = HorizonProblem(
            buffer_level_s=5.0,
            prev_quality=None,
            chunk_sizes_kilobits=((1400.0,),) * 3,
            quality_values=(350.0,),
            predicted_kbps=(800.0,) * 3,
            chunk_duration_s=4.0,
            buffer_capacity_s=30.0,
            weights=QoEWeights.balanced(),
        )
        solution = solve_horizon(problem)
        assert solution.plan == (0, 0, 0)

    def test_zero_weights_pick_max_quality(self):
        """With all penalties zero the solver greedily maxes quality."""
        problem = HorizonProblem(
            buffer_level_s=0.0,
            prev_quality=350.0,
            chunk_sizes_kilobits=tuple(
                tuple(4.0 * r for r in LADDER) for _ in range(4)
            ),
            quality_values=LADDER,
            predicted_kbps=(100.0,) * 4,
            chunk_duration_s=4.0,
            buffer_capacity_s=30.0,
            weights=QoEWeights(0.0, 0.0, 0.0, label="free"),
        )
        assert solve_horizon(problem).plan == (4, 4, 4, 4)
