"""The pure-Python fallback: everything works without NumPy, identically.

The vectorized kernel and flat-array lookups are opt-in accelerations —
``repro.core.npcompat`` degrades to a pure-Python implementation when
NumPy is missing, and that fallback is required to produce *the same
decisions* (and the same serialized table bytes for linear binnings),
not merely similar ones.  A subprocess with ``sys.modules['numpy'] =
None`` (which makes ``import numpy`` raise ImportError) plays the
numpy-less host; its answers are compared against the in-process
numpy-backed run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

_CHILD_SCRIPT = r"""
import hashlib, json, sys
sys.modules["numpy"] = None  # make `import numpy` raise ImportError

from repro.core.npcompat import HAVE_NUMPY
assert not HAVE_NUMPY, "numpy import should have been blocked"

from repro.core.fastmpc import FastMPCConfig, build_decision_table
from repro.core.horizon import HorizonProblem, solve_horizon, solve_startup
from repro.qoe import QoEWeights

ladder = (300.0, 750.0, 1200.0, 1850.0)
weights = QoEWeights(1.0, 4.3, 4.3)
config = FastMPCConfig(buffer_bins=12, throughput_bins=12, horizon=4)
table = build_decision_table(
    ladder, 4.0, 30.0, weights, config=config, use_cache=False
)
digest = hashlib.sha256(table.to_bytes()).hexdigest()

quality = tuple(float(r) for r in ladder)
sizes = tuple(tuple(4.0 * r for r in ladder) for _ in range(4))
plans = []
startups = []
for step in range(16):
    predicted = tuple(
        150.0 + 333.7 * (((step + i) * 7) % 11) for i in range(4)
    )
    problem = HorizonProblem(
        buffer_level_s=(step * 2.3) % 28.0,
        prev_quality=None if step == 0 else quality[step % len(ladder)],
        chunk_sizes_kilobits=sizes,
        quality_values=quality,
        predicted_kbps=predicted,
        chunk_duration_s=4.0,
        buffer_capacity_s=30.0,
        weights=weights,
    )
    solution = solve_horizon(problem)
    plans.append([list(solution.plan), solution.qoe.hex()])
    if step % 5 == 0:
        s = solve_startup(problem)
        startups.append([list(s.plan), s.startup_wait_s, s.qoe.hex()])

print(json.dumps({
    "table_sha256": digest,
    "decisions": {"plans": plans, "startups": startups},
}))
"""


def _run_child(block_numpy: bool) -> dict:
    script = _CHILD_SCRIPT
    if not block_numpy:
        script = script.replace('sys.modules["numpy"] = None', "pass")
        script = script.replace("assert not HAVE_NUMPY", "assert HAVE_NUMPY")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def runs():
    return _run_child(block_numpy=True), _run_child(block_numpy=False)


def test_package_usable_without_numpy(runs):
    without, _ = runs
    assert len(without["decisions"]["plans"]) == 16
    assert len(without["decisions"]["startups"]) == 4


def test_decisions_identical_without_numpy(runs):
    without, with_np = runs
    assert without["decisions"] == with_np["decisions"]


def test_table_bytes_identical_without_numpy(runs):
    # Linear binnings replicate numpy's linspace exactly, so the whole
    # serialized table (header, edges, RLE payload) is byte-identical.
    without, with_np = runs
    assert without["table_sha256"] == with_np["table_sha256"]


def test_registry_skips_mdp_without_numpy():
    # The MDP baseline genuinely needs numpy; the registry must register
    # it only when numpy is importable, instead of failing at import.
    script = (
        "import sys; sys.modules['numpy'] = None\n"
        "from repro.abr.registry import available\n"
        "names = set(available())\n"
        "assert 'mdp' not in names, names\n"
        "assert {'fastmpc', 'mpc', 'robust-mpc'} <= names, names\n"
        "print('ok')"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"
