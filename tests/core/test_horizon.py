"""The exact horizon solvers (enumeration, DP, reference)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.horizon import (
    HorizonProblem,
    solve_horizon,
    solve_horizon_dp,
    solve_horizon_enumerate,
    solve_horizon_reference,
    solve_startup,
)
from repro.qoe import QoEWeights

LADDER = (350.0, 600.0, 1000.0, 2000.0, 3000.0)


def make_problem(
    buffer_s=10.0,
    prev_quality=1000.0,
    horizon=5,
    predictions=None,
    ladder=LADDER,
    weights=None,
    bmax=30.0,
    chunk_s=4.0,
):
    predictions = predictions if predictions is not None else (1500.0,) * horizon
    return HorizonProblem(
        buffer_level_s=buffer_s,
        prev_quality=prev_quality,
        chunk_sizes_kilobits=tuple(
            tuple(chunk_s * r for r in ladder) for _ in range(horizon)
        ),
        quality_values=tuple(ladder),
        predicted_kbps=tuple(predictions),
        chunk_duration_s=chunk_s,
        buffer_capacity_s=bmax,
        weights=weights if weights is not None else QoEWeights.balanced(),
    )


class TestProblemValidation:
    def test_prediction_length_mismatch(self):
        with pytest.raises(ValueError, match="predictions"):
            make_problem(horizon=3, predictions=(1000.0,) * 2)

    def test_nonpositive_prediction(self):
        with pytest.raises(ValueError, match="positive"):
            make_problem(predictions=(0.0,) * 5)

    def test_negative_buffer(self):
        with pytest.raises(ValueError):
            make_problem(buffer_s=-1.0)

    def test_size_row_mismatch(self):
        with pytest.raises(ValueError, match="ladder"):
            HorizonProblem(
                10.0, None, ((100.0,),), (350.0, 600.0), (1000.0,), 4.0, 30.0,
                QoEWeights.balanced(),
            )


class TestSolveBehaviour:
    def test_abundant_throughput_picks_top_rate(self):
        sol = solve_horizon(make_problem(predictions=(50_000.0,) * 5, prev_quality=3000.0))
        assert sol.plan == (4,) * 5
        assert sol.rebuffer_s == 0.0

    def test_starved_throughput_picks_bottom_rate(self):
        sol = solve_horizon(make_problem(buffer_s=0.0, predictions=(80.0,) * 5,
                                         prev_quality=350.0))
        assert sol.plan == (0,) * 5

    def test_first_chunk_has_no_switch_penalty(self):
        """With prev=None, the solver may jump straight to a high rate."""
        with_prev = solve_horizon(make_problem(prev_quality=350.0,
                                               predictions=(2500.0,) * 5))
        without_prev = solve_horizon(make_problem(prev_quality=None,
                                                  predictions=(2500.0,) * 5))
        assert without_prev.qoe >= with_prev.qoe

    def test_rebuffer_accounting(self):
        # One chunk, zero buffer: download takes size/pred > 0 -> stall.
        problem = make_problem(buffer_s=0.0, horizon=1, predictions=(1000.0,),
                               prev_quality=None)
        sol = solve_horizon(problem)
        level = sol.plan[0]
        expected_stall = 4.0 * LADDER[level] / 1000.0
        assert sol.rebuffer_s == pytest.approx(expected_stall)

    def test_final_buffer_respects_capacity(self):
        sol = solve_horizon(make_problem(buffer_s=29.0, predictions=(50_000.0,) * 5))
        assert sol.final_buffer_s <= 30.0 + 1e-9

    def test_switching_penalty_discourages_oscillation(self):
        """With a huge lambda the plan should be constant."""
        weights = QoEWeights(1e6, 3000.0, 3000.0, label="sticky")
        sol = solve_horizon(make_problem(weights=weights, prev_quality=600.0,
                                         predictions=(1500.0,) * 5))
        assert len(set(sol.plan)) == 1

    def test_horizon_one(self):
        sol = solve_horizon(make_problem(horizon=1, predictions=(1500.0,)))
        assert len(sol.plan) == 1


problem_strategy = st.builds(
    make_problem,
    buffer_s=st.floats(0.0, 30.0),
    prev_quality=st.one_of(st.none(), st.sampled_from(LADDER)),
    horizon=st.integers(1, 4),
    weights=st.builds(
        QoEWeights,
        st.floats(0.0, 5.0),
        st.floats(0.0, 8000.0),
        st.just(3000.0),
    ),
    bmax=st.floats(8.0, 60.0),
).flatmap(
    lambda p: st.lists(
        st.floats(50.0, 6000.0), min_size=p.horizon, max_size=p.horizon
    ).map(
        lambda preds: HorizonProblem(
            p.buffer_level_s,
            p.prev_quality,
            p.chunk_sizes_kilobits,
            p.quality_values,
            tuple(preds),
            p.chunk_duration_s,
            p.buffer_capacity_s,
            p.weights,
        )
    )
)


@given(problem=problem_strategy)
def test_all_three_solvers_agree_on_optimum(problem):
    a = solve_horizon_enumerate(problem)
    b = solve_horizon_dp(problem)
    c = solve_horizon_reference(problem)
    assert a.qoe == pytest.approx(b.qoe, rel=1e-9, abs=1e-6)
    assert a.qoe == pytest.approx(c.qoe, rel=1e-9, abs=1e-6)
    # The enumerating solvers break ties identically.
    assert a.plan == c.plan


@given(problem=problem_strategy, extra=st.floats(0.1, 10.0))
def test_more_buffer_never_hurts(problem, extra):
    """Optimal horizon QoE is monotone in the starting buffer — the
    property that justifies both RobustMPC's conservatism and the DP's
    Pareto pruning."""
    richer = HorizonProblem(
        problem.buffer_level_s + extra,
        problem.prev_quality,
        problem.chunk_sizes_kilobits,
        problem.quality_values,
        problem.predicted_kbps,
        problem.chunk_duration_s,
        problem.buffer_capacity_s,
        problem.weights,
    )
    assert solve_horizon(richer).qoe >= solve_horizon(problem).qoe - 1e-9


@given(problem=problem_strategy)
def test_plan_qoe_is_reachable(problem):
    """The reported QoE equals a direct re-evaluation of the plan."""
    sol = solve_horizon(problem)
    buffer_s = problem.buffer_level_s
    qoe = 0.0
    prev_q = problem.prev_quality
    for i, level in enumerate(sol.plan):
        dt = problem.chunk_sizes_kilobits[i][level] / problem.predicted_kbps[i]
        stall = max(dt - buffer_s, 0.0)
        buffer_s = min(max(buffer_s - dt, 0.0) + problem.chunk_duration_s,
                       problem.buffer_capacity_s)
        q = problem.quality_values[level]
        qoe += q - problem.weights.rebuffering * stall
        if prev_q is not None:
            qoe -= problem.weights.switching * abs(q - prev_q)
        prev_q = q
    assert qoe == pytest.approx(sol.qoe, rel=1e-9, abs=1e-6)


class TestSolveStartup:
    def test_wait_eliminates_rebuffer_when_cheap(self):
        """With mu > mu_s, pre-rolling strictly beats stalling."""
        weights = QoEWeights(1.0, 6000.0, 1000.0, label="preroll")
        problem = make_problem(buffer_s=0.0, predictions=(800.0,) * 5,
                               prev_quality=None, weights=weights)
        sol = solve_startup(problem)
        assert sol.startup_wait_s > 0
        assert sol.rebuffer_s == pytest.approx(0.0, abs=0.3)

    def test_no_wait_when_buffer_is_ample(self):
        problem = make_problem(buffer_s=25.0, predictions=(2000.0,) * 5)
        sol = solve_startup(problem)
        assert sol.startup_wait_s == 0.0

    def test_beats_or_matches_plain_solve(self):
        problem = make_problem(buffer_s=0.0, predictions=(600.0,) * 5,
                               prev_quality=None)
        plain = solve_horizon(problem)
        startup = solve_startup(problem)
        assert startup.qoe >= plain.qoe - 1e-9

    def test_wait_is_grid_bounded(self):
        problem = make_problem(buffer_s=0.0, predictions=(100.0,) * 5,
                               prev_quality=None)
        sol = solve_startup(problem, max_wait_s=6.0, wait_step_s=0.5)
        assert 0.0 <= sol.startup_wait_s <= 6.0

    def test_validation(self):
        problem = make_problem()
        with pytest.raises(ValueError):
            solve_startup(problem, wait_step_s=0.0)
        with pytest.raises(ValueError):
            solve_startup(problem, max_wait_s=-1.0)
