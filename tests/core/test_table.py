"""FastMPC table storage: binning, run-length coding, lookups."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.table import (
    Binning,
    DecisionTable,
    RunLengthEncodedTable,
    TableSizeReport,
)


class TestBinning:
    def test_linear_edges_and_centers(self):
        b = Binning(0.0, 10.0, 5)
        assert b.index_of(0.5) == 0
        assert b.index_of(9.5) == 4
        assert b.center(0) == pytest.approx(1.0)
        assert b.center(4) == pytest.approx(9.0)

    def test_clamping(self):
        b = Binning(0.0, 10.0, 5)
        assert b.index_of(-3.0) == 0
        assert b.index_of(100.0) == 4

    def test_log_spacing(self):
        b = Binning(100.0, 10_000.0, 2, spacing="log")
        assert b.index_of(999.0) == 0
        assert b.index_of(1001.0) == 1
        # Geometric centre of [100, 1000] is ~316.
        assert b.center(0) == pytest.approx(316.23, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Binning(0.0, 10.0, 0)
        with pytest.raises(ValueError):
            Binning(10.0, 0.0, 5)
        with pytest.raises(ValueError):
            Binning(0.0, 10.0, 5, spacing="cubic")
        with pytest.raises(ValueError):
            Binning(0.0, 10.0, 5, spacing="log")
        with pytest.raises(ValueError):
            Binning(0.0, 10.0, 3).index_of(float("nan"))
        with pytest.raises(IndexError):
            Binning(0.0, 10.0, 3).center(3)

    def test_values_exactly_on_edges(self):
        # An interior edge belongs to the bin it opens (half-open bins):
        # edges of Binning(0, 10, 5) are [0, 2, 4, 6, 8, 10].
        b = Binning(0.0, 10.0, 5)
        assert b.index_of(2.0) == 1
        assert b.index_of(4.0) == 2
        assert b.index_of(8.0) == 4
        # The outer edges clamp into the terminal bins.
        assert b.index_of(0.0) == 0
        assert b.index_of(10.0) == 4

    def test_below_low_and_above_high_clamp(self):
        b = Binning(0.0, 10.0, 5)
        assert b.index_of(-1e9) == 0
        assert b.index_of(-1e-12) == 0
        assert b.index_of(10.0 + 1e-9) == 4
        assert b.index_of(1e12) == 4

    def test_log_spacing_edges(self):
        # Geometric edges of Binning(100, 10000, 2) are [100, 1000, 10000].
        b = Binning(100.0, 10_000.0, 2, spacing="log")
        assert b.index_of(100.0) == 0
        assert b.index_of(1000.0) == 1  # exactly on the interior edge
        assert b.index_of(10_000.0) == 1
        assert b.index_of(1.0) == 0
        assert b.index_of(1e9) == 1

    def test_matches_numpy_searchsorted_reference(self):
        # The bisect fast path must agree with the vectorised reference
        # semantics (searchsorted right on the shared edge array).
        for spacing, low, high in (("linear", 0.0, 30.0), ("log", 100.0, 4000.0)):
            b = Binning(low, high, 17, spacing=spacing)
            probes = np.concatenate(
                [b.edges, b.centers, np.linspace(low - 5.0, high + 5.0, 101)]
            )
            for value in probes:
                if value <= low:
                    expected = 0
                elif value >= high:
                    expected = b.count - 1
                else:
                    expected = int(np.searchsorted(b.edges, value, side="right")) - 1
                    expected = min(max(expected, 0), b.count - 1)
                assert b.index_of(float(value)) == expected

    @given(value=st.floats(-100.0, 100.0), count=st.integers(1, 50))
    def test_index_always_valid(self, value, count):
        b = Binning(0.0, 10.0, count)
        assert 0 <= b.index_of(value) < count

    @given(count=st.integers(1, 40), edge_index=st.integers(0, 40))
    def test_edges_map_into_valid_bins(self, count, edge_index):
        b = Binning(0.0, 10.0, count)
        edge = float(b.edges[min(edge_index, count)])
        idx = b.index_of(edge)
        assert 0 <= idx < count

    @given(count=st.integers(1, 30))
    def test_center_maps_to_own_bin(self, count):
        b = Binning(0.0, 10.0, count)
        for i in range(count):
            assert b.index_of(b.center(i)) == i


class TestRLE:
    def test_encode_decode_roundtrip(self):
        values = [0, 0, 1, 1, 1, 2, 0, 0]
        rle = RunLengthEncodedTable.encode(values)
        assert list(rle.decode()) == values
        assert rle.num_runs == 4

    def test_lookup_matches_decode(self):
        values = [3, 3, 1, 4, 4, 4, 0]
        rle = RunLengthEncodedTable.encode(values)
        for i, v in enumerate(values):
            assert rle.lookup(i) == v

    def test_lookup_bounds(self):
        rle = RunLengthEncodedTable.encode([1, 2])
        with pytest.raises(IndexError):
            rle.lookup(2)
        with pytest.raises(IndexError):
            rle.lookup(-1)

    def test_size_accounting(self):
        rle = RunLengthEncodedTable.encode([0] * 1000)
        assert rle.num_runs == 1
        assert rle.size_bytes() == 5  # 4-byte end + 1-byte value

    def test_bytes_roundtrip(self):
        values = [0, 1, 1, 4, 2, 2, 2]
        rle = RunLengthEncodedTable.encode(values)
        back = RunLengthEncodedTable.from_bytes(rle.to_bytes())
        assert list(back.decode()) == values

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RunLengthEncodedTable.encode([])

    def test_invalid_runs_rejected(self):
        with pytest.raises(ValueError):
            RunLengthEncodedTable([3, 2], [0, 1])
        with pytest.raises(ValueError):
            RunLengthEncodedTable([1], [0, 1])

    @given(values=st.lists(st.integers(0, 7), min_size=1, max_size=300))
    def test_roundtrip_property(self, values):
        rle = RunLengthEncodedTable.encode(values)
        assert list(rle.decode()) == values
        for i in (0, len(values) // 2, len(values) - 1):
            assert rle.lookup(i) == values[i]
        assert rle.num_runs <= len(values)

    @given(
        runs=st.lists(
            st.tuples(st.integers(0, 255), st.integers(1, 40)),
            min_size=1,
            max_size=30,
        )
    )
    def test_bytes_roundtrip_property(self, runs):
        # Run-structured inputs exercise long runs, not just noise; the
        # serialized form must reproduce every value and the run count.
        values = [v for v, length in runs for _ in range(length)]
        rle = RunLengthEncodedTable.encode(values)
        back = RunLengthEncodedTable.from_bytes(rle.to_bytes())
        assert list(back.decode()) == values
        assert back.num_runs == rle.num_runs
        assert back.to_bytes() == rle.to_bytes()
        for i in range(0, len(values), max(1, len(values) // 7)):
            assert back.lookup(i) == values[i]


class TestDecisionTable:
    def make_table(self, keep_full=False):
        buffer_bins = Binning(0.0, 30.0, 4)
        throughput_bins = Binning(100.0, 4000.0, 6, spacing="log")
        n = 4 * 3 * 6
        decisions = [(i // 6) % 3 for i in range(n)]  # varies by prev level
        return DecisionTable(buffer_bins, 3, throughput_bins, decisions,
                             keep_full=keep_full), decisions

    def test_lookup_layout(self):
        table, decisions = self.make_table()
        # prev level drives the decision in this synthetic table.
        assert table.lookup(1.0, 0, 150.0) == 0
        assert table.lookup(1.0, 1, 150.0) == 1
        assert table.lookup(29.0, 2, 3900.0) == 2

    def test_full_and_rle_lookup_agree(self):
        table_rle, _ = self.make_table(keep_full=False)
        table_full, _ = self.make_table(keep_full=True)
        for buffer_s in (0.0, 7.5, 29.9, 100.0):
            for prev in range(3):
                for kbps in (50.0, 800.0, 3900.0, 9000.0):
                    assert table_rle.lookup(buffer_s, prev, kbps) == \
                        table_full.lookup(buffer_s, prev, kbps)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            DecisionTable(Binning(0, 30, 4), 3, Binning(100, 4000, 6), [0, 1])

    def test_invalid_decisions_rejected(self):
        buffer_bins = Binning(0.0, 30.0, 2)
        throughput_bins = Binning(100.0, 4000.0, 2)
        with pytest.raises(ValueError):
            DecisionTable(buffer_bins, 2, throughput_bins, [0, 0, 5, 0, 0, 0, 0, 0])

    def test_prev_level_bounds(self):
        table, _ = self.make_table()
        with pytest.raises(IndexError):
            table.lookup(1.0, 3, 500.0)

    def test_size_report(self):
        table, _ = self.make_table()
        report = table.size_report(6)
        assert isinstance(report, TableSizeReport)
        assert report.num_entries == 72
        assert report.full_bytes == 72
        assert report.rle_bytes == table.rle.size_bytes()
        assert "levels" in report.describe()


class TestTableSizeReport:
    def test_compression_ratio(self):
        report = TableSizeReport(100, 50_000, 50_000, 25_000)
        assert report.compression_ratio == pytest.approx(0.5)
