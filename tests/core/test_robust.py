"""RobustMPC and Theorem 1."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.abr.base import DownloadResult, PlayerObservation, SessionConfig
from repro.core.horizon import HorizonProblem, solve_horizon, solve_horizon_reference
from repro.core.mpc import MPCController
from repro.core.robust import RobustMPCController
from repro.prediction import LastSamplePredictor
from repro.qoe import QoEWeights

LADDER = (350.0, 600.0, 1000.0)


def problem_with_predictions(predictions, buffer_s=6.0, weights=None):
    horizon = len(predictions)
    return HorizonProblem(
        buffer_level_s=buffer_s,
        prev_quality=600.0,
        chunk_sizes_kilobits=tuple(
            tuple(4.0 * r for r in LADDER) for _ in range(horizon)
        ),
        quality_values=LADDER,
        predicted_kbps=tuple(predictions),
        chunk_duration_s=4.0,
        buffer_capacity_s=30.0,
        weights=weights if weights is not None else QoEWeights.balanced(),
    )


def plan_qoe(problem, plan, throughputs):
    """Evaluate a plan against arbitrary realised throughputs."""
    buffer_s = problem.buffer_level_s
    qoe = 0.0
    prev_q = problem.prev_quality
    for i, level in enumerate(plan):
        dt = problem.chunk_sizes_kilobits[i][level] / throughputs[i]
        stall = max(dt - buffer_s, 0.0)
        buffer_s = min(max(buffer_s - dt, 0.0) + problem.chunk_duration_s,
                       problem.buffer_capacity_s)
        q = problem.quality_values[level]
        qoe += q - problem.weights.rebuffering * stall
        if prev_q is not None:
            qoe -= problem.weights.switching * abs(q - prev_q)
        prev_q = q
    return qoe


@given(
    lower=st.lists(st.floats(100.0, 2000.0), min_size=2, max_size=3),
    spread=st.floats(1.0, 2.0),
)
def test_theorem_1_worst_case_is_lower_bound(lower, spread):
    """Theorem 1: max_R min_{C in [C_, C^]} QoE == max_R QoE(C_).

    We verify both halves on small instances: (a) for any plan, the
    minimising throughput within the interval is the lower bound; (b) the
    max-min optimal plan equals the plan MPC picks when fed the lower
    bound.
    """
    problem_lower = problem_with_predictions(lower)
    upper = [c * spread for c in lower]
    horizon = len(lower)

    # (a) per-plan worst case sits at the lower bound (check on a grid of
    # interval corners).
    for plan in itertools.product(range(len(LADDER)), repeat=horizon):
        qoe_at_lower = plan_qoe(problem_lower, plan, lower)
        for corner in itertools.product(*[(lo, hi) for lo, hi in zip(lower, upper)]):
            assert plan_qoe(problem_lower, plan, list(corner)) >= qoe_at_lower - 1e-9

    # (b) brute-force max-min over corner realisations == solve at lower bound.
    best_maxmin, best_plan = -float("inf"), None
    for plan in itertools.product(range(len(LADDER)), repeat=horizon):
        worst = min(
            plan_qoe(problem_lower, plan, list(corner))
            for corner in itertools.product(*[(lo, hi) for lo, hi in zip(lower, upper)])
        )
        if worst > best_maxmin + 1e-12:
            best_maxmin, best_plan = worst, plan
    sol = solve_horizon_reference(problem_lower)
    assert sol.qoe == pytest.approx(best_maxmin, rel=1e-9, abs=1e-6)


class TestRobustController:
    def make(self, manifest, predictor_value=1000.0, error_floor=0.0):
        predictor = LastSamplePredictor()
        predictor.observe_kbps(predictor_value)
        robust = RobustMPCController(predictor=predictor, error_floor=error_floor)
        robust.prepare(manifest, SessionConfig())
        return robust

    def feed_error(self, controller, predicted, actual, chunk=0):
        controller._pending_raw_prediction = predicted
        controller.on_download_complete(
            DownloadResult(
                chunk_index=chunk, level_index=0, bitrate_kbps=350.0,
                size_kilobits=1400.0, download_time_s=1400.0 / actual,
                throughput_kbps=actual, rebuffer_s=0.0, buffer_after_s=10.0,
                wall_time_end_s=4.0,
            )
        )

    def test_no_history_means_no_discount(self, envivio_manifest):
        robust = self.make(envivio_manifest)
        assert robust.current_error_bound() == 0.0
        assert robust._transform_predictions([1000.0]) == [1000.0]

    def test_discount_follows_max_recent_error(self, envivio_manifest):
        robust = self.make(envivio_manifest)
        self.feed_error(robust, predicted=1300.0, actual=1000.0)  # 30%
        assert robust.current_error_bound() == pytest.approx(0.3)
        assert robust._transform_predictions([1300.0])[0] == pytest.approx(1000.0)

    def test_error_floor(self, envivio_manifest):
        robust = self.make(envivio_manifest, error_floor=0.1)
        assert robust.current_error_bound() == pytest.approx(0.1)

    def test_never_more_aggressive_than_plain_mpc(self, envivio_manifest):
        """After an over-estimation, RobustMPC's chosen level is <= plain
        MPC's at the same state."""
        predictor_r = LastSamplePredictor()
        predictor_m = LastSamplePredictor()
        robust = RobustMPCController(predictor=predictor_r)
        plain = MPCController(predictor=predictor_m)
        robust.prepare(envivio_manifest, SessionConfig())
        plain.prepare(envivio_manifest, SessionConfig())
        self.feed_error(robust, predicted=2600.0, actual=2000.0)
        predictor_r.reset()
        predictor_r.observe_kbps(2000.0)
        predictor_m.observe_kbps(2000.0)
        observation = PlayerObservation(
            chunk_index=10, buffer_level_s=8.0, prev_level_index=2,
            wall_time_s=40.0, playback_started=True,
        )
        assert robust.select_bitrate(observation) <= plain.select_bitrate(observation)

    def test_validation(self):
        with pytest.raises(ValueError):
            RobustMPCController(error_floor=-0.1)

    def test_name(self):
        assert RobustMPCController().name == "robust-mpc"
