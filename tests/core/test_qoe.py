"""The QoE model of Eq. 5."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.qoe import QoEWeights, compute_qoe
from repro.video.quality import LogQuality


class TestWeights:
    def test_balanced_preset_matches_paper(self):
        w = QoEWeights.balanced()
        assert (w.switching, w.rebuffering, w.startup) == (1.0, 3000.0, 3000.0)

    def test_avoid_instability_preset(self):
        w = QoEWeights.avoid_instability()
        assert (w.switching, w.rebuffering, w.startup) == (3.0, 3000.0, 3000.0)

    def test_avoid_rebuffering_preset(self):
        w = QoEWeights.avoid_rebuffering()
        assert (w.switching, w.rebuffering, w.startup) == (1.0, 6000.0, 6000.0)

    def test_preset_by_name(self):
        assert QoEWeights.preset("balanced") == QoEWeights.balanced()
        with pytest.raises(ValueError, match="unknown preset"):
            QoEWeights.preset("maximise-ads")

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            QoEWeights(-1.0, 0.0, 0.0)


class TestComputeQoE:
    def test_example_by_hand(self):
        # Three chunks at 350/600/600, 2s rebuffer, 1s startup, balanced.
        b = compute_qoe([350.0, 600.0, 600.0], rebuffer_seconds=2.0, startup_seconds=1.0)
        assert b.quality_total == pytest.approx(1550.0)
        assert b.switching_total == pytest.approx(250.0)
        assert b.total == pytest.approx(1550 - 250 - 3000 * 2 - 3000 * 1)

    def test_paper_equivalence_claim(self):
        """'1-sec rebuffer receives the same penalty as reducing the
        bitrate of a chunk by 3000 kbps' (Section 7.1.1)."""
        base = compute_qoe([3000.0, 3000.0], 0.0, 0.0)
        stalled = compute_qoe([3000.0, 3000.0], 1.0, 0.0)
        # Dropping one chunk to 0 kbps changes quality sum by 3000 (plus
        # switching, which we isolate away by comparing pure terms).
        assert base.total - stalled.total == pytest.approx(3000.0)

    def test_single_chunk_has_no_switching(self):
        b = compute_qoe([1000.0], 0.0, 0.0)
        assert b.switching_total == 0.0
        assert b.total == pytest.approx(1000.0)

    def test_custom_quality_function(self):
        b = compute_qoe([300.0, 300.0], 0.0, 0.0, quality=LogQuality(300.0, 1000.0))
        assert b.quality_total == pytest.approx(0.0)

    def test_reweighted(self):
        b = compute_qoe([350.0, 600.0], 1.0, 1.0)
        rb = b.reweighted(QoEWeights.avoid_rebuffering())
        assert rb.quality_total == b.quality_total
        assert rb.total < b.total  # doubled stall/startup penalties

    def test_without_startup(self):
        b = compute_qoe([350.0], 0.0, 5.0)
        assert b.without_startup().total == b.total + 5.0 * 3000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_qoe([], 0.0, 0.0)
        with pytest.raises(ValueError):
            compute_qoe([350.0], -1.0, 0.0)
        with pytest.raises(ValueError):
            compute_qoe([350.0], 0.0, -1.0)


@given(
    bitrates=st.lists(st.sampled_from([350.0, 600.0, 1000.0, 2000.0, 3000.0]),
                      min_size=1, max_size=20),
    rebuffer=st.floats(0.0, 60.0),
    startup=st.floats(0.0, 10.0),
)
def test_qoe_monotonicity(bitrates, rebuffer, startup):
    """More rebuffering or startup can only lower QoE; scaling penalties
    never raises it."""
    base = compute_qoe(bitrates, rebuffer, startup)
    worse = compute_qoe(bitrates, rebuffer + 1.0, startup)
    assert worse.total < base.total
    heavier = base.reweighted(QoEWeights(2.0, 6000.0, 6000.0, label="x"))
    assert heavier.total <= base.total + 1e-9


@given(
    bitrates=st.lists(st.floats(100.0, 3000.0), min_size=2, max_size=15),
)
def test_switching_total_is_total_variation(bitrates):
    b = compute_qoe(bitrates, 0.0, 0.0)
    expected = sum(abs(y - x) for x, y in zip(bitrates, bitrates[1:]))
    assert b.switching_total == pytest.approx(expected)
