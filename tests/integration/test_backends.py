"""Cross-backend consistency: simulator vs byte-level emulator.

The paper runs its main comparison on a testbed and its sensitivity study
on a simulator, implicitly assuming the two agree; here that assumption is
a tested property of our pipeline.
"""

from __future__ import annotations

import pytest

from repro.abr import create, paper_algorithms
from repro.emulation import NetworkProfile, emulate_session
from repro.experiments import median, run_matrix
from repro.sim import simulate_session
from repro.traces import HSDPATraceGenerator, SyntheticTraceGenerator
from repro.video import envivio

IDEAL = NetworkProfile(
    rtt_s=0.0, header_kilobits=0.0, server_processing_delay_s=0.0,
    slow_start=False,
)


class TestIdealNetworkEquivalence:
    @pytest.mark.parametrize("name", ["rb", "bb", "festive", "dashjs",
                                      "robust-mpc"])
    def test_per_algorithm_equivalence(self, name, envivio_manifest):
        """Under an ideal network every algorithm makes identical decisions
        on both backends."""
        trace = SyntheticTraceGenerator(seed=17).generate(320.0)
        sim = simulate_session(create(name), trace, envivio_manifest)
        emu = emulate_session(create(name), trace, envivio_manifest,
                              network=IDEAL)
        assert emu.level_indices == sim.level_indices
        assert emu.total_rebuffer_s == pytest.approx(sim.total_rebuffer_s,
                                                     abs=1e-6)
        assert emu.qoe().total == pytest.approx(sim.qoe().total, rel=1e-9,
                                                abs=1e-6)


class TestRealisticNetworkShift:
    def test_overheads_reduce_but_do_not_reorder(self, envivio_manifest):
        """With realistic RTT/headers/slow-start, absolute QoE drops but
        the RobustMPC > dash.js ordering persists (Figure 8's point)."""
        traces = HSDPATraceGenerator(seed=23).generate_many(8, 320.0)
        algorithms = {"robust-mpc": create("robust-mpc"),
                      "dashjs": create("dashjs")}
        sim_results = run_matrix(algorithms, traces, envivio_manifest,
                                 backend="sim")
        emu_results = run_matrix(algorithms, traces, envivio_manifest,
                                 backend="emulation")
        assert sim_results.median_n_qoe("robust-mpc") > sim_results.median_n_qoe("dashjs")
        assert emu_results.median_n_qoe("robust-mpc") > emu_results.median_n_qoe("dashjs")

    def test_measured_throughput_bias_is_visible(self, envivio_manifest):
        """The emulator's HTTP-level throughput samples sit below link
        capacity (the bias motivating robust prediction handling)."""
        trace = SyntheticTraceGenerator(seed=29).generate(320.0)
        emu = emulate_session(
            create("bb"), trace, envivio_manifest,
            network=NetworkProfile(rtt_s=0.1, slow_start=True),
        )
        sim = simulate_session(create("bb"), trace, envivio_manifest)
        emu_tput = emu.metrics().average_throughput_kbps
        sim_tput = sim.metrics().average_throughput_kbps
        assert emu_tput < sim_tput
