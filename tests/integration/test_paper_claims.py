"""End-to-end checks of the paper's headline qualitative claims.

These run the real experiment pipeline at reduced scale (a dozen traces
per dataset instead of 1000), asserting the *shape* of Section 7's
results: who wins, where the crossovers are, which algorithm collapses
where.  The full-scale numbers live in the benchmarks tree.
"""

from __future__ import annotations

import pytest

from repro.abr import paper_algorithms
from repro.experiments import figure8, median
from repro.experiments.sensitivity import prediction_error_sweep
from repro.traces import standard_datasets
from repro.video import envivio

TRACES_PER_DATASET = 12


@pytest.fixture(scope="module")
def results():
    datasets = standard_datasets(
        traces_per_dataset=TRACES_PER_DATASET, duration_s=320.0, seed=1
    )
    return figure8(datasets, envivio(), algorithms=paper_algorithms(),
                   backend="sim")


class TestFigure8Claims:
    def test_robust_mpc_wins_every_dataset(self, results):
        """Section 7.5: 'RobustMPC outperforms existing algorithms in both
        broadband (FCC) and cellular (HSDPA) datasets'."""
        for dataset in ("fcc", "hsdpa"):
            rs = results[dataset]
            robust = rs.median_n_qoe("robust-mpc")
            for baseline in ("rb", "bb", "dashjs", "festive"):
                assert robust > rs.median_n_qoe(baseline), (
                    f"robust-mpc did not beat {baseline} on {dataset}"
                )

    def test_improvement_magnitude_band(self, results):
        """Paper: ~15% (FCC) and ~10% (HSDPA) median improvement over the
        best prior algorithm; we accept anything clearly positive."""
        for dataset in ("fcc", "hsdpa"):
            rs = results[dataset]
            best_baseline = max(
                rs.median_n_qoe(a) for a in ("rb", "bb", "dashjs", "festive")
            )
            robust = rs.median_n_qoe("robust-mpc")
            assert (robust - best_baseline) / best_baseline > 0.03

    def test_fastmpc_loses_its_edge_on_mobile(self, results):
        """Section 7.5: 'regular FastMPC does not show advantage in
        cellular network due to high throughput instability' — while on
        FCC it does beat RB and BB."""
        fcc = results["fcc"]
        assert fcc.median_n_qoe("fastmpc") > fcc.median_n_qoe("rb")
        assert fcc.median_n_qoe("fastmpc") > fcc.median_n_qoe("bb")
        hsdpa = results["hsdpa"]
        assert hsdpa.median_n_qoe("fastmpc") <= hsdpa.median_n_qoe("robust-mpc")
        best_simple = max(hsdpa.median_n_qoe("rb"), hsdpa.median_n_qoe("bb"))
        assert hsdpa.median_n_qoe("fastmpc") <= best_simple + 0.02

    def test_dashjs_clearly_behind_mpc(self, results):
        """Paper: 'significant improvement (60+% median normalized QoE)
        compared with the original dash.js player'; we require a clear
        gap on every dataset."""
        for dataset, rs in results.items():
            assert rs.median_n_qoe("robust-mpc") > 1.15 * rs.median_n_qoe("dashjs")

    def test_rebuffering_discriminates_on_mobile(self, results):
        """Figure 10: RobustMPC achieves far less rebuffering than plain
        FastMPC on the mobile dataset."""
        rs = results["hsdpa"]
        robust = median(rs.metric_values("robust-mpc", "total_rebuffer_s"))
        fast = median(rs.metric_values("fastmpc", "total_rebuffer_s"))
        assert robust <= fast

    def test_fcc_rebuffering_is_rare_for_everyone(self, results):
        """Figure 9: on the stable broadband traces all algorithms keep
        rebuffering low — differences come from switching/bitrate."""
        rs = results["fcc"]
        for algorithm in rs.algorithms():
            assert median(rs.metric_values(algorithm, "total_rebuffer_s")) < 3.0


class TestFigure11aClaim:
    def test_mpc_crosses_below_bb_at_high_error(self):
        """Figure 11a: with accurate predictions MPC beats BB; beyond
        ~25% error plain MPC can fall below BB, while BB stays flat."""
        datasets = standard_datasets(traces_per_dataset=4, duration_s=320.0,
                                     seed=3)
        pool = datasets["fcc"][:2] + datasets["hsdpa"][:2] + datasets["synthetic"][:2]
        sweep = prediction_error_sweep(
            pool, envivio(), error_levels=(0.02, 0.45), include_robust=True,
            seed=5,
        )
        mpc, bb = sweep.series["mpc"], sweep.series["bb"]
        assert mpc[0] > bb[0]  # accurate predictions: MPC ahead
        # High error hurts MPC much more than BB.
        assert (mpc[0] - mpc[1]) > -0.02
        assert abs(bb[0] - bb[1]) < 1e-9
        # RobustMPC is less affected by error than plain MPC.
        robust = sweep.series["robust-mpc"]
        assert robust[1] >= mpc[1] - 0.02
