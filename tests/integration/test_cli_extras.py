"""Additional CLI coverage: result saving, SVG output, figure variants."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestCompareSave:
    def test_save_writes_csv_per_dataset(self, capsys, tmp_path):
        prefix = str(tmp_path / "results")
        code, out = run_cli(
            capsys, "compare", "--traces", "2", "--algorithms", "bb",
            "--save", prefix,
        )
        assert code == 0
        for dataset in ("fcc", "hsdpa", "synthetic"):
            path = tmp_path / f"results-{dataset}.csv"
            assert path.exists(), f"missing {path}"
            assert "algorithm" in path.read_text().splitlines()[0]

    def test_saved_results_reload(self, capsys, tmp_path):
        from repro.experiments import load_result_set_csv

        prefix = str(tmp_path / "r")
        run_cli(
            capsys, "compare", "--traces", "2", "--algorithms", "rb", "bb",
            "--save", prefix,
        )
        back = load_result_set_csv(tmp_path / "r-fcc.csv")
        assert back.algorithms() == ["rb", "bb"]
        assert len(back.records) == 4


class TestFigureSvg:
    def test_sweep_svg(self, capsys, tmp_path):
        svg = tmp_path / "fig.svg"
        code, out = run_cli(
            capsys, "figure", "fig11d", "--traces", "3", "--svg", str(svg)
        )
        assert code == 0
        assert svg.exists()
        assert svg.read_text().startswith("<svg")

    def test_fig9_detail_output(self, capsys):
        code, out = run_cli(capsys, "figure", "fig9", "--traces", "2")
        assert code == 0
        assert "average bitrate" in out
        assert "zero-rebuffer" in out


class TestRunExtensions:
    @pytest.mark.parametrize("algorithm", ["bola", "mdp"])
    def test_extension_algorithms_run(self, capsys, algorithm):
        code, out = run_cli(capsys, "run", algorithm, "--dataset", "synthetic")
        assert code == 0
        assert "avg bitrate" in out
