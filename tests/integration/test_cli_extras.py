"""Additional CLI coverage: result saving, SVG output, figure variants."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestCompareSave:
    def test_save_writes_csv_per_dataset(self, capsys, tmp_path):
        prefix = str(tmp_path / "results")
        code, out = run_cli(
            capsys, "compare", "--traces", "2", "--algorithms", "bb",
            "--save", prefix,
        )
        assert code == 0
        for dataset in ("fcc", "hsdpa", "synthetic"):
            path = tmp_path / f"results-{dataset}.csv"
            assert path.exists(), f"missing {path}"
            assert "algorithm" in path.read_text().splitlines()[0]

    def test_saved_results_reload(self, capsys, tmp_path):
        from repro.experiments import load_result_set_csv

        prefix = str(tmp_path / "r")
        run_cli(
            capsys, "compare", "--traces", "2", "--algorithms", "rb", "bb",
            "--save", prefix,
        )
        back = load_result_set_csv(tmp_path / "r-fcc.csv")
        assert back.algorithms() == ["rb", "bb"]
        assert len(back.records) == 4


class TestFigureSvg:
    def test_sweep_svg(self, capsys, tmp_path):
        svg = tmp_path / "fig.svg"
        code, out = run_cli(
            capsys, "figure", "fig11d", "--traces", "3", "--svg", str(svg)
        )
        assert code == 0
        assert svg.exists()
        assert svg.read_text().startswith("<svg")

    def test_fig9_detail_output(self, capsys):
        code, out = run_cli(capsys, "figure", "fig9", "--traces", "2")
        assert code == 0
        assert "average bitrate" in out
        assert "zero-rebuffer" in out


class TestRunExtensions:
    @pytest.mark.parametrize("algorithm", ["bola", "mdp"])
    def test_extension_algorithms_run(self, capsys, algorithm):
        code, out = run_cli(capsys, "run", algorithm, "--dataset", "synthetic")
        assert code == 0
        assert "avg bitrate" in out


class TestPredictRace:
    def test_race_prints_table_and_saves_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "race.json"
        code, out = run_cli(
            capsys, "predict-race",
            "--datasets", "fcc",
            "--traces", "1", "--duration", "120", "--bins", "8",
            "--predictors", "harmonic", "gap-harmonic",
            "--profiles", "clean", "blackouts",
            "--json", str(path),
        )
        assert code == 0
        assert "active_mae" in out
        assert "gap-harmonic" in out
        doc = json.loads(path.read_text())
        assert doc["profiles"] == ["clean", "blackouts"]
        assert len(doc["rows"]) == 4

    def test_unknown_profile_rejected(self, capsys):
        with pytest.raises(ValueError):
            main([
                "predict-race", "--traces", "1", "--duration", "60",
                "--profiles", "no-such-profile",
            ])


class TestLoadtestFlags:
    def test_live_flags_map_onto_the_config(self, capsys, monkeypatch):
        """The open-loop/predictor/family flags land verbatim in the
        LoadTestConfig handed to the runner."""
        import repro.service as service_module

        seen = {}

        def fake_run(host, port, config):
            seen["config"] = config

            class Report:
                errors = 0

                def describe(self):
                    return "stub report"

            return Report()

        monkeypatch.setattr(service_module, "run_loadtest_sync", fake_run)
        code, out = run_cli(
            capsys, "loadtest",
            "--sessions", "5", "--chunks", "4",
            "--predictors", "harmonic", "gap-harmonic",
            "--family", "fcc",
            "--open-loop", "--arrival-rate", "25.0",
            "--diurnal-amplitude", "0.5", "--diurnal-period", "8.0",
            "--burst-at", "1.5", "--burst-sessions", "3",
        )
        assert code == 0
        assert "stub report" in out
        config = seen["config"]
        assert config.predictors == ("harmonic", "gap-harmonic")
        assert config.family == "fcc"
        assert config.open_loop is True
        assert config.arrival_rate_hz == 25.0
        assert config.diurnal_amplitude == 0.5
        assert config.diurnal_period_s == 8.0
        assert config.burst_at_s == 1.5
        assert config.burst_sessions == 3
