"""Golden-session regression sweep.

``tests/golden/<algorithm>.jsonl`` holds one committed timeline per
registered ABR, recorded by :mod:`repro.obs` over the two fixed
synthetic traces defined in ``scripts/regen_golden.py``.  These tests
re-run every session live and fail on any decision or QoE drift against
the committed timeline.  An *intentional* behaviour change regenerates
the fixtures::

    PYTHONPATH=src python scripts/regen_golden.py

Volatile wall-clock fields are zeroed at recording time, so a live
re-run on the same code is expected to reproduce the fixture's decision
sequence exactly and its QoE to float precision.
"""

import importlib.util
import os

import pytest

from repro.abr.registry import available
from repro.obs import (
    ChunkDecision,
    SessionSummary,
    read_timeline,
    replay_session,
    split_sessions,
    verify_timeline,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "golden")

_spec = importlib.util.spec_from_file_location(
    "regen_golden", os.path.join(REPO_ROOT, "scripts", "regen_golden.py")
)
regen_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regen_golden)

ALGORITHMS = sorted(available())


def _fixture_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.jsonl")


def _decisions(events):
    return [e.level for e in events if isinstance(e, ChunkDecision)]


def _summary(events, session_id):
    for event in events:
        if isinstance(event, SessionSummary):
            return event
    raise AssertionError(f"fixture session {session_id!r} has no summary")


def test_every_registered_algorithm_has_a_fixture():
    missing = [n for n in ALGORITHMS if not os.path.exists(_fixture_path(n))]
    assert missing == [], (
        f"no golden fixture for {missing}; run scripts/regen_golden.py"
    )


def test_fixtures_cover_both_golden_traces():
    trace_names = [t.name for t in regen_golden.golden_traces()]
    assert len(trace_names) == 2
    for name in ALGORITHMS:
        sessions = split_sessions(read_timeline(_fixture_path(name)))
        assert sorted(sessions) == sorted(
            f"{name}:{t}" for t in trace_names
        )


@pytest.mark.parametrize("name", ALGORITHMS)
def test_fixture_is_self_consistent(name):
    """Replaying the committed timeline reproduces its own summary."""
    assert verify_timeline(read_timeline(_fixture_path(name))) == {}


@pytest.mark.parametrize("name", ALGORITHMS)
def test_live_run_matches_golden_fixture(name):
    fixture = split_sessions(read_timeline(_fixture_path(name)))
    for trace in regen_golden.golden_traces():
        session_id = f"{name}:{trace.name}"
        golden = fixture[session_id]
        live = regen_golden.run_golden_session(name, trace)

        # Decision drift: the per-chunk bitrate choices must be identical.
        assert _decisions(live) == _decisions(golden), (
            f"decision drift in {session_id}; if intentional, regenerate "
            f"fixtures with scripts/regen_golden.py"
        )

        # QoE drift: the replayed score must match the committed one.
        golden_summary = _summary(golden, session_id)
        live_qoe = replay_session(live).qoe.total
        assert live_qoe == pytest.approx(golden_summary.qoe_total, rel=1e-9), (
            f"QoE drift in {session_id}: "
            f"{live_qoe!r} != {golden_summary.qoe_total!r}"
        )
        assert replay_session(golden).qoe.total == golden_summary.qoe_total


# ----------------------------------------------------------------------
# Live-mode fixture
# ----------------------------------------------------------------------


def test_live_fixture_is_self_consistent():
    name = regen_golden.LIVE_FIXTURE_ALGORITHM
    events = read_timeline(_fixture_path(f"live-{name}"))
    assert verify_timeline(events) == {}


def test_live_mode_run_matches_golden_fixture():
    """The live-mode session replays exactly: decisions, QoE, and the
    prediction-span error sequence."""
    from repro.obs import prediction_errors

    name = regen_golden.LIVE_FIXTURE_ALGORITHM
    fixture = split_sessions(read_timeline(_fixture_path(f"live-{name}")))
    for trace in regen_golden.golden_traces():
        session_id = f"live:{name}:{trace.name}"
        golden = fixture[session_id]
        live = regen_golden.run_golden_live_session(name, trace)
        assert _decisions(live) == _decisions(golden), (
            f"decision drift in {session_id}; if intentional, regenerate "
            f"fixtures with scripts/regen_golden.py"
        )
        golden_summary = _summary(golden, session_id)
        assert replay_session(golden).qoe.total == golden_summary.qoe_total
        # the committed error sequences replay bit for bit, and the live
        # re-run reproduces them float for float
        golden_spans = prediction_errors(golden)
        live_spans = prediction_errors(live)
        assert set(golden_spans) == set(live_spans)
        for predictor, spans in golden_spans.items():
            assert [s.error for s in live_spans[predictor]] == [
                s.error for s in spans
            ]


# ----------------------------------------------------------------------
# Shared-prior fixture
# ----------------------------------------------------------------------


def test_prior_fixture_replays_exactly():
    """Re-driving the fixed request schedule through a fresh service
    reproduces every committed line — served levels, prior estimates,
    and the final store snapshot."""
    with open(_fixture_path("prior-session"), encoding="utf-8") as stream:
        committed = stream.read()
    assert regen_golden.render_prior_fixture() == committed


def test_prior_fixture_snapshot_rebuilds_from_scattered_workers():
    """The fixture's final snapshot is reproduced by scattering the same
    request stream across two worker stores and merging — the lossless-
    merge contract, anchored to committed bytes."""
    import json as _json

    from repro.service.prior import SharedPriorStore, merge_prior_snapshots

    lines = read_prior_fixture_lines()
    snapshot = _json.loads(lines[-1])["priors"]
    workers = [
        SharedPriorStore(max_families=snapshot["max_families"]),
        SharedPriorStore(max_families=snapshot["max_families"]),
    ]
    for i, line in enumerate(lines[:-1]):
        doc = _json.loads(line)
        workers[i % 2].observe(doc["family"], doc["predicted_kbps"])
    merged = merge_prior_snapshots([w.snapshot() for w in workers])
    assert merged == snapshot


def read_prior_fixture_lines():
    with open(_fixture_path("prior-session"), encoding="utf-8") as stream:
        return [line for line in stream.read().splitlines() if line]
