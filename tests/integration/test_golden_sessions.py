"""Golden-session regression sweep.

``tests/golden/<algorithm>.jsonl`` holds one committed timeline per
registered ABR, recorded by :mod:`repro.obs` over the two fixed
synthetic traces defined in ``scripts/regen_golden.py``.  These tests
re-run every session live and fail on any decision or QoE drift against
the committed timeline.  An *intentional* behaviour change regenerates
the fixtures::

    PYTHONPATH=src python scripts/regen_golden.py

Volatile wall-clock fields are zeroed at recording time, so a live
re-run on the same code is expected to reproduce the fixture's decision
sequence exactly and its QoE to float precision.
"""

import importlib.util
import os

import pytest

from repro.abr.registry import available
from repro.obs import (
    ChunkDecision,
    SessionSummary,
    read_timeline,
    replay_session,
    split_sessions,
    verify_timeline,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "golden")

_spec = importlib.util.spec_from_file_location(
    "regen_golden", os.path.join(REPO_ROOT, "scripts", "regen_golden.py")
)
regen_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regen_golden)

ALGORITHMS = sorted(available())


def _fixture_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.jsonl")


def _decisions(events):
    return [e.level for e in events if isinstance(e, ChunkDecision)]


def _summary(events, session_id):
    for event in events:
        if isinstance(event, SessionSummary):
            return event
    raise AssertionError(f"fixture session {session_id!r} has no summary")


def test_every_registered_algorithm_has_a_fixture():
    missing = [n for n in ALGORITHMS if not os.path.exists(_fixture_path(n))]
    assert missing == [], (
        f"no golden fixture for {missing}; run scripts/regen_golden.py"
    )


def test_fixtures_cover_both_golden_traces():
    trace_names = [t.name for t in regen_golden.golden_traces()]
    assert len(trace_names) == 2
    for name in ALGORITHMS:
        sessions = split_sessions(read_timeline(_fixture_path(name)))
        assert sorted(sessions) == sorted(
            f"{name}:{t}" for t in trace_names
        )


@pytest.mark.parametrize("name", ALGORITHMS)
def test_fixture_is_self_consistent(name):
    """Replaying the committed timeline reproduces its own summary."""
    assert verify_timeline(read_timeline(_fixture_path(name))) == {}


@pytest.mark.parametrize("name", ALGORITHMS)
def test_live_run_matches_golden_fixture(name):
    fixture = split_sessions(read_timeline(_fixture_path(name)))
    for trace in regen_golden.golden_traces():
        session_id = f"{name}:{trace.name}"
        golden = fixture[session_id]
        live = regen_golden.run_golden_session(name, trace)

        # Decision drift: the per-chunk bitrate choices must be identical.
        assert _decisions(live) == _decisions(golden), (
            f"decision drift in {session_id}; if intentional, regenerate "
            f"fixtures with scripts/regen_golden.py"
        )

        # QoE drift: the replayed score must match the committed one.
        golden_summary = _summary(golden, session_id)
        live_qoe = replay_session(live).qoe.total
        assert live_qoe == pytest.approx(golden_summary.qoe_total, rel=1e-9), (
            f"QoE drift in {session_id}: "
            f"{live_qoe!r} != {golden_summary.qoe_total!r}"
        )
        assert replay_session(golden).qoe.total == golden_summary.qoe_total
