"""The repro-abr command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestRun:
    def test_run_generated_trace(self, capsys):
        code, out = run_cli(capsys, "run", "bb", "--dataset", "fcc")
        assert code == 0
        assert "avg bitrate" in out
        assert "QoE" in out

    def test_run_trace_file(self, capsys, tmp_path):
        from repro.traces import Trace, save_trace_csv

        path = tmp_path / "t.csv"
        save_trace_csv(Trace.constant(1500.0, 400.0), path)
        code, out = run_cli(capsys, "run", "rb", "--trace-file", str(path))
        assert code == 0
        assert "rebuffer" in out

    def test_run_emulation_backend(self, capsys):
        code, out = run_cli(
            capsys, "run", "bb", "--dataset", "hsdpa", "--backend", "emulation"
        )
        assert code == 0

    def test_run_weight_preset(self, capsys):
        code, out = run_cli(
            capsys, "run", "bb", "--weights", "avoid-rebuffering"
        )
        assert code == 0
        assert "6000" in out

    def test_unknown_algorithm_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "skynet"])


class TestGenerateTraces:
    def test_writes_dataset(self, capsys, tmp_path):
        out_dir = tmp_path / "traces"
        code, out = run_cli(
            capsys, "generate-traces", "synthetic", str(out_dir),
            "--count", "3", "--duration", "60",
        )
        assert code == 0
        assert len(list(out_dir.glob("*.csv"))) == 3
        assert "wrote 3" in out


class TestCompare:
    def test_small_matrix(self, capsys):
        code, out = run_cli(
            capsys, "compare", "--traces", "2", "--algorithms", "rb", "bb",
        )
        assert code == 0
        assert "normalized QoE (fcc)" in out
        assert "normalized QoE (hsdpa)" in out


class TestFigure:
    def test_fig7(self, capsys):
        code, out = run_cli(capsys, "figure", "fig7", "--traces", "3")
        assert code == 0
        assert "median mean kbps" in out

    def test_fig11c(self, capsys):
        code, out = run_cli(capsys, "figure", "fig11c", "--traces", "3")
        assert code == 0
        assert "buffer_size_s" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestTable1AndOverhead:
    def test_table1(self, capsys):
        code, out = run_cli(capsys, "table1", "--levels", "8", "16",
                            "--horizon", "3")
        assert code == 0
        assert "RLE kB" in out

    def test_overhead(self, capsys):
        code, out = run_cli(capsys, "overhead")
        assert code == 0
        assert "mean decision" in out


class TestMeta:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
