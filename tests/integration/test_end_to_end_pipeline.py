"""The full research pipeline, end to end, through the public API only:

generate traces -> persist to disk -> reload -> run the experiment
matrix (parallel) -> persist results -> reload -> render reports and SVG.

This is the workflow a downstream user runs; every hand-off between
subsystems is exercised and checked for consistency.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    load_result_set_csv,
    render_cdf_svg,
    render_result_set,
    run_matrix,
    save_result_set_csv,
    save_svg,
)
from repro.experiments.parallel import run_matrix_parallel
from repro.abr import create
from repro.traces import load_dataset, make_generator, save_dataset
from repro.video import envivio


def test_full_pipeline(tmp_path):
    manifest = envivio()

    # 1. Generate and persist a dataset.
    generator = make_generator("synthetic", seed=11)
    traces = generator.generate_many(4, manifest.total_duration_s + 60.0)
    save_dataset(traces, tmp_path / "traces")

    # 2. Reload — the persisted traces must be behaviourally identical.
    loaded = load_dataset(tmp_path / "traces")
    assert len(loaded) == 4
    for original, reloaded in zip(traces, loaded):
        assert reloaded.mean_kbps() == pytest.approx(original.mean_kbps())

    # 3. Run the matrix, both serial and parallel, and cross-check.
    names = ["rb", "bb"]
    serial = run_matrix(
        {name: create(name) for name in names}, loaded, manifest,
        dataset="e2e",
    )
    parallel = run_matrix_parallel(
        names, loaded, manifest, workers=2, dataset="e2e"
    )
    for name in names:
        assert parallel.n_qoe_values(name) == pytest.approx(
            serial.n_qoe_values(name)
        )

    # 4. Persist results, reload, and verify the aggregate views agree.
    results_path = tmp_path / "results.csv"
    save_result_set_csv(serial, results_path)
    reloaded_results = load_result_set_csv(results_path)
    for name in names:
        assert reloaded_results.median_n_qoe(name) == pytest.approx(
            serial.median_n_qoe(name)
        )

    # 5. Render the human-facing artifacts.
    report = render_result_set(reloaded_results)
    assert "rb" in report and "median" in report
    svg_path = save_svg(
        render_cdf_svg(
            {name: reloaded_results.n_qoe_values(name) for name in names},
            title="end-to-end",
            x_label="n-QoE",
        ),
        tmp_path / "figure.svg",
    )
    assert svg_path.read_text().count("<polyline") == len(names)
