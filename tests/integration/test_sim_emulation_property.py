"""Property test: sim == emulation under an ideal network, for arbitrary
traces and a randomised decision policy.

This pins the equivalence of the two backends far beyond the handful of
fixed algorithms in test_backends.py: whatever decisions a policy makes,
the byte-level event machinery must produce the same session as the
closed-form chunk simulator when RTT, overhead, and slow-start are off.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.base import ABRAlgorithm
from repro.emulation import NetworkProfile, emulate_session
from repro.sim import simulate_session
from repro.traces import Trace
from repro.video import short_test_video

IDEAL = NetworkProfile(
    rtt_s=0.0, header_kilobits=0.0, server_processing_delay_s=0.0,
    slow_start=False,
)


class SeededRandomPolicy(ABRAlgorithm):
    """Deterministic pseudo-random decisions keyed by chunk index only,
    so both backends see the identical policy."""

    name = "seeded-random"

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def select_bitrate(self, observation):
        rng = random.Random(f"{self.seed}-{observation.chunk_index}")
        return rng.randrange(len(self.manifest.ladder))


@given(
    seed=st.integers(0, 100_000),
    bandwidths=st.lists(st.floats(80.0, 5000.0), min_size=3, max_size=25),
)
@settings(max_examples=30)
def test_backends_agree_for_any_policy_and_trace(seed, bandwidths):
    manifest = short_test_video(num_chunks=10, num_levels=3)
    trace = Trace.from_samples(bandwidths, interval_s=3.0)
    sim = simulate_session(SeededRandomPolicy(seed), trace, manifest)
    emu = emulate_session(
        SeededRandomPolicy(seed), trace, manifest, network=IDEAL
    )
    assert emu.level_indices == sim.level_indices
    assert emu.total_rebuffer_s == pytest.approx(sim.total_rebuffer_s, abs=1e-6)
    assert emu.startup_delay_s == pytest.approx(sim.startup_delay_s, abs=1e-6)
    assert emu.total_wall_time_s == pytest.approx(sim.total_wall_time_s, abs=1e-5)
    for a, b in zip(emu.records, sim.records):
        assert a.download_time_s == pytest.approx(b.download_time_s, abs=1e-8)
        assert a.buffer_after_s == pytest.approx(b.buffer_after_s, abs=1e-8)
        assert a.rebuffer_s == pytest.approx(b.rebuffer_s, abs=1e-8)
