"""Cross-predictor behaviour contracts (property tests over the family)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prediction import (
    EWMAPredictor,
    HarmonicMeanPredictor,
    HoltLinearPredictor,
    LastSamplePredictor,
    SlidingMeanPredictor,
)

FACTORIES = {
    "harmonic": HarmonicMeanPredictor,
    "sliding-mean": SlidingMeanPredictor,
    "ewma": EWMAPredictor,
    "holt": HoltLinearPredictor,
    "last-sample": LastSamplePredictor,
}


@pytest.mark.parametrize("name", sorted(FACTORIES), ids=str)
@given(
    samples=st.lists(st.floats(1.0, 50_000.0), min_size=0, max_size=20),
    horizon=st.integers(1, 8),
)
def test_forecast_contract(name, samples, horizon):
    """Every predictor: correct horizon length, strictly positive values,
    regardless of history (including none)."""
    predictor = FACTORIES[name]()
    for v in samples:
        predictor.observe_kbps(v)
    forecast = predictor.predict(horizon)
    assert len(forecast) == horizon
    assert all(v > 0 for v in forecast)


@pytest.mark.parametrize("name", sorted(FACTORIES), ids=str)
@given(samples=st.lists(st.floats(1.0, 50_000.0), min_size=1, max_size=15))
def test_reset_restores_cold_start(name, samples):
    predictor = FACTORIES[name]()
    cold = predictor.predict(3)
    for v in samples:
        predictor.observe_kbps(v)
    predictor.reset()
    assert predictor.predict(3) == cold


@pytest.mark.parametrize("name", ["harmonic", "sliding-mean", "ewma",
                                  "last-sample"])
@given(value=st.floats(10.0, 10_000.0), n=st.integers(1, 10))
def test_constant_history_constant_forecast(name, value, n):
    """Flat-forecast predictors fed a constant must predict it exactly."""
    predictor = FACTORIES[name]()
    for _ in range(n):
        predictor.observe_kbps(value)
    assert predictor.predict(4) == pytest.approx([value] * 4)


@pytest.mark.parametrize("name", sorted(FACTORIES), ids=str)
@given(
    samples=st.lists(st.floats(10.0, 10_000.0), min_size=1, max_size=12),
    scale=st.floats(0.1, 10.0),
)
def test_scale_equivariance(name, samples, scale):
    """Scaling all observed throughputs scales the forecast — no hidden
    absolute thresholds inside any predictor."""
    a = FACTORIES[name]()
    b = FACTORIES[name]()
    for v in samples:
        a.observe_kbps(v)
        b.observe_kbps(v * scale)
    fa = a.predict(3)
    fb = b.predict(3)
    for x, y in zip(fa, fb):
        # Holt floors its forecast, so only require equivariance when the
        # unscaled forecast is comfortably above the floor.
        if name == "holt" and (x <= 10.0 or y <= 10.0):
            continue
        assert y == pytest.approx(x * scale, rel=1e-9)
