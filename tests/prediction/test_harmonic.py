"""The harmonic-mean predictor (the paper's default)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prediction import HarmonicMeanPredictor, SlidingMeanPredictor
from repro.prediction.base import OBSERVATION_FLOOR_KBPS


class TestHarmonicMean:
    def test_cold_start(self):
        p = HarmonicMeanPredictor(cold_start_kbps=123.0)
        assert p.predict(3) == [123.0, 123.0, 123.0]

    def test_single_observation(self):
        p = HarmonicMeanPredictor()
        p.observe_kbps(800.0)
        assert p.predict(1) == [800.0]

    def test_harmonic_mean_math(self):
        p = HarmonicMeanPredictor(window=3)
        for v in (400.0, 800.0):
            p.observe_kbps(v)
        expected = 2 / (1 / 400 + 1 / 800)
        assert p.predict(1)[0] == pytest.approx(expected)

    def test_window_slides(self):
        p = HarmonicMeanPredictor(window=2)
        for v in (100.0, 1000.0, 1000.0):
            p.observe_kbps(v)
        assert p.predict(1)[0] == pytest.approx(1000.0)

    def test_flat_forecast(self):
        p = HarmonicMeanPredictor()
        p.observe_kbps(700.0)
        forecast = p.predict(5)
        assert len(forecast) == 5
        assert len(set(forecast)) == 1

    def test_reset(self):
        p = HarmonicMeanPredictor(cold_start_kbps=99.0)
        p.observe_kbps(5000.0)
        p.reset()
        assert p.predict(1) == [99.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            HarmonicMeanPredictor(window=0)
        with pytest.raises(ValueError):
            HarmonicMeanPredictor(cold_start_kbps=0.0)
        with pytest.raises(ValueError):
            HarmonicMeanPredictor().predict(0)

    def test_stalled_observation_clamps_to_floor(self):
        # A chunk downloaded through a blackout measures 0 kbps; the
        # observation boundary clamps it instead of raising, and the
        # harmonic mean stays finite (and tiny — the honest forecast).
        p = HarmonicMeanPredictor()
        p.observe_kbps(0.0)
        assert p.predict(1)[0] == pytest.approx(OBSERVATION_FLOOR_KBPS)

    def test_rejects_negative_observation(self):
        with pytest.raises(ValueError):
            HarmonicMeanPredictor().observe_kbps(-1.0)


@given(samples=st.lists(st.floats(10.0, 10_000.0), min_size=1, max_size=5))
def test_harmonic_between_min_and_mean(samples):
    """min(x) <= harmonic mean <= arithmetic mean."""
    p = HarmonicMeanPredictor(window=5)
    for v in samples:
        p.observe_kbps(v)
    hm = p.predict(1)[0]
    assert min(samples) - 1e-9 <= hm <= sum(samples) / len(samples) + 1e-9


@given(
    baseline=st.floats(200.0, 2000.0),
    spike=st.floats(5000.0, 50_000.0),
)
def test_more_robust_to_spikes_than_arithmetic_mean(baseline, spike):
    """The paper picks the harmonic mean because it is 'robust to outliers
    in per-chunk estimates': a single throughput spike moves it less."""
    harmonic = HarmonicMeanPredictor(window=5)
    arithmetic = SlidingMeanPredictor(window=5)
    for predictor in (harmonic, arithmetic):
        for _ in range(4):
            predictor.observe_kbps(baseline)
        predictor.observe_kbps(spike)
    assert harmonic.predict(1)[0] < arithmetic.predict(1)[0]
    # The harmonic estimate stays near the sustainable baseline.
    assert harmonic.predict(1)[0] < 2.0 * baseline
