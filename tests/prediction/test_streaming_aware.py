"""Conformance suite for the streaming-aware (gap-corrected) predictors.

Pins the three exact-equality contracts of
:mod:`repro.prediction.streaming` — degradation, idle invariance,
boundedness — plus scale-equivariance, and checks bit-identity of the
predictions with and without NumPy importable (they are pure Python, and
must stay that way).

Exactness notes: scale-equivariance is tested with power-of-two factors
only.  Multiplying IEEE-754 doubles by ``2**k`` changes just the
exponent, so scaling commutes with every rounding step of the harmonic
and EWMA aggregations and the property holds with ``==`` — which is the
point: the predictors may not contain any expression that breaks it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prediction import (
    EWMAPredictor,
    GapCorrectedEWMAPredictor,
    GapCorrectedHarmonicPredictor,
    HarmonicMeanPredictor,
    make_predictor,
)
from repro.prediction.base import ThroughputObservation

GAP_FACTORIES = {
    "gap-harmonic": GapCorrectedHarmonicPredictor,
    "gap-ewma": GapCorrectedEWMAPredictor,
}

# (throughput_kbps, duration_s, stall_fraction) triples; a zero fraction
# is a gap-free sample, anything else stalls that share of the window.
samples_st = st.lists(
    st.tuples(
        st.floats(1.0, 50_000.0),
        st.floats(0.1, 30.0),
        st.one_of(st.just(0.0), st.floats(0.01, 0.95)),
    ),
    min_size=1,
    max_size=20,
)


def observe_stream(predictor, stream, scale=1.0):
    for throughput, duration, stall_fraction in stream:
        predictor.observe_kbps(
            throughput * scale, duration, stall_s=stall_fraction * duration
        )


# ----------------------------------------------------------------------
# Scale-equivariance
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(GAP_FACTORIES), ids=str)
@pytest.mark.parametrize("robust_discount", (0.0, 0.25))
@given(stream=samples_st, k=st.integers(-8, 8))
def test_scale_equivariance_power_of_two(name, robust_discount, stream, k):
    """Scaling every throughput by 2**k scales the prediction by exactly
    2**k — bit-for-bit, since power-of-two scaling commutes with IEEE
    rounding."""
    factor = 2.0 ** k
    base = GAP_FACTORIES[name](robust_discount=robust_discount)
    scaled = GAP_FACTORIES[name](robust_discount=robust_discount)
    observe_stream(base, stream)
    observe_stream(scaled, stream, scale=factor)
    assert scaled.current_estimate() == base.current_estimate() * factor
    assert scaled.predict(3) == [v * factor for v in base.predict(3)]


# ----------------------------------------------------------------------
# Idle-gap invariance
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(GAP_FACTORIES), ids=str)
@given(
    stream=samples_st,
    idles=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20),
)
def test_idle_time_never_changes_predictions(name, stream, idles):
    """Idle time between transfers — zero-length or hours — informs the
    idle_gap_fraction diagnostic only; predictions are untouched."""
    plain = GAP_FACTORIES[name]()
    gapped = GAP_FACTORIES[name]()
    observe_stream(plain, stream)
    for i, (throughput, duration, stall_fraction) in enumerate(stream):
        gapped.observe_idle(idles[i % len(idles)])
        gapped.observe_kbps(
            throughput,
            duration,
            idle_s=idles[(i + 1) % len(idles)],
            stall_s=stall_fraction * duration,
        )
    assert gapped.current_estimate() == plain.current_estimate()


@pytest.mark.parametrize("name", sorted(GAP_FACTORIES), ids=str)
def test_zero_length_idle_gap_is_a_no_op(name):
    """An explicit observe_idle(0.0) is indistinguishable from not
    calling it at all — including in the diagnostic."""
    a = GAP_FACTORIES[name]()
    b = GAP_FACTORIES[name]()
    for step in range(6):
        b.observe_idle(0.0)
        x = 500.0 + 100.0 * step
        a.observe_kbps(x, 2.0, stall_s=0.5 if step % 2 else 0.0)
        b.observe_kbps(x, 2.0, stall_s=0.5 if step % 2 else 0.0)
    assert a.current_estimate() == b.current_estimate()
    assert a.idle_gap_fraction() == b.idle_gap_fraction()


# ----------------------------------------------------------------------
# Boundedness
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(GAP_FACTORIES), ids=str)
@pytest.mark.parametrize("robust_discount", (0.0, 0.25))
@given(stream=samples_st)
def test_bounded_by_observed_active_rates(name, robust_discount, stream):
    """Whenever a correction engaged (a stall in the window, or any
    robust discount), the estimate sits inside the closed range of
    observed active rates."""
    predictor = GAP_FACTORIES[name](robust_discount=robust_discount)
    active_rates = []
    for throughput, duration, stall_fraction in stream:
        stall = stall_fraction * duration
        predictor.observe_kbps(throughput, duration, stall_s=stall)
        active_rates.append(
            ThroughputObservation(
                throughput, duration, stall_s=stall
            ).active_kbps
        )
    window = getattr(predictor, "window", None)
    windowed = active_rates[-window:] if window else active_rates
    engaged = robust_discount > 0.0 or any(
        0.0 < frac * dur < dur for _, dur, frac in (
            stream[-window:] if window else stream
        )
    )
    if engaged:
        assert min(windowed) <= predictor.current_estimate() <= max(windowed)


def test_stall_recovers_active_rate_exactly():
    """1000 kbps measured over 4 s of which 2 s stalled is a 2000 kbps
    link; a window of such samples must predict exactly that."""
    for predictor in (GapCorrectedHarmonicPredictor(), GapCorrectedEWMAPredictor()):
        for _ in range(5):
            predictor.observe_kbps(1000.0, 4.0, stall_s=2.0)
        assert predictor.current_estimate() == 2000.0


# ----------------------------------------------------------------------
# Exact degradation
# ----------------------------------------------------------------------


@given(stream=samples_st)
def test_gap_free_harmonic_degrades_exactly(stream):
    plain = HarmonicMeanPredictor()
    gap = GapCorrectedHarmonicPredictor()
    for throughput, duration, _ in stream:
        plain.observe_kbps(throughput)
        gap.observe_kbps(throughput, duration)
        assert gap.current_estimate() == plain.current_estimate()
        assert gap.predict(5) == plain.predict(5)


@given(stream=samples_st)
def test_gap_free_ewma_degrades_exactly(stream):
    plain = EWMAPredictor()
    gap = GapCorrectedEWMAPredictor()
    for throughput, duration, _ in stream:
        plain.observe_kbps(throughput)
        gap.observe_kbps(throughput, duration)
        assert gap.predict(1) == plain.predict(1)


@given(stream=samples_st)
def test_full_window_stall_then_degradation_is_not_sticky_harmonic(stream):
    """Once stalled samples age out of the harmonic window, the
    degradation contract re-engages: estimates equal the plain
    predictor's again, bit for bit."""
    plain = HarmonicMeanPredictor()
    gap = GapCorrectedHarmonicPredictor()
    gap.observe_kbps(700.0, 4.0, stall_s=1.0)  # a corrected sample
    for throughput, duration, _ in stream:
        plain.observe_kbps(throughput)
        gap.observe_kbps(throughput, duration)
    if len(stream) >= gap.window:
        assert gap.current_estimate() == plain.current_estimate()


# ----------------------------------------------------------------------
# Diagnostics + registry
# ----------------------------------------------------------------------


def test_idle_gap_fraction_accounting():
    predictor = GapCorrectedHarmonicPredictor()
    assert predictor.idle_gap_fraction() == 0.0
    predictor.observe_kbps(1000.0, 4.0, idle_s=1.0, stall_s=2.0)
    # (idle + stall) / (busy + idle) = (1 + 2) / (4 + 1)
    assert predictor.idle_gap_fraction() == 3.0 / 5.0


def test_reset_clears_correction_state():
    predictor = GapCorrectedEWMAPredictor()
    predictor.observe_kbps(1000.0, 4.0, idle_s=3.0, stall_s=2.0)
    predictor.reset()
    assert predictor.idle_gap_fraction() == 0.0
    assert predictor.predict(1) == [predictor.cold_start_kbps]
    # post-reset gap-free traffic is back on the pure path
    plain = EWMAPredictor()
    plain.observe_kbps(640.0)
    predictor.observe_kbps(640.0, 2.0)
    assert predictor.predict(1) == plain.predict(1)


@pytest.mark.parametrize(
    "name", ("gap-harmonic", "gap-ewma", "gap-harmonic-robust"), ids=str
)
def test_registry_constructs_working_predictor(name):
    predictor = make_predictor(name)
    for step in range(4):
        predictor.observe_kbps(900.0 + step, 3.0, stall_s=0.25)
    forecast = predictor.predict(4)
    assert len(forecast) == 4
    assert all(v > 0 for v in forecast)


@pytest.mark.parametrize("factory", tuple(GAP_FACTORIES.values()))
def test_invalid_parameters_rejected(factory):
    with pytest.raises(ValueError):
        factory(robust_discount=-0.1)
    with pytest.raises(ValueError):
        factory(cold_start_kbps=0.0)


# ----------------------------------------------------------------------
# Bit-identity without NumPy (mirrors tests/core/test_numpy_fallback.py)
# ----------------------------------------------------------------------

_CHILD_SCRIPT = r"""
import json, sys
sys.modules["numpy"] = None  # make `import numpy` raise ImportError

from repro.core.npcompat import HAVE_NUMPY
assert not HAVE_NUMPY, "numpy import should have been blocked"

from repro.prediction import make_predictor

out = {}
for name in ("gap-harmonic", "gap-ewma", "gap-harmonic-robust"):
    predictor = make_predictor(name)
    estimates = []
    for step in range(24):
        throughput = 120.0 + 333.7 * (((step * 7) % 11) + 1)
        duration = 0.5 + (step % 5)
        stall = 0.3 * duration if step % 3 == 1 else 0.0
        predictor.observe_idle(0.25 * (step % 2))
        predictor.observe_kbps(throughput, duration, stall_s=stall)
        estimates.append(predictor.predict(1)[0].hex())
    out[name] = {
        "estimates": estimates,
        "idle_gap_fraction": predictor.idle_gap_fraction().hex(),
    }
print(json.dumps(out))
"""


def _run_child(block_numpy: bool) -> dict:
    script = _CHILD_SCRIPT
    if not block_numpy:
        script = script.replace('sys.modules["numpy"] = None', "pass")
        script = script.replace("assert not HAVE_NUMPY", "assert HAVE_NUMPY")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout.strip().splitlines()[-1])


def test_predictions_identical_without_numpy():
    without = _run_child(block_numpy=True)
    with_np = _run_child(block_numpy=False)
    assert without == with_np
    assert len(without["gap-harmonic"]["estimates"]) == 24
