"""Prediction-error tracking (RobustMPC's err and Figure 7 statistics)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prediction import PredictionErrorTracker, percentage_error


class TestPercentageError:
    def test_signed(self):
        assert percentage_error(1200.0, 1000.0) == pytest.approx(0.2)
        assert percentage_error(800.0, 1000.0) == pytest.approx(-0.2)

    def test_rejects_nonpositive_actual(self):
        with pytest.raises(ValueError):
            percentage_error(100.0, 0.0)


class TestTracker:
    def test_empty_tracker_defaults(self):
        t = PredictionErrorTracker()
        assert t.max_recent_abs_error() == 0.0
        assert t.mean_abs_error() == 0.0
        assert t.mean_signed_error() == 0.0
        assert t.overestimation_fraction() == 0.0
        assert t.worst_abs_error() == 0.0
        assert len(t) == 0

    def test_records_and_windows(self):
        t = PredictionErrorTracker(window=2)
        t.record(1100.0, 1000.0)  # +10%
        t.record(1500.0, 1000.0)  # +50%
        t.record(1000.0, 1000.0)  # 0% -> window holds {50%, 0%}
        assert t.max_recent_abs_error() == pytest.approx(0.5)
        t.record(1000.0, 1000.0)  # window holds {0%, 0%}
        assert t.max_recent_abs_error() == pytest.approx(0.0)
        # Whole-session stats still remember everything.
        assert t.worst_abs_error() == pytest.approx(0.5)
        assert len(t) == 4

    def test_robust_lower_bound_formula(self):
        """The paper's C_hat / (1 + err) with err = max |e| over window."""
        t = PredictionErrorTracker(window=5)
        t.record(1400.0, 1000.0)  # err 0.4
        assert t.robust_lower_bound(2000.0) == pytest.approx(2000.0 / 1.4)

    def test_robust_lower_bound_no_history(self):
        t = PredictionErrorTracker()
        assert t.robust_lower_bound(900.0) == pytest.approx(900.0)

    def test_robust_lower_bound_validation(self):
        with pytest.raises(ValueError):
            PredictionErrorTracker().robust_lower_bound(0.0)

    def test_overestimation_fraction(self):
        t = PredictionErrorTracker()
        t.record(1200.0, 1000.0)
        t.record(800.0, 1000.0)
        t.record(1001.0, 1000.0)
        assert t.overestimation_fraction() == pytest.approx(2 / 3)

    def test_mean_signed_error(self):
        t = PredictionErrorTracker()
        t.record(1200.0, 1000.0)
        t.record(800.0, 1000.0)
        assert t.mean_signed_error() == pytest.approx(0.0)
        assert t.mean_abs_error() == pytest.approx(0.2)

    def test_reset(self):
        t = PredictionErrorTracker()
        t.record(2000.0, 1000.0)
        t.reset()
        assert len(t) == 0
        assert t.max_recent_abs_error() == 0.0

    def test_errors_copy(self):
        t = PredictionErrorTracker()
        t.record(1100.0, 1000.0)
        errors = t.errors
        errors.append(99.0)
        assert len(t.errors) == 1

    def test_window_validation(self):
        with pytest.raises(ValueError):
            PredictionErrorTracker(window=0)


@given(
    pairs=st.lists(
        st.tuples(st.floats(1.0, 5000.0), st.floats(1.0, 5000.0)),
        min_size=1,
        max_size=20,
    )
)
def test_lower_bound_never_exceeds_prediction(pairs):
    """The robust bound is conservative: always <= the raw prediction."""
    t = PredictionErrorTracker(window=5)
    for predicted, actual in pairs:
        t.record(predicted, actual)
    assert t.robust_lower_bound(1234.0) <= 1234.0 + 1e-9
    assert t.robust_lower_bound(1234.0) > 0


class TestGapContext:
    """The previously-discarded on/off context now flows into the
    tracker: gap fraction and gap-stratified error statistics."""

    def test_gapless_records_leave_diagnostics_zero(self):
        t = PredictionErrorTracker()
        t.record(1100.0, 1000.0)
        assert t.idle_gap_fraction() == 0.0
        strata = t.stratified_mean_abs_error()
        assert strata["gapped"]["chunks"] == 0
        assert strata["smooth"]["chunks"] == 1

    def test_idle_gap_fraction_accounting(self):
        t = PredictionErrorTracker()
        t.record(1100.0, 1000.0, duration_s=4.0, idle_s=1.0, stall_s=2.0)
        # (idle + stall) / (busy + idle) = 3 / 5
        assert t.idle_gap_fraction() == 3.0 / 5.0

    def test_stratified_mean_abs_error_splits_by_gap(self):
        t = PredictionErrorTracker()
        t.record(1100.0, 1000.0)                                  # smooth, 10%
        t.record(1500.0, 1000.0, duration_s=4.0, stall_s=1.0)     # gapped, 50%
        t.record(800.0, 1000.0, duration_s=4.0, stall_s=2.0)      # gapped, 20%
        strata = t.stratified_mean_abs_error()
        assert strata["smooth"]["chunks"] == 1
        assert strata["smooth"]["mae"] == pytest.approx(0.1)
        assert strata["gapped"]["chunks"] == 2
        assert strata["gapped"]["mae"] == pytest.approx(0.35)

    def test_reset_clears_gap_state(self):
        t = PredictionErrorTracker()
        t.record(1100.0, 1000.0, duration_s=4.0, idle_s=1.0, stall_s=2.0)
        t.reset()
        assert t.idle_gap_fraction() == 0.0
        assert t.stratified_mean_abs_error()["gapped"]["chunks"] == 0
