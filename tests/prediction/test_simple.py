"""Baseline predictors: last-sample, sliding mean, EWMA, Holt."""

from __future__ import annotations

import pytest

from repro.prediction import (
    EWMAPredictor,
    HoltLinearPredictor,
    LastSamplePredictor,
    SlidingMeanPredictor,
)


class TestLastSample:
    def test_persistence(self):
        p = LastSamplePredictor()
        p.observe_kbps(100.0)
        p.observe_kbps(900.0)
        assert p.predict(2) == [900.0, 900.0]

    def test_cold_start_and_reset(self):
        p = LastSamplePredictor(cold_start_kbps=50.0)
        assert p.predict(1) == [50.0]
        p.observe_kbps(700.0)
        p.reset()
        assert p.predict(1) == [50.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            LastSamplePredictor(cold_start_kbps=-1.0)
        with pytest.raises(ValueError):
            LastSamplePredictor().predict(0)


class TestSlidingMean:
    def test_mean(self):
        p = SlidingMeanPredictor(window=3)
        for v in (100.0, 200.0, 600.0):
            p.observe_kbps(v)
        assert p.predict(1)[0] == pytest.approx(300.0)

    def test_window_evicts(self):
        p = SlidingMeanPredictor(window=2)
        for v in (1000.0, 100.0, 300.0):
            p.observe_kbps(v)
        assert p.predict(1)[0] == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingMeanPredictor(window=0)


class TestEWMA:
    def test_first_observation_sets_level(self):
        p = EWMAPredictor(alpha=0.5)
        p.observe_kbps(800.0)
        assert p.predict(1)[0] == pytest.approx(800.0)

    def test_smoothing(self):
        p = EWMAPredictor(alpha=0.5)
        p.observe_kbps(1000.0)
        p.observe_kbps(0.0 + 500.0)
        assert p.predict(1)[0] == pytest.approx(750.0)

    def test_alpha_one_is_last_sample(self):
        p = EWMAPredictor(alpha=1.0)
        p.observe_kbps(100.0)
        p.observe_kbps(900.0)
        assert p.predict(1)[0] == pytest.approx(900.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=1.5)


class TestHolt:
    def test_ramped_forecast_follows_trend(self):
        p = HoltLinearPredictor(alpha=0.8, beta=0.8)
        for v in (100.0, 200.0, 300.0, 400.0):
            p.observe_kbps(v)
        forecast = p.predict(4)
        assert forecast == sorted(forecast)  # increasing trend extrapolated
        assert forecast[0] > 400.0

    def test_forecast_stays_positive_under_downtrend(self):
        p = HoltLinearPredictor(alpha=0.9, beta=0.9, floor_kbps=10.0)
        for v in (2000.0, 1000.0, 200.0, 50.0):
            p.observe_kbps(v)
        assert all(v >= 10.0 for v in p.predict(8))

    def test_cold_start(self):
        p = HoltLinearPredictor(cold_start_kbps=77.0)
        assert p.predict(2) == [77.0, 77.0]

    def test_damping_limits_extrapolation(self):
        aggressive = HoltLinearPredictor(alpha=0.8, beta=0.8, damping=1.0)
        damped = HoltLinearPredictor(alpha=0.8, beta=0.8, damping=0.5)
        for v in (100.0, 300.0, 500.0):
            aggressive.observe_kbps(v)
            damped.observe_kbps(v)
        assert damped.predict(6)[-1] < aggressive.predict(6)[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            HoltLinearPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            HoltLinearPredictor(damping=0.0)
        with pytest.raises(ValueError):
            HoltLinearPredictor(beta=1.5)
