"""Oracle predictors: perfect and noise-controlled (Section 7.3)."""

from __future__ import annotations

import statistics

import pytest

from repro.prediction import NoisyOraclePredictor, OraclePredictor
from repro.traces import Trace


def bound(predictor, trace):
    predictor.bind_trace(trace, chunk_duration_s=4.0)
    predictor.reset()
    return predictor


class TestOracle:
    def test_matches_trace_windows(self, step_trace):
        p = bound(OraclePredictor(), step_trace)
        p.set_wall_time(96.0)
        forecast = p.predict(3)
        # Windows [96,100), [100,104), [104,108): 2000 then 400 then 400.
        assert forecast[0] == pytest.approx(2000.0)
        assert forecast[1] == pytest.approx(400.0)
        assert forecast[2] == pytest.approx(400.0)

    def test_requires_binding(self):
        p = OraclePredictor()
        with pytest.raises(RuntimeError, match="bind_trace"):
            p.predict(1)

    def test_wall_time_validation(self):
        p = bound(OraclePredictor(), Trace.constant(500.0, 60.0))
        with pytest.raises(ValueError):
            p.set_wall_time(-1.0)

    def test_bind_validation(self):
        with pytest.raises(ValueError):
            OraclePredictor().bind_trace(Trace.constant(500.0, 60.0), 0.0)

    def test_observe_is_noop(self):
        p = bound(OraclePredictor(), Trace.constant(500.0, 60.0))
        p.observe_kbps(9999.0)
        assert p.predict(1)[0] == pytest.approx(500.0)


class TestNoisyOracle:
    def test_error_level_zero_is_exact(self):
        trace = Trace.constant(800.0, 60.0)
        p = bound(NoisyOraclePredictor(0.0), trace)
        assert p.predict(3) == pytest.approx([800.0] * 3)

    def test_mean_abs_error_matches_level(self):
        trace = Trace.constant(1000.0, 60.0)
        p = bound(NoisyOraclePredictor(0.2, seed=1), trace)
        errors = []
        for epoch in range(400):
            value = p.predict(1)[0]
            errors.append(abs(value - 1000.0) / 1000.0)
            p.observe_kbps(1000.0)  # advances the noise epoch
        assert statistics.mean(errors) == pytest.approx(0.2, abs=0.03)

    def test_deterministic_per_seed_and_epoch(self):
        trace = Trace.constant(1000.0, 60.0)
        a = bound(NoisyOraclePredictor(0.3, seed=9), trace)
        b = bound(NoisyOraclePredictor(0.3, seed=9), trace)
        assert a.predict(4) == b.predict(4)
        a.observe_kbps(1000.0)
        assert a.predict(4) != b.predict(4)

    def test_always_positive(self):
        trace = Trace.constant(10.0, 60.0)
        p = bound(NoisyOraclePredictor(0.49, seed=0), trace)
        for _ in range(100):
            assert all(v > 0 for v in p.predict(3))
            p.observe_kbps(10.0)

    def test_error_level_validation(self):
        with pytest.raises(ValueError):
            NoisyOraclePredictor(-0.1)
        with pytest.raises(ValueError):
            NoisyOraclePredictor(0.5)
