"""Package-level surface: top-level API, shims, versioning."""

from __future__ import annotations

import pytest

import repro


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__
        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name!r}"

    def test_quick_session_runs(self):
        session = repro.quick_session(algorithm="bb", dataset="synthetic")
        assert len(session.records) == 65
        assert session.qoe().total == session.qoe().total  # finite

    def test_quick_session_algorithms(self):
        session = repro.quick_session(algorithm="rb", dataset="fcc",
                                      trace_index=2, seed=5)
        assert session.algorithm_name == "rb"

    def test_quick_session_rejects_unknown(self):
        with pytest.raises(ValueError):
            repro.quick_session(algorithm="does-not-exist")


class TestQoEShim:
    def test_core_qoe_is_top_level_qoe(self):
        """The documented repro.core.qoe path re-exports repro.qoe."""
        from repro import qoe as top
        from repro.core import qoe as shim

        assert shim.QoEWeights is top.QoEWeights
        assert shim.compute_qoe is top.compute_qoe
        assert shim.QoEBreakdown is top.QoEBreakdown


class TestSubpackageAllLists:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.traces",
            "repro.video",
            "repro.prediction",
            "repro.abr",
            "repro.core",
            "repro.sim",
            "repro.emulation",
            "repro.experiments",
        ],
    )
    def test_all_names_exist(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"
