"""The trace-driven simulator: buffer dynamics, startup, invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.abr import ConstantLevelAlgorithm, FixedPlanAlgorithm, SessionConfig
from repro.abr.base import ABRAlgorithm
from repro.core.mpc import MPCController
from repro.sim import SessionResult, StartupPolicy, simulate_session
from repro.traces import Trace
from repro.video import envivio, short_test_video


class TestBasicRun:
    def test_all_chunks_downloaded(self, envivio_manifest, constant_trace):
        session = simulate_session(
            ConstantLevelAlgorithm(0), constant_trace, envivio_manifest
        )
        assert len(session.records) == 65
        assert [r.chunk_index for r in session.records] == list(range(65))

    def test_download_times_match_trace(self, envivio_manifest, constant_trace):
        session = simulate_session(
            ConstantLevelAlgorithm(2), constant_trace, envivio_manifest
        )
        for r in session.records:
            assert r.download_time_s == pytest.approx(
                r.size_kilobits / 1500.0
            )
            assert r.throughput_kbps == pytest.approx(1500.0)

    def test_no_rebuffer_on_fast_constant_link(self, envivio_manifest):
        trace = Trace.constant(10_000.0, 600.0)
        session = simulate_session(
            ConstantLevelAlgorithm(-1), trace, envivio_manifest
        )
        assert session.total_rebuffer_s == 0.0

    def test_guaranteed_rebuffer_on_starved_link(self, envivio_manifest):
        trace = Trace.constant(500.0, 2000.0)
        session = simulate_session(
            ConstantLevelAlgorithm(-1), trace, envivio_manifest
        )
        assert session.total_rebuffer_s > 0.0

    def test_startup_is_first_chunk_download_time(self, envivio_manifest):
        trace = Trace.constant(1400.0, 600.0)
        session = simulate_session(
            ConstantLevelAlgorithm(0), trace, envivio_manifest
        )
        assert session.startup_delay_s == pytest.approx(4.0 * 350.0 / 1400.0)


class TestEq4FullBufferWait:
    def test_waits_recorded_when_buffer_fills(self, envivio_manifest):
        trace = Trace.constant(50_000.0, 600.0)
        session = simulate_session(
            ConstantLevelAlgorithm(0), trace, envivio_manifest,
            SessionConfig(buffer_capacity_s=12.0),
        )
        waits = [r.waited_s for r in session.records]
        assert max(waits) > 0.0
        assert all(r.buffer_after_s <= 12.0 + 1e-9 for r in session.records)

    def test_wall_time_includes_waits(self, envivio_manifest):
        trace = Trace.constant(50_000.0, 600.0)
        session = simulate_session(
            ConstantLevelAlgorithm(0), trace, envivio_manifest,
            SessionConfig(buffer_capacity_s=12.0),
        )
        total_wait = sum(r.waited_s for r in session.records)
        total_download = sum(r.download_time_s for r in session.records)
        assert session.total_wall_time_s == pytest.approx(
            total_wait + total_download, rel=1e-9
        )


class TestStartupPolicies:
    def test_fixed_startup_time(self, envivio_manifest):
        trace = Trace.constant(2000.0, 600.0)
        session = simulate_session(
            ConstantLevelAlgorithm(0), trace, envivio_manifest,
            startup_policy=StartupPolicy.FIXED, fixed_startup_delay_s=6.0,
        )
        assert session.startup_delay_s == pytest.approx(6.0)

    def test_fixed_startup_accumulates_buffer(self, envivio_manifest):
        """Larger fixed startup -> more pre-roll buffer -> fewer stalls
        (the Figure 11d mechanism)."""
        trace = Trace([0.0, 30.0], [2000.0, 350.0], duration_s=320.0)
        stalls = []
        for ts in (2.0, 10.0):
            session = simulate_session(
                ConstantLevelAlgorithm(1), trace, envivio_manifest,
                startup_policy=StartupPolicy.FIXED, fixed_startup_delay_s=ts,
            )
            stalls.append(session.total_rebuffer_s)
        assert stalls[1] <= stalls[0]

    def test_fixed_startup_negative_rejected(self, envivio_manifest, constant_trace):
        with pytest.raises(ValueError):
            simulate_session(
                ConstantLevelAlgorithm(0), constant_trace, envivio_manifest,
                startup_policy=StartupPolicy.FIXED, fixed_startup_delay_s=-1.0,
            )

    def test_mpc_startup_wait_applied(self, envivio_manifest):
        """On a slow link the MPC startup problem asks for extra pre-roll
        when stalls cost more than startup time."""
        from repro.qoe import QoEWeights

        trace = Trace.constant(700.0, 900.0)
        config = SessionConfig(
            weights=QoEWeights(1.0, 6000.0, 1000.0, label="preroll")
        )
        mpc_session = simulate_session(
            MPCController(), trace, envivio_manifest, config
        )
        baseline = simulate_session(
            ConstantLevelAlgorithm(1), trace, envivio_manifest, config
        )
        first_chunk_time = mpc_session.records[0].download_time_s
        assert mpc_session.startup_delay_s >= first_chunk_time - 1e-9


class TestInvariants:
    class RandomAlgorithm(ABRAlgorithm):
        name = "random"

        def __init__(self, seed):
            self.rng = random.Random(seed)

        def select_bitrate(self, observation):
            return self.rng.randrange(len(self.manifest.ladder))

    @given(seed=st.integers(0, 10_000))
    def test_session_invariants_under_random_policy(self, seed):
        manifest = short_test_video(num_chunks=10, num_levels=3)
        rng = random.Random(seed)
        samples = [rng.uniform(100.0, 4000.0) for _ in range(30)]
        trace = Trace.from_samples(samples, 3.0)
        config = SessionConfig(buffer_capacity_s=rng.uniform(8.0, 40.0))
        session = simulate_session(
            self.RandomAlgorithm(seed), trace, manifest, config
        )
        # Buffer stays within [0, Bmax]; wall clock is monotone; rebuffer
        # and waits are non-negative; sizes match the manifest.
        last_t = 0.0
        for r in session.records:
            assert 0.0 <= r.buffer_after_s <= config.buffer_capacity_s + 1e-9
            assert r.wall_time_end_s >= last_t - 1e-9
            last_t = r.wall_time_end_s
            assert r.rebuffer_s >= 0.0
            assert r.waited_s >= 0.0
            assert r.size_kilobits == pytest.approx(
                manifest.chunk_size_kilobits(r.chunk_index, r.level_index)
            )
        assert session.total_rebuffer_s == pytest.approx(
            sum(r.rebuffer_s for r in session.records)
        )
        assert session.startup_delay_s >= 0.0

    @given(seed=st.integers(0, 10_000))
    def test_wall_time_conservation(self, seed):
        """Total wall time = downloads + waits (+ startup extras)."""
        manifest = short_test_video(num_chunks=6, num_levels=3)
        rng = random.Random(seed)
        trace = Trace.from_samples(
            [rng.uniform(200.0, 3000.0) for _ in range(20)], 4.0
        )
        session = simulate_session(
            self.RandomAlgorithm(seed + 1), trace, manifest
        )
        expected = sum(r.download_time_s + r.waited_s for r in session.records)
        assert session.total_wall_time_s == pytest.approx(expected, rel=1e-9)


class TestAlgorithmContract:
    class Rogue(ABRAlgorithm):
        name = "rogue"

        def select_bitrate(self, observation):
            return 99

    def test_invalid_level_rejected(self, envivio_manifest, constant_trace):
        with pytest.raises(ValueError, match="invalid level"):
            simulate_session(self.Rogue(), constant_trace, envivio_manifest)

    class NegativeWait(ABRAlgorithm):
        name = "negative-wait"

        def select_bitrate(self, observation):
            return 0

        def select_startup_wait(self, observation):
            return -1.0

    def test_negative_startup_wait_rejected(self, envivio_manifest, constant_trace):
        with pytest.raises(ValueError, match="startup wait"):
            simulate_session(self.NegativeWait(), constant_trace, envivio_manifest)


class TestSessionResult:
    def test_qoe_reweighting(self, envivio_manifest, constant_trace):
        from repro.qoe import QoEWeights

        session = simulate_session(
            ConstantLevelAlgorithm(0), constant_trace, envivio_manifest
        )
        balanced = session.qoe()
        harsh = session.qoe(weights=QoEWeights.avoid_rebuffering())
        assert harsh.total <= balanced.total

    def test_qoe_excluding_startup(self, envivio_manifest, constant_trace):
        session = simulate_session(
            ConstantLevelAlgorithm(0), constant_trace, envivio_manifest
        )
        with_s = session.qoe(include_startup=True)
        without = session.qoe(include_startup=False)
        assert without.total == pytest.approx(
            with_s.total + 3000.0 * session.startup_delay_s
        )

    def test_level_indices_and_bitrates(self, envivio_manifest, constant_trace):
        plan = [i % 5 for i in range(65)]
        session = simulate_session(
            FixedPlanAlgorithm(plan), constant_trace, envivio_manifest
        )
        assert session.level_indices == plan
        assert session.bitrates_kbps[:5] == [350.0, 600.0, 1000.0, 2000.0, 3000.0]


class TestThroughputFloor:
    """Every DownloadResult must respect the prediction layer's
    observation floor — a blackout chunk measures ``OBSERVATION_FLOOR_KBPS``,
    never zero (which the DownloadResult constructor rejects) and never a
    bare division artifact below the floor."""

    def test_blackout_chunks_floored_not_rejected(self, envivio_manifest):
        from repro.prediction import OBSERVATION_FLOOR_KBPS

        # 1 s of healthy link, then a dead link for the rest of the
        # (enormous) trace window: chunks landing in the blackout take
        # nearly the whole 2e6 s pass, so their measured throughput is
        # far below the floor and must be clamped up to it.
        trace = Trace([0.0, 1.0], [5000.0, 0.0], duration_s=2_000_000.0)
        session = simulate_session(
            ConstantLevelAlgorithm(0), trace, envivio_manifest
        )
        assert len(session.records) == 65
        throughputs = [r.throughput_kbps for r in session.records]
        assert all(t >= OBSERVATION_FLOOR_KBPS for t in throughputs)
        # The blackout chunks really did hit the floor (the regression
        # was an unclamped size/time ratio, not a merely slow chunk).
        assert min(throughputs) == OBSERVATION_FLOOR_KBPS
        assert max(throughputs) > 1000.0  # the healthy first chunk
        # (The emulation backend applies the identical clamp at its
        # DownloadResult construction; driving its discrete-event engine
        # through a megasecond blackout would blow the event budget, so
        # the sim path carries the regression test for both.)
