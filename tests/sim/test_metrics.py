"""Session metrics extraction (the Figures 9/10 quantities)."""

from __future__ import annotations

import pytest

from repro.abr import FixedPlanAlgorithm
from repro.sim import SessionMetrics, simulate_session
from repro.traces import Trace
from repro.video import envivio


@pytest.fixture
def session(envivio_manifest):
    plan = [0] * 65
    plan[10] = 2  # two switches: 350->1000->350
    trace = Trace.constant(2500.0, 600.0)
    return simulate_session(FixedPlanAlgorithm(plan), trace, envivio_manifest)


class TestSessionMetrics:
    def test_average_bitrate(self, session):
        m = session.metrics()
        expected = (64 * 350.0 + 1000.0) / 65
        assert m.average_bitrate_kbps == pytest.approx(expected)

    def test_average_bitrate_change_per_chunk(self, session):
        """The paper's 'kbps/chunk' metric: total variation / (K-1)."""
        m = session.metrics()
        assert m.average_bitrate_change_kbps == pytest.approx(2 * 650.0 / 64)

    def test_switch_count(self, session):
        assert session.metrics().num_switches == 2

    def test_rebuffer_fields(self, session):
        m = session.metrics()
        assert m.total_rebuffer_s == pytest.approx(0.0)
        assert m.num_rebuffer_events == 0

    def test_throughput_average(self, session):
        assert session.metrics().average_throughput_kbps == pytest.approx(2500.0)

    def test_describe_is_single_line(self, session):
        text = session.metrics().describe()
        assert "\n" not in text
        assert "avg bitrate" in text

    def test_single_chunk_session(self):
        manifest = envivio().truncated(1)
        trace = Trace.constant(1000.0, 60.0)
        session = simulate_session(FixedPlanAlgorithm([0]), trace, manifest)
        m = session.metrics()
        assert m.average_bitrate_change_kbps == 0.0
        assert m.num_chunks == 1
