"""Property tests for startup policies across random traces."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr import ConstantLevelAlgorithm
from repro.sim import StartupPolicy, simulate_session
from repro.traces import Trace
from repro.video import short_test_video


@given(
    bandwidths=st.lists(st.floats(100.0, 4000.0), min_size=2, max_size=20),
    delay=st.floats(0.5, 12.0),
    level=st.integers(0, 2),
)
@settings(max_examples=40)
def test_fixed_policy_honours_delay_exactly(bandwidths, delay, level):
    manifest = short_test_video(num_chunks=8, num_levels=3)
    trace = Trace.from_samples(bandwidths, interval_s=3.0)
    session = simulate_session(
        ConstantLevelAlgorithm(level), trace, manifest,
        startup_policy=StartupPolicy.FIXED, fixed_startup_delay_s=delay,
    )
    assert session.startup_delay_s == pytest.approx(delay)


@given(
    bandwidths=st.lists(st.floats(100.0, 4000.0), min_size=2, max_size=20),
    level=st.integers(0, 2),
)
@settings(max_examples=40)
def test_first_chunk_policy_startup_is_first_download(bandwidths, level):
    manifest = short_test_video(num_chunks=8, num_levels=3)
    trace = Trace.from_samples(bandwidths, interval_s=3.0)
    session = simulate_session(ConstantLevelAlgorithm(level), trace, manifest)
    assert session.startup_delay_s == pytest.approx(
        session.records[0].download_time_s
    )


@given(
    bandwidths=st.lists(st.floats(100.0, 4000.0), min_size=2, max_size=15),
    small=st.floats(0.5, 4.0),
    extra=st.floats(0.5, 8.0),
)
@settings(max_examples=30)
def test_more_preroll_never_increases_rebuffering(bandwidths, small, extra):
    """Figure 11d's mechanism as a universal property: a strictly larger
    fixed startup delay never increases total rebuffering (same trace,
    same constant plan)."""
    manifest = short_test_video(num_chunks=10, num_levels=3)
    trace = Trace.from_samples(bandwidths, interval_s=3.0)
    short = simulate_session(
        ConstantLevelAlgorithm(1), trace, manifest,
        startup_policy=StartupPolicy.FIXED, fixed_startup_delay_s=small,
    )
    long = simulate_session(
        ConstantLevelAlgorithm(1), trace, manifest,
        startup_policy=StartupPolicy.FIXED, fixed_startup_delay_s=small + extra,
    )
    assert long.total_rebuffer_s <= short.total_rebuffer_s + 1e-9
