"""Live-streaming sessions: publish gating, edge waits, latency QoE.

The keystone conformance check: a live session whose backlog covers the
whole manifest has every chunk published at ``t = 0``, so it must
reproduce the on-demand simulator *bit for bit* — same records, same
rebuffer, same startup.  The live machinery is pure addition, never a
reinterpretation of Eqs. (1)-(4).
"""

from __future__ import annotations

import pytest

from repro.abr.base import ABRAlgorithm, PlayerObservation
from repro.abr.registry import create
from repro.sim.live import LiveConfig, run_live_session
from repro.sim.session import simulate_session
from repro.traces import FCCTraceGenerator, Trace
from repro.video.presets import envivio


class SpyAlgorithm(ABRAlgorithm):
    """Lowest level always; records every observation it was shown."""

    name = "spy"

    def __init__(self) -> None:
        self.observations = []

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self.observations.append(observation)
        return 0


def fast_trace(duration_s=600.0):
    return Trace.constant(50_000.0, duration_s, name="fast")


class TestLiveConfig:
    def test_publish_schedule(self):
        live = LiveConfig(backlog_chunks=3)
        # the DVR backlog pre-exists; the rest arrive one interval apart
        assert [live.publish_time_s(k, 4.0) for k in range(6)] == [
            0.0, 0.0, 0.0, 4.0, 8.0, 12.0,
        ]

    def test_interval_defaults_to_chunk_duration(self):
        manifest = envivio()
        assert LiveConfig().publish_interval_s(manifest) == manifest.chunk_duration_s
        assert LiveConfig(interval_s=2.5).publish_interval_s(manifest) == 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            LiveConfig(interval_s=0.0)
        with pytest.raises(ValueError):
            LiveConfig(backlog_chunks=0)
        with pytest.raises(ValueError):
            LiveConfig(latency_target_s=-1.0)
        with pytest.raises(ValueError):
            LiveConfig(latency_weight=-1.0)


class TestLiveSession:
    def test_full_backlog_reproduces_vod_exactly(self):
        """Everything published at t=0 -> the on-demand session, bit for
        bit."""
        trace = FCCTraceGenerator(seed=3).generate_many(1, 300.0)[0]
        manifest = envivio()
        vod = simulate_session(create("fastmpc"), trace, manifest)
        live = run_live_session(
            create("fastmpc"),
            trace,
            manifest,
            live=LiveConfig(backlog_chunks=manifest.num_chunks),
        )
        assert live.session.records == vod.records
        assert live.session.total_rebuffer_s == vod.total_rebuffer_s
        assert live.session.startup_delay_s == vod.startup_delay_s
        assert live.edge_wait_s == 0.0
        assert live.edge_rebuffer_s == 0.0

    def test_bounded_lookahead_exposed_to_decisions(self):
        """Decisions see the published prefix, which gates lookahead
        early in the session and only ever grows."""
        spy = SpyAlgorithm()
        manifest = envivio()
        run_live_session(spy, fast_trace(), manifest)
        available = [o.available_chunks for o in spy.observations]
        assert len(available) == manifest.num_chunks
        for k, n in enumerate(available):
            assert k + 1 <= n <= manifest.num_chunks  # requested => published
        assert available == sorted(available)
        assert available[0] < manifest.num_chunks  # lookahead really bounded

    def test_fast_link_waits_at_the_live_edge(self):
        """A link much faster than the encoder drains the backlog and
        then idles one interval per chunk; the wait is accounted as the
        off time that feeds the gap-corrected predictors."""
        live = run_live_session(SpyAlgorithm(), fast_trace(), envivio())
        assert live.edge_wait_s > 0.0
        assert any(r.idle_before_s > 0.0 for r in live.session.records)
        # at the edge, fetch latency stays bounded by roughly an interval
        assert max(live.latencies_s) <= 2.0 * envivio().chunk_duration_s

    def test_latency_accounting(self):
        """qoe_total is exactly Eq. 5 minus the latency penalty, and a
        zero target makes the penalty weight * mean latency."""
        config = LiveConfig(latency_target_s=0.0, latency_weight=10.0)
        live = run_live_session(
            SpyAlgorithm(), fast_trace(), envivio(), live=config
        )
        assert live.mean_latency_s() > 0.0
        assert live.latency_penalty() == 10.0 * (
            sum(live.latencies_s) / len(live.latencies_s)
        )
        assert live.qoe_total() == live.session.qoe().total - live.latency_penalty()

    def test_high_target_zeroes_the_penalty(self):
        config = LiveConfig(latency_target_s=1e6)
        live = run_live_session(
            SpyAlgorithm(), fast_trace(), envivio(), live=config
        )
        assert live.latency_penalty() == 0.0
        assert live.qoe_total() == live.session.qoe().total

    def test_mpc_controller_clips_horizon_at_the_live_edge(self):
        """MPC plans over the published prefix only — the session runs
        to completion with valid levels despite the bounded lookahead."""
        trace = FCCTraceGenerator(seed=5).generate_many(1, 300.0)[0]
        manifest = envivio()
        live = run_live_session(create("mpc"), trace, manifest)
        assert len(live.session.records) == manifest.num_chunks
        for record in live.session.records:
            assert 0 <= record.level_index < len(manifest.ladder)

    def test_gap_predictor_sees_edge_idle(self):
        """Edge waits land in idle_before_s, so the gap-corrected
        predictor's on/off diagnostic is non-zero for a live session."""
        algorithm = create("fastmpc-gap")
        run_live_session(algorithm, fast_trace(), envivio())
        assert algorithm.predictor.idle_gap_fraction() > 0.0

    def test_slow_publisher_rebuffers_at_the_edge(self):
        """An encoder slower than real time starves playback: the edge
        wait itself drains the buffer and rebuffers, charged to the
        schedule, not the network."""
        manifest = envivio()
        config = LiveConfig(
            interval_s=2.0 * manifest.chunk_duration_s, backlog_chunks=1
        )
        live = run_live_session(
            SpyAlgorithm(), fast_trace(2000.0), manifest, live=config
        )
        assert live.edge_rebuffer_s > 0.0
        assert live.session.total_rebuffer_s >= live.edge_rebuffer_s
