"""Request pacing — the chunk-scheduling generalisation of Eq. (4)."""

from __future__ import annotations

import pytest

from repro.abr import ConstantLevelAlgorithm, SessionConfig
from repro.emulation import NetworkProfile, emulate_session
from repro.sim import simulate_session
from repro.traces import Trace
from repro.video import envivio

IDEAL = NetworkProfile(
    rtt_s=0.0, header_kilobits=0.0, server_processing_delay_s=0.0,
    slow_start=False,
)


class TestPacingConfig:
    def test_default_threshold_is_bmax(self):
        config = SessionConfig(buffer_capacity_s=30.0)
        assert config.pacing_threshold_s == 30.0

    def test_target_clamps_at_bmax(self):
        config = SessionConfig(buffer_capacity_s=30.0,
                               request_target_buffer_s=45.0)
        assert config.pacing_threshold_s == 30.0

    def test_target_below_bmax(self):
        config = SessionConfig(request_target_buffer_s=12.0)
        assert config.pacing_threshold_s == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(request_target_buffer_s=0.0)


class TestPacingBehaviour:
    def test_buffer_settles_at_target(self, envivio_manifest):
        trace = Trace.constant(20_000.0, 600.0)
        config = SessionConfig(request_target_buffer_s=12.0)
        session = simulate_session(
            ConstantLevelAlgorithm(0), trace, envivio_manifest, config
        )
        # After the fill phase, every post-wait buffer sits at the target.
        settled = [r.buffer_after_s for r in session.records[10:]]
        assert max(settled) <= 12.0 + 1e-9
        assert sum(1 for r in session.records if r.waited_s > 0) > 10

    def test_default_behaviour_unchanged(self, envivio_manifest):
        """No target -> exactly the paper's Eq. (4) (buffer fills to Bmax)."""
        trace = Trace.constant(20_000.0, 600.0)
        session = simulate_session(
            ConstantLevelAlgorithm(0), trace, envivio_manifest, SessionConfig()
        )
        assert max(r.buffer_after_s for r in session.records) == pytest.approx(30.0)

    def test_pacing_costs_no_qoe_on_stable_links(self, envivio_manifest):
        """Holding less buffer is free when throughput never dips."""
        trace = Trace.constant(5000.0, 600.0)
        paced = simulate_session(
            ConstantLevelAlgorithm(2), trace, envivio_manifest,
            SessionConfig(request_target_buffer_s=10.0),
        )
        unpaced = simulate_session(
            ConstantLevelAlgorithm(2), trace, envivio_manifest, SessionConfig()
        )
        assert paced.qoe().total == pytest.approx(unpaced.qoe().total)

    def test_pacing_increases_stall_risk_on_dips(self, envivio_manifest):
        """A small held buffer is exactly why Figure 11c's small-Bmax
        points suffer: a throughput trough drains it."""
        trace = Trace([0.0, 60.0, 90.0], [4000.0, 150.0, 4000.0],
                      duration_s=600.0)
        paced = simulate_session(
            ConstantLevelAlgorithm(2), trace, envivio_manifest,
            SessionConfig(request_target_buffer_s=6.0),
        )
        unpaced = simulate_session(
            ConstantLevelAlgorithm(2), trace, envivio_manifest, SessionConfig()
        )
        assert paced.total_rebuffer_s >= unpaced.total_rebuffer_s

    def test_backends_agree_under_pacing(self, envivio_manifest):
        trace = Trace([0.0, 50.0], [3000.0, 900.0], duration_s=400.0)
        config = SessionConfig(request_target_buffer_s=14.0)
        sim = simulate_session(
            ConstantLevelAlgorithm(1), trace, envivio_manifest, config
        )
        emu = emulate_session(
            ConstantLevelAlgorithm(1), trace, envivio_manifest, config,
            network=IDEAL,
        )
        assert emu.total_rebuffer_s == pytest.approx(sim.total_rebuffer_s, abs=1e-6)
        assert emu.total_wall_time_s == pytest.approx(sim.total_wall_time_s, abs=1e-6)
        for a, b in zip(emu.records, sim.records):
            assert a.buffer_after_s == pytest.approx(b.buffer_after_s, abs=1e-8)
            assert a.waited_s == pytest.approx(b.waited_s, abs=1e-8)
