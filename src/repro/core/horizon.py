"""Exact solver for the MPC horizon problem ``QOE_MAX_STEADY``.

Section 4.2, step "Optimize": given buffer occupancy ``B_k``, previous
bitrate ``R_{k-1}`` and throughput predictions over the next ``N`` chunks,
find the bitrate plan maximising the QoE of chunks ``k .. k+N-1`` under the
buffer dynamics of Eqs. (1)–(4).  The paper solves these instances with
CPLEX offline; because the problem is a small discrete program
(``|R|^N`` plans — 3125 for the default 5 levels x horizon 5), exhaustive
enumeration returns the identical argmax.  We provide:

* :func:`solve_horizon` — vectorised NumPy enumeration (the production
  path; all plans evaluated simultaneously),
* :func:`solve_horizon_reference` — a straightforward recursive
  implementation used as the ground truth in property tests, and
* :func:`solve_startup` — the startup variant ``QOE_MAX`` that also
  optimises the startup delay ``T_s`` (the paper's ``f_stmpc``), using the
  formulation's ``B_1 = T_s`` equivalence: delaying playback by ``T_s``
  seconds is exactly like starting with ``T_s`` seconds of buffer, at a
  price of ``mu_s * T_s``.

Ties between plans are broken lexicographically (lowest level indices
first), making both solvers deterministic and mutually consistent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from .npcompat import HAVE_NUMPY, np
from ..qoe import QoEWeights
from ..video.quality import QualityFunction

__all__ = [
    "HorizonProblem",
    "HorizonSolution",
    "solve_horizon",
    "solve_horizon_enumerate",
    "solve_horizon_dp",
    "solve_horizon_reference",
    "solve_startup",
]

# Above this many plans the enumerating solver hands over to the exact
# Pareto-pruned DP (identical optimum, different tie-breaking).
_ENUMERATION_LIMIT = 100_000


@dataclass(frozen=True)
class HorizonProblem:
    """One instance of ``QOE_MAX_STEADY(k .. k+N-1)``.

    Attributes
    ----------
    buffer_level_s:
        ``B_k`` at the decision instant.
    prev_quality:
        ``q(R_{k-1})`` — or None at the session's first chunk, in which
        case the first chunk incurs no switching penalty.
    chunk_sizes_kilobits:
        ``sizes[i][j]`` = size of horizon chunk ``i`` at ladder level ``j``
        (rows may differ under VBR).
    quality_values:
        ``q(R_j)`` per ladder level (shared by all horizon chunks).
    predicted_kbps:
        Predicted average throughput for each horizon chunk, length ``N``.
    chunk_duration_s / buffer_capacity_s:
        ``L`` and ``Bmax``.
    weights:
        The QoE weight vector (``mu_s`` unused in the steady problem).
    """

    buffer_level_s: float
    prev_quality: Optional[float]
    chunk_sizes_kilobits: Tuple[Tuple[float, ...], ...]
    quality_values: Tuple[float, ...]
    predicted_kbps: Tuple[float, ...]
    chunk_duration_s: float
    buffer_capacity_s: float
    weights: QoEWeights

    def __post_init__(self) -> None:
        n = len(self.chunk_sizes_kilobits)
        if n == 0:
            raise ValueError("horizon must contain at least one chunk")
        if len(self.predicted_kbps) != n:
            raise ValueError(
                f"{len(self.predicted_kbps)} predictions for {n} horizon chunks"
            )
        levels = len(self.quality_values)
        if levels == 0:
            raise ValueError("need at least one ladder level")
        for row in self.chunk_sizes_kilobits:
            if len(row) != levels:
                raise ValueError("chunk size rows must match the ladder size")
        if any(c <= 0 for c in self.predicted_kbps):
            raise ValueError("predicted throughput must be positive")
        if self.buffer_level_s < 0:
            raise ValueError("buffer level must be >= 0")
        if self.chunk_duration_s <= 0 or self.buffer_capacity_s <= 0:
            raise ValueError("L and Bmax must be positive")

    @property
    def horizon(self) -> int:
        return len(self.chunk_sizes_kilobits)

    @property
    def num_levels(self) -> int:
        return len(self.quality_values)


@dataclass(frozen=True)
class HorizonSolution:
    """The optimal plan and its diagnostics."""

    plan: Tuple[int, ...]  # level index per horizon chunk
    qoe: float  # objective value of the plan
    rebuffer_s: float  # predicted stall time under the plan
    final_buffer_s: float  # predicted buffer at horizon end
    startup_wait_s: float = 0.0  # only set by solve_startup

    @property
    def first_level(self) -> int:
        """The decision MPC actually applies (receding horizon)."""
        return self.plan[0]


@lru_cache(maxsize=64)
def _plan_matrix(num_levels: int, horizon: int):
    """All ``num_levels**horizon`` plans, lexicographic row order.

    The returned array is shared by every caller (it is memoised), so it
    is marked read-only — a consumer mutating it in place would silently
    corrupt every other caller's plan space.  Without NumPy the plans
    come back as an (immutable) tuple of tuples in the same order.
    """
    if num_levels**horizon > 2_000_000:
        raise ValueError(
            f"{num_levels}^{horizon} plans is beyond exhaustive enumeration; "
            "reduce the horizon or ladder size"
        )
    ranges = [range(num_levels)] * horizon
    if not HAVE_NUMPY:
        return tuple(itertools.product(*ranges))
    plans = np.array(list(itertools.product(*ranges)), dtype=np.int64)
    plans.setflags(write=False)
    return plans


def solve_horizon(
    problem: HorizonProblem, evaluator: Optional[object] = None
) -> HorizonSolution:
    """Exact solution of ``QOE_MAX_STEADY``.

    Dispatches on instance size: small plan spaces use vectorised
    exhaustive enumeration (deterministic lexicographic tie-break); large
    ones (long horizons or fine ladders) use the exact Pareto-pruned DP,
    which returns the same optimal QoE but may pick a different optimal
    plan when several are tied.

    ``evaluator`` optionally carries a :class:`repro.core.kernel.
    _BatchEvaluator` whose scratch buffers are reused across calls (the
    per-session state held by the MPC controllers).
    """
    if problem.num_levels**problem.horizon > _ENUMERATION_LIMIT:
        return solve_horizon_dp(problem)
    return solve_horizon_enumerate(problem, evaluator)


def solve_horizon_enumerate(
    problem: HorizonProblem, evaluator: Optional[object] = None
) -> HorizonSolution:
    """Exact solution by vectorised exhaustive enumeration.

    A thin wrapper over the batched kernel (the single implementation of
    the plan roll-out shared by all consumers) for one instance.
    """
    from .kernel import solve_horizon_batch

    return solve_horizon_batch([problem], evaluator=evaluator)[0]


def solve_horizon_reference(problem: HorizonProblem) -> HorizonSolution:
    """Plain-Python exhaustive search — ground truth for property tests."""
    lam = problem.weights.switching
    mu = problem.weights.rebuffering
    L = problem.chunk_duration_s
    bmax = problem.buffer_capacity_s
    quality = problem.quality_values
    sizes = problem.chunk_sizes_kilobits
    preds = problem.predicted_kbps

    best_plan: Optional[Tuple[int, ...]] = None
    best = (-float("inf"), 0.0, 0.0)
    for plan in itertools.product(range(problem.num_levels), repeat=problem.horizon):
        buffer_s = problem.buffer_level_s
        qoe = 0.0
        rebuf_total = 0.0
        prev_q = problem.prev_quality
        for i, level in enumerate(plan):
            download_time = sizes[i][level] / preds[i]
            rebuffer = max(download_time - buffer_s, 0.0)
            buffer_s = max(buffer_s - download_time, 0.0) + L
            buffer_s = min(buffer_s, bmax)
            q_now = quality[level]
            qoe += q_now - mu * rebuffer
            rebuf_total += rebuffer
            if prev_q is not None:
                qoe -= lam * abs(q_now - prev_q)
            prev_q = q_now
        if qoe > best[0] + 1e-12:
            best = (qoe, rebuf_total, buffer_s)
            best_plan = plan
    assert best_plan is not None
    return HorizonSolution(
        plan=best_plan,
        qoe=best[0],
        rebuffer_s=best[1],
        final_buffer_s=best[2],
    )


def _pareto_prune(nodes: List[tuple]) -> List[tuple]:
    """Keep only non-dominated (buffer, qoe) nodes.

    A node dominates another at the same ladder level when it has both
    more (or equal) buffer and more (or equal) accumulated QoE: the
    dynamics are monotone in buffer (more buffer can only reduce future
    rebuffering), so the dominated node can never catch up.
    """
    nodes.sort(key=lambda n: (-n[0], -n[1]))
    out: List[tuple] = []
    best_qoe = -float("inf")
    for node in nodes:
        if node[1] > best_qoe + 1e-12:
            out.append(node)
            best_qoe = node[1]
    return out


def solve_horizon_dp(problem: HorizonProblem) -> HorizonSolution:
    """Exact solution by dynamic programming with Pareto pruning.

    State after ``i`` horizon steps is (current level, buffer, accumulated
    QoE); within each level only the (buffer, QoE) Pareto frontier is
    kept.  The buffer clamps at 0 and ``Bmax`` collapse the frontier to a
    handful of nodes in practice, so long horizons (Figure 12b sweeps up
    to 9 chunks — ~2M raw plans) solve in milliseconds while remaining
    exact.
    """
    lam = problem.weights.switching
    mu = problem.weights.rebuffering
    L = problem.chunk_duration_s
    bmax = problem.buffer_capacity_s
    quality = problem.quality_values
    sizes = problem.chunk_sizes_kilobits
    preds = problem.predicted_kbps
    levels = range(problem.num_levels)

    def step(buffer_s, qoe, rebuf, prev_q, level, i):
        dt = sizes[i][level] / preds[i]
        stall = max(dt - buffer_s, 0.0)
        new_buffer = min(max(buffer_s - dt, 0.0) + L, bmax)
        q_now = quality[level]
        new_qoe = qoe + q_now - mu * stall
        if prev_q is not None:
            new_qoe -= lam * abs(q_now - prev_q)
        return new_buffer, new_qoe, rebuf + stall

    # Node: (buffer, qoe, rebuffer_total, plan)
    frontier = {}
    for level in levels:
        node = step(problem.buffer_level_s, 0.0, 0.0, problem.prev_quality, level, 0)
        frontier.setdefault(level, []).append((*node, (level,)))
    frontier = {lv: _pareto_prune(nodes) for lv, nodes in frontier.items()}

    for i in range(1, problem.horizon):
        incoming: dict = {}
        for prev_level, nodes in frontier.items():
            prev_q = quality[prev_level]
            for buffer_s, qoe, rebuf, plan in nodes:
                for level in levels:
                    node = step(buffer_s, qoe, rebuf, prev_q, level, i)
                    incoming.setdefault(level, []).append((*node, plan + (level,)))
        frontier = {lv: _pareto_prune(nodes) for lv, nodes in incoming.items()}

    best = None
    for nodes in frontier.values():
        for node in nodes:
            if best is None or node[1] > best[1] + 1e-12:
                best = node
    assert best is not None
    return HorizonSolution(
        plan=best[3], qoe=best[1], rebuffer_s=best[2], final_buffer_s=best[0]
    )


def solve_startup(
    problem: HorizonProblem,
    max_wait_s: Optional[float] = None,
    wait_step_s: float = 0.25,
    evaluator: Optional[object] = None,
) -> HorizonSolution:
    """The startup problem ``QOE_MAX`` — jointly optimise plan and ``T_s``.

    Uses the formulation's ``B_1 = T_s`` equivalence (Eq. 10): each
    candidate wait ``T_s`` is evaluated as the steady problem with initial
    buffer ``B_k + T_s`` and an added ``-mu_s * T_s`` penalty; the best
    (plan, T_s) pair wins.  The wait grid spans ``[0, max_wait_s]`` —
    by default up to the remaining buffer headroom, since waiting longer
    than ``Bmax`` of accumulated content is never useful.

    The whole wait grid is evaluated as *one* batched-kernel call — the
    grid points differ only in starting buffer, so they stack into a
    single ``(grid, plans)`` computation instead of ``steps + 1``
    independent solves.  Results (QoE values and the smallest-wait /
    lexicographic tie-break) are identical to the per-point loop.
    """
    if wait_step_s <= 0:
        raise ValueError("wait step must be positive")
    if max_wait_s is None:
        max_wait_s = max(problem.buffer_capacity_s - problem.buffer_level_s, 0.0)
    if max_wait_s < 0:
        raise ValueError("max wait must be >= 0")
    mu_s = problem.weights.startup
    steps = int(round(max_wait_s / wait_step_s))
    if HAVE_NUMPY:
        waits = np.minimum(np.arange(steps + 1) * wait_step_s, max_wait_s)
    else:
        waits = [min(i * wait_step_s, max_wait_s) for i in range(steps + 1)]

    best: Optional[HorizonSolution] = None
    if problem.num_levels**problem.horizon > _ENUMERATION_LIMIT:
        # DP regime (huge plan spaces): per-point exact solves.
        for wait in waits:
            solution = solve_horizon_dp(
                replace(problem, buffer_level_s=problem.buffer_level_s + float(wait))
            )
            adjusted = solution.qoe - mu_s * float(wait)
            if best is None or adjusted > best.qoe + 1e-12:
                best = HorizonSolution(
                    plan=solution.plan,
                    qoe=adjusted,
                    rebuffer_s=solution.rebuffer_s,
                    final_buffer_s=solution.final_buffer_s,
                    startup_wait_s=float(wait),
                )
        assert best is not None
        return best

    from .kernel import _BatchEvaluator, _solve_rows

    plans = _plan_matrix(problem.num_levels, problem.horizon)
    if HAVE_NUMPY:
        if evaluator is None:
            evaluator = _BatchEvaluator()
        sizes = np.asarray(problem.chunk_sizes_kilobits, dtype=np.float64)
        preds = np.asarray(problem.predicted_kbps, dtype=np.float64)
        quality = np.asarray(problem.quality_values, dtype=np.float64)
        buffer0 = problem.buffer_level_s + waits
        prev = (
            None
            if problem.prev_quality is None
            else np.full(waits.shape, problem.prev_quality)
        )
    else:
        evaluator = None
        sizes = problem.chunk_sizes_kilobits
        preds = problem.predicted_kbps
        quality = problem.quality_values
        buffer0 = [problem.buffer_level_s + w for w in waits]
        prev = (
            None
            if problem.prev_quality is None
            else [problem.prev_quality] * len(waits)
        )
    best_idx, qoe, rebuf, fin = _solve_rows(
        evaluator, plans, sizes, preds, buffer0, prev, quality,
        problem.weights.switching, problem.weights.rebuffering,
        problem.chunk_duration_s, problem.buffer_capacity_s,
    )
    if HAVE_NUMPY:
        adjusted = qoe - mu_s * waits
    else:
        adjusted = [q - mu_s * w for q, w in zip(qoe, waits)]
    for j in range(len(waits)):
        if best is None or adjusted[j] > best.qoe + 1e-12:
            best = HorizonSolution(
                plan=tuple(int(x) for x in plans[best_idx[j]]),
                qoe=float(adjusted[j]),
                rebuffer_s=float(rebuf[j]),
                final_buffer_s=float(fin[j]),
                startup_wait_s=float(waits[j]),
            )
    assert best is not None
    return best
