"""MPC bitrate adaptation — Algorithm 1 of the paper.

At each chunk boundary the controller (1) *predicts* throughput for the
next ``N`` chunks, (2) *optimizes* the QoE of the horizon exactly
(:mod:`repro.core.horizon`), and (3) *applies* only the first bitrate of
the optimal plan before the horizon slides forward.  During the startup
phase the controller solves the ``QOE_MAX`` variant that jointly optimises
the startup delay ``T_s`` (the paper's ``f_stmpc``).

:class:`MPCController` is the basic algorithm ("FastMPC" semantics with an
online solver; the table-driven implementation lives in
:mod:`repro.core.fastmpc`).  ``MPC-OPT`` — exact MPC with perfect
prediction, the paper's simulation upper reference — is this controller
with an :class:`~repro.prediction.oracle.OraclePredictor` plugged in.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Tuple

from ..abr.base import ABRAlgorithm, DownloadResult, PlayerObservation
from ..obs.events import SolverCall
from ..prediction.base import ThroughputPredictor
from ..prediction.errors import PredictionErrorTracker
from ..prediction.harmonic import HarmonicMeanPredictor
from ..prediction.oracle import OraclePredictor
from .horizon import HorizonProblem, HorizonSolution, solve_horizon, solve_startup
from .kernel import _BatchEvaluator

__all__ = ["MPCController", "make_mpc_opt", "DEFAULT_HORIZON"]

DEFAULT_HORIZON = 5  # the paper's look-ahead h = 5 (Section 7.1.2)


class MPCController(ABRAlgorithm):
    """Receding-horizon QoE maximisation (the paper's ``f_mpc``).

    Parameters
    ----------
    predictor:
        Throughput predictor; defaults to the paper's harmonic mean of the
        last 5 chunks.
    horizon:
        Look-ahead length ``N`` in chunks (paper default 5; Figure 12b
        studies 2–9).
    optimize_startup:
        When True (default), pre-playback decisions solve the startup
        variant and the controller may ask the player to delay playback.
    error_window:
        Window of the embedded prediction-error tracker (used by the
        RobustMPC subclass and for session statistics).
    """

    name = "mpc"

    def __init__(
        self,
        predictor: Optional[ThroughputPredictor] = None,
        horizon: int = DEFAULT_HORIZON,
        optimize_startup: bool = True,
        error_window: int = 5,
        name: Optional[str] = None,
    ) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.predictor = predictor if predictor is not None else HarmonicMeanPredictor()
        self.horizon = horizon
        self.optimize_startup = optimize_startup
        self.error_tracker = PredictionErrorTracker(window=error_window)
        if name:
            self.name = name
        self._pending_raw_prediction: Optional[float] = None
        self._startup_wait_s = 0.0
        self._evaluator: Optional[_BatchEvaluator] = None

    # ------------------------------------------------------------------
    # ABRAlgorithm interface
    # ------------------------------------------------------------------

    def prepare(self, manifest, config) -> None:
        super().prepare(manifest, config)
        self.error_tracker.reset()
        self._pending_raw_prediction = None
        self._startup_wait_s = 0.0
        # Per-session scratch for the horizon kernel: every per-chunk
        # solve of this session reuses the same arrays instead of
        # allocating fresh ones (the solves all share one shape).
        self._evaluator = _BatchEvaluator()
        self._quality_values = tuple(
            config.quality(rate) for rate in manifest.ladder
        )

    def predictors(self) -> Iterable[ThroughputPredictor]:
        return (self.predictor,)

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self._require_prepared()
        solution = self._solve(observation)
        return solution.first_level

    def on_download_complete(self, result: DownloadResult) -> None:
        if self._pending_raw_prediction is not None:
            self.error_tracker.record(
                self._pending_raw_prediction,
                result.throughput_kbps,
                duration_s=result.download_time_s,
                idle_s=result.idle_before_s,
                stall_s=result.stalled_s,
            )
            self._pending_raw_prediction = None
        super().on_download_complete(result)

    def select_startup_wait(self, observation: PlayerObservation) -> float:
        return self._startup_wait_s

    # ------------------------------------------------------------------
    # The Predict / Optimize steps
    # ------------------------------------------------------------------

    def _effective_horizon(
        self, chunk_index: int, available_chunks: Optional[int] = None
    ) -> int:
        """Clip the look-ahead at the end of the video — and, in a live
        session, at the newest chunk published so far (the controller
        cannot plan over chunks that do not exist yet)."""
        last = self.manifest.num_chunks
        if available_chunks is not None:
            last = min(last, available_chunks)
        remaining = last - chunk_index
        return max(1, min(self.horizon, remaining))

    def _transform_predictions(self, raw_kbps: List[float]) -> List[float]:
        """Hook for robustification; the basic MPC uses raw predictions."""
        return raw_kbps

    def _build_problem(
        self, observation: PlayerObservation, predictions_kbps: List[float]
    ) -> HorizonProblem:
        k = observation.chunk_index
        n = len(predictions_kbps)
        sizes = tuple(
            tuple(
                self.manifest.chunk_size_kilobits(k + i, j)
                for j in range(len(self.manifest.ladder))
            )
            for i in range(n)
        )
        prev_quality = (
            None
            if observation.prev_level_index is None
            else self._quality_values[observation.prev_level_index]
        )
        return HorizonProblem(
            buffer_level_s=observation.buffer_level_s,
            prev_quality=prev_quality,
            chunk_sizes_kilobits=sizes,
            quality_values=self._quality_values,
            predicted_kbps=tuple(predictions_kbps),
            chunk_duration_s=self.manifest.chunk_duration_s,
            buffer_capacity_s=self.config.buffer_capacity_s,
            weights=self.config.weights,
        )

    def _solve(self, observation: PlayerObservation) -> HorizonSolution:
        n = self._effective_horizon(
            observation.chunk_index, observation.available_chunks
        )
        raw = self.predictor.predict(n)
        self._pending_raw_prediction = raw[0]
        predictions = self._transform_predictions(list(raw))
        problem = self._build_problem(observation, predictions)
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if tracing:
            _t0 = time.perf_counter()
        if self.optimize_startup and not observation.playback_started:
            solution = solve_startup(problem, evaluator=self._evaluator)
            self._startup_wait_s = solution.startup_wait_s
            op = "solve-startup"
        else:
            self._startup_wait_s = 0.0
            solution = solve_horizon(problem, evaluator=self._evaluator)
            op = "solve-horizon"
        if tracing:
            tracer.emit(
                SolverCall(
                    session_id="",
                    t_mono=tracer.now(),
                    op=op,
                    instances=1,
                    plans=len(problem.quality_values) ** len(problem.chunk_sizes_kilobits),
                    wall_s=time.perf_counter() - _t0,
                )
            )
        return solution


def make_mpc_opt(horizon: int = DEFAULT_HORIZON) -> MPCController:
    """MPC-OPT — exact MPC with perfect throughput prediction.

    The paper's simulation-only reference point (Section 7.1.2 item 3 and
    Figure 11b): it bounds what any prediction-driven controller with the
    same horizon could achieve.
    """
    return MPCController(
        predictor=OraclePredictor(), horizon=horizon, name="mpc-opt"
    )
