"""Offline beam-search planning with full future knowledge.

Section 4.1: *"given perfect knowledge of future throughput over the
entire horizon of a video, the optimal bitrate ... can be calculated in
one shot by solving the optimization problem for the entire video"*.
The exact discrete program is exponential (``|R|^K``), and unlike the
receding-horizon problem it cannot be Pareto-collapsed exactly — a
*later* wall-clock position is not always worse on a time-varying trace,
so elapsed time must stay in the search state.

:class:`OfflineBeamPlanner` is the practical middle ground: a beam search
over chunks whose states carry the exact ``(wall time, buffer, QoE)``
triple, deduplicated per previous-level by bucketed (time, buffer) and
kept to the best ``beam_width`` states per chunk.  It is

* **exact** on instances small enough for exhaustive search (pinned by
  tests against :func:`repro.core.offline.exhaustive_optimal`),
* **an achievable plan** — its QoE is realised by an actual plan, so it
  *lower-bounds* the true optimum while the fluid relaxation
  (:func:`repro.core.offline.fluid_upper_bound`) upper-bounds it, giving
  a two-sided bracket on ``QoE(OPT)``, and
* a reference *planner*: the resulting plan can be replayed through
  either backend via :class:`repro.abr.fixed.FixedPlanAlgorithm`.
"""

from __future__ import annotations


from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..qoe import QoEWeights
from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from ..video.quality import IdentityQuality, QualityFunction

__all__ = ["PlanResult", "OfflineBeamPlanner"]


@dataclass(frozen=True)
class PlanResult:
    """The best plan the beam found, with its exact realised QoE."""

    plan: Tuple[int, ...]
    qoe: float
    rebuffer_s: float
    startup_s: float


@dataclass
class _Node:
    wall_time_s: float
    buffer_s: float
    qoe: float
    rebuffer_s: float
    prev_level: int
    plan: Tuple[int, ...]


class OfflineBeamPlanner:
    """Near-optimal full-video planning against a known trace.

    Parameters
    ----------
    beam_width:
        States kept per chunk (per previous level).  Wider = closer to
        exact, slower; tests show exactness on small instances already at
        modest widths.
    time_bucket_s / buffer_bucket_s:
        Deduplication granularity: among states with the same previous
        level and the same (bucketed time, bucketed buffer), only the
        highest-QoE one survives.
    startup_wait_grid_s:
        Candidate extra pre-roll waits evaluated at the session start
        (the offline analogue of ``T_s`` in ``QOE_MAX``).
    """

    def __init__(
        self,
        beam_width: int = 256,
        time_bucket_s: float = 0.5,
        buffer_bucket_s: float = 0.25,
        startup_wait_grid_s: Sequence[float] = (0.0, 2.0, 4.0, 8.0),
    ) -> None:
        if beam_width < 1:
            raise ValueError("beam width must be >= 1")
        if time_bucket_s <= 0 or buffer_bucket_s <= 0:
            raise ValueError("bucket sizes must be positive")
        if not startup_wait_grid_s or any(w < 0 for w in startup_wait_grid_s):
            raise ValueError("startup wait grid must be non-empty, >= 0")
        self.beam_width = beam_width
        self.time_bucket_s = time_bucket_s
        self.buffer_bucket_s = buffer_bucket_s
        self.startup_wait_grid_s = tuple(startup_wait_grid_s)

    # ------------------------------------------------------------------

    def plan(
        self,
        trace: Trace,
        manifest: VideoManifest,
        weights: Optional[QoEWeights] = None,
        quality: Optional[QualityFunction] = None,
        buffer_capacity_s: float = 30.0,
    ) -> PlanResult:
        """Search the whole video; returns the best plan found."""
        weights = weights if weights is not None else QoEWeights.balanced()
        q = quality if quality is not None else IdentityQuality()
        best: Optional[PlanResult] = None
        for wait in self.startup_wait_grid_s:
            candidate = self._plan_with_wait(
                trace, manifest, weights, q, buffer_capacity_s, wait
            )
            if best is None or candidate.qoe > best.qoe:
                best = candidate
        assert best is not None
        return best

    def _plan_with_wait(
        self,
        trace: Trace,
        manifest: VideoManifest,
        weights: QoEWeights,
        quality: QualityFunction,
        bmax: float,
        extra_wait_s: float,
    ) -> PlanResult:
        L = manifest.chunk_duration_s
        num_levels = len(manifest.ladder)
        quality_values = [quality(r) for r in manifest.ladder]
        lam, mu, mu_s = weights.switching, weights.rebuffering, weights.startup

        # Chunk 0: the startup chunk (no drain; playback begins after it,
        # plus the candidate extra wait — mirroring the simulator).
        beam: List[_Node] = []
        for level in range(num_levels):
            size = manifest.chunk_size_kilobits(0, level)
            dt = trace.time_to_download(0.0, size)
            t = dt + extra_wait_s
            beam.append(
                _Node(
                    wall_time_s=t,
                    buffer_s=min(L, bmax),
                    qoe=quality_values[level] - mu_s * t,
                    rebuffer_s=0.0,
                    prev_level=level,
                    plan=(level,),
                )
            )

        for k in range(1, manifest.num_chunks):
            successors: Dict[tuple, _Node] = {}
            for node in beam:
                for level in range(num_levels):
                    size = manifest.chunk_size_kilobits(k, level)
                    dt = trace.time_to_download(node.wall_time_s, size)
                    stall = max(dt - node.buffer_s, 0.0)
                    buffer_s = max(node.buffer_s - dt, 0.0) + L
                    t = node.wall_time_s + dt
                    waited = 0.0
                    if buffer_s > bmax:
                        waited = buffer_s - bmax
                        buffer_s = bmax
                    t += waited
                    q_now = quality_values[level]
                    qoe = (
                        node.qoe
                        + q_now
                        - lam * abs(q_now - quality_values[node.prev_level])
                        - mu * stall
                    )
                    key = (
                        level,
                        round(t / self.time_bucket_s),
                        round(buffer_s / self.buffer_bucket_s),
                    )
                    incumbent = successors.get(key)
                    if incumbent is None or qoe > incumbent.qoe:
                        successors[key] = _Node(
                            wall_time_s=t,
                            buffer_s=buffer_s,
                            qoe=qoe,
                            rebuffer_s=node.rebuffer_s + stall,
                            prev_level=level,
                            plan=node.plan + (level,),
                        )
            ranked = sorted(successors.values(), key=lambda n: -n.qoe)
            beam = ranked[: self.beam_width]

        winner = max(beam, key=lambda n: n.qoe)
        startup = (
            trace.time_to_download(
                0.0, manifest.chunk_size_kilobits(0, winner.plan[0])
            )
            + extra_wait_s
        )
        return PlanResult(
            plan=winner.plan,
            qoe=winner.qoe,
            rebuffer_s=winner.rebuffer_s,
            startup_s=startup,
        )
