"""Batched horizon-solver kernel — one plan evaluator for every consumer.

Every hot path of the reproduction ultimately evaluates the same
recurrence: roll the buffer dynamics of Eqs. (1)-(4) forward over all
``|R|^N`` candidate plans and take the QoE argmax.  Historically each
consumer re-implemented that roll-out — :func:`~repro.core.horizon.
solve_horizon` per chunk, :func:`~repro.core.horizon.solve_startup` once
per wait-grid point, and the FastMPC table builder in a hand-rolled
double loop over ``(buffer_bin, prev_level)`` states.  This module is the
single implementation they all delegate to:

* :class:`_BatchEvaluator` — reusable scratch buffers plus the vectorised
  plan roll-out, evaluating ``(n_instances, n_plans)`` in one shot.  The
  arithmetic is element-wise and associates *exactly* like the scalar
  reference solver, so batched results are bit-identical to
  :func:`~repro.core.horizon.solve_horizon_reference` (same optimal QoE,
  same lexicographic tie-break).

* :func:`solve_horizon_batch` — solve many :class:`~repro.core.horizon.
  HorizonProblem` instances at once.  Problems sharing structure (ladder,
  weights, horizon, chunk duration, capacity) are stacked into one NumPy
  computation; oversized plan spaces fall back to the exact Pareto DP per
  instance.

* :func:`build_table_decisions` — the FastMPC offline enumeration.  It
  exploits the table's extra structure (CBR sizes, flat predictions): the
  quality/switching part of a plan's QoE is independent of the buffer and
  throughput state, so it is computed once per plan and only the
  rebuffering dynamics are rolled out per state.  This re-associates the
  floating-point sum (documented; immaterial at the table's resolution)
  and is what makes a 100x100x5 table build several times faster than
  per-state solves.

Instance batches are chunked internally so scratch stays bounded
(:data:`MAX_BATCH_ELEMENTS` elements per array) regardless of batch size.

NumPy is optional (:mod:`repro.core.npcompat`): without it, every entry
point falls back to a pure-Python evaluation that replicates the
vectorised arithmetic *operation for operation* — same element-wise op
order, same first-maximum argmax — so decisions and QoE values are
bit-identical between the two paths; only the speed differs.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.events import SolverCall
from .npcompat import HAVE_NUMPY, np

from .horizon import (
    _ENUMERATION_LIMIT,
    _plan_matrix,
    HorizonProblem,
    HorizonSolution,
    solve_horizon_dp,
)

__all__ = ["solve_horizon_batch", "build_table_decisions", "MAX_BATCH_ELEMENTS"]

# Upper bound on the element count of any one scratch array (~16 MB of
# float64).  Batches larger than this are processed in chunks.
MAX_BATCH_ELEMENTS = 2_000_000


class _BatchEvaluator:
    """Reusable scratch state for the vectorised plan roll-out.

    An evaluator owns a small dictionary of named scratch arrays, reused
    across calls whenever the requested shape matches (the common case:
    one controller solving the same-shaped problem every chunk).  Holding
    one evaluator per session removes all per-decision allocations from
    the online MPC path; a fresh throw-away evaluator degrades gracefully
    to the old allocate-per-call behaviour.

    Not thread-safe: the returned arrays alias the scratch and are only
    valid until the next call on the same evaluator.
    """

    __slots__ = ("_arrays",)

    def __init__(self) -> None:
        self._arrays: Dict[str, np.ndarray] = {}

    def scratch(self, name: str, shape: Tuple[int, ...]) -> np.ndarray:
        """An uninitialised float64 array of ``shape``, reused when possible."""
        arr = self._arrays.get(name)
        if arr is None or arr.shape != shape:
            arr = np.empty(shape, dtype=np.float64)
            self._arrays[name] = arr
        return arr

    def evaluate(
        self,
        plans: np.ndarray,
        sizes: np.ndarray,
        preds: np.ndarray,
        buffer0: np.ndarray,
        prev_quality: Optional[np.ndarray],
        quality: np.ndarray,
        switching: float,
        rebuffering: float,
        chunk_duration_s: float,
        buffer_capacity_s: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """QoE, total rebuffer and final buffer of every (instance, plan).

        Parameters
        ----------
        plans:
            ``(M, N)`` level indices (from :func:`~repro.core.horizon.
            _plan_matrix`).
        sizes:
            ``(n, N, levels)`` per-instance chunk sizes, or ``(N, levels)``
            shared by all instances.
        preds:
            ``(n, N)`` per-instance predictions, or ``(N,)`` shared.
        buffer0:
            ``(n,)`` starting buffer levels.
        prev_quality:
            ``(n,)`` previous-chunk qualities with NaN marking "no
            previous chunk" (no first-step switching penalty), or None
            when no instance has a previous chunk.
        quality:
            ``(levels,)`` the ladder's quality values.

        Returns ``(qoe, rebuffer, final_buffer)``, each ``(n, M)`` views
        into this evaluator's scratch — consume before the next call.
        """
        n = buffer0.shape[0]
        m, horizon = plans.shape
        qoe = self.scratch("qoe", (n, m))
        rebuf = self.scratch("rebuf", (n, m))
        buf = self.scratch("buf", (n, m))
        dt = self.scratch("dt", (n, m))
        tmp = self.scratch("tmp", (n, m))
        qoe.fill(0.0)
        rebuf.fill(0.0)
        buf[:] = buffer0[:, None]
        shared_sizes = sizes.ndim == 2
        shared_preds = preds.ndim == 1
        no_prev = None
        if prev_quality is not None:
            mask = np.isnan(prev_quality)
            if mask.any():
                no_prev = mask

        for i in range(horizon):
            levels = plans[:, i]
            q_now = quality[levels]  # (M,)
            if shared_sizes:
                step_sizes = sizes[i, levels]  # (M,)
                if shared_preds:
                    np.divide(step_sizes[None, :], preds[i], out=dt)
                else:
                    np.divide(step_sizes[None, :], preds[:, i, None], out=dt)
            else:
                np.take(sizes[:, i, :], levels, axis=1, out=tmp)
                if shared_preds:
                    np.divide(tmp, preds[i], out=dt)
                else:
                    np.divide(tmp, preds[:, i, None], out=dt)
            # stall = max(dt - buffer, 0); accumulate before reusing tmp.
            np.subtract(dt, buf, out=tmp)
            np.maximum(tmp, 0.0, out=tmp)
            rebuf += tmp
            # qoe += q_now - mu * stall (exact reference association).
            np.multiply(tmp, rebuffering, out=tmp)
            np.subtract(q_now[None, :], tmp, out=tmp)
            qoe += tmp
            # buffer = min(max(buffer - dt, 0) + L, Bmax)  (Eqs. 1-4).
            np.subtract(buf, dt, out=buf)
            np.maximum(buf, 0.0, out=buf)
            buf += chunk_duration_s
            np.minimum(buf, buffer_capacity_s, out=buf)
            # Switching penalty: per-instance at the first step, shared
            # between steps (the plan fixes both qualities).
            if i == 0:
                if prev_quality is not None:
                    np.subtract(q_now[None, :], prev_quality[:, None], out=tmp)
                    np.abs(tmp, out=tmp)
                    np.multiply(tmp, switching, out=tmp)
                    if no_prev is not None:
                        tmp[no_prev, :] = 0.0
                    qoe -= tmp
            else:
                penalty = switching * np.abs(q_now - quality[plans[:, i - 1]])
                qoe -= penalty[None, :]
        return qoe, rebuf, buf


def _evaluate_one_py(
    plan: Sequence[int],
    sizes_rows: Sequence[Sequence[float]],
    preds_row: Sequence[float],
    buffer0: float,
    prev_quality: Optional[float],
    quality: Sequence[float],
    switching: float,
    rebuffering: float,
    chunk_duration_s: float,
    buffer_capacity_s: float,
) -> Tuple[float, float, float]:
    """One (instance, plan) roll-out, replicating the vectorised op order.

    Each line mirrors the corresponding element-wise NumPy op in
    :meth:`_BatchEvaluator.evaluate` (same association, commutative
    reorderings only), so the returned ``(qoe, rebuffer, final_buffer)``
    is bit-identical to the vectorised path's element for this cell.
    """
    buf = buffer0
    qoe = 0.0
    rebuf = 0.0
    for i, level in enumerate(plan):
        dt = sizes_rows[i][level] / preds_row[i]
        stall = dt - buf
        if stall < 0.0:
            stall = 0.0
        rebuf += stall
        q_now = quality[level]
        qoe += q_now - stall * rebuffering
        buf = buf - dt
        if buf < 0.0:
            buf = 0.0
        buf += chunk_duration_s
        if buf > buffer_capacity_s:
            buf = buffer_capacity_s
        if i == 0:
            if prev_quality is not None and not math.isnan(prev_quality):
                qoe -= switching * abs(q_now - prev_quality)
        else:
            qoe -= switching * abs(q_now - quality[plan[i - 1]])
    return qoe, rebuf, buf


def _solve_rows_py(
    plans,
    sizes,
    preds,
    buffer0,
    prev_quality,
    quality,
    switching: float,
    rebuffering: float,
    chunk_duration_s: float,
    buffer_capacity_s: float,
):
    """Pure-Python :func:`_solve_rows` — the no-NumPy fallback.

    Accepts plain sequences: ``sizes`` is shared ``(N, levels)`` rows or
    per-instance ``(n, N, levels)``; ``preds`` shared ``(N,)`` or
    per-instance ``(n, N)``; ``prev_quality`` per-instance values where
    ``None``/NaN means "no previous chunk".  The strict ``>`` scan keeps
    the first maximum — exactly NumPy's ``argmax`` tie-break.
    """
    shared_sizes = len(sizes) > 0 and not hasattr(sizes[0][0], "__len__")
    shared_preds = len(preds) > 0 and not hasattr(preds[0], "__len__")
    best: List[int] = []
    best_qoe: List[float] = []
    best_rebuf: List[float] = []
    best_buf: List[float] = []
    for row, buf0 in enumerate(buffer0):
        sizes_rows = sizes if shared_sizes else sizes[row]
        preds_row = preds if shared_preds else preds[row]
        prev = None if prev_quality is None else prev_quality[row]
        top = (-math.inf, 0.0, 0.0)
        top_idx = 0
        for plan_idx, plan in enumerate(plans):
            result = _evaluate_one_py(
                plan, sizes_rows, preds_row, buf0, prev, quality,
                switching, rebuffering, chunk_duration_s, buffer_capacity_s,
            )
            if result[0] > top[0]:
                top = result
                top_idx = plan_idx
        best.append(top_idx)
        best_qoe.append(top[0])
        best_rebuf.append(top[1])
        best_buf.append(top[2])
    return best, best_qoe, best_rebuf, best_buf


def _solve_rows(
    evaluator: Optional[_BatchEvaluator],
    plans,
    sizes,
    preds,
    buffer0,
    prev_quality,
    quality,
    switching: float,
    rebuffering: float,
    chunk_duration_s: float,
    buffer_capacity_s: float,
):
    """Argmax-reduced batch evaluation, chunked to bound scratch size.

    Returns per-instance arrays ``(best_plan_index, qoe, rebuffer,
    final_buffer)``; the argmax takes the first maximum, i.e. the
    lexicographically smallest optimal plan.  Without NumPy the inputs
    are plain sequences and the bit-identical scalar fallback runs.
    """
    if not HAVE_NUMPY:
        return _solve_rows_py(
            plans, sizes, preds, buffer0, prev_quality, quality,
            switching, rebuffering, chunk_duration_s, buffer_capacity_s,
        )
    if evaluator is None:
        evaluator = _BatchEvaluator()
    n = buffer0.shape[0]
    m = plans.shape[0]
    step = max(1, MAX_BATCH_ELEMENTS // m)
    best = np.empty(n, dtype=np.int64)
    best_qoe = np.empty(n)
    best_rebuf = np.empty(n)
    best_buf = np.empty(n)
    for lo in range(0, n, step):
        hi = min(lo + step, n)
        qoe, rebuf, fin = evaluator.evaluate(
            plans,
            sizes if sizes.ndim == 2 else sizes[lo:hi],
            preds if preds.ndim == 1 else preds[lo:hi],
            buffer0[lo:hi],
            None if prev_quality is None else prev_quality[lo:hi],
            quality,
            switching,
            rebuffering,
            chunk_duration_s,
            buffer_capacity_s,
        )
        idx = np.argmax(qoe, axis=1)
        rows = np.arange(hi - lo)
        best[lo:hi] = idx
        best_qoe[lo:hi] = qoe[rows, idx]
        best_rebuf[lo:hi] = rebuf[rows, idx]
        best_buf[lo:hi] = fin[rows, idx]
    return best, best_qoe, best_rebuf, best_buf


def solve_horizon_batch(
    problems: Iterable[HorizonProblem],
    evaluator: Optional[_BatchEvaluator] = None,
    tracer=None,
) -> List[HorizonSolution]:
    """Solve many ``QOE_MAX_STEADY`` instances in one vectorised pass.

    Problems are grouped by shared structure (ladder qualities, weights,
    horizon, chunk duration, capacity); each group is stacked into a
    single ``(n_instances, n_plans)`` evaluation.  Per-instance chunk
    sizes (VBR rows) and predictions may differ freely within a group.
    Results are returned in input order and are bit-identical to
    :func:`~repro.core.horizon.solve_horizon` on each instance —
    including the lexicographic tie-break — because the batched
    arithmetic associates exactly like the scalar reference.

    Instances whose plan space exceeds the enumeration limit are solved
    with the exact Pareto DP, matching ``solve_horizon``'s dispatch.

    A :class:`repro.obs.Tracer` records one ``solver-call`` event per
    structural group (batch size, plan count, wall time).
    """
    tracing = tracer is not None and tracer.enabled
    problem_list = list(problems)
    if not problem_list:
        return []
    if evaluator is None:
        evaluator = _BatchEvaluator()
    solutions: List[Optional[HorizonSolution]] = [None] * len(problem_list)

    groups: Dict[tuple, List[int]] = {}
    for idx, problem in enumerate(problem_list):
        if problem.num_levels**problem.horizon > _ENUMERATION_LIMIT:
            solutions[idx] = solve_horizon_dp(problem)
            continue
        key = (
            problem.quality_values,
            problem.horizon,
            problem.num_levels,
            problem.weights.switching,
            problem.weights.rebuffering,
            problem.chunk_duration_s,
            problem.buffer_capacity_s,
        )
        groups.setdefault(key, []).append(idx)

    for key, idxs in groups.items():
        quality_values, horizon, num_levels, lam, mu, duration, capacity = key
        if tracing:
            _t0 = time.perf_counter()
        plans = _plan_matrix(num_levels, horizon)
        members = [problem_list[i] for i in idxs]
        if HAVE_NUMPY:
            sizes = np.asarray(
                [p.chunk_sizes_kilobits for p in members], dtype=np.float64
            )
            preds = np.asarray(
                [p.predicted_kbps for p in members], dtype=np.float64
            )
            buffer0 = np.asarray(
                [p.buffer_level_s for p in members], dtype=np.float64
            )
            if all(p.prev_quality is None for p in members):
                prev = None
            else:
                prev = np.asarray(
                    [
                        np.nan if p.prev_quality is None else p.prev_quality
                        for p in members
                    ],
                    dtype=np.float64,
                )
            quality = np.asarray(quality_values, dtype=np.float64)
        else:
            sizes = [p.chunk_sizes_kilobits for p in members]
            preds = [p.predicted_kbps for p in members]
            buffer0 = [p.buffer_level_s for p in members]
            if all(p.prev_quality is None for p in members):
                prev = None
            else:
                prev = [p.prev_quality for p in members]
            quality = quality_values
        best, qoe, rebuf, fin = _solve_rows(
            evaluator, plans, sizes, preds, buffer0, prev, quality,
            lam, mu, duration, capacity,
        )
        for row, idx in enumerate(idxs):
            solutions[idx] = HorizonSolution(
                plan=tuple(int(x) for x in plans[best[row]]),
                qoe=float(qoe[row]),
                rebuffer_s=float(rebuf[row]),
                final_buffer_s=float(fin[row]),
            )
        if tracing:
            tracer.emit(
                SolverCall(
                    session_id="",
                    t_mono=tracer.now(),
                    op="solve-horizon-batch",
                    instances=len(idxs),
                    plans=len(plans),
                    wall_s=time.perf_counter() - _t0,
                )
            )
    assert all(s is not None for s in solutions)
    return solutions  # type: ignore[return-value]


def build_table_decisions(
    level_sizes_kilobits: Sequence[float],
    quality_values: Sequence[float],
    buffer_centers: Sequence[float],
    throughput_centers: Sequence[float],
    horizon: int,
    switching: float,
    rebuffering: float,
    chunk_duration_s: float,
    buffer_capacity_s: float,
    evaluator: Optional[_BatchEvaluator] = None,
    tracer=None,
):
    """FastMPC's offline enumeration over the whole binned state space.

    Solves every ``(buffer_bin, prev_level, throughput_bin)`` instance —
    CBR sizes, flat predictions — and returns the optimal *first* level
    of each as an ``(buffer_bins, num_levels, throughput_bins)`` int
    array (nested lists when NumPy is absent — same shape, identical
    decisions, scalar speed).  Ties pick the lexicographically smallest
    plan, matching the online solver.

    The quality and switching terms of a plan's QoE do not depend on the
    buffer or throughput state, so they are computed once per plan
    (``static``) plus a per-``prev_level`` first-switch column; only the
    rebuffering dynamics are rolled out per state, batched across buffer
    bins.  The resulting QoE sums associate differently from the scalar
    solver's interleaved accumulation — mathematically identical, and at
    table resolution the (sub-ULP) difference cannot flip a decision
    except on exact ties between plans that already share a first level.
    """
    tracing = tracer is not None and tracer.enabled
    if tracing:
        _t0 = time.perf_counter()
    if not HAVE_NUMPY:
        decisions_py = _build_table_decisions_py(
            level_sizes_kilobits, quality_values, buffer_centers,
            throughput_centers, horizon, switching, rebuffering,
            chunk_duration_s, buffer_capacity_s,
        )
        if tracing:
            tracer.emit(
                SolverCall(
                    session_id="",
                    t_mono=tracer.now(),
                    op="table-build",
                    instances=len(buffer_centers)
                    * len(quality_values)
                    * len(throughput_centers),
                    plans=len(_plan_matrix(len(quality_values), horizon)),
                    wall_s=time.perf_counter() - _t0,
                )
            )
        return decisions_py
    sizes = np.asarray(level_sizes_kilobits, dtype=np.float64)
    quality = np.asarray(quality_values, dtype=np.float64)
    b_centers = np.asarray(buffer_centers, dtype=np.float64)
    c_centers = np.asarray(throughput_centers, dtype=np.float64)
    num_levels = quality.shape[0]
    if evaluator is None:
        evaluator = _BatchEvaluator()

    plans = _plan_matrix(num_levels, horizon)
    m = plans.shape[0]
    num_buffer = b_centers.shape[0]
    num_throughput = c_centers.shape[0]

    # State-independent part of every plan's QoE.
    plan_quality = quality[plans]  # (M, N)
    static = plan_quality.sum(axis=1)
    if horizon > 1:
        static = static - switching * np.abs(
            np.diff(plan_quality, axis=1)
        ).sum(axis=1)
    first_switch = switching * np.abs(
        plan_quality[:, 0][:, None] - quality[None, :]
    )  # (M, num_levels)

    # Download times are shared by every buffer bin: CBR sizes and flat
    # predictions make dt a pure (level, throughput_bin) gather per step.
    level_dt = sizes[:, None] / c_centers[None, :]  # (levels, C)
    step_dt = [level_dt[plans[:, i]] for i in range(horizon)]  # (M, C) each

    decisions = np.empty(
        (num_buffer, num_levels, num_throughput), dtype=np.int64
    )
    plan_first = plans[:, 0]
    block = max(1, MAX_BATCH_ELEMENTS // max(m * num_throughput, 1))
    buf = evaluator.scratch("table_buf", (block, m, num_throughput))
    rebuf = evaluator.scratch("table_rebuf", (block, m, num_throughput))
    tmp = evaluator.scratch("table_tmp", (block, m, num_throughput))
    score = evaluator.scratch("table_score", (block, m, num_throughput))
    for lo in range(0, num_buffer, block):
        hi = min(lo + block, num_buffer)
        nb = hi - lo
        buf_v, rebuf_v, tmp_v, score_v = (
            buf[:nb], rebuf[:nb], tmp[:nb], score[:nb]
        )
        buf_v[:] = b_centers[lo:hi, None, None]
        rebuf_v.fill(0.0)
        for i in range(horizon):
            dt = step_dt[i][None, :, :]
            np.subtract(dt, buf_v, out=tmp_v)
            np.maximum(tmp_v, 0.0, out=tmp_v)
            rebuf_v += tmp_v
            np.subtract(buf_v, dt, out=buf_v)
            np.maximum(buf_v, 0.0, out=buf_v)
            buf_v += chunk_duration_s
            np.minimum(buf_v, buffer_capacity_s, out=buf_v)
        np.multiply(rebuf_v, -rebuffering, out=rebuf_v)  # -> -mu * rebuffer
        for prev in range(num_levels):
            column = static - first_switch[:, prev]  # (M,)
            np.add(rebuf_v, column[None, :, None], out=score_v)
            decisions[lo:hi, prev, :] = plan_first[np.argmax(score_v, axis=1)]
    if tracing:
        tracer.emit(
            SolverCall(
                session_id="",
                t_mono=tracer.now(),
                op="table-build",
                instances=int(decisions.size),
                plans=m,
                wall_s=time.perf_counter() - _t0,
            )
        )
    return decisions


def _build_table_decisions_py(
    level_sizes_kilobits: Sequence[float],
    quality_values: Sequence[float],
    buffer_centers: Sequence[float],
    throughput_centers: Sequence[float],
    horizon: int,
    switching: float,
    rebuffering: float,
    chunk_duration_s: float,
    buffer_capacity_s: float,
) -> List[List[List[int]]]:
    """Pure-Python :func:`build_table_decisions` — the no-NumPy fallback.

    The same static/first-switch/roll-out decomposition, computed cell by
    cell with the exact arithmetic association of the vectorised path
    (sequential sums, ``rebuf * -mu + (static - first_switch)``, strict
    first-maximum argmax), so the decision array is identical.  Intended
    for the small tables exercised when serving without NumPy — the big
    production builds want the vectorised path.
    """
    quality = list(quality_values)
    sizes = list(level_sizes_kilobits)
    num_levels = len(quality)
    plans = _plan_matrix(num_levels, horizon)

    static: List[float] = []
    first_switch: List[List[float]] = []  # (plan, prev_level)
    for plan in plans:
        total = 0.0
        for level in plan:
            total += quality[level]
        diff_sum = 0.0
        for i in range(1, horizon):
            diff_sum += abs(quality[plan[i]] - quality[plan[i - 1]])
        if horizon > 1:
            total = total - switching * diff_sum
        static.append(total)
        q_first = quality[plan[0]]
        first_switch.append(
            [switching * abs(q_first - q_prev) for q_prev in quality]
        )

    decisions: List[List[List[int]]] = []
    for b0 in buffer_centers:
        plane: List[List[int]] = [[] for _ in range(num_levels)]
        for c_idx, c_center in enumerate(throughput_centers):
            # Roll the rebuffer dynamics once per plan for this
            # (buffer, throughput) cell; prev_level only shifts the
            # score by a per-plan constant.
            rebuf_scores: List[float] = []
            for plan in plans:
                buf = b0
                rebuf = 0.0
                for i in range(horizon):
                    dt = sizes[plan[i]] / c_center
                    stall = dt - buf
                    if stall < 0.0:
                        stall = 0.0
                    rebuf += stall
                    buf = buf - dt
                    if buf < 0.0:
                        buf = 0.0
                    buf += chunk_duration_s
                    if buf > buffer_capacity_s:
                        buf = buffer_capacity_s
                rebuf_scores.append(rebuf * -rebuffering)
            for prev in range(num_levels):
                best_score = -math.inf
                best_first = 0
                for plan_idx, plan in enumerate(plans):
                    score = rebuf_scores[plan_idx] + (
                        static[plan_idx] - first_switch[plan_idx][prev]
                    )
                    if score > best_score:
                        best_score = score
                        best_first = plan[0]
                plane[prev].append(best_first)
        decisions.append(plane)
    return decisions
