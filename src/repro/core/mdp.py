"""MDP-based bitrate control — the paper's Section 4.1 alternative.

The paper's "strawman" discussion: *"with MDP we could consider
formulating the throughput and buffer state transition as Markov
processes, and find the optimal control policy using standard algorithms
such as value iteration or policy iteration.  However, this has a strong
assumption that throughput dynamics follow Markov processes ... We regard
the potential use of MDP ... as future work."*

This module implements that future work so the assumption can be tested:

* :class:`ThroughputMarkovModel` — throughput is discretized into log-
  spaced states; per-chunk transitions are counted online with Laplace
  smoothing, starting from a sticky-neighbour prior (exactly the structure
  of the paper's synthetic dataset generator).
* :class:`MDPController` — an infinite-horizon discounted MDP over states
  ``(buffer bin, throughput state, previous level)`` with actions = ladder
  levels, stage reward = Eq. 5's per-chunk terms, solved by vectorised
  value iteration; the policy is refreshed as the transition model learns.

On traces whose dynamics really are (close to) Markov — the synthetic
dataset — the learned policy is competitive with MPC; on trend-driven
traces the Markov assumption bites, which is precisely the caveat the
paper raises.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..abr.base import ABRAlgorithm, DownloadResult, PlayerObservation
from ..qoe import QoEWeights
from .table import Binning

__all__ = ["ThroughputMarkovModel", "MDPController"]


class ThroughputMarkovModel:
    """A learned Markov chain over discretized throughput states.

    Parameters
    ----------
    binning:
        Throughput state space (log spacing recommended).
    prior_stickiness:
        Prior probability mass on self-transitions; the remainder spreads
        to the immediate neighbour states (a birth-death prior matching
        how bottleneck sharing actually evolves).
    prior_weight:
        How many pseudo-observations the prior is worth per state.
    """

    def __init__(
        self,
        binning: Binning,
        prior_stickiness: float = 0.7,
        prior_weight: float = 4.0,
    ) -> None:
        if not (0 < prior_stickiness < 1):
            raise ValueError("stickiness must be in (0, 1)")
        if prior_weight <= 0:
            raise ValueError("prior weight must be positive")
        self.binning = binning
        n = binning.count
        prior = np.zeros((n, n))
        for i in range(n):
            neighbours = [j for j in (i - 1, i + 1) if 0 <= j < n]
            prior[i, i] = prior_stickiness
            for j in neighbours:
                prior[i, j] = (1 - prior_stickiness) / len(neighbours)
        self._counts = prior * prior_weight
        self._last_state: Optional[int] = None

    @property
    def num_states(self) -> int:
        return self.binning.count

    def state_of(self, throughput_kbps: float) -> int:
        return self.binning.index_of(throughput_kbps)

    def observe(self, throughput_kbps: float) -> int:
        """Record one per-chunk throughput sample; returns its state."""
        state = self.state_of(throughput_kbps)
        if self._last_state is not None:
            self._counts[self._last_state, state] += 1.0
        self._last_state = state
        return state

    def transition_matrix(self) -> np.ndarray:
        """Row-stochastic estimate ``P[c, c']``."""
        totals = self._counts.sum(axis=1, keepdims=True)
        return self._counts / totals

    @property
    def last_state(self) -> Optional[int]:
        return self._last_state


class MDPController(ABRAlgorithm):
    """Value-iteration policy over (buffer, throughput state, prev level).

    Parameters
    ----------
    buffer_bins / throughput_bins:
        State-space discretization (the same trade-off as FastMPC's table).
    discount:
        Discount factor of the infinite-horizon objective.  Values near 1
        approximate the undiscounted per-chunk QoE sum.
    replan_every:
        Re-run value iteration after this many observed chunks so the
        policy tracks the learned transition model (1 = always fresh).
    max_iterations / tolerance:
        Value-iteration stopping criteria (sup-norm).
    """

    name = "mdp"

    def __init__(
        self,
        buffer_bins: int = 24,
        throughput_bins: int = 12,
        discount: float = 0.95,
        replan_every: int = 4,
        max_iterations: int = 300,
        tolerance: float = 1.0,
        prior_stickiness: float = 0.7,
    ) -> None:
        if buffer_bins < 2 or throughput_bins < 2:
            raise ValueError("need at least 2 bins per dimension")
        if not (0 < discount < 1):
            raise ValueError("discount must be in (0, 1)")
        if replan_every < 1:
            raise ValueError("replan_every must be >= 1")
        self.buffer_bins = buffer_bins
        self.throughput_bins = throughput_bins
        self.discount = discount
        self.replan_every = replan_every
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.prior_stickiness = prior_stickiness
        self._policy: Optional[np.ndarray] = None
        self._chunks_since_plan = 0

    # ------------------------------------------------------------------

    def prepare(self, manifest, config) -> None:
        super().prepare(manifest, config)
        ladder = manifest.ladder
        self._buffer_binning = Binning(
            0.0, config.buffer_capacity_s, self.buffer_bins, "linear"
        )
        self._throughput_binning = Binning(
            0.2 * ladder.min_kbps, 2.0 * ladder.max_kbps,
            self.throughput_bins, "log",
        )
        self.model = ThroughputMarkovModel(
            self._throughput_binning, prior_stickiness=self.prior_stickiness
        )
        self._quality = np.asarray([config.quality(r) for r in ladder])
        # CBR stage model, like the FastMPC table.
        self._sizes = np.asarray(
            [manifest.chunk_duration_s * r for r in ladder]
        )
        self._policy = None
        self._chunks_since_plan = 0
        self._precompute_dynamics()

    def _precompute_dynamics(self) -> None:
        """Per (action, buffer bin, realized throughput state): the stage
        rebuffer time and the next buffer bin."""
        L = self.manifest.chunk_duration_s
        bmax = self.config.buffer_capacity_s
        b_centers = self._buffer_binning.centers  # (B,)
        c_centers = self._throughput_binning.centers  # (C,)
        download = self._sizes[:, None, None] / c_centers[None, None, :]  # (A,1,C)
        buffers = b_centers[None, :, None]  # (1,B,1)
        rebuffer = np.maximum(download - buffers, 0.0)  # (A,B,C)
        next_buffer = np.minimum(
            np.maximum(buffers - download, 0.0) + L, bmax
        )
        next_index = np.clip(
            np.searchsorted(self._buffer_binning.edges, next_buffer) - 1,
            0,
            self.buffer_bins - 1,
        )
        self._stage_rebuffer = rebuffer  # (A, B, C)
        self._next_buffer_index = next_index.astype(np.int64)  # (A, B, C)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _value_iteration(self) -> np.ndarray:
        """Solve for the policy; returns argmax actions (B, C, R)."""
        weights: QoEWeights = self.config.weights
        lam, mu = weights.switching, weights.rebuffering
        gamma = self.discount
        A = len(self._quality)
        B, C = self.buffer_bins, self.throughput_bins
        P = self.model.transition_matrix()  # (C, C')
        quality = self._quality
        switch_cost = lam * np.abs(quality[:, None] - quality[None, :])  # (A, R)

        V = np.zeros((B, C, A))  # value, with "prev level" = last action
        c_range = np.arange(C)
        for _ in range(self.max_iterations):
            # Expected continuation per action: for realized next state c',
            # the system lands in (next_buffer, c', prev=a).
            ev = np.empty((A, B, C))
            for a in range(A):
                landing = V[self._next_buffer_index[a], c_range[None, :], a]  # (B, C')
                stage = -mu * self._stage_rebuffer[a] + gamma * landing  # (B, C')
                ev[a] = stage @ P.T  # expectation over c' given c -> (B, C)
            # Q[b, c, r, a] = q_a - switch(a, r) + ev[a][b, c]
            Q = (
                quality[None, None, None, :]
                - switch_cost.T[None, None, :, :]
                + ev.transpose(1, 2, 0)[:, :, None, :]
            )
            V_new = Q.max(axis=3)  # (B, C, R)
            delta = np.abs(V_new - V).max()
            V = V_new
            if delta < self.tolerance:
                break
        policy = Q.argmax(axis=3)  # (B, C, R)
        return policy

    def _ensure_policy(self) -> None:
        if self._policy is None or self._chunks_since_plan >= self.replan_every:
            self._policy = self._value_iteration()
            self._chunks_since_plan = 0

    # ------------------------------------------------------------------
    # ABR interface
    # ------------------------------------------------------------------

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self._require_prepared()
        self._ensure_policy()
        assert self._policy is not None
        b = self._buffer_binning.index_of(observation.buffer_level_s)
        c = self.model.last_state
        if c is None:
            return 0  # cold start: bottom of the ladder, like real players
        prev = observation.prev_level_index or 0
        return int(self._policy[b, c, prev])

    def on_download_complete(self, result: DownloadResult) -> None:
        self.model.observe(result.throughput_kbps)
        self._chunks_since_plan += 1
        super().on_download_complete(result)
