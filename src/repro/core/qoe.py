"""Re-export shim: the QoE model lives in :mod:`repro.qoe`.

It sits at the package top level because both the algorithm interface
(:mod:`repro.abr.base`) and the controllers in :mod:`repro.core` depend on
it — importing it through the ``core`` package from ``abr`` would create
an import cycle.  The documented access path ``repro.core.qoe`` keeps
working through this module.
"""

from ..qoe import QoEBreakdown, QoEWeights, compute_qoe

__all__ = ["QoEBreakdown", "QoEWeights", "compute_qoe"]
