"""Offline-optimal QoE — the denominator of the paper's normalized QoE.

Section 7.1.2 defines ``n-QoE(A) = QoE(A) / QoE(OPT)`` where ``QoE(OPT)``
is the maximum QoE achievable with perfect knowledge of the whole future
throughput.  Footnote 6: "To make it tractable to compute this offline
optimal, we assume it can pick bitrates from a continuous range
[Rmin, Rmax]" — i.e. the paper normalises by a *continuous relaxation*,
not the (intractable) exact discrete optimum.  We do the same, with an
explicit construction that is provably an upper bound:

**The fluid bound.**  Fix a startup delay ``Ts`` and a total rebuffer
budget ``rho``.  Any schedule whose stalls total at most ``rho`` must
deliver chunk ``k`` (of ``K``, each ``L`` seconds) by its playback
deadline ``Ts + (k-1)*L + rho``, so the cumulative delivered rate obeys
``L * sum_{i<=k} R_i <= bits(deadline_k)``, where ``bits(t)`` is the
trace's integral.  Maximising ``sum R_i`` under those prefix caps and
``R_i <= Rmax`` gives the closed form

    S*(Ts, rho) = min( K*Rmax,
                       min_k bits(Ts + (k-1)L + rho)/L + (K-k)*Rmax ).

Since only the rebuffer term of Eq. 5 grows with ``rho`` and only the
startup term with ``Ts``, every real strategy with startup ``Ts_a`` and
total stall ``rho_a`` satisfies
``QoE <= S*(Ts_a, rho_a) - mu*rho_a - mu_s*Ts_a`` (switching penalties
only subtract).  We take the supremum over a *cell cover* of the
``(Ts, rho)`` domain, scoring each cell with ``S*`` at its upper corner
and penalties at its lower corner — coarser cells can only loosen (raise)
the bound, never break it.

For a non-identity concave quality function the per-chunk sum is bounded
by ``K * q(S*/K)`` (Jensen); for the paper's identity ``q`` this is just
``S*``.

A brute-force exact discrete optimum (:func:`exhaustive_optimal`) is also
provided for tiny instances; tests verify ``fluid_bound >= exhaustive``.
"""

from __future__ import annotations

import bisect
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from ..video.quality import IdentityQuality, QualityFunction
from ..qoe import QoEBreakdown, QoEWeights, compute_qoe

__all__ = [
    "CumulativeBits",
    "fluid_upper_bound",
    "simulate_fixed_plan",
    "exhaustive_optimal",
    "normalized_qoe",
]


class CumulativeBits:
    """O(log n) evaluation of ``bits(t)`` via per-segment prefix sums."""

    def __init__(self, trace: Trace) -> None:
        times = list(trace.timestamps)
        bws = list(trace.bandwidths_kbps)
        durations = trace.segment_durations()
        prefix = [0.0]
        for bw, dur in zip(bws, durations):
            prefix.append(prefix[-1] + bw * dur)
        self._times = times
        self._bws = bws
        self._prefix = prefix
        self._duration = trace.duration_s
        self._per_pass = prefix[-1]

    def bits(self, t: float) -> float:
        """Kilobits deliverable in ``[0, t]`` (trace wraps)."""
        if t < 0:
            raise ValueError("time must be >= 0")
        passes, rem = divmod(t, self._duration)
        total = passes * self._per_pass
        idx = bisect.bisect_right(self._times, rem) - 1
        total += self._prefix[idx] + self._bws[idx] * (rem - self._times[idx])
        return total


def _geometric_cells(limit: float) -> List[Tuple[float, float]]:
    """Cover ``[0, limit]`` with cells [0,1], [1,2], [2,4], ... (seconds)."""
    cells = [(0.0, 1.0)]
    lo = 1.0
    while lo < limit:
        hi = min(lo * 2, limit)
        cells.append((lo, hi))
        lo = hi
    return cells


def fluid_upper_bound(
    trace: Trace,
    manifest: VideoManifest,
    weights: Optional[QoEWeights] = None,
    quality: Optional[QualityFunction] = None,
    buffer_capacity_s: float = 30.0,
    max_rebuffer_s: float = 256.0,
    startup_step_s: float = 2.0,
) -> float:
    """``QoE(OPT)`` — the continuous-relaxation upper bound (see module doc).

    Returns the bound in QoE units (same scale as Eq. 5).
    """
    weights = weights if weights is not None else QoEWeights.balanced()
    q = quality if quality is not None else IdentityQuality()
    K = manifest.num_chunks
    L = manifest.chunk_duration_s
    r_max = manifest.ladder.max_kbps
    cumulative = CumulativeBits(trace)

    def s_star(ts: float, rho: float) -> float:
        best = K * r_max
        for k in range(1, K + 1):
            deadline = ts + (k - 1) * L + rho
            cap = cumulative.bits(deadline) / L + (K - k) * r_max
            if cap < best:
                best = cap
        return max(best, 0.0)

    # Startup waiting beyond the buffer capacity is dominated: the buffer
    # clamps at Bmax, so extra wait buys nothing but keeps costing mu_s.
    ts_limit = buffer_capacity_s + L
    ts_edges = [min(i * startup_step_s, ts_limit) for i in range(int(ts_limit / startup_step_s) + 2)]
    ts_cells = list(zip(ts_edges, ts_edges[1:]))
    rho_cells = _geometric_cells(max_rebuffer_s)

    best = -math.inf
    for ts_lo, ts_hi in ts_cells:
        for rho_lo, rho_hi in rho_cells:
            s = s_star(ts_hi, rho_hi)
            value = (
                K * q(s / K)
                - weights.rebuffering * rho_lo
                - weights.startup * ts_lo
            )
            if value > best:
                best = value
    # Open cells: strategies stalling beyond max_rebuffer_s or waiting
    # beyond ts_limit are dominated by the saturated-quality corner.
    best = max(
        best,
        K * q(r_max) - weights.rebuffering * max_rebuffer_s,
        K * q(r_max) - weights.startup * ts_limit,
    )
    return best


def simulate_fixed_plan(
    trace: Trace,
    manifest: VideoManifest,
    plan: Sequence[int],
    weights: Optional[QoEWeights] = None,
    quality: Optional[QualityFunction] = None,
    buffer_capacity_s: float = 30.0,
    extra_startup_wait_s: float = 0.0,
) -> QoEBreakdown:
    """Exact QoE of a fixed bitrate plan against the *true* trace.

    A standalone forward model of Eqs. (1)–(4): playback begins when the
    first chunk has downloaded (plus an optional extra wait), the buffer
    gains ``L`` per chunk and drains in real time, rebuffering accrues
    whenever a download outlasts the buffer, and a full buffer forces the
    Eq. (4) pause.  Deliberately independent of :mod:`repro.sim` so the two
    implementations cross-check each other in tests.
    """
    if len(plan) != manifest.num_chunks:
        raise ValueError("plan length must equal the number of chunks")
    weights = weights if weights is not None else QoEWeights.balanced()
    q = quality if quality is not None else IdentityQuality()
    if extra_startup_wait_s < 0:
        raise ValueError("extra startup wait must be >= 0")
    L = manifest.chunk_duration_s
    t = 0.0
    buffer_s = 0.0
    playing = False
    startup_s = 0.0
    rebuffer_total = 0.0
    for k, level in enumerate(plan):
        size = manifest.chunk_size_kilobits(k, level)
        dt = trace.time_to_download(t, size)
        if playing:
            rebuffer_total += max(dt - buffer_s, 0.0)
            buffer_s = max(buffer_s - dt, 0.0)
        t += dt
        buffer_s += L
        if not playing:
            t += extra_startup_wait_s
            playing = True
            startup_s = t
        if buffer_s > buffer_capacity_s:
            t += buffer_s - buffer_capacity_s  # Eq. (4) wait
            buffer_s = buffer_capacity_s
    bitrates = [manifest.ladder[level] for level in plan]
    return compute_qoe(bitrates, rebuffer_total, startup_s, weights, q)


def exhaustive_optimal(
    trace: Trace,
    manifest: VideoManifest,
    weights: Optional[QoEWeights] = None,
    quality: Optional[QualityFunction] = None,
    buffer_capacity_s: float = 30.0,
    startup_wait_grid_s: Sequence[float] = (0.0, 2.0, 4.0, 8.0),
    max_plans: int = 2_000_000,
) -> Tuple[Tuple[int, ...], float]:
    """Exact discrete optimum by brute force — tiny instances only.

    Returns ``(best_plan, best_qoe)``.  Used in tests to sandwich the
    fluid bound (``exhaustive <= fluid``) and to certify MPC-OPT.
    """
    levels = len(manifest.ladder)
    if levels**manifest.num_chunks > max_plans:
        raise ValueError(
            f"{levels}^{manifest.num_chunks} plans exceeds max_plans={max_plans}"
        )
    best_plan: Optional[Tuple[int, ...]] = None
    best_qoe = -math.inf
    for plan in itertools.product(range(levels), repeat=manifest.num_chunks):
        for wait in startup_wait_grid_s:
            breakdown = simulate_fixed_plan(
                trace, manifest, plan, weights, quality, buffer_capacity_s, wait
            )
            if breakdown.total > best_qoe:
                best_qoe = breakdown.total
                best_plan = plan
    assert best_plan is not None
    return best_plan, best_qoe


def normalized_qoe(qoe_value: float, optimal_qoe: float) -> float:
    """``n-QoE = QoE(A) / QoE(OPT)`` (Section 7.1.2).

    Negative values are meaningful ("the QoE can be negative when rebuffer
    time is too long", Section 7.2); a non-positive optimum would make the
    ratio ill-defined and raises instead.
    """
    if optimal_qoe <= 0:
        raise ValueError(
            f"offline-optimal QoE must be positive to normalise (got {optimal_qoe})"
        )
    return qoe_value / optimal_qoe
