"""Binning and table storage for FastMPC (Section 5).

FastMPC replaces the online solver with a precomputed decision table
indexed by (buffer level, previous bitrate, predicted throughput).  Two
optimisations from Section 5.2 live here:

* **Compaction via binning** — buffer and throughput values are coarsened
  into bins; row keys need not be stored because they are computed from
  bin indices (:class:`Binning`).  Quantisation is *flat-array index
  arithmetic*: one inverse-scale multiply plus clamp (with an exact
  edge-correction step), not a per-value binary search — the same
  precomputed scale backs the scalar :meth:`Binning.index_of` and the
  vectorized :meth:`Binning.index_of_batch`, so they cannot drift.

* **Table compression** — the optimal decisions for neighbouring scenarios
  are usually identical, so the decision vector compresses extremely well
  under lossless run-length encoding; lookups on the compressed form use
  binary search (:class:`RunLengthEncodedTable`).  Table 1 of the paper
  reports the resulting sizes; :class:`TableSizeReport` reproduces them.
  Batch lookups (:meth:`RunLengthEncodedTable.lookup_batch`) replace the
  per-value bisect with one vectorized ``searchsorted`` over the run
  ends — identical answers, amortised cost.

A third, deployment-facing representation backs the sharded decision
service: :meth:`DecisionTable.from_buffer` wraps a *serialized* table —
typically an ``mmap`` of a published table file — without decoding it.
The run records are binary-searched in place (:class:`MappedRunLengthTable`),
so many worker processes can serve one read-only table file with zero
per-process copies; the serialized form is position-independent, which
is what makes that sharing safe.

NumPy is optional here (see :mod:`repro.core.npcompat`): every scalar
path — quantisation, single lookups, (de)serialization — is pure
Python, so a serving process without NumPy still answers identically;
only the batch methods degrade to per-value loops.  One caveat: NumPy's
``geomspace`` and ``math.pow`` can disagree by 1 ULP on log-spaced bin
edges, so a value landing *within 1 ULP of a log bin edge* may quantize
differently across the two environments (linear edges are bit-identical
by construction).
"""

from __future__ import annotations

import bisect
import math
import struct
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..obs.events import TableLookup
from .npcompat import HAVE_NUMPY, np

__all__ = [
    "Binning",
    "RunLengthEncodedTable",
    "MappedRunLengthTable",
    "DecisionTable",
    "TableSizeReport",
]


def _compute_edges(low: float, high: float, count: int, spacing: str) -> List[float]:
    """Bin edges as a plain list.

    With NumPy this is ``linspace``/``geomspace`` (the historical edge
    values — published tables and disk caches key on them).  Without, a
    pure-Python replica: bit-identical for linear spacing; within 1 ULP
    for log spacing (``pow`` rounding differs between libm entry points).
    """
    if HAVE_NUMPY:
        if spacing == "linear":
            return np.linspace(low, high, count + 1).tolist()
        return np.geomspace(low, high, count + 1).tolist()
    if spacing == "linear":
        step = (high - low) / count
        edges = [i * step + low for i in range(count + 1)]
        edges[-1] = high
        return edges
    log_low, log_high = math.log10(low), math.log10(high)
    step = (log_high - log_low) / count
    edges = [10.0 ** (i * step + log_low) for i in range(count + 1)]
    edges[0], edges[-1] = low, high
    return edges


class Binning:
    """Fixed bins over ``[low, high]`` with linear or logarithmic spacing.

    Values outside the range clamp to the edge bins, so any observed state
    maps to *some* table row — the paper's "key value closest to the
    current state".

    Quantisation is O(1) index arithmetic: ``idx = (f(value) - offset) *
    scale`` (``f`` = identity or ``log``) followed by an exact correction
    against the true edge values, which repairs any floating-point
    off-by-one so the result always equals the reference
    ``bisect_right(edges, value) - 1``.  The same precomputed
    ``(offset, scale)`` pair and the same edge array back both the scalar
    and the batch path.
    """

    __slots__ = (
        "low",
        "high",
        "count",
        "spacing",
        "_edges",
        "_centers",
        "_edges_list",
        "_offset",
        "_scale",
    )

    def __init__(self, low: float, high: float, count: int, spacing: str = "linear") -> None:
        if count < 1:
            raise ValueError("need at least one bin")
        if not (low < high):
            raise ValueError("need low < high")
        if spacing not in ("linear", "log"):
            raise ValueError(f"unknown spacing {spacing!r}")
        if spacing == "log" and low <= 0:
            raise ValueError("log spacing requires low > 0")
        self.low = float(low)
        self.high = float(high)
        self.count = count
        self.spacing = spacing
        edges_list = _compute_edges(self.low, self.high, count, spacing)
        if spacing == "linear":
            centers_list = [
                (edges_list[i] + edges_list[i + 1]) / 2.0 for i in range(count)
            ]
        else:
            centers_list = [
                math.sqrt(edges_list[i] * edges_list[i + 1]) for i in range(count)
            ]  # geometric mid
        # The flat-lookup scale: one multiply maps a value to (almost) its
        # bin; the correction loops in index_of make it exact.
        if spacing == "linear":
            self._offset = self.low
            self._scale = count / (self.high - self.low)
        else:
            self._offset = math.log(self.low)
            self._scale = count / (math.log(self.high) - math.log(self.low))
        # Scalar lookups compare against the plain list (no per-access
        # NumPy scalar boxing); batch lookups use the shared array views.
        self._edges_list = edges_list
        if HAVE_NUMPY:
            edges = np.asarray(edges_list, dtype=np.float64)
            centers = np.asarray(centers_list, dtype=np.float64)
            # Shared read-only views: hot-loop callers (table builds,
            # kernels) access these per call, so handing out defensive
            # copies would be a per-access allocation; read-only flags
            # keep sharing safe.
            edges.setflags(write=False)
            centers.setflags(write=False)
            self._edges = edges
            self._centers = centers
        else:
            self._edges = tuple(edges_list)
            self._centers = tuple(centers_list)

    @property
    def edges(self):
        """Bin edge values — a shared *read-only* view, not a copy."""
        return self._edges

    @property
    def centers(self):
        """Bin centre values — a shared *read-only* view, not a copy."""
        return self._centers

    def index_of(self, value: float) -> int:
        """Bin index for a value, clamping out-of-range values.

        Equivalent to (and regression-tested against)
        ``bisect_right(edges, value) - 1`` clamped to ``[0, count - 1]``
        — but via the precomputed inverse scale: one multiply, one
        truncation, and an edge correction that moves at most a step or
        two when floating point lands the raw index one bin off.
        """
        if math.isnan(value):
            raise ValueError("cannot bin NaN")
        if value <= self.low:
            return 0
        if value >= self.high:
            return self.count - 1
        x = value if self.spacing == "linear" else math.log(value)
        idx = int((x - self._offset) * self._scale)
        last = self.count - 1
        if idx < 0:
            idx = 0
        elif idx > last:
            idx = last
        edges = self._edges_list
        # Exact correction: settle on the largest idx with edges[idx] <=
        # value.  The raw index is within one bin of the answer, so each
        # loop runs 0 or 1 iterations in practice (bounded by the edge
        # monotonicity either way).
        while idx > 0 and value < edges[idx]:
            idx -= 1
        while idx < last and value >= edges[idx + 1]:
            idx += 1
        return idx

    def index_of_reference(self, value: float) -> int:
        """The bisect reference implementation of :meth:`index_of`.

        Kept (and exported) purely as the parity oracle for tests: the
        arithmetic path must agree with this on every input, including
        exact bin edges and out-of-range clamps.
        """
        if math.isnan(value):
            raise ValueError("cannot bin NaN")
        if value <= self.low:
            return 0
        if value >= self.high:
            return self.count - 1
        idx = bisect.bisect_right(self._edges_list, value) - 1
        return min(max(idx, 0), self.count - 1)

    def index_of_batch(self, values):
        """Vectorized :meth:`index_of` over an array of values.

        Returns an ``int64`` array (a list without NumPy).  Same clamp
        and NaN semantics as the scalar path, computed from the same
        precomputed scale and corrected against the same edges — the
        two paths cannot disagree on any input.
        """
        if not HAVE_NUMPY:
            return [self.index_of(float(v)) for v in values]
        v = np.asarray(values, dtype=np.float64)
        if np.isnan(v).any():
            raise ValueError("cannot bin NaN")
        vc = np.clip(v, self.low, self.high)
        x = vc if self.spacing == "linear" else np.log(vc)
        idx = ((x - self._offset) * self._scale).astype(np.int64)
        np.clip(idx, 0, self.count - 1, out=idx)
        edges = self._edges
        last = self.count - 1
        # vc >= edges[0] after the clip, so the down-correction can never
        # push below 0; the up-correction is bounded by `last`.
        while True:
            mask = vc < edges[idx]
            if not mask.any():
                break
            idx[mask] -= 1
        while True:
            mask = (idx < last) & (vc >= edges[np.minimum(idx + 1, self.count)])
            if not mask.any():
                break
            idx[mask] += 1
        return idx

    def center(self, index: int) -> float:
        if not 0 <= index < self.count:
            raise IndexError(f"bin index {index} out of range")
        return float(self._centers[index])

    def __repr__(self) -> str:
        return (
            f"Binning({self.low:g}..{self.high:g}, count={self.count}, "
            f"{self.spacing})"
        )


class RunLengthEncodedTable:
    """Lossless RLE of a flat decision vector with binary-search lookup.

    Storage is two parallel arrays: the *exclusive end index* of each run
    and the run's value.  ``lookup(i)`` binary-searches the end-index array
    — exactly the online procedure Section 5.2 describes.
    ``lookup_batch`` answers many indices with one ``searchsorted`` over
    the same run ends (bitwise-identical results).
    """

    __slots__ = ("_run_ends", "_run_values", "_length", "_ends_arr", "_values_arr")

    def __init__(self, run_ends: Sequence[int], run_values: Sequence[int]) -> None:
        if len(run_ends) != len(run_values):
            raise ValueError("run arrays must have equal length")
        if not run_ends:
            raise ValueError("table must not be empty")
        prev = 0
        for end in run_ends:
            if end <= prev:
                raise ValueError("run ends must be strictly increasing and positive")
            prev = end
        self._run_ends = list(int(e) for e in run_ends)
        self._run_values = list(int(v) for v in run_values)
        self._length = self._run_ends[-1]
        self._ends_arr = None  # lazy batch-lookup arrays (immutable table)
        self._values_arr = None

    @classmethod
    def encode(cls, values: Sequence[int]) -> "RunLengthEncodedTable":
        """Compress a flat vector of small non-negative ints."""
        if len(values) == 0:
            raise ValueError("cannot encode an empty vector")
        if HAVE_NUMPY:
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise ValueError("values must be one-dimensional")
            change = np.flatnonzero(np.diff(arr)) + 1
            starts = np.concatenate(([0], change))
            ends = np.concatenate((change, [len(arr)]))
            return cls(ends.tolist(), arr[starts].tolist())
        run_ends: List[int] = []
        run_values: List[int] = []
        previous: Optional[int] = None
        for i, raw in enumerate(values):
            v = int(raw)
            if previous is None or v != previous:
                if previous is not None:
                    run_ends.append(i)
                run_values.append(v)
                previous = v
        run_ends.append(len(values))
        return cls(run_ends, run_values)

    def decode(self):
        """Expand back to the full vector (tests / full-table mode)."""
        if HAVE_NUMPY:
            out = np.empty(self._length, dtype=np.int64)
            start = 0
            for end, value in zip(self._run_ends, self._run_values):
                out[start:end] = value
                start = end
            return out
        flat: List[int] = []
        start = 0
        for end, value in zip(self._run_ends, self._run_values):
            flat.extend([value] * (end - start))
            start = end
        return flat

    def lookup(self, index: int) -> int:
        """Value at a flat index via binary search over run ends."""
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range 0..{self._length - 1}")
        run = bisect.bisect_right(self._run_ends, index)
        return self._run_values[run]

    def lookup_batch(self, indices):
        """Values at many flat indices — one vectorized ``searchsorted``.

        ``side='right'`` over the run ends is exactly the scalar
        ``bisect_right`` recurrence, so batch and scalar answers are
        identical on every index.  Degrades to a scalar loop without
        NumPy.  Raises ``IndexError`` when any index is out of range.
        """
        if not HAVE_NUMPY:
            return [self.lookup(int(i)) for i in indices]
        flat = np.asarray(indices, dtype=np.int64)
        if flat.size and (flat.min() < 0 or flat.max() >= self._length):
            raise IndexError(f"batch index out of range 0..{self._length - 1}")
        if self._ends_arr is None:
            self._ends_arr = np.asarray(self._run_ends, dtype=np.int64)
            self._values_arr = np.asarray(self._run_values, dtype=np.int64)
        runs = np.searchsorted(self._ends_arr, flat, side="right")
        return self._values_arr[runs]

    def lookup_profiled(self, index: int) -> Tuple[int, int]:
        """Like :meth:`lookup` but also counts binary-search probes.

        Returns ``(value, depth)`` where ``depth`` is the number of run
        ends examined — the profiling signal behind the observability
        layer's table-lookup events.  The search is the same
        ``bisect_right`` recurrence, hand-rolled so probes are countable.
        """
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range 0..{self._length - 1}")
        lo, hi, depth = 0, len(self._run_ends), 0
        ends = self._run_ends
        while lo < hi:
            mid = (lo + hi) // 2
            depth += 1
            if index < ends[mid]:
                hi = mid
            else:
                lo = mid + 1
        return self._run_values[lo], depth

    def __len__(self) -> int:
        return self._length

    @property
    def num_runs(self) -> int:
        return len(self._run_ends)

    def size_bytes(self, index_bytes: int = 4, value_bytes: int = 1) -> int:
        """Serialized size: one (end, value) record per run."""
        return self.num_runs * (index_bytes + value_bytes)

    def to_bytes(self) -> bytes:
        """Portable serialization: u32 run count, then (u32 end, u8 value)."""
        parts = [struct.pack("<I", self.num_runs)]
        for end, value in zip(self._run_ends, self._run_values):
            parts.append(struct.pack("<IB", end, value))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RunLengthEncodedTable":
        (count,) = struct.unpack_from("<I", blob, 0)
        ends, values = [], []
        offset = 4
        for _ in range(count):
            end, value = struct.unpack_from("<IB", blob, offset)
            offset += 5
            ends.append(end)
            values.append(value)
        return cls(ends, values)


#: Serialized RLE layout: ``u32 run count`` then one ``(u32 end, u8 value)``
#: record per run — 5 bytes, unaligned, little-endian.
_RLE_HEADER = struct.Struct("<I")
_RLE_RECORD = struct.Struct("<IB")


class MappedRunLengthTable:
    """Zero-copy lookups over a *serialized* RLE blob (mmap-friendly).

    Wraps the exact byte layout :meth:`RunLengthEncodedTable.to_bytes`
    produces — a ``u32`` run count followed by ``(u32 end, u8 value)``
    records — and binary-searches the records in place with
    ``struct.unpack_from``, so the backing buffer (typically an ``mmap``
    of a published table file) is never decoded or copied.  The layout is
    position-independent: any process that can see the bytes can serve
    lookups from them, which is what lets a cluster of worker processes
    share one read-only table file.

    Batch lookups read the run records *once* into two small arrays (runs
    number in the thousands where entries number in the millions) and
    then answer every batch with one ``searchsorted`` — the big mmap'd
    decision vector itself is still never expanded.

    Construction validates the run structure (strictly increasing ends)
    in one O(runs) scan — the scan does not compromise the zero-copy
    story.  The memoryview held here keeps the underlying buffer (and
    any ``mmap`` behind it) alive.
    """

    __slots__ = ("_view", "_num_runs", "_length", "_max_value", "_ends_arr", "_values_arr")

    def __init__(self, buffer) -> None:
        view = memoryview(buffer)
        if view.ndim != 1 or view.itemsize != 1:
            view = view.cast("B")
        if len(view) < _RLE_HEADER.size:
            raise ValueError("buffer too small for an RLE header")
        (count,) = _RLE_HEADER.unpack_from(view, 0)
        if count < 1:
            raise ValueError("table must not be empty")
        need = _RLE_HEADER.size + _RLE_RECORD.size * count
        if len(view) < need:
            raise ValueError(
                f"truncated RLE blob: {len(view)} bytes, {count} runs need {need}"
            )
        self._view = view[:need]
        prev = 0
        max_value = 0
        for run in range(count):
            end, value = _RLE_RECORD.unpack_from(
                view, _RLE_HEADER.size + _RLE_RECORD.size * run
            )
            if end <= prev:
                raise ValueError("run ends must be strictly increasing and positive")
            prev = end
            if value > max_value:
                max_value = value
        self._num_runs = count
        self._length = prev
        self._max_value = max_value
        self._ends_arr = None  # lazy batch-lookup arrays
        self._values_arr = None

    def _run_at(self, run: int) -> Tuple[int, int]:
        return _RLE_RECORD.unpack_from(
            self._view, _RLE_HEADER.size + _RLE_RECORD.size * run
        )

    def lookup(self, index: int) -> int:
        """Value at a flat index via in-place binary search over run ends."""
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range 0..{self._length - 1}")
        lo, hi = 0, self._num_runs
        view = self._view
        header, record = _RLE_HEADER.size, _RLE_RECORD.size
        while lo < hi:
            mid = (lo + hi) // 2
            (end,) = _RLE_HEADER.unpack_from(view, header + record * mid)
            if index < end:
                hi = mid
            else:
                lo = mid + 1
        return self._run_at(lo)[1]

    def _ensure_arrays(self) -> None:
        # One zero-copy structured read of the packed (u32 end, u8 value)
        # records; `end` is widened for searchsorted, `value` copied out
        # of the view so the arrays are standalone.
        records = np.frombuffer(
            self._view,
            dtype=np.dtype([("end", "<u4"), ("value", "u1")]),
            count=self._num_runs,
            offset=_RLE_HEADER.size,
        )
        self._ends_arr = records["end"].astype(np.int64)
        self._values_arr = records["value"].astype(np.int64)

    def lookup_batch(self, indices):
        """Batch variant of :meth:`lookup` — same answers, one
        ``searchsorted`` over the (cached) run-end array."""
        if not HAVE_NUMPY:
            return [self.lookup(int(i)) for i in indices]
        flat = np.asarray(indices, dtype=np.int64)
        if flat.size and (flat.min() < 0 or flat.max() >= self._length):
            raise IndexError(f"batch index out of range 0..{self._length - 1}")
        if self._ends_arr is None:
            self._ensure_arrays()
        runs = np.searchsorted(self._ends_arr, flat, side="right")
        return self._values_arr[runs]

    def lookup_profiled(self, index: int) -> Tuple[int, int]:
        """Like :meth:`lookup` but also counts binary-search probes —
        the same ``(value, depth)`` contract as
        :meth:`RunLengthEncodedTable.lookup_profiled`."""
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range 0..{self._length - 1}")
        lo, hi, depth = 0, self._num_runs, 0
        view = self._view
        header, record = _RLE_HEADER.size, _RLE_RECORD.size
        while lo < hi:
            mid = (lo + hi) // 2
            depth += 1
            (end,) = _RLE_HEADER.unpack_from(view, header + record * mid)
            if index < end:
                hi = mid
            else:
                lo = mid + 1
        return self._run_at(lo)[1], depth

    def decode(self):
        """Expand to the full vector (parity checks / tests only)."""
        if HAVE_NUMPY:
            out = np.empty(self._length, dtype=np.int64)
            start = 0
            for run in range(self._num_runs):
                end, value = self._run_at(run)
                out[start:end] = value
                start = end
            return out
        flat: List[int] = []
        start = 0
        for run in range(self._num_runs):
            end, value = self._run_at(run)
            flat.extend([value] * (end - start))
            start = end
        return flat

    def __len__(self) -> int:
        return self._length

    @property
    def num_runs(self) -> int:
        return self._num_runs

    @property
    def max_value(self) -> int:
        """Largest decision value across all runs (scanned at init)."""
        return self._max_value

    def size_bytes(self, index_bytes: int = 4, value_bytes: int = 1) -> int:
        return self._num_runs * (index_bytes + value_bytes)

    def to_bytes(self) -> bytes:
        """The wrapped serialization — a copy of the viewed bytes."""
        return bytes(self._view)


@dataclass(frozen=True)
class TableSizeReport:
    """One row of the paper's Table 1."""

    discretization_levels: int
    num_entries: int
    full_bytes: int
    rle_bytes: int

    @property
    def compression_ratio(self) -> float:
        """Compressed / full — lower is better (paper: 0.5 at 100 levels,
        ~0.18 at 500 levels)."""
        return self.rle_bytes / self.full_bytes

    def describe(self) -> str:
        return (
            f"{self.discretization_levels:>5} levels | full {self.full_bytes / 1000:8.1f} kB"
            f" | RLE {self.rle_bytes / 1000:8.1f} kB"
            f" | ratio {self.compression_ratio:5.2f}"
        )


class DecisionTable:
    """The FastMPC lookup structure over (buffer, prev level, throughput).

    The flat layout is C-order ``(buffer_bin, prev_level, throughput_bin)``
    with the throughput axis fastest — neighbouring throughput bins almost
    always share a decision, which is what makes the RLE effective.
    """

    __slots__ = ("buffer_bins", "num_levels", "throughput_bins", "_rle", "_full")

    def __init__(
        self,
        buffer_bins: Binning,
        num_levels: int,
        throughput_bins: Binning,
        decisions_flat: Sequence[int],
        keep_full: bool = False,
    ) -> None:
        if num_levels < 1:
            raise ValueError("need at least one ladder level")
        expected = buffer_bins.count * num_levels * throughput_bins.count
        if len(decisions_flat) != expected:
            raise ValueError(
                f"{len(decisions_flat)} decisions but the index space has {expected}"
            )
        self.buffer_bins = buffer_bins
        self.num_levels = num_levels
        self.throughput_bins = throughput_bins
        if HAVE_NUMPY:
            arr = np.asarray(decisions_flat, dtype=np.int64)
            if arr.min() < 0 or arr.max() >= num_levels:
                raise ValueError("decisions must be valid ladder level indices")
            self._rle = RunLengthEncodedTable.encode(arr)
            self._full = arr.astype(np.uint8) if keep_full else None
        else:
            flat = [int(v) for v in decisions_flat]
            if min(flat) < 0 or max(flat) >= num_levels:
                raise ValueError("decisions must be valid ladder level indices")
            self._rle = RunLengthEncodedTable.encode(flat)
            self._full = bytearray(flat) if keep_full else None

    # ------------------------------------------------------------------

    def _flat_index(self, buffer_idx: int, prev_level: int, throughput_idx: int) -> int:
        if not 0 <= prev_level < self.num_levels:
            raise IndexError(f"prev level {prev_level} out of range")
        return (
            buffer_idx * self.num_levels + prev_level
        ) * self.throughput_bins.count + throughput_idx

    def lookup(
        self, buffer_level_s: float, prev_level: int, predicted_kbps: float
    ) -> int:
        """The online step: quantize the state, then one run lookup."""
        b = self.buffer_bins.index_of(buffer_level_s)
        c = self.throughput_bins.index_of(predicted_kbps)
        flat = self._flat_index(b, prev_level, c)
        if self._full is not None:
            return int(self._full[flat])
        return self._rle.lookup(flat)

    def lookup_batch(self, buffer_levels_s, prev_levels, predicted_kbps):
        """Vectorized :meth:`lookup` over equal-length state arrays.

        ``prev_levels`` must already be valid ladder indices (the
        decision service validates per request and degrades invalid ones
        to the fallback *before* batching).  Returns an ``int64`` array
        of level indices (a list without NumPy).  Answers are identical
        to per-element :meth:`lookup` calls: both paths share the
        binnings' index arithmetic and the RLE run search.
        """
        if not HAVE_NUMPY:
            return [
                self.lookup(float(b), int(p), float(c))
                for b, p, c in zip(buffer_levels_s, prev_levels, predicted_kbps)
            ]
        b = self.buffer_bins.index_of_batch(buffer_levels_s)
        c = self.throughput_bins.index_of_batch(predicted_kbps)
        prev = np.asarray(prev_levels, dtype=np.int64)
        if prev.size and (prev.min() < 0 or prev.max() >= self.num_levels):
            raise IndexError("prev level out of range")
        flat = (b * self.num_levels + prev) * self.throughput_bins.count + c
        if self._full is not None:
            return np.asarray(self._full)[flat].astype(np.int64)
        return self._rle.lookup_batch(flat)

    def lookup_traced(
        self,
        buffer_level_s: float,
        prev_level: int,
        predicted_kbps: float,
        tracer,
        session_id: str = "",
    ) -> int:
        """:meth:`lookup` plus a :class:`repro.obs.TableLookup` event.

        Returns the same level as :meth:`lookup` on the same inputs; the
        event records the quantized bins, the RLE search depth (0 when
        the full table answered), and the lookup wall time.
        """
        t0 = time.perf_counter()
        b = self.buffer_bins.index_of(buffer_level_s)
        c = self.throughput_bins.index_of(predicted_kbps)
        flat = self._flat_index(b, prev_level, c)
        if self._full is not None:
            level, depth = int(self._full[flat]), 0
        else:
            level, depth = self._rle.lookup_profiled(flat)
        tracer.emit(
            TableLookup(
                session_id=session_id,
                t_mono=tracer.now(),
                buffer_bin=b,
                prev_level=prev_level,
                throughput_bin=c,
                level=level,
                num_runs=self._rle.num_runs,
                depth=depth,
                wall_s=time.perf_counter() - t0,
            )
        )
        return level

    @property
    def num_entries(self) -> int:
        return len(self._rle)

    @property
    def rle(self) -> RunLengthEncodedTable:
        return self._rle

    def size_report(self, discretization_levels: int) -> TableSizeReport:
        """Full-table vs RLE sizes (one Table 1 row).

        Full storage is one byte per entry (levels fit a u8, as in the
        paper's 5-level ladder); RLE records are 5 bytes per run.
        """
        return TableSizeReport(
            discretization_levels=discretization_levels,
            num_entries=self.num_entries,
            full_bytes=self.num_entries,
            rle_bytes=self._rle.size_bytes(),
        )

    # ------------------------------------------------------------------
    # Portable serialization (the persistent on-disk table cache)
    # ------------------------------------------------------------------

    _MAGIC = b"RPROTBL1"
    _SPACING_CODES = {"linear": 0, "log": 1}

    @staticmethod
    def _pack_binning(binning: Binning) -> bytes:
        return struct.pack(
            "<ddIB",
            binning.low,
            binning.high,
            binning.count,
            DecisionTable._SPACING_CODES[binning.spacing],
        )

    @staticmethod
    def _unpack_binning(blob: bytes, offset: int) -> Tuple[Binning, int]:
        low, high, count, code = struct.unpack_from("<ddIB", blob, offset)
        spacing = {v: k for k, v in DecisionTable._SPACING_CODES.items()}[code]
        return Binning(low, high, count, spacing), offset + struct.calcsize("<ddIB")

    def to_bytes(self) -> bytes:
        """Lossless serialization: binnings, shape flags, then the RLE.

        ``from_bytes(to_bytes())`` reproduces a bitwise-identical table
        (same binnings, same runs, same lookups).
        """
        return b"".join(
            [
                self._MAGIC,
                self._pack_binning(self.buffer_bins),
                self._pack_binning(self.throughput_bins),
                struct.pack("<IB", self.num_levels, int(self._full is not None)),
                self._rle.to_bytes(),
            ]
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "DecisionTable":
        """Inverse of :meth:`to_bytes`."""
        if blob[: len(cls._MAGIC)] != cls._MAGIC:
            raise ValueError("not a serialized DecisionTable")
        offset = len(cls._MAGIC)
        buffer_bins, offset = cls._unpack_binning(blob, offset)
        throughput_bins, offset = cls._unpack_binning(blob, offset)
        num_levels, keep_full = struct.unpack_from("<IB", blob, offset)
        offset += struct.calcsize("<IB")
        rle = RunLengthEncodedTable.from_bytes(blob[offset:])
        return cls(
            buffer_bins,
            num_levels,
            throughput_bins,
            rle.decode(),
            keep_full=bool(keep_full),
        )

    @classmethod
    def from_buffer(cls, buffer) -> "DecisionTable":
        """Zero-copy view over a serialized table (the :meth:`to_bytes`
        layout), typically an ``mmap`` of a published table file.

        Unlike :meth:`from_bytes`, the decision vector is never decoded:
        lookups binary-search the serialized run records in place through
        a :class:`MappedRunLengthTable`, so N worker processes mapping
        the same file share one copy of the table in page cache.  Only
        the fixed-size header (binnings, ladder size) and the O(runs)
        structure validation read the buffer up front.

        ``lookup``/``lookup_traced`` answers are identical to the
        in-memory table's — :meth:`same_decisions` (or the Hypothesis
        parity suite) checks that end to end.
        """
        view = memoryview(buffer)
        if view.ndim != 1 or view.itemsize != 1:
            view = view.cast("B")
        magic_len = len(cls._MAGIC)
        if bytes(view[:magic_len]) != cls._MAGIC:
            raise ValueError("not a serialized DecisionTable")
        offset = magic_len
        buffer_bins, offset = cls._unpack_binning(view, offset)
        throughput_bins, offset = cls._unpack_binning(view, offset)
        num_levels, _keep_full = struct.unpack_from("<IB", view, offset)
        offset += struct.calcsize("<IB")
        if num_levels < 1:
            raise ValueError("need at least one ladder level")
        rle = MappedRunLengthTable(view[offset:])
        expected = buffer_bins.count * num_levels * throughput_bins.count
        if len(rle) != expected:
            raise ValueError(
                f"{len(rle)} decisions but the index space has {expected}"
            )
        if rle.max_value >= num_levels:
            raise ValueError("decisions must be valid ladder level indices")
        table = object.__new__(cls)
        table.buffer_bins = buffer_bins
        table.num_levels = num_levels
        table.throughput_bins = throughput_bins
        table._rle = rle
        table._full = None
        return table

    def same_decisions(self, other: "DecisionTable") -> bool:
        """True when ``other`` answers every lookup identically.

        Compares the binnings, ladder size, and the run-length encoding
        byte for byte (the RLE is canonical: one encoding per decision
        vector), ignoring storage details like ``keep_full`` or whether
        either side is buffer-backed.  This is the parity check the
        cluster runs after mapping a published table file.
        """
        return (
            self.num_levels == other.num_levels
            and self._same_binning(self.buffer_bins, other.buffer_bins)
            and self._same_binning(self.throughput_bins, other.throughput_bins)
            and self._rle.to_bytes() == other._rle.to_bytes()
        )

    @staticmethod
    def _same_binning(a: Binning, b: Binning) -> bool:
        return (
            a.low == b.low
            and a.high == b.high
            and a.count == b.count
            and a.spacing == b.spacing
        )
