"""Lossless fixed-bucket histograms — the shared aggregation primitive.

Extracted from the service metrics layer so every population-scale
consumer (the cluster ``/metrics`` merge, the fleet Monte Carlo driver)
shares one implementation without importing :mod:`repro.service`.

The design point is *losslessness under merge*: a histogram is integer
bucket counts plus a count/sum/max triple, every field of which merges
associatively — so aggregating per-shard histograms produces exactly the
per-bucket counts a single shared histogram would have observed, and
quantile estimates carry the same one-bucket error bound regardless of
how many processes the observations were scattered across.  The
``to_dict`` / ``from_dict`` documents round-trip through JSON exactly
(Python serialises floats via ``repr``), which is what lets snapshots
cross process boundaries and still merge losslessly.

Two deliberate determinism properties for the fleet driver:

* bucket counts, the total count, and the max are exact and
  order-independent;
* :meth:`FixedBucketHistogram.observe_many` accumulates the value sum
  with :func:`math.fsum` (correctly rounded, hence independent of both
  observation order and of whether the NumPy bucketing fast path ran),
  so per-shard sums are reproducible bit for bit across worker counts.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional, Sequence, Type

from .npcompat import HAVE_NUMPY, np

__all__ = [
    "FixedBucketHistogram",
    "merge_histograms",
    "merge_histogram_dicts",
]


class FixedBucketHistogram:
    """Fixed-bucket histogram over arbitrary (possibly negative) values.

    ``observe`` is O(log buckets); memory is O(buckets) regardless of
    observation volume — the standard production trade-off (exact
    quantiles are not worth an unbounded reservoir at millions of
    sessions).  Quantiles are estimated by linear interpolation inside
    the bucket containing the target rank, exact to within one bucket
    width.

    Subclasses may pin a unit suffix for the serialized document keys
    (``key_suffix``), restrict values to be non-negative
    (``non_negative``), and fix the interpolation lower edge of the
    underflow bucket (``underflow_lower``) — the service layer's
    ``LatencyHistogram`` does all three.
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_max")

    #: Appended to ``bounds``/``sum``/``mean``/``max``/``p50``/``p99``
    #: keys in the serialized document (e.g. ``"_us"`` for latencies).
    key_suffix = ""
    #: When True, negative observations and non-positive bounds raise.
    non_negative = False
    #: Name used in the negative-observation error message.
    value_name = "value"
    #: Lower interpolation edge of the underflow bucket; ``None`` means
    #: one first-bucket-width below the first bound.
    underflow_lower: Optional[float] = None

    def __init__(self, bounds: Sequence[float]) -> None:
        edges = [float(b) for b in bounds]
        if not edges or edges != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("bucket bounds must be strictly increasing")
        if self.non_negative and edges[0] <= 0:
            raise ValueError("bucket bounds must be positive")
        self._bounds = edges
        self._counts = [0] * (len(edges) + 1)  # last bucket = +inf
        self._count = 0
        self._sum = 0.0
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(self, value: float) -> None:
        if self.non_negative and value < 0:
            raise ValueError(f"{self.value_name} must be >= 0")
        self._counts[bisect.bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value > self._max:
            self._max = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Bulk :meth:`observe` with order-independent accumulation.

        Bucket counts come from a vectorized ``searchsorted`` when NumPy
        is available (identical to per-value ``bisect_left``); the sum
        uses :func:`math.fsum`, so the result does not depend on the
        order of ``values`` or on the NumPy fast path being taken.
        """
        if HAVE_NUMPY and not isinstance(values, (list, tuple)):
            values = np.asarray(values, dtype=np.float64).tolist()
        else:
            values = [float(v) for v in values]
        if not values:
            return
        if self.non_negative and min(values) < 0:
            raise ValueError(f"{self.value_name} must be >= 0")
        if HAVE_NUMPY:
            arr = np.asarray(values, dtype=np.float64)
            idx = np.searchsorted(np.asarray(self._bounds), arr, side="left")
            for i, c in zip(*[u.tolist() for u in np.unique(idx, return_counts=True)]):
                self._counts[i] += c
        else:
            for v in values:
                self._counts[bisect.bisect_left(self._bounds, v)] += 1
        self._count += len(values)
        self._sum = math.fsum([self._sum] + values)
        peak = max(values)
        if peak > self._max:
            self._max = peak

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def max_value(self) -> float:
        return self._max if self._count else 0.0

    @property
    def sum_value(self) -> float:
        return self._sum

    @property
    def bounds(self) -> tuple:
        return tuple(self._bounds)

    @property
    def bucket_counts(self) -> tuple:
        return tuple(self._counts)

    def _underflow_edge(self) -> float:
        if self.underflow_lower is not None:
            return self.underflow_lower
        if len(self._bounds) > 1:
            return self._bounds[0] - (self._bounds[1] - self._bounds[0])
        return self._bounds[0] - 1.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]; 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self._bounds[i - 1] if i > 0 else self._underflow_edge()
                # The overflow bucket has no upper edge; report the max seen.
                upper = self._bounds[i] if i < len(self._bounds) else self._max
                if upper <= lower:
                    return upper
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self._max  # pragma: no cover - numeric safety

    # ------------------------------------------------------------------
    # Merge + serialization — the lossless cluster/fleet path
    # ------------------------------------------------------------------

    def merge(self, other: "FixedBucketHistogram") -> None:
        """Fold another histogram (same bounds) into this one."""
        if other._bounds != self._bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self._count += other._count
        self._sum += other._sum
        self._max = max(self._max, other._max)

    def to_dict(self) -> dict:
        s = self.key_suffix
        return {
            f"bounds{s}": list(self._bounds),
            "counts": list(self._counts),
            "count": self._count,
            f"sum{s}": self._sum,
            f"mean{s}": self.mean,
            f"max{s}": self.max_value,
            f"p50{s}": self.quantile(0.50),
            f"p99{s}": self.quantile(0.99),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FixedBucketHistogram":
        """Reconstruct a histogram from its :meth:`to_dict` document.

        The per-bucket counts, total count, sum, and max round-trip
        exactly (JSON floats serialise via ``repr``), so a snapshot
        shipped across a process boundary merges losslessly — the
        mechanism behind both the cluster-wide ``/metrics`` aggregation
        and the fleet driver's population merge.
        """
        if not isinstance(payload, dict):
            raise ValueError("histogram payload must be a JSON object")
        s = cls.key_suffix
        try:
            bounds = payload[f"bounds{s}"]
            counts = [int(c) for c in payload["counts"]]
            count = int(payload["count"])
            total = float(payload[f"sum{s}"])
            peak = float(payload[f"max{s}"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed histogram payload: {exc}") from None
        histogram = cls(bounds)
        if len(counts) != len(histogram._counts):
            raise ValueError(
                f"{len(counts)} bucket counts for {len(bounds)} bounds"
            )
        if any(c < 0 for c in counts) or count != sum(counts):
            raise ValueError("bucket counts must be >= 0 and sum to the count")
        histogram._counts = counts
        histogram._count = count
        histogram._sum = total
        histogram._max = peak if count else -math.inf
        return histogram


def merge_histograms(
    histograms: Sequence[FixedBucketHistogram],
) -> FixedBucketHistogram:
    """Merge histograms (same class, same bounds) into a fresh instance."""
    if not histograms:
        raise ValueError("need at least one histogram to merge")
    cls = type(histograms[0])
    merged = cls(histograms[0].bounds)
    for histogram in histograms:
        merged.merge(histogram)
    return merged


def merge_histogram_dicts(
    payloads: List[dict],
    cls: Type[FixedBucketHistogram] = FixedBucketHistogram,
) -> dict:
    """Merge serialized histogram documents; the cluster-metrics path."""
    merged = cls.from_dict(payloads[0])
    for payload in payloads[1:]:
        merged.merge(cls.from_dict(payload))
    return merged.to_dict()
