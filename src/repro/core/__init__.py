"""The paper's core contribution: QoE model, MPC, RobustMPC, FastMPC."""

from .qoe import QoEBreakdown, QoEWeights, compute_qoe
from .horizon import (
    HorizonProblem,
    HorizonSolution,
    solve_horizon,
    solve_horizon_dp,
    solve_horizon_enumerate,
    solve_horizon_reference,
    solve_startup,
)
from .kernel import build_table_decisions, solve_horizon_batch
from .mpc import DEFAULT_HORIZON, MPCController, make_mpc_opt
from .robust import RobustMPCController
from .table import Binning, DecisionTable, RunLengthEncodedTable, TableSizeReport
from .fastmpc import (
    FastMPCConfig,
    FastMPCController,
    build_decision_table,
    clear_table_cache,
    table_size_sweep,
)
# The MDP extension is the one core module that genuinely needs NumPy
# (dense transition matrices, value iteration).  Everything else runs on
# the pure-Python fallbacks (see .npcompat), so a NumPy-less environment
# still imports the package and serves decisions; the MDP symbols
# degrade to None there.
try:
    from .mdp import MDPController, ThroughputMarkovModel
except ImportError:  # pragma: no cover - exercised by the no-numpy test
    MDPController = None  # type: ignore[assignment, misc]
    ThroughputMarkovModel = None  # type: ignore[assignment, misc]
from .planner import OfflineBeamPlanner, PlanResult
from .offline import (
    CumulativeBits,
    exhaustive_optimal,
    fluid_upper_bound,
    normalized_qoe,
    simulate_fixed_plan,
)

__all__ = [
    "QoEBreakdown",
    "QoEWeights",
    "compute_qoe",
    "HorizonProblem",
    "HorizonSolution",
    "solve_horizon",
    "solve_horizon_batch",
    "solve_horizon_reference",
    "solve_startup",
    "build_table_decisions",
    "DEFAULT_HORIZON",
    "MPCController",
    "make_mpc_opt",
    "RobustMPCController",
    "Binning",
    "DecisionTable",
    "RunLengthEncodedTable",
    "TableSizeReport",
    "FastMPCConfig",
    "FastMPCController",
    "build_decision_table",
    "clear_table_cache",
    "table_size_sweep",
    "MDPController",
    "ThroughputMarkovModel",
    "OfflineBeamPlanner",
    "PlanResult",
    "CumulativeBits",
    "exhaustive_optimal",
    "fluid_upper_bound",
    "normalized_qoe",
    "simulate_fixed_plan",
]
