"""RobustMPC — Section 4.3 and Theorem 1.

RobustMPC maximises the *worst-case* QoE over a throughput uncertainty
interval ``[C_lower, C_upper]`` instead of trusting a point estimate.
Theorem 1 proves the max-min problem collapses: only the rebuffering term
of the QoE depends on throughput, and it worsens monotonically as
throughput falls, so the inner minimum is attained at the lower bound.
Hence

.. math::  f_{robustmpc}(R_{k-1}, B_k, [\\underline{C}, \\bar C])
           = f_{mpc}(R_{k-1}, B_k, \\underline{C})

— regular MPC fed the lower bound.  The paper instantiates the bound from
recent prediction accuracy: ``C_lower = C_hat / (1 + err)`` with ``err``
the maximum absolute percentage error over the past 5 chunks
(Section 7.1.2, item 4).

:class:`RobustMPCController` implements exactly that: it subclasses
:class:`~repro.core.mpc.MPCController` and overrides only the
prediction-transformation hook, which *is* Theorem 1 in code.  The
per-session solver scratch (the batched-kernel evaluator set up in
``prepare``) is inherited unchanged, so RobustMPC decisions are just as
allocation-free as the base controller's.
"""

from __future__ import annotations

from typing import List, Optional

from ..prediction.base import ThroughputPredictor
from .mpc import DEFAULT_HORIZON, MPCController

__all__ = ["RobustMPCController"]


class RobustMPCController(MPCController):
    """MPC on the throughput lower bound ``C_hat / (1 + err)``.

    Parameters
    ----------
    predictor / horizon / optimize_startup:
        As for :class:`MPCController`.
    error_window:
        How many recent chunks the max-error bound considers (paper: 5).
    error_floor:
        A minimum assumed error, useful to keep a safety margin even after
        a run of perfect predictions (0 reproduces the paper exactly).
    """

    name = "robust-mpc"

    def __init__(
        self,
        predictor: Optional[ThroughputPredictor] = None,
        horizon: int = DEFAULT_HORIZON,
        optimize_startup: bool = True,
        error_window: int = 5,
        error_floor: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if error_floor < 0:
            raise ValueError("error floor must be >= 0")
        super().__init__(
            predictor=predictor,
            horizon=horizon,
            optimize_startup=optimize_startup,
            error_window=error_window,
            name=name or self.name,
        )
        self.error_floor = error_floor

    def current_error_bound(self) -> float:
        """The ``err`` used for the next decision."""
        return max(self.error_tracker.max_recent_abs_error(), self.error_floor)

    def _transform_predictions(self, raw_kbps: List[float]) -> List[float]:
        err = self.current_error_bound()
        return [c / (1.0 + err) for c in raw_kbps]
