"""FastMPC — table-enumerated MPC (Section 5).

FastMPC does MPC's "Optimize" step offline: it enumerates the binned state
space (current buffer level x previous bitrate x predicted throughput),
solves each instance exactly, and stores only the *first* bitrate of each
optimal plan.  Online, a decision is one state quantisation plus one
binary-search lookup — no solver ships with the player.

The offline enumeration delegates to the batched horizon kernel
(:func:`repro.core.kernel.build_table_decisions`), which evaluates the
whole binned state space — every ``(buffer_bin, prev_level,
throughput_bin)`` instance — in a handful of NumPy passes rather than a
Python loop per state.  Built tables are memoised per configuration
in-process because every session of an experiment shares one table, and
optionally persisted to a disk cache (``cache_dir`` argument or the
``REPRO_CACHE_DIR`` environment variable) so repeated benchmark/figure
runs skip the build entirely — mirroring deployment, where the table is
computed once and downloaded by every player.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..abr.base import ABRAlgorithm, PlayerObservation
from ..prediction.base import ThroughputPredictor
from ..prediction.errors import PredictionErrorTracker
from ..prediction.harmonic import HarmonicMeanPredictor
from .kernel import build_table_decisions
from .qoe import QoEWeights
from .table import Binning, DecisionTable, TableSizeReport

__all__ = [
    "FastMPCConfig",
    "build_decision_table",
    "clear_table_cache",
    "table_size_sweep",
    "FastMPCController",
]


@dataclass(frozen=True)
class FastMPCConfig:
    """Discretization parameters for the offline enumeration.

    The paper's deployed configuration is 100 buffer bins and 100
    throughput bins with horizon 5 (Section 5.2); Figure 12a sweeps the
    bin count and Table 1 reports the resulting table sizes.
    """

    buffer_bins: int = 100
    throughput_bins: int = 100
    horizon: int = 5
    throughput_low_kbps: Optional[float] = None  # default: 0.2 * min ladder rate
    throughput_high_kbps: Optional[float] = None  # default: 2.0 * max ladder rate
    throughput_spacing: str = "log"
    keep_full_table: bool = False

    def __post_init__(self) -> None:
        if self.buffer_bins < 1 or self.throughput_bins < 1:
            raise ValueError("bin counts must be >= 1")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")

    def resolved_range(self, ladder_kbps: Tuple[float, ...]) -> Tuple[float, float]:
        low = (
            self.throughput_low_kbps
            if self.throughput_low_kbps is not None
            else 0.2 * min(ladder_kbps)
        )
        high = (
            self.throughput_high_kbps
            if self.throughput_high_kbps is not None
            else 2.0 * max(ladder_kbps)
        )
        if not (0 < low < high):
            raise ValueError("need 0 < throughput_low < throughput_high")
        return low, high


_TABLE_CACHE: Dict[tuple, DecisionTable] = {}


def clear_table_cache() -> None:
    """Drop all memoised decision tables (used by tests)."""
    _TABLE_CACHE.clear()


def _cache_key(
    ladder_kbps: Tuple[float, ...],
    quality_values: Tuple[float, ...],
    chunk_duration_s: float,
    buffer_capacity_s: float,
    weights: QoEWeights,
    config: FastMPCConfig,
) -> tuple:
    return (
        ladder_kbps,
        quality_values,
        chunk_duration_s,
        buffer_capacity_s,
        (weights.switching, weights.rebuffering, weights.startup),
        (
            config.buffer_bins,
            config.throughput_bins,
            config.horizon,
            config.throughput_low_kbps,
            config.throughput_high_kbps,
            config.throughput_spacing,
            config.keep_full_table,
        ),
    )


def build_decision_table(
    ladder_kbps: Iterable[float],
    chunk_duration_s: float,
    buffer_capacity_s: float,
    weights: QoEWeights,
    quality_values: Optional[Iterable[float]] = None,
    config: Optional[FastMPCConfig] = None,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> DecisionTable:
    """Enumerate the binned state space and solve every instance offline.

    ``quality_values`` defaults to identity quality (``q(R) = R``).  Chunk
    sizes are the CBR model ``d(R) = L * R`` — the paper's table also keys
    on nominal rates, with VBR left to the online solver.

    Caching is two-level.  The in-process memo (``use_cache``) shares one
    table across every session of a run.  The optional disk cache —
    enabled by ``cache_dir`` or the ``REPRO_CACHE_DIR`` environment
    variable — additionally persists tables across processes and runs,
    keyed by the full configuration tuple; a hit skips the build and a
    stale/corrupt entry silently falls back to rebuilding.
    """
    ladder = tuple(float(r) for r in ladder_kbps)
    if not ladder or list(ladder) != sorted(ladder):
        raise ValueError("ladder must be non-empty and ascending")
    quality = (
        tuple(float(q) for q in quality_values)
        if quality_values is not None
        else ladder
    )
    if len(quality) != len(ladder):
        raise ValueError("one quality value per ladder level required")
    config = config if config is not None else FastMPCConfig()
    key = _cache_key(
        ladder, quality, chunk_duration_s, buffer_capacity_s, weights, config
    )
    if use_cache and key in _TABLE_CACHE:
        return _TABLE_CACHE[key]

    # Imported lazily: experiments.persistence sits above core in the
    # layering (it imports experiments.runner), so a module-level import
    # here would be circular.
    from ..experiments import persistence

    cached = persistence.load_cached_table(key, cache_dir=cache_dir)
    if cached is not None and cached.num_levels == len(ladder):
        if use_cache:
            _TABLE_CACHE[key] = cached
        return cached

    low, high = config.resolved_range(ladder)
    buffer_binning = Binning(0.0, buffer_capacity_s, config.buffer_bins, "linear")
    throughput_binning = Binning(low, high, config.throughput_bins, config.throughput_spacing)

    decisions = build_table_decisions(
        level_sizes_kilobits=[chunk_duration_s * r for r in ladder],  # CBR
        quality_values=quality,
        buffer_centers=buffer_binning.centers,
        throughput_centers=throughput_binning.centers,
        horizon=config.horizon,
        switching=weights.switching,
        rebuffering=weights.rebuffering,
        chunk_duration_s=chunk_duration_s,
        buffer_capacity_s=buffer_capacity_s,
    )

    if hasattr(decisions, "reshape"):
        decisions_flat = decisions.reshape(-1)
    else:  # pure-Python fallback: nested (buffer, prev, throughput) lists
        decisions_flat = [
            level for plane in decisions for row in plane for level in row
        ]
    table = DecisionTable(
        buffer_binning,
        len(ladder),
        throughput_binning,
        decisions_flat,
        keep_full=config.keep_full_table,
    )
    if use_cache:
        _TABLE_CACHE[key] = table
    persistence.save_cached_table(key, table, cache_dir=cache_dir)
    return table


def table_size_sweep(
    ladder_kbps: Iterable[float],
    chunk_duration_s: float,
    buffer_capacity_s: float,
    weights: QoEWeights,
    discretization_levels: Iterable[int] = (50, 100, 200, 500),
    horizon: int = 5,
    cache_dir: Optional[str] = None,
) -> List[TableSizeReport]:
    """Reproduce Table 1: table size vs discretization granularity.

    Each level count ``n`` uses ``n`` buffer bins and ``n`` throughput
    bins, mirroring the paper's single "discretization levels" knob.
    With a disk cache (``cache_dir`` / ``REPRO_CACHE_DIR``), a repeat
    sweep of the same configuration loads every table instead of
    rebuilding.
    """
    ladder = tuple(float(r) for r in ladder_kbps)
    reports = []
    for n in discretization_levels:
        config = FastMPCConfig(buffer_bins=n, throughput_bins=n, horizon=horizon)
        table = build_decision_table(
            ladder,
            chunk_duration_s,
            buffer_capacity_s,
            weights,
            config=config,
            cache_dir=cache_dir,
        )
        reports.append(table.size_report(n))
    return reports


class FastMPCController(ABRAlgorithm):
    """The table-driven player-side algorithm.

    Online cost per decision: one harmonic-mean update, two bin index
    computations, and one binary search — the "negligible overhead"
    claimed in Section 7.4 and measured by the overhead benchmark.

    Parameters
    ----------
    predictor:
        Defaults to the harmonic mean of the last 5 chunks.
    config:
        Discretization settings; the table is built (or fetched from the
        module cache) at :meth:`prepare` time.
    robust:
        When True, queries the table with the RobustMPC lower bound
        ``C_hat / (1 + err)`` — valid because the table's throughput axis
        *is* the MPC input that Theorem 1 says to lower-bound.
    cache_dir:
        Optional disk-cache directory for the built table (defaults to
        the ``REPRO_CACHE_DIR`` environment variable when unset).
    """

    name = "fastmpc"

    def __init__(
        self,
        predictor: Optional[ThroughputPredictor] = None,
        config: Optional[FastMPCConfig] = None,
        robust: bool = False,
        error_window: int = 5,
        name: Optional[str] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.predictor = predictor if predictor is not None else HarmonicMeanPredictor()
        self.table_config = config if config is not None else FastMPCConfig()
        self.robust = robust
        self.cache_dir = cache_dir
        self.error_tracker = PredictionErrorTracker(window=error_window)
        if name:
            self.name = name
        elif robust:
            self.name = "robust-fastmpc"
        self._pending_raw_prediction: Optional[float] = None
        self.table: Optional[DecisionTable] = None

    def prepare(self, manifest, config) -> None:
        super().prepare(manifest, config)
        self.error_tracker.reset()
        self._pending_raw_prediction = None
        quality_values = tuple(config.quality(r) for r in manifest.ladder)
        self.table = build_decision_table(
            manifest.ladder.levels_kbps,
            manifest.chunk_duration_s,
            config.buffer_capacity_s,
            config.weights,
            quality_values=quality_values,
            config=self.table_config,
            cache_dir=self.cache_dir,
        )

    def predictors(self) -> Iterable[ThroughputPredictor]:
        return (self.predictor,)

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self._require_prepared()
        assert self.table is not None
        raw = self.predictor.predict(1)[0]
        self._pending_raw_prediction = raw
        query = raw
        if self.robust:
            query = raw / (1.0 + self.error_tracker.max_recent_abs_error())
        prev = observation.prev_level_index if observation.prev_level_index is not None else 0
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return self.table.lookup_traced(
                observation.buffer_level_s, prev, query, tracer
            )
        return self.table.lookup(observation.buffer_level_s, prev, query)

    def on_download_complete(self, result) -> None:
        if self._pending_raw_prediction is not None:
            self.error_tracker.record(
                self._pending_raw_prediction,
                result.throughput_kbps,
                duration_s=result.download_time_s,
                idle_s=result.idle_before_s,
                stall_s=result.stalled_s,
            )
            self._pending_raw_prediction = None
        super().on_download_complete(result)
