"""Optional-NumPy shim for the decision hot path.

The vectorized fast paths (the batched horizon kernel, flat-array table
lookups, service micro-batches) are NumPy computations, but nothing in
the *serving* story fundamentally needs NumPy: a published decision
table is quantize + lookup, and the wire protocol is ``struct``.  Every
module on that path imports NumPy through this shim instead of
directly, so an environment without NumPy still imports, serves, and
solves — it just runs the pure-Python fallbacks (bit-identical
decisions, scalar speed).

Usage::

    from .npcompat import HAVE_NUMPY, np

    if HAVE_NUMPY:
        ...vectorized path over np arrays...
    else:
        ...pure-Python fallback...

``np`` is ``None`` when NumPy is absent; guard every use with
``HAVE_NUMPY`` (or a ``np is not None`` check).  Code outside the hot
path — the MDP extension, figure pipelines — may keep importing NumPy
directly; :mod:`repro.core`'s package init degrades those symbols to
``None`` instead of failing the whole package import.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised via the no-numpy subprocess test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY", "np"]
