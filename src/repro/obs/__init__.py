"""Observability layer: structured decision tracing, profiling, replay.

Public surface:

* :mod:`repro.obs.events` — the typed event vocabulary and its lossless
  JSONL encoding;
* :mod:`repro.obs.tracer` — :class:`Tracer`, bounded
  :class:`RingBufferSink`, streaming :class:`JsonlSink`, and spans;
* :mod:`repro.obs.replay` — recompute a session's Eq. 5 QoE from its
  timeline; must match the live run exactly.

See ``docs/observability.md`` for the event vocabulary and the
trace-replay contract.
"""

from .events import (
    EVENT_TYPES,
    ChunkDecision,
    ChunkDownload,
    Event,
    FleetShard,
    FleetSummary,
    PredictionSpan,
    Rebuffer,
    RequestSpan,
    SessionSummary,
    SolverCall,
    TableLookup,
    event_from_dict,
    event_from_json,
    event_to_dict,
    event_to_json,
)
from .replay import (
    ReplayedSession,
    prediction_errors,
    read_timeline,
    replay_session,
    split_sessions,
    verify_timeline,
)
from .tracer import NULL_TRACER, JsonlSink, RingBufferSink, Span, Tracer

__all__ = [
    "Event",
    "ChunkDecision",
    "ChunkDownload",
    "Rebuffer",
    "SolverCall",
    "TableLookup",
    "RequestSpan",
    "PredictionSpan",
    "SessionSummary",
    "FleetShard",
    "FleetSummary",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
    "event_to_json",
    "event_from_json",
    "Tracer",
    "Span",
    "RingBufferSink",
    "JsonlSink",
    "NULL_TRACER",
    "read_timeline",
    "split_sessions",
    "replay_session",
    "verify_timeline",
    "prediction_errors",
    "ReplayedSession",
]
