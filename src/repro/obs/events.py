"""The structured-event vocabulary of the observability layer.

Every quantity the paper's evaluation accounts per chunk — the bitrate
chosen, the buffer trajectory of Eqs. (1)-(4), rebuffer time, and the
Eq. 5 terms — is carried by one of the typed events below, so a session
timeline is a complete, replayable record of a run:

* :class:`ChunkDecision`   — the controller's choice at a chunk boundary;
* :class:`ChunkDownload`   — the completed transfer and its dynamics;
* :class:`Rebuffer`        — a stall (only emitted when one occurred);
* :class:`SolverCall`      — one horizon-kernel invocation (profiling);
* :class:`TableLookup`     — one FastMPC table query (profiling);
* :class:`RequestSpan`     — one decision-service request span;
* :class:`PredictionSpan`  — one predictor forecast vs its outcome;
* :class:`SessionSummary`  — end-of-session totals and the Eq. 5 score;
* :class:`FleetShard`      — one completed fleet Monte Carlo shard;
* :class:`FleetSummary`    — a whole fleet run's throughput accounting;
* :class:`ArenaWindow`     — one time window of a shared-bottleneck arena;
* :class:`ArenaSummary`    — an arena run's whole-population totals.

Events are frozen dataclasses with only JSON-scalar fields, so the JSONL
encoding (:func:`event_to_json` / :func:`event_from_json`) round-trips
every event losslessly — Python's ``json`` serialises floats via
``repr``, which is exact.  Each event carries the ``session_id`` it
belongs to and a monotonic-clock stamp ``t_mono`` (seconds; comparable
only within one process).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Type

__all__ = [
    "Event",
    "ChunkDecision",
    "ChunkDownload",
    "Rebuffer",
    "SolverCall",
    "TableLookup",
    "RequestSpan",
    "PredictionSpan",
    "SessionSummary",
    "FleetShard",
    "FleetSummary",
    "ArenaWindow",
    "ArenaSummary",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
    "event_to_json",
    "event_from_json",
]


@dataclass(frozen=True)
class Event:
    """Base of all trace events; ``kind`` keys the JSONL encoding."""

    kind = "event"

    session_id: str
    t_mono: float  # monotonic-clock stamp, seconds


@dataclass(frozen=True)
class ChunkDecision(Event):
    """The controller's bitrate choice at the start of chunk ``k``.

    Carries the Section 3.3 decision inputs — buffer occupancy ``B_k``
    and the previous level ``R_{k-1}`` — plus the chosen level and the
    wall time the decision itself took (the Section 7.4 overhead).
    """

    kind = "chunk-decision"

    chunk_index: int
    buffer_s: float  # B_k at the decision instant
    prev_level: Optional[int]  # None at the session's first chunk
    level: int
    bitrate_kbps: float
    wall_time_s: float  # session clock t_k
    decide_wall_s: float  # real time spent inside select_bitrate


@dataclass(frozen=True)
class ChunkDownload(Event):
    """One completed chunk transfer with its Eq. 1-4 dynamics."""

    kind = "chunk-download"

    chunk_index: int
    level: int
    bitrate_kbps: float
    size_kilobits: float  # d_k(R_k)
    download_time_s: float  # d_k(R_k) / C_k (Eq. 1/2)
    throughput_kbps: float  # C_k
    rebuffer_s: float  # (d_k/C_k - B_k)_+ (Eq. 3)
    buffer_before_s: float
    buffer_after_s: float
    wall_time_end_s: float
    waited_s: float  # Delta t_k (Eq. 4)


@dataclass(frozen=True)
class Rebuffer(Event):
    """A playback stall; emitted only when ``duration_s > 0``."""

    kind = "rebuffer"

    chunk_index: int
    duration_s: float
    wall_time_s: float  # session clock when the download ended


@dataclass(frozen=True)
class SolverCall(Event):
    """One horizon-solver invocation (online MPC or offline table build).

    ``op`` names the code path (``solve-horizon`` / ``solve-startup`` /
    ``solve-horizon-batch`` / ``table-build``); ``instances`` is the batch
    size and ``plans`` the candidate-plan count per instance.
    """

    kind = "solver-call"

    op: str
    instances: int
    plans: int
    wall_s: float


@dataclass(frozen=True)
class TableLookup(Event):
    """One FastMPC decision-table query (the Section 5.2 online step)."""

    kind = "table-lookup"

    buffer_bin: int
    prev_level: int
    throughput_bin: int
    level: int
    num_runs: int  # RLE runs searched over
    depth: int  # binary-search probes taken
    wall_s: float


@dataclass(frozen=True)
class RequestSpan(Event):
    """One decision-service request, measured on the monotonic clock.

    ``status`` is ``ok`` for a served decision, or names the failure;
    ``chaos`` stamps the injected misbehaviour (if any) onto the span so
    chaos runs are attributable request by request.  ``worker`` is the
    cluster worker index that served the request (``None`` outside a
    cluster), so a sharded deployment's spans attribute load and tail
    latency shard by shard.  ``arm`` is the experiment arm the session
    was routed to (``None`` when no A/B experiment is configured).
    """

    kind = "request-span"

    trace_id: str
    name: str  # span name, e.g. "decide" / "table-swap"
    wall_s: float
    status: str = "ok"
    chaos: Optional[str] = None
    worker: Optional[int] = None
    arm: Optional[str] = None


@dataclass(frozen=True)
class PredictionSpan(Event):
    """One throughput forecast paired with the download it predicted.

    Emitted per (chunk, predictor) by the simulator's session loops:
    ``predicted_kbps`` is the first horizon entry the predictor produced
    at decision time, ``actual_kbps`` the wall-clock rate the download
    measured (Eq. 2), and ``active_kbps`` the rate over active-transfer
    time only (stall time divided back out — the Kairos capacity view).
    ``error`` is the signed relative error vs the active rate, exactly
    ``(predicted - active) / active`` of the recorded floats, so replay
    reproduces a session's predicted-vs-actual error sequence bit for
    bit.  ``idle_s``/``stall_s``/``duration_s`` carry the chunk's on/off
    context for stratifying error by gap fraction.
    """

    kind = "prediction-span"

    chunk_index: int
    predictor: str
    predicted_kbps: float
    actual_kbps: float
    active_kbps: float
    error: float
    duration_s: float = 0.0
    idle_s: float = 0.0
    stall_s: float = 0.0


@dataclass(frozen=True)
class SessionSummary(Event):
    """End-of-session totals: the Eq. 5 accounting of the whole run.

    ``qoe_total`` is the live session's Eq. 5 score under the recorded
    weights — the value :func:`repro.obs.replay.replay_session` must
    reproduce exactly from the per-chunk events.
    """

    kind = "session-summary"

    algorithm: str
    trace_name: str
    num_chunks: int
    startup_delay_s: float
    total_rebuffer_s: float
    total_wall_time_s: float
    qoe_total: float
    weight_switching: float
    weight_rebuffering: float
    weight_startup: float


@dataclass(frozen=True)
class FleetShard(Event):
    """One completed shard of a fleet Monte Carlo run."""

    kind = "fleet-shard"

    shard_index: int
    sessions: int
    wall_s: float


@dataclass(frozen=True)
class FleetSummary(Event):
    """End-of-fleet totals: population size and measured throughput."""

    kind = "fleet-summary"

    sessions: int
    shards: int
    workers: int
    wall_s: float
    sessions_per_s: float


@dataclass(frozen=True)
class ArenaWindow(Event):
    """One ``[t0, t1)`` slice of a shared-bottleneck arena run.

    ``utilization``, ``jain``, and ``instability`` are ``None`` for
    windows with no capacity / no present players (see
    ``docs/fairness.md`` for the metric definitions).
    """

    kind = "arena-window"

    index: int
    t0_s: float
    t1_s: float
    active_players: int
    utilization: Optional[float]
    jain: Optional[float]
    switches: int
    instability: Optional[float]


@dataclass(frozen=True)
class ArenaSummary(Event):
    """End-of-arena totals over the whole player population."""

    kind = "arena-summary"

    players: int
    duration_s: float
    utilization: Optional[float]
    jain: Optional[float]
    unfairness: Optional[float]
    switches: int
    cross_kilobits: float


#: kind -> event class, the JSONL decoding registry.
EVENT_TYPES: Dict[str, Type[Event]] = {
    cls.kind: cls
    for cls in (
        ChunkDecision,
        ChunkDownload,
        Rebuffer,
        SolverCall,
        TableLookup,
        RequestSpan,
        PredictionSpan,
        SessionSummary,
        FleetShard,
        FleetSummary,
        ArenaWindow,
        ArenaSummary,
    )
}


def event_to_dict(event: Event) -> dict:
    """Encode as a plain dict with the ``kind`` discriminator first."""
    payload = {"kind": event.kind}
    payload.update(asdict(event))
    return payload


def event_from_dict(payload: dict) -> Event:
    """Inverse of :func:`event_to_dict`; unknown kinds/fields are errors."""
    if not isinstance(payload, dict):
        raise ValueError("event payload must be a JSON object")
    kind = payload.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    names = {f.name for f in fields(cls)}
    kwargs = {k: v for k, v in payload.items() if k != "kind"}
    unknown = set(kwargs) - names
    if unknown:
        raise ValueError(f"unknown fields for {kind!r}: {sorted(unknown)}")
    return cls(**kwargs)


def event_to_json(event: Event) -> str:
    """One JSONL line (no trailing newline)."""
    return json.dumps(event_to_dict(event), separators=(",", ":"))


def event_from_json(line: str) -> Event:
    """Decode one JSONL line back into its typed event."""
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ValueError(f"not a valid JSONL event line: {exc}") from None
    return event_from_dict(payload)
