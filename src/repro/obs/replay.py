"""Recompute session outcomes from a recorded timeline.

The trace-replay contract (see ``docs/observability.md``): a timeline
produced by the instrumented simulator, emulator, or ``repro-abr trace``
contains every term of the Eq. 5 accounting, so replaying it must
reproduce the live session's QoE **exactly** — the same floats, not
approximately.  That holds because the per-chunk events carry the very
values the live run accumulated, in order, and floating-point addition
of the same values in the same order is deterministic.

:func:`replay_session` rebuilds the bitrate sequence, rebuffer total and
startup delay from one session's events and re-scores Eq. 5;
:func:`verify_timeline` cross-checks the replay against the recorded
:class:`~repro.obs.events.SessionSummary` and reports any drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union

from ..qoe import QoEBreakdown, QoEWeights, compute_qoe
from .events import (
    ChunkDownload,
    Event,
    PredictionSpan,
    SessionSummary,
    event_from_json,
)

__all__ = [
    "read_timeline",
    "split_sessions",
    "ReplayedSession",
    "replay_session",
    "verify_timeline",
    "prediction_errors",
]


def read_timeline(source: Union[str, IO[str]]) -> List[Event]:
    """Load a JSONL timeline (path or open text stream); skips blank lines."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as stream:
            lines = stream.readlines()
    else:
        lines = list(source)
    return [event_from_json(line) for line in lines if line.strip()]


def split_sessions(events: Iterable[Event]) -> Dict[str, List[Event]]:
    """Group a mixed timeline by ``session_id``, preserving event order."""
    sessions: Dict[str, List[Event]] = {}
    for event in events:
        sessions.setdefault(event.session_id, []).append(event)
    return sessions


@dataclass(frozen=True)
class ReplayedSession:
    """One session re-scored from its timeline."""

    session_id: str
    level_indices: Tuple[int, ...]
    bitrates_kbps: Tuple[float, ...]
    total_rebuffer_s: float
    startup_delay_s: float
    qoe: QoEBreakdown
    summary: Optional[SessionSummary]

    @property
    def num_chunks(self) -> int:
        return len(self.bitrates_kbps)

    def mismatches(self) -> List[str]:
        """Exact-equality drift between the replay and the recorded
        summary (empty when the timeline is self-consistent)."""
        if self.summary is None:
            return ["timeline has no session-summary event"]
        problems = []
        if self.num_chunks != self.summary.num_chunks:
            problems.append(
                f"chunks: replay {self.num_chunks} != summary {self.summary.num_chunks}"
            )
        if self.total_rebuffer_s != self.summary.total_rebuffer_s:
            problems.append(
                f"rebuffer: replay {self.total_rebuffer_s!r}"
                f" != summary {self.summary.total_rebuffer_s!r}"
            )
        if self.qoe.total != self.summary.qoe_total:
            problems.append(
                f"qoe: replay {self.qoe.total!r} != summary {self.summary.qoe_total!r}"
            )
        return problems


def replay_session(
    events: Sequence[Event],
    weights: Optional[QoEWeights] = None,
    quality=None,
) -> ReplayedSession:
    """Re-score one session's Eq. 5 QoE from its per-chunk events.

    ``weights`` defaults to the weights recorded in the session's
    :class:`~repro.obs.events.SessionSummary`; ``quality`` defaults to
    identity — the contract covers identity-quality sessions (the CLI's
    default); pass the session's quality function for anything else.

    The rebuffer total is summed over the download events *in event
    order*, which is bit-identical to the live accumulation.
    """
    downloads = [e for e in events if isinstance(e, ChunkDownload)]
    if not downloads:
        raise ValueError("timeline contains no chunk-download events")
    summaries = [e for e in events if isinstance(e, SessionSummary)]
    summary = summaries[-1] if summaries else None
    session_id = downloads[0].session_id

    total_rebuffer = 0.0
    for d in downloads:
        total_rebuffer += d.rebuffer_s
    startup = summary.startup_delay_s if summary is not None else 0.0
    if weights is None:
        weights = (
            QoEWeights(
                switching=summary.weight_switching,
                rebuffering=summary.weight_rebuffering,
                startup=summary.weight_startup,
            )
            if summary is not None
            else QoEWeights.balanced()
        )
    bitrates = tuple(d.bitrate_kbps for d in downloads)
    qoe = compute_qoe(list(bitrates), total_rebuffer, startup, weights, quality)
    return ReplayedSession(
        session_id=session_id,
        level_indices=tuple(d.level for d in downloads),
        bitrates_kbps=bitrates,
        total_rebuffer_s=total_rebuffer,
        startup_delay_s=startup,
        qoe=qoe,
        summary=summary,
    )


def prediction_errors(
    events: Iterable[Event],
) -> Dict[str, List[PredictionSpan]]:
    """Extract and re-verify the predicted-vs-actual error sequences.

    Groups a timeline's :class:`~repro.obs.events.PredictionSpan` events
    by predictor name (event order preserved) after checking each span's
    recorded ``error`` against ``(predicted - active) / active``
    recomputed from its own floats — the same expression the live run
    evaluated, so equality is exact.  A span that does not reproduce its
    own error is corrupt and raises.
    """
    out: Dict[str, List[PredictionSpan]] = {}
    for event in events:
        if not isinstance(event, PredictionSpan):
            continue
        expected = (
            event.predicted_kbps - event.active_kbps
        ) / event.active_kbps
        if expected != event.error:
            raise ValueError(
                f"prediction span for chunk {event.chunk_index} does not "
                f"replay its own error: recorded {event.error!r}, "
                f"recomputed {expected!r}"
            )
        out.setdefault(event.predictor, []).append(event)
    return out


def verify_timeline(events: Iterable[Event]) -> Dict[str, List[str]]:
    """Replay every session in a timeline and collect drift per session.

    Returns ``{session_id: [mismatch, ...]}`` containing only sessions
    with problems — an empty dict means the whole timeline replays to
    exactly its recorded outcomes.
    """
    problems: Dict[str, List[str]] = {}
    for session_id, session_events in split_sessions(events).items():
        if not any(isinstance(e, ChunkDownload) for e in session_events):
            continue  # service/solver-only sessions carry no playback
        drift = replay_session(session_events).mismatches()
        if drift:
            problems[session_id] = drift
    return problems
