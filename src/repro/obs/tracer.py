"""The tracer: event routing, bounded sinks, spans, and the no-op path.

Design constraints, in order:

1. **Zero cost when off.**  Instrumented call sites follow one pattern —
   ``if tracer is not None and tracer.enabled:`` — so the disabled path
   is a single attribute check and no event object is ever built.  The
   module-level :data:`NULL_TRACER` is a permanently disabled tracer for
   call sites that want an object rather than ``None``.

2. **Bounded memory.**  :class:`RingBufferSink` keeps the most recent
   ``capacity`` events and counts what it dropped; a tracer left running
   on a production server can never grow without bound.

3. **Plain JSONL on disk.**  :class:`JsonlSink` streams one event per
   line through :func:`repro.obs.events.event_to_json`; the files are
   greppable, diffable, and replayable (:mod:`repro.obs.replay`).

Timestamps come from the tracer's monotonic clock (:meth:`Tracer.now`),
which additionally enforces non-decreasing readings, so every timeline
is sortable by ``t_mono`` within a process.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, IO, Iterable, List, Optional, Tuple, Union

from .events import Event, RequestSpan, event_to_json

__all__ = [
    "RingBufferSink",
    "JsonlSink",
    "Tracer",
    "Span",
    "NULL_TRACER",
]


class RingBufferSink:
    """Keep the newest ``capacity`` events; drop-oldest beyond that."""

    __slots__ = ("capacity", "_events", "_start", "dropped")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: List[Event] = []
        self._start = 0  # index of the oldest live event (circular)
        #: Events evicted so far (monotone counter).
        self.dropped = 0

    def emit(self, event: Event) -> None:
        if len(self._events) < self.capacity:
            self._events.append(event)
        else:
            self._events[self._start] = event
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1

    def events(self) -> Tuple[Event, ...]:
        """Live events, oldest first."""
        return tuple(self._events[self._start:] + self._events[: self._start])

    def clear(self) -> None:
        self._events.clear()
        self._start = 0

    def __len__(self) -> int:
        return len(self._events)

    def close(self) -> None:  # sink protocol; nothing to release
        pass


class JsonlSink:
    """Stream events as JSON Lines to a path or an open text stream."""

    def __init__(self, target: Union[str, IO[str]], flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._flush_every = flush_every
        self._since_flush = 0
        self.emitted = 0

    def emit(self, event: Event) -> None:
        self._stream.write(event_to_json(event) + "\n")
        self.emitted += 1
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._stream.flush()
            self._since_flush = 0

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class Span:
    """One in-flight measured operation (see :meth:`Tracer.span`).

    Mutate :attr:`status` / :attr:`chaos` while the span is open; both
    are recorded on the :class:`~repro.obs.events.RequestSpan` event the
    context manager emits on exit.
    """

    __slots__ = ("tracer", "name", "session_id", "trace_id", "status", "chaos", "_t0", "wall_s")

    def __init__(self, tracer: "Tracer", name: str, session_id: str, trace_id: str) -> None:
        self.tracer = tracer
        self.name = name
        self.session_id = session_id
        self.trace_id = trace_id
        self.status = "ok"
        self.chaos: Optional[str] = None
        self._t0 = time.perf_counter()
        self.wall_s = 0.0

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._t0
        if exc_type is not None and self.status == "ok":
            self.status = "exception"
        self.tracer.emit(
            RequestSpan(
                session_id=self.session_id,
                t_mono=self.tracer.now(),
                trace_id=self.trace_id,
                name=self.name,
                wall_s=self.wall_s,
                status=self.status,
                chaos=self.chaos,
            )
        )


class Tracer:
    """Routes events to sinks; stamps empty session ids; never raises
    into instrumented code paths from the disabled state.

    Parameters
    ----------
    sinks:
        Objects with ``emit(event)`` (and optionally ``close()``); see
        :class:`RingBufferSink` / :class:`JsonlSink`.
    session_id:
        Default session attribution: events emitted with an empty
        ``session_id`` are re-stamped with this value (profiling hooks
        deep in the solver do not know which session drove them).
    clock:
        Monotonic time source, injectable for tests.
    enabled:
        The master switch; a disabled tracer is inert and call sites are
        expected to skip event construction entirely.
    """

    def __init__(
        self,
        sinks: Iterable[object] = (),
        session_id: str = "",
        clock: Callable[[], float] = time.monotonic,
        enabled: bool = True,
    ) -> None:
        self._sinks = list(sinks)
        self.session_id = session_id
        self._clock = clock
        self.enabled = enabled
        self._last_t = float("-inf")
        self.events_emitted = 0

    # ------------------------------------------------------------------

    def now(self) -> float:
        """A non-decreasing monotonic-clock reading."""
        t = self._clock()
        if t < self._last_t:
            t = self._last_t
        self._last_t = t
        return t

    def add_sink(self, sink: object) -> None:
        self._sinks.append(sink)

    def emit(self, event: Event) -> None:
        """Deliver one event to every sink (no-op while disabled)."""
        if not self.enabled:
            return
        if not event.session_id and self.session_id:
            event = replace(event, session_id=self.session_id)
        self.events_emitted += 1
        for sink in self._sinks:
            sink.emit(event)

    def span(self, name: str, session_id: str = "", trace_id: str = "") -> Span:
        """A context manager measuring one operation on the wall clock."""
        return Span(self, name, session_id or self.session_id, trace_id)

    def close(self) -> None:
        """Close every sink that has a ``close`` method."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


#: A permanently disabled tracer for call sites that want an object.
NULL_TRACER = Tracer(enabled=False)
