"""Byte-level discrete-event emulation testbed (the paper's Section 7.2
environment: trace-throttled link + HTTP chunk server + dash.js-like
sequential client)."""

from .clock import EventQueue
from .link import CrossFlow, SharedTraceLink, Transfer
from .server import ChunkRequest, ChunkServer
from .client import EmulatedClient
from .fairness import (
    FairnessReport,
    fairness_report,
    jain_fairness_index,
    unfairness,
)
from .harness import (
    NetworkProfile,
    SharedLinkResult,
    emulate_session,
    emulate_shared_link,
)

__all__ = [
    "EventQueue",
    "SharedTraceLink",
    "CrossFlow",
    "Transfer",
    "ChunkRequest",
    "ChunkServer",
    "EmulatedClient",
    "NetworkProfile",
    "SharedLinkResult",
    "FairnessReport",
    "fairness_report",
    "jain_fairness_index",
    "unfairness",
    "emulate_session",
    "emulate_shared_link",
]
