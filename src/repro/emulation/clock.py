"""A minimal discrete-event scheduler for the emulation testbed.

The emulator advances virtual time from event to event instead of sleeping
through wall-clock time the way the paper's Emulab testbed did; the
behaviourally relevant sequence (requests, byte deliveries, completions)
is identical and perfectly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["EventQueue"]


class EventQueue:
    """A time-ordered callback queue with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``when``."""
        if when < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule in the past ({when} < now {self._now})"
            )
        heapq.heappush(self._heap, (when, next(self._counter), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.schedule_at(self._now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def run_next(self) -> bool:
        """Pop and execute the earliest event; False when none remain."""
        if not self._heap:
            return False
        when, _, callback = heapq.heappop(self._heap)
        self._now = when
        callback()
        return True

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue; returns the number of events executed."""
        executed = 0
        while self.run_next():
            executed += 1
            if executed >= max_events:
                raise RuntimeError(
                    f"event budget of {max_events} exhausted — runaway emulation?"
                )
        return executed
