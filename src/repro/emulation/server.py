"""The chunk HTTP server of the emulation testbed.

Stands in for the paper's node.js static file server: it knows the video
manifest, adds per-response protocol overhead (HTTP headers), and models a
small request-processing delay.  State is deliberately minimal — DASH
servers are stateless by design (Section 2), which is exactly what lets a
single server object serve any number of emulated clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..video.manifest import VideoManifest

__all__ = ["ChunkRequest", "ChunkServer"]


@dataclass(frozen=True)
class ChunkRequest:
    """One GET issued by a client."""

    client_id: int
    chunk_index: int
    level_index: int
    issued_at_s: float


class ChunkServer:
    """Serves chunk bytes plus protocol overhead.

    Parameters
    ----------
    manifest:
        The video being served.
    header_kilobits:
        Response overhead added to every chunk (HTTP response headers;
        default ~500 bytes).
    processing_delay_s:
        Server-side time to start the response after the request arrives.
    """

    def __init__(
        self,
        manifest: VideoManifest,
        header_kilobits: float = 4.0,
        processing_delay_s: float = 0.001,
    ) -> None:
        if header_kilobits < 0:
            raise ValueError("header overhead must be >= 0")
        if processing_delay_s < 0:
            raise ValueError("processing delay must be >= 0")
        self.manifest = manifest
        self.header_kilobits = header_kilobits
        self.processing_delay_s = processing_delay_s
        self._request_log: List[ChunkRequest] = []

    def response_kilobits(self, chunk_index: int, level_index: int) -> float:
        """Total bytes on the wire for a chunk response."""
        return (
            self.manifest.chunk_size_kilobits(chunk_index, level_index)
            + self.header_kilobits
        )

    def handle_request(self, request: ChunkRequest) -> Tuple[float, float]:
        """Accept a GET; returns (response_kilobits, processing_delay_s)."""
        if not 0 <= request.chunk_index < self.manifest.num_chunks:
            raise ValueError(f"chunk {request.chunk_index} not on this server")
        if not 0 <= request.level_index < len(self.manifest.ladder):
            raise ValueError(f"level {request.level_index} not on this server")
        self._request_log.append(request)
        return (
            self.response_kilobits(request.chunk_index, request.level_index),
            self.processing_delay_s,
        )

    @property
    def requests_served(self) -> int:
        return len(self._request_log)

    def requests_by_client(self) -> Dict[int, int]:
        """Per-client GET counts (multi-client experiments)."""
        counts: Dict[int, int] = {}
        for request in self._request_log:
            counts[request.client_id] = counts.get(request.client_id, 0) + 1
        return counts
