"""Top-level entry points for the emulation testbed.

:func:`emulate_session` is the byte-level counterpart of
:func:`repro.sim.session.simulate_session`; :func:`emulate_shared_link`
runs several players against one bottleneck — the multi-player scenario
Section 8 discusses as future work, available here as an extension
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..abr.base import ABRAlgorithm, SessionConfig
from ..sim.session import SessionResult, StartupPolicy
from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from .client import EmulatedClient
from .clock import EventQueue
from .fairness import FairnessReport, fairness_report
from .link import SharedTraceLink
from .server import ChunkServer

__all__ = [
    "NetworkProfile",
    "SharedLinkResult",
    "emulate_session",
    "emulate_shared_link",
]


class SharedLinkResult(List[SessionResult]):
    """Per-player session results plus run-level fairness.

    A plain list of :class:`SessionResult` (in player order — existing
    callers keep indexing/unpacking it), with the multiplayer fairness
    measures attached: :meth:`fairness` computes Jain's index and the
    unfairness score over the players' average bitrates.
    """

    def fairness(self) -> FairnessReport:
        return fairness_report(self)


@dataclass(frozen=True)
class NetworkProfile:
    """Network-path parameters of the emulated testbed.

    The defaults approximate the paper's Emulab setup (LAN RTT, standard
    HTTP overhead) with slow-start restarts enabled so that HTTP-level
    throughput measurements carry their real-world bias.
    """

    rtt_s: float = 0.08
    header_kilobits: float = 4.0
    server_processing_delay_s: float = 0.001
    slow_start: bool = True

    def __post_init__(self) -> None:
        if self.rtt_s < 0:
            raise ValueError("RTT must be >= 0")
        if self.header_kilobits < 0:
            raise ValueError("header overhead must be >= 0")
        if self.server_processing_delay_s < 0:
            raise ValueError("processing delay must be >= 0")


def _build_link(
    trace: Trace,
    queue: EventQueue,
    network: NetworkProfile,
    faults: Optional[Sequence] = None,
    fault_seed: int = 0,
):
    """The shared bottleneck, optionally wrapped with fault injection.

    Bandwidth faults are compiled into the trace itself (exact segment
    surgery); per-transfer faults wrap the link.  With ``faults`` empty
    or ``None`` this is byte-for-byte the clean link.
    """
    if faults:
        # Imported lazily: the faults package is optional equipment and
        # itself imports this package's link module.
        from ..faults import FaultyLink, apply_trace_faults, link_faults

        trace = apply_trace_faults(trace, faults)
        link = SharedTraceLink(
            trace,
            queue,
            rtt_s=max(network.rtt_s, 1e-3),
            slow_start=network.slow_start,
        )
        if link_faults(faults):
            return FaultyLink(link, faults, seed=fault_seed)
        return link
    return SharedTraceLink(
        trace, queue, rtt_s=max(network.rtt_s, 1e-3), slow_start=network.slow_start
    )


def emulate_session(
    algorithm: ABRAlgorithm,
    trace: Trace,
    manifest: VideoManifest,
    config: Optional[SessionConfig] = None,
    network: Optional[NetworkProfile] = None,
    startup_policy: StartupPolicy = StartupPolicy.FIRST_CHUNK,
    fixed_startup_delay_s: float = 0.0,
    faults: Optional[Sequence] = None,
    fault_seed: int = 0,
    tracer=None,
    session_id: str = "",
) -> SessionResult:
    """Run one player through the byte-level testbed; same result type as
    the simulator, so harness code is backend-agnostic.

    ``faults`` takes :class:`~repro.faults.spec.FaultSpec` objects
    (blackouts, clamps, latency spikes, chunk failures); the session
    still always completes — the client retries failed downloads and
    degrades to its local rate-based fallback level when the retry
    budget runs out (see ``docs/robustness.md``).

    A :class:`repro.obs.Tracer` makes the client emit the same per-chunk
    event timeline as the simulator (see ``docs/observability.md``).
    """
    config = config if config is not None else SessionConfig()
    network = network if network is not None else NetworkProfile()
    queue = EventQueue()
    link = _build_link(trace, queue, network, faults, fault_seed)
    server = ChunkServer(
        manifest,
        header_kilobits=network.header_kilobits,
        processing_delay_s=network.server_processing_delay_s,
    )
    client = EmulatedClient(
        client_id=0,
        algorithm=algorithm,
        manifest=manifest,
        config=config,
        queue=queue,
        link=link,
        server=server,
        rtt_s=network.rtt_s,
        startup_policy=startup_policy,
        fixed_startup_delay_s=fixed_startup_delay_s,
        tracer=tracer,
        session_id=session_id,
    )
    queue.run_until_idle()
    return client.result()


def emulate_shared_link(
    algorithms: Sequence[ABRAlgorithm],
    trace: Trace,
    manifest: VideoManifest,
    config: Optional[SessionConfig] = None,
    network: Optional[NetworkProfile] = None,
    start_stagger_s: float = 0.0,
    faults: Optional[Sequence] = None,
    fault_seed: int = 0,
    tracer=None,
) -> SharedLinkResult:
    """Multiple players compete on one bottleneck (Section 8 extension).

    Each algorithm drives its own client; ``start_stagger_s`` offsets the
    session starts (players rarely begin simultaneously in practice).
    Returns one session result per player, in input order, as a
    :class:`SharedLinkResult` — call ``.fairness()`` on it for Jain's
    index and the multiplayer unfairness measure.  A shared ``tracer``
    receives every player's events, distinguished by session id.
    """
    if not algorithms:
        raise ValueError("need at least one player")
    if start_stagger_s < 0:
        raise ValueError("stagger must be >= 0")
    config = config if config is not None else SessionConfig()
    network = network if network is not None else NetworkProfile()
    queue = EventQueue()
    link = _build_link(trace, queue, network, faults, fault_seed)
    server = ChunkServer(
        manifest,
        header_kilobits=network.header_kilobits,
        processing_delay_s=network.server_processing_delay_s,
    )
    clients = [
        EmulatedClient(
            client_id=i,
            algorithm=algorithm,
            manifest=manifest,
            config=config,
            queue=queue,
            link=link,
            server=server,
            rtt_s=network.rtt_s,
            start_time_s=i * start_stagger_s,
            tracer=tracer,
        )
        for i, algorithm in enumerate(algorithms)
    ]
    queue.run_until_idle()
    return SharedLinkResult(client.result() for client in clients)
