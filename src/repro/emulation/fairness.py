"""Fairness metrics for multi-player bottleneck sharing.

The multiplayer follow-up to the paper (Yin et al., arXiv:1608.08469)
evaluates what happens when several MPC players share one link; its two
standard measures over per-client average bitrates are implemented here:

* **Jain's fairness index** ``(sum x)^2 / (n * sum x^2)`` — 1 when every
  client gets the same average bitrate, ``1/n`` when one client takes
  everything.

* **Unfairness** ``sqrt(1 - Jain)`` — the multiplayer paper's headline
  measure (also FESTIVE's); 0 is perfectly fair, larger is worse.

:func:`fairness_report` aggregates finished sessions;
:func:`repro.emulation.harness.emulate_shared_link` attaches one to its
result so harness callers get fairness for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = ["jain_fairness_index", "unfairness", "FairnessReport", "fairness_report"]


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's index over non-negative allocations; 1 = perfectly fair."""
    xs = [float(v) for v in values]
    if not xs:
        raise ValueError("need at least one allocation")
    if any(v < 0 for v in xs):
        raise ValueError("allocations must be non-negative")
    square_of_sum = sum(xs) ** 2
    sum_of_squares = sum(v * v for v in xs)
    if sum_of_squares == 0.0:
        return 1.0  # all-zero: everyone equally starved
    return square_of_sum / (len(xs) * sum_of_squares)


def unfairness(values: Sequence[float]) -> float:
    """The multiplayer paper's unfairness measure ``sqrt(1 - Jain)``."""
    # Clamp: float error can push Jain a hair above 1 for equal inputs.
    return math.sqrt(max(0.0, 1.0 - jain_fairness_index(values)))


@dataclass(frozen=True)
class FairnessReport:
    """Fairness of one shared-link run over per-client average bitrates."""

    average_bitrates_kbps: Tuple[float, ...]
    jain_index: float
    unfairness: float
    #: Sessions excluded from the index because they downloaded nothing
    #: (e.g. a client killed by a fault before its first chunk).
    num_zero_chunk_sessions: int = 0

    @property
    def num_clients(self) -> int:
        return len(self.average_bitrates_kbps)

    def describe(self) -> str:
        rates = ", ".join(f"{r:.0f}" for r in self.average_bitrates_kbps)
        line = (
            f"{self.num_clients} clients | avg bitrates [{rates}] kbps"
            f" | Jain {self.jain_index:.3f}"
            f" | unfairness {self.unfairness:.3f}"
        )
        if self.num_zero_chunk_sessions:
            line += f" | {self.num_zero_chunk_sessions} zero-chunk excluded"
        return line


def fairness_report(sessions: Sequence) -> FairnessReport:
    """Fairness over finished sessions (anything with ``metrics()``).

    Sessions whose ``metrics()`` raises :class:`ValueError` — i.e. they
    finished with zero chunks, which happens under fault injection —
    are excluded from the index and counted in
    :attr:`FairnessReport.num_zero_chunk_sessions`.  All sessions being
    empty (or the list itself) is an error: there is no allocation to
    measure fairness over.
    """
    if not sessions:
        raise ValueError("need at least one session")
    rates = []
    zero_chunk = 0
    for session in sessions:
        try:
            rates.append(float(session.metrics().average_bitrate_kbps))
        except ValueError:
            zero_chunk += 1
    if not rates:
        raise ValueError(
            f"all {zero_chunk} sessions finished with zero chunks;"
            " no bitrates to measure fairness over"
        )
    return FairnessReport(
        average_bitrates_kbps=tuple(rates),
        jain_index=jain_fairness_index(rates),
        unfairness=unfairness(rates),
        num_zero_chunk_sessions=zero_chunk,
    )
