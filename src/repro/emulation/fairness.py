"""Fairness metrics for multi-player bottleneck sharing.

The multiplayer follow-up to the paper (Yin et al., arXiv:1608.08469)
evaluates what happens when several MPC players share one link; its two
standard measures over per-client average bitrates are implemented here:

* **Jain's fairness index** ``(sum x)^2 / (n * sum x^2)`` — 1 when every
  client gets the same average bitrate, ``1/n`` when one client takes
  everything.

* **Unfairness** ``sqrt(1 - Jain)`` — the multiplayer paper's headline
  measure (also FESTIVE's); 0 is perfectly fair, larger is worse.

Sessions that join or depart *mid-window* (the arena's churn) need
defined semantics: a player present for 2 s of a 10 s window should not
count as heavily as one present throughout.  The index therefore takes
optional per-value **presence weights** — seconds of overlap between the
session's lifetime and the measurement window — and computes the
weighted Jain index ``(sum w x)^2 / (sum w * sum w x^2)``, which reduces
to the classic form for equal weights.  A window nobody was present in
(all weights zero, e.g. a zero-length window) has no allocation to
measure and raises ``ValueError``; a single present player is perfectly
fair by definition (exactly 1.0).

Equal allocations return *exactly* ``1.0`` (not merely within float
noise of it) and every result is clamped into ``(0, 1]`` — invariants
the property suite in ``tests/emulation/test_fairness_properties.py``
pins.

:func:`fairness_report` aggregates finished sessions;
:func:`repro.emulation.harness.emulate_shared_link` attaches one to its
result so harness callers get fairness for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = ["jain_fairness_index", "unfairness", "FairnessReport", "fairness_report"]


def jain_fairness_index(
    values: Sequence[float], weights: Optional[Sequence[float]] = None
) -> float:
    """Jain's index over non-negative allocations; 1 = perfectly fair.

    ``weights`` (presence seconds, typically) weight each allocation's
    contribution; omitted means every allocation counts equally.  Zero
    weight removes an allocation from the index entirely — a session
    with no presence in the window casts no vote.  All weights zero (or
    no values at all) is an error: there is no allocation to measure.
    """
    xs = [float(v) for v in values]
    if not xs:
        raise ValueError("need at least one allocation")
    if any(v < 0 for v in xs):
        raise ValueError("allocations must be non-negative")
    if weights is None:
        present = [(x, 1.0) for x in xs]
    else:
        ws = [float(w) for w in weights]
        if len(ws) != len(xs):
            raise ValueError(f"{len(xs)} allocations but {len(ws)} weights")
        if any(w < 0 for w in ws):
            raise ValueError("weights must be non-negative")
        present = [(x, w) for x, w in zip(xs, ws) if w > 0]
        if not present:
            raise ValueError(
                "no allocation carries positive weight (empty window)"
            )
    rates = [x for x, _ in present]
    # Equal allocations are *exactly* fair — bypass the float formula,
    # whose rounding cannot promise (sum wx)^2 == sum w * sum wx^2.
    # Covers the single-player window and the all-zero (equally starved)
    # case too.
    if min(rates) == max(rates):
        return 1.0
    weighted_sum = math.fsum(x * w for x, w in present)
    sum_of_squares = math.fsum(w * x * x for x, w in present)
    total_weight = math.fsum(w for _, w in present)
    return min(1.0, weighted_sum * weighted_sum / (total_weight * sum_of_squares))


def unfairness(
    values: Sequence[float], weights: Optional[Sequence[float]] = None
) -> float:
    """The multiplayer paper's unfairness measure ``sqrt(1 - Jain)``."""
    return math.sqrt(max(0.0, 1.0 - jain_fairness_index(values, weights)))


@dataclass(frozen=True)
class FairnessReport:
    """Fairness of one shared-link run over per-client average bitrates."""

    average_bitrates_kbps: Tuple[float, ...]
    jain_index: float
    unfairness: float
    #: Sessions excluded from the index because they downloaded nothing
    #: (e.g. a client killed by a fault before its first chunk).
    num_zero_chunk_sessions: int = 0
    #: Presence weights (seconds) the index was computed under, aligned
    #: with ``average_bitrates_kbps``; ``None`` means equal weights.
    presence_weights_s: Optional[Tuple[float, ...]] = None

    @property
    def num_clients(self) -> int:
        return len(self.average_bitrates_kbps)

    def describe(self) -> str:
        rates = ", ".join(f"{r:.0f}" for r in self.average_bitrates_kbps)
        line = (
            f"{self.num_clients} clients | avg bitrates [{rates}] kbps"
            f" | Jain {self.jain_index:.3f}"
            f" | unfairness {self.unfairness:.3f}"
        )
        if self.num_zero_chunk_sessions:
            line += f" | {self.num_zero_chunk_sessions} zero-chunk excluded"
        return line


def fairness_report(
    sessions: Sequence, presence_s: Optional[Sequence[float]] = None
) -> FairnessReport:
    """Fairness over finished sessions (anything with ``metrics()``).

    ``presence_s`` optionally gives each session's presence time within
    the measurement window (aligned with ``sessions``); departures
    mid-window then weight the index by how long each player was
    actually there.  Sessions whose ``metrics()`` raises
    :class:`ValueError` — i.e. they finished with zero chunks, which
    happens under fault injection — are excluded from the index and
    counted in :attr:`FairnessReport.num_zero_chunk_sessions`.  All
    sessions being empty (or the list itself) is an error: there is no
    allocation to measure fairness over.
    """
    if not sessions:
        raise ValueError("need at least one session")
    if presence_s is not None and len(presence_s) != len(sessions):
        raise ValueError(
            f"{len(sessions)} sessions but {len(presence_s)} presence times"
        )
    rates = []
    weights = [] if presence_s is not None else None
    zero_chunk = 0
    for i, session in enumerate(sessions):
        try:
            rates.append(float(session.metrics().average_bitrate_kbps))
        except ValueError:
            zero_chunk += 1
            continue
        if weights is not None:
            weights.append(float(presence_s[i]))
    if not rates:
        raise ValueError(
            f"all {zero_chunk} sessions finished with zero chunks;"
            " no bitrates to measure fairness over"
        )
    return FairnessReport(
        average_bitrates_kbps=tuple(rates),
        jain_index=jain_fairness_index(rates, weights),
        unfairness=unfairness(rates, weights),
        num_zero_chunk_sessions=zero_chunk,
        presence_weights_s=tuple(weights) if weights is not None else None,
    )
