"""The historical all-pairs shared link, kept as a correctness oracle.

This is the original :class:`~repro.emulation.link.SharedTraceLink`
event loop before the incremental rework: every progress event touches
every transfer (per-flow integration, full re-allocation over all caps,
a completion scan over the whole set).  That is O(flows) Python work per
event — unusable for thousand-player arenas, but trivially auditable.

It stays in the tree for exactly one purpose: the equivalence suite
(``tests/emulation/test_link_incremental.py``) runs identical workloads
through both engines and asserts *float-identical* completion times and
callback order.  Both engines share :func:`repro.emulation.link._water_fill`,
and the incremental pool's uniform delta is bit-identical to this loop's
per-flow scalar subtraction, so the comparison is ``==``, not approx.

Do not use this class in new code; it exists to be compared against.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Dict, List, Optional

from ..traces.trace import Trace
from .clock import EventQueue
from .link import Transfer, _water_fill

__all__ = ["AllPairsSharedTraceLink"]

_MTU_KILOBITS = 12.0  # 1500 bytes


class AllPairsSharedTraceLink:
    """The pre-rework link: all-pairs re-allocation at every event.

    Same construction surface and semantics as
    :class:`~repro.emulation.link.SharedTraceLink` (minus cross-traffic,
    which the historical loop never supported).
    """

    def __init__(
        self,
        trace: Trace,
        queue: EventQueue,
        rtt_s: float = 0.08,
        slow_start: bool = True,
        initial_window_kilobits: float = 10 * _MTU_KILOBITS,
    ) -> None:
        if rtt_s <= 0:
            raise ValueError("RTT must be positive")
        if initial_window_kilobits <= 0:
            raise ValueError("initial window must be positive")
        self.trace = trace
        self.queue = queue
        self.rtt_s = rtt_s
        self.slow_start = slow_start
        self.initial_window_kilobits = initial_window_kilobits
        self._transfers: Dict[int, Transfer] = {}
        self._next_id = 0
        self._generation = 0
        self._last_progress_time = 0.0
        self._ramp_ceiling_kbps = 4.0 * max(trace.bandwidths_kbps)

    @property
    def active_transfers(self) -> int:
        return len(self._transfers)

    def start_transfer(
        self,
        size_kilobits: float,
        on_complete: Callable[[Transfer], None],
        on_fail: Optional[Callable] = None,
    ) -> Transfer:
        if size_kilobits <= 0:
            raise ValueError("transfer size must be positive")
        self._apply_progress()
        transfer = Transfer(
            self._next_id,
            size_kilobits,
            self.queue.now,
            on_complete,
            self.initial_window_kilobits,
            self.rtt_s,
            ramp=self.slow_start,
        )
        self._next_id += 1
        self._transfers[transfer.transfer_id] = transfer
        self._reschedule()
        return transfer

    def _capacity_now(self) -> float:
        return self.trace.bandwidth_at(self.queue.now)

    def _next_trace_boundary(self) -> float:
        now = self.queue.now
        duration = self.trace.duration_s
        pos = now % duration
        times = self.trace.timestamps
        idx = bisect.bisect_right(times, pos) - 1
        seg_end = times[idx + 1] if idx + 1 < len(times) else duration
        return now + (seg_end - pos)

    def _cap_kbps(self, transfer: Transfer) -> float:
        if transfer.ramp_done:
            return float("inf")
        return transfer.window_kilobits / self.rtt_s

    def _apply_progress(self) -> None:
        now = self.queue.now
        dt = now - self._last_progress_time
        if dt > 0:
            for transfer in self._transfers.values():
                transfer.remaining_kilobits -= transfer.current_rate_kbps * dt
        self._last_progress_time = now

    def _advance_windows(self) -> None:
        now = self.queue.now
        for transfer in self._transfers.values():
            while not transfer.ramp_done and transfer.next_epoch_s <= now + 1e-12:
                transfer.window_kilobits *= 2
                transfer.next_epoch_s += self.rtt_s
                if transfer.window_kilobits / self.rtt_s >= self._ramp_ceiling_kbps:
                    transfer.ramp_done = True

    def _reschedule(self) -> None:
        self._generation += 1
        generation = self._generation
        self._last_progress_time = self.queue.now
        if not self._transfers:
            return
        ids = list(self._transfers)
        caps = [self._cap_kbps(self._transfers[i]) for i in ids]
        rates = _water_fill(self._capacity_now(), caps)
        horizon = self._next_trace_boundary()
        for tid, rate in zip(ids, rates):
            transfer = self._transfers[tid]
            transfer.current_rate_kbps = rate
            if not transfer.ramp_done:
                horizon = min(horizon, transfer.next_epoch_s)
            if rate > 0:
                horizon = min(
                    horizon, self.queue.now + transfer.remaining_kilobits / rate
                )
        target = max(horizon, self.queue.now)
        if target == self.queue.now:
            # Same sub-ulp completion guard as the incremental link; the
            # engines must wedge (or not) in bit-identical lockstep.
            target = math.nextafter(target, math.inf)
        self.queue.schedule_at(target, lambda: self._on_progress(generation))

    def _on_progress(self, generation: int) -> None:
        if generation != self._generation:
            return
        self._apply_progress()
        self._advance_windows()
        now = self.queue.now
        completed: List[Transfer] = []
        for tid in list(self._transfers):
            transfer = self._transfers[tid]
            if transfer.remaining_kilobits <= 1e-9:
                transfer.remaining_kilobits = 0.0
                transfer.completed_at_s = now
                del self._transfers[tid]
                completed.append(transfer)
        self._reschedule()
        for transfer in completed:
            transfer.on_complete(transfer)
