"""The emulated DASH client — a dash.js-like player as a state machine.

This client mirrors the paper's modified dash.js player (Section 6):
bitrate decisions happen at chunk boundaries only, and downloads are
strictly sequential.  Unlike the chunk-level simulator, each download is
a byte-level transfer over the shared link with request latency, protocol
overhead, and (optionally) slow-start ramping — so the throughput the
algorithm observes carries the HTTP-level measurement bias of a real
testbed.

The client reports the identical :class:`~repro.sim.session.SessionResult`
the simulator produces, keeping the two backends interchangeable in the
experiment harness.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional

from ..abr.base import (
    ABRAlgorithm,
    DownloadResult,
    PlayerObservation,
    SessionConfig,
)
from ..obs.events import ChunkDecision, ChunkDownload, Rebuffer, SessionSummary
from ..obs.tracer import Tracer
from ..prediction.base import OBSERVATION_FLOOR_KBPS, TraceAware
from ..sim.session import SessionResult, StartupPolicy
from ..video.manifest import VideoManifest
from .clock import EventQueue
from .link import SharedTraceLink, Transfer
from .server import ChunkRequest, ChunkServer

__all__ = ["EmulatedClient"]

_INFINITY = math.inf


class EmulatedClient:
    """One player instance driving one algorithm over the emulated network.

    The client schedules itself on the shared :class:`EventQueue`; run the
    queue to completion (or use :func:`repro.emulation.harness.emulate_session`)
    and read :meth:`result`.
    """

    def __init__(
        self,
        client_id: int,
        algorithm: ABRAlgorithm,
        manifest: VideoManifest,
        config: SessionConfig,
        queue: EventQueue,
        link: SharedTraceLink,
        server: ChunkServer,
        rtt_s: float = 0.08,
        startup_policy: StartupPolicy = StartupPolicy.FIRST_CHUNK,
        fixed_startup_delay_s: float = 0.0,
        start_time_s: float = 0.0,
        max_chunk_retries: int = 3,
        tracer: Optional[Tracer] = None,
        session_id: str = "",
    ) -> None:
        if rtt_s < 0:
            raise ValueError("RTT must be >= 0")
        if max_chunk_retries < 0:
            raise ValueError("max chunk retries must be >= 0")
        self.client_id = client_id
        self.algorithm = algorithm
        self.manifest = manifest
        self.config = config
        self.queue = queue
        self.link = link
        self.server = server
        self.rtt_s = rtt_s
        self.startup_policy = startup_policy
        self.fixed_startup_delay_s = fixed_startup_delay_s
        self.start_time_s = start_time_s
        self.max_chunk_retries = max_chunk_retries
        #: Failed download attempts over the whole session (fault runs).
        self.download_retries = 0
        #: Chunks that fell back to the local rate-based level after
        #: exhausting their retry budget.
        self.fallback_chunks = 0

        self._buffer_s = 0.0
        self._playback_start_s = (
            start_time_s + fixed_startup_delay_s
            if startup_policy is StartupPolicy.FIXED
            else _INFINITY
        )
        self._total_rebuffer_s = 0.0
        self._prev_level: Optional[int] = None
        self._records: List[DownloadResult] = []
        self._chunk_request_time = 0.0
        self._pending_level = 0
        self._chunk_failures = 0
        self._finished = False
        self._tracing = tracer is not None and tracer.enabled
        self.tracer = tracer
        self.session_id = session_id or (
            f"{algorithm.name}:{link.trace.name}#client{client_id}"
        )
        if self._tracing:
            algorithm.tracer = tracer

        algorithm.prepare(manifest, config)
        for predictor in algorithm.predictors():
            if isinstance(predictor, TraceAware):
                predictor.bind_trace(link.trace, manifest.chunk_duration_s)
        queue.schedule_at(start_time_s, self._request_next_chunk)

    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    def result(self) -> SessionResult:
        if not self._finished:
            raise RuntimeError("session still in progress — run the event queue")
        startup = (
            self._playback_start_s
            if self._playback_start_s != _INFINITY
            else self.queue.now
        )
        return SessionResult(
            algorithm_name=self.algorithm.name,
            trace_name=self.link.trace.name,
            records=tuple(self._records),
            startup_delay_s=startup - self.start_time_s,
            total_rebuffer_s=self._total_rebuffer_s,
            # End of session = last chunk's completion plus its Eq. 4 wait
            # (matching the simulator's clock).
            total_wall_time_s=self._records[-1].wall_time_end_s - self.start_time_s,
            config=self.config,
        )

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    def _next_chunk_index(self) -> int:
        return len(self._records)

    def _request_next_chunk(self) -> None:
        k = self._next_chunk_index()
        now = self.queue.now
        for predictor in self.algorithm.predictors():
            if isinstance(predictor, TraceAware):
                predictor.set_wall_time(now)
        observation = PlayerObservation(
            chunk_index=k,
            buffer_level_s=self._buffer_s,
            prev_level_index=self._prev_level,
            wall_time_s=now,
            playback_started=now >= self._playback_start_s,
        )
        if self._tracing:
            _decide_t0 = time.perf_counter()
        level = self.algorithm.select_bitrate(observation)
        if not 0 <= level < len(self.manifest.ladder):
            raise ValueError(
                f"{self.algorithm.name} returned invalid level {level}"
            )
        if self._tracing:
            self.tracer.emit(
                ChunkDecision(
                    session_id=self.session_id,
                    t_mono=self.tracer.now(),
                    chunk_index=k,
                    buffer_s=observation.buffer_level_s,
                    prev_level=self._prev_level,
                    level=level,
                    bitrate_kbps=self.manifest.ladder[level],
                    wall_time_s=now,
                    decide_wall_s=time.perf_counter() - _decide_t0,
                )
            )
        self._pending_level = level
        self._chunk_request_time = now
        self._chunk_failures = 0
        self._issue_request(level)

    def _issue_request(self, level: int) -> None:
        """Send one GET for the pending chunk at ``level``.

        Request travels one RTT/2, the server processes, the response
        header arrives after another RTT/2; then bytes flow on the link.
        Retries after a failed download come back through here, paying
        the full request latency again.
        """
        k = self._next_chunk_index()
        request = ChunkRequest(self.client_id, k, level, self.queue.now)
        size, processing = self.server.handle_request(request)
        self.queue.schedule_in(
            self.rtt_s + processing,
            lambda: self.link.start_transfer(
                size, self._on_chunk_delivered, on_fail=self._on_chunk_failed
            ),
        )

    def _fallback_level(self) -> int:
        """The local rate-based rule over the last measured throughput —
        the level a degraded chunk retries at (lowest level when no
        measurement exists yet, matching real players' cold start)."""
        if not self._records:
            return 0
        return self.manifest.ladder.highest_at_most(
            self._records[-1].throughput_kbps
        )

    def _on_chunk_failed(self, failure) -> None:
        """A download attempt died (injected chunk failure): retry.

        The chunk is re-requested at the same level up to
        ``max_chunk_retries`` times; after that the client degrades to
        the local rate-based fallback level and keeps retrying there, so
        a session always completes once the fault window passes.  Wall
        time spent on dead attempts stays inside the chunk's download
        interval, so the measured throughput (and with it the predictor
        and the rebuffer accounting) sees the outage honestly.
        """
        self._chunk_failures += 1
        self.download_retries += 1
        level = self._pending_level
        if self._chunk_failures > self.max_chunk_retries:
            fallback = self._fallback_level()
            if fallback != level:
                self.fallback_chunks += 1
                level = fallback
                self._pending_level = level
        self._issue_request(level)

    def _on_chunk_delivered(self, transfer: Transfer) -> None:
        now = self.queue.now
        k = self._next_chunk_index()
        level = self._pending_level
        L = self.manifest.chunk_duration_s
        download_time = now - self._chunk_request_time

        # Buffer drain over the whole request+download interval (Eq. 3).
        drain = max(0.0, now - max(self._playback_start_s, self._chunk_request_time))
        rebuffer = max(drain - self._buffer_s, 0.0)
        self._buffer_s = max(self._buffer_s - drain, 0.0)
        self._total_rebuffer_s += rebuffer
        self._buffer_s += L

        if self._playback_start_s == _INFINITY:
            extra = self.algorithm.select_startup_wait(
                PlayerObservation(
                    chunk_index=k,
                    buffer_level_s=self._buffer_s,
                    prev_level_index=level,
                    wall_time_s=now,
                    playback_started=False,
                )
            )
            if extra < 0:
                raise ValueError("startup wait must be >= 0")
            self._playback_start_s = now + extra

        waited = 0.0
        if (
            self._buffer_s > self.config.buffer_capacity_s
            and self._playback_start_s == _INFINITY
        ):
            self._playback_start_s = now
        threshold = self.config.pacing_threshold_s
        if self._buffer_s > threshold and self._playback_start_s != _INFINITY:
            if (
                now >= self._playback_start_s
                or self._buffer_s > self.config.buffer_capacity_s
            ):
                drain_start = max(now, self._playback_start_s)
                waited = (drain_start - now) + (self._buffer_s - threshold)
                self._buffer_s = threshold

        # The throughput the player *measures* includes RTT and headers —
        # the realistic, biased application-level sample.
        size_kilobits = self.manifest.chunk_size_kilobits(k, level)
        result = DownloadResult(
            chunk_index=k,
            level_index=level,
            bitrate_kbps=self.manifest.ladder[level],
            size_kilobits=size_kilobits,
            download_time_s=download_time,
            # Floored like the simulator: a blacked-out transfer measures
            # 0.0 (or sub-floor) throughput, which DownloadResult rejects.
            throughput_kbps=max(
                size_kilobits / download_time
                if download_time > 0
                else _INFINITY,
                OBSERVATION_FLOOR_KBPS,
            ),
            rebuffer_s=rebuffer,
            buffer_after_s=self._buffer_s,
            wall_time_end_s=now + waited,
            waited_s=waited,
            buffer_before_s=max(self._buffer_s - L, 0.0),
        )
        self._records.append(result)
        if self._tracing:
            self.tracer.emit(
                ChunkDownload(
                    session_id=self.session_id,
                    t_mono=self.tracer.now(),
                    chunk_index=k,
                    level=level,
                    bitrate_kbps=result.bitrate_kbps,
                    size_kilobits=size_kilobits,
                    download_time_s=download_time,
                    throughput_kbps=result.throughput_kbps,
                    rebuffer_s=rebuffer,
                    buffer_before_s=result.buffer_before_s,
                    buffer_after_s=self._buffer_s,
                    wall_time_end_s=result.wall_time_end_s,
                    waited_s=waited,
                )
            )
            if rebuffer > 0:
                self.tracer.emit(
                    Rebuffer(
                        session_id=self.session_id,
                        t_mono=self.tracer.now(),
                        chunk_index=k,
                        duration_s=rebuffer,
                        wall_time_s=now,
                    )
                )
        self.algorithm.on_download_complete(result)
        self._prev_level = level

        if len(self._records) >= self.manifest.num_chunks:
            self._finished = True
            if self._tracing:
                session = self.result()
                self.tracer.emit(
                    SessionSummary(
                        session_id=self.session_id,
                        t_mono=self.tracer.now(),
                        algorithm=self.algorithm.name,
                        trace_name=self.link.trace.name,
                        num_chunks=len(self._records),
                        startup_delay_s=session.startup_delay_s,
                        total_rebuffer_s=session.total_rebuffer_s,
                        total_wall_time_s=session.total_wall_time_s,
                        qoe_total=session.qoe().total,
                        weight_switching=self.config.weights.switching,
                        weight_rebuffering=self.config.weights.rebuffering,
                        weight_startup=self.config.weights.startup,
                    )
                )
            return
        self.queue.schedule_at(now + waited, self._request_next_chunk)
