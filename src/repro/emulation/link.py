"""A trace-shaped bottleneck link with fair sharing and TCP-like ramping.

This is the emulation counterpart of the paper's ``linux tc`` throttling:
the link's instantaneous capacity follows the throughput trace, active
transfers share it max-min fairly (what TCP flows on a common bottleneck
approximate), and each transfer can optionally start under a slow-start
window ramp — doubling its self-imposed rate cap every RTT from an
initial window until it no longer constrains the transfer.

The ramp reproduces a bias the paper's related work highlights (Huang et
al., "Confused, Timid, and Unstable"): short chunk downloads never reach
link capacity, so HTTP-level throughput samples under-estimate available
bandwidth — one of the reasons robust prediction handling matters.

Everything is event-driven and exact between events: rates are constant
between consecutive (trace boundary | window-doubling | completion)
events, so progress integrates in closed form.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Dict, List, Optional

from ..traces.trace import Trace
from .clock import EventQueue

__all__ = ["Transfer", "SharedTraceLink"]

_MTU_KILOBITS = 12.0  # 1500 bytes


class Transfer:
    """One in-flight download on the link."""

    __slots__ = (
        "transfer_id",
        "size_kilobits",
        "remaining_kilobits",
        "started_at_s",
        "completed_at_s",
        "on_complete",
        "window_kilobits",
        "next_epoch_s",
        "ramp_done",
        "current_rate_kbps",
    )

    def __init__(
        self,
        transfer_id: int,
        size_kilobits: float,
        started_at_s: float,
        on_complete: Callable[["Transfer"], None],
        initial_window_kilobits: float,
        rtt_s: float,
        ramp: bool,
    ) -> None:
        self.transfer_id = transfer_id
        self.size_kilobits = size_kilobits
        self.remaining_kilobits = size_kilobits
        self.started_at_s = started_at_s
        self.completed_at_s: Optional[float] = None
        self.on_complete = on_complete
        self.window_kilobits = initial_window_kilobits
        self.next_epoch_s = started_at_s + rtt_s
        self.ramp_done = not ramp
        self.current_rate_kbps = 0.0

    @property
    def duration_s(self) -> float:
        if self.completed_at_s is None:
            raise RuntimeError("transfer not complete yet")
        return self.completed_at_s - self.started_at_s

    def throughput_kbps(self) -> float:
        """Application-level average throughput of the finished transfer."""
        d = self.duration_s
        return self.size_kilobits / d if d > 0 else math.inf


def _water_fill(capacity_kbps: float, caps_kbps: List[float]) -> List[float]:
    """Max-min fair allocation of ``capacity`` under per-flow caps."""
    n = len(caps_kbps)
    if n == 0:
        return []
    allocation = [0.0] * n
    remaining = capacity_kbps
    order = sorted(range(n), key=lambda i: caps_kbps[i])
    active = n
    for i in order:
        share = remaining / active
        give = min(caps_kbps[i], share)
        allocation[i] = give
        remaining -= give
        active -= 1
    return allocation


class SharedTraceLink:
    """The bottleneck: trace-shaped capacity, fair-shared, event-driven.

    Parameters
    ----------
    trace:
        Capacity over time (wraps like the simulator's traces).
    queue:
        The emulation's event queue; the link schedules its own progress
        events on it.
    rtt_s:
        Round-trip time used by the slow-start window ramp.
    slow_start:
        Whether new transfers ramp (True reproduces HTTP throughput bias;
        False makes the link behave like the chunk-level simulator).
    initial_window_kilobits:
        Slow-start initial window (default 10 MTUs, RFC 6928).
    """

    def __init__(
        self,
        trace: Trace,
        queue: EventQueue,
        rtt_s: float = 0.08,
        slow_start: bool = True,
        initial_window_kilobits: float = 10 * _MTU_KILOBITS,
    ) -> None:
        if rtt_s <= 0:
            raise ValueError("RTT must be positive")
        if initial_window_kilobits <= 0:
            raise ValueError("initial window must be positive")
        self.trace = trace
        self.queue = queue
        self.rtt_s = rtt_s
        self.slow_start = slow_start
        self.initial_window_kilobits = initial_window_kilobits
        self._transfers: Dict[int, Transfer] = {}
        self._next_id = 0
        self._generation = 0
        self._last_progress_time = 0.0
        # Once a window exceeds this, the cap can never bind again.
        self._ramp_ceiling_kbps = 4.0 * max(trace.bandwidths_kbps)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def active_transfers(self) -> int:
        return len(self._transfers)

    def start_transfer(
        self,
        size_kilobits: float,
        on_complete: Callable[[Transfer], None],
        on_fail: Optional[Callable] = None,
    ) -> Transfer:
        """Begin delivering ``size_kilobits``; ``on_complete`` fires at the
        exact virtual completion time.

        ``on_fail`` is part of the link interface shared with
        :class:`~repro.faults.link.FaultyLink`; the clean link never
        fails a transfer, so it is accepted and ignored here.
        """
        if size_kilobits <= 0:
            raise ValueError("transfer size must be positive")
        self._apply_progress()
        transfer = Transfer(
            self._next_id,
            size_kilobits,
            self.queue.now,
            on_complete,
            self.initial_window_kilobits,
            self.rtt_s,
            ramp=self.slow_start,
        )
        self._next_id += 1
        self._transfers[transfer.transfer_id] = transfer
        self._reschedule()
        return transfer

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _capacity_now(self) -> float:
        return self.trace.bandwidth_at(self.queue.now)

    def _next_trace_boundary(self) -> float:
        """Virtual time of the next capacity change."""
        now = self.queue.now
        duration = self.trace.duration_s
        pos = now % duration
        times = self.trace.timestamps
        idx = bisect.bisect_right(times, pos) - 1
        seg_end = times[idx + 1] if idx + 1 < len(times) else duration
        return now + (seg_end - pos)

    def _cap_kbps(self, transfer: Transfer) -> float:
        if transfer.ramp_done:
            return math.inf
        return transfer.window_kilobits / self.rtt_s

    def _apply_progress(self) -> None:
        """Integrate byte progress since the last checkpoint.

        Rates were constant over the interval by construction: the link
        reschedules at every trace boundary, window epoch, arrival, and
        completion, and records each transfer's rate at that point.
        """
        now = self.queue.now
        dt = now - self._last_progress_time
        if dt > 0:
            for transfer in self._transfers.values():
                transfer.remaining_kilobits -= transfer.current_rate_kbps * dt
        self._last_progress_time = now

    def _advance_windows(self) -> None:
        """Apply any window doublings whose epoch has passed."""
        now = self.queue.now
        for transfer in self._transfers.values():
            while not transfer.ramp_done and transfer.next_epoch_s <= now + 1e-12:
                transfer.window_kilobits *= 2
                transfer.next_epoch_s += self.rtt_s
                if transfer.window_kilobits / self.rtt_s >= self._ramp_ceiling_kbps:
                    transfer.ramp_done = True

    def _reschedule(self) -> None:
        """Record current rates and schedule the next interesting moment."""
        self._generation += 1
        generation = self._generation
        self._last_progress_time = self.queue.now
        if not self._transfers:
            return
        ids = list(self._transfers)
        caps = [self._cap_kbps(self._transfers[i]) for i in ids]
        rates = _water_fill(self._capacity_now(), caps)
        horizon = self._next_trace_boundary()
        for tid, rate in zip(ids, rates):
            transfer = self._transfers[tid]
            transfer.current_rate_kbps = rate
            if not transfer.ramp_done:
                horizon = min(horizon, transfer.next_epoch_s)
            if rate > 0:
                horizon = min(
                    horizon, self.queue.now + transfer.remaining_kilobits / rate
                )
        self.queue.schedule_at(
            max(horizon, self.queue.now),
            lambda: self._on_progress(generation),
        )

    def _on_progress(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a newer reschedule
        self._apply_progress()
        self._advance_windows()
        now = self.queue.now
        completed: List[Transfer] = []
        for tid in list(self._transfers):
            transfer = self._transfers[tid]
            if transfer.remaining_kilobits <= 1e-9:
                transfer.remaining_kilobits = 0.0
                transfer.completed_at_s = now
                del self._transfers[tid]
                completed.append(transfer)
        self._reschedule()
        for transfer in completed:
            transfer.on_complete(transfer)
