"""A trace-shaped bottleneck link with fair sharing and TCP-like ramping.

This is the emulation counterpart of the paper's ``linux tc`` throttling:
the link's instantaneous capacity follows the throughput trace, active
transfers share it max-min fairly (what TCP flows on a common bottleneck
approximate), and each transfer can optionally start under a slow-start
window ramp — doubling its self-imposed rate cap every RTT from an
initial window until it no longer constrains the transfer.

The ramp reproduces a bias the paper's related work highlights (Huang et
al., "Confused, Timid, and Unstable"): short chunk downloads never reach
link capacity, so HTTP-level throughput samples under-estimate available
bandwidth — one of the reasons robust prediction handling matters.

Everything is event-driven and exact between events: rates are constant
between consecutive (trace boundary | window-doubling | completion |
join/leave) events, so progress integrates in closed form.

Scaling
-------
Re-allocation is *incremental*, not all-pairs.  The link splits flows by
what the fair share can do to them:

* **capped** flows — transfers still inside their slow-start ramp, plus
  cross-traffic flows (:class:`CrossFlow`), whose rate limit can bind.
  There are few of these at a time and they are handled per flow.
* **uncapped** flows — fully-ramped transfers.  Max-min fairness gives
  every one of them the *identical* share rate, so per-event progress is
  one shared delta (vectorized when NumPy is present) and, because a
  uniform subtraction preserves order under IEEE round-to-nearest, the
  earliest completion is always the head of a sorted pool.

Per event the link does O(capped · log capped) allocation work plus one
elementwise subtraction over the pool, instead of the O(flows) Python
bookkeeping of the historical all-pairs loop — which is preserved
verbatim in :mod:`repro.emulation.reference` as the oracle the
equivalence tests pin this implementation against.  Both engines share
:func:`_water_fill`, and the pool's elementwise delta is bit-identical
to the per-flow scalar subtraction, so the two event loops produce
*identical* floats, not merely close ones.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Dict, List, Optional, Tuple

from ..core.npcompat import HAVE_NUMPY, np
from ..traces.trace import Trace
from .clock import EventQueue

__all__ = ["Transfer", "CrossFlow", "SharedTraceLink"]

_MTU_KILOBITS = 12.0  # 1500 bytes

#: A transfer with this little left is complete (float-noise guard).
_COMPLETION_EPS_KILOBITS = 1e-9


class Transfer:
    """One in-flight download on the link."""

    __slots__ = (
        "transfer_id",
        "size_kilobits",
        "remaining_kilobits",
        "started_at_s",
        "completed_at_s",
        "on_complete",
        "window_kilobits",
        "next_epoch_s",
        "ramp_done",
        "current_rate_kbps",
        "pool_slot",
    )

    def __init__(
        self,
        transfer_id: int,
        size_kilobits: float,
        started_at_s: float,
        on_complete: Callable[["Transfer"], None],
        initial_window_kilobits: float,
        rtt_s: float,
        ramp: bool,
    ) -> None:
        self.transfer_id = transfer_id
        self.size_kilobits = size_kilobits
        self.remaining_kilobits = size_kilobits
        self.started_at_s = started_at_s
        self.completed_at_s: Optional[float] = None
        self.on_complete = on_complete
        self.window_kilobits = initial_window_kilobits
        self.next_epoch_s = started_at_s + rtt_s
        self.ramp_done = not ramp
        self.current_rate_kbps = 0.0
        #: Index into the uncapped pool while fully ramped, else ``None``.
        self.pool_slot: Optional[int] = None

    @property
    def duration_s(self) -> float:
        if self.completed_at_s is None:
            raise RuntimeError("transfer not complete yet")
        return self.completed_at_s - self.started_at_s

    def throughput_kbps(self) -> float:
        """Application-level average throughput of the finished transfer."""
        d = self.duration_s
        return self.size_kilobits / d if d > 0 else math.inf


class CrossFlow:
    """A rate-limited non-video flow pinned to the bottleneck.

    Cross traffic (a video call, a backup job) competes for capacity in
    the same max-min allocation as the players' transfers: its ``rate_kbps``
    is a cap, so it takes ``min(rate, fair share)`` and the remainder goes
    back to the pool.  It has infinite backlog — it never completes; add
    and remove it explicitly via :meth:`SharedTraceLink.add_cross_flow` /
    :meth:`SharedTraceLink.remove_cross_flow`.  ``delivered_kilobits``
    integrates exactly, for utilization accounting.
    """

    __slots__ = ("flow_id", "rate_kbps", "label", "delivered_kilobits", "current_rate_kbps")

    def __init__(self, flow_id: int, rate_kbps: float, label: str) -> None:
        self.flow_id = flow_id
        self.rate_kbps = rate_kbps
        self.label = label
        self.delivered_kilobits = 0.0
        self.current_rate_kbps = 0.0


def _fill_level(capacity, sorted_caps, extra_uncapped: int) -> Tuple[int, object]:
    """Core of the max-min fill over caps sorted ascending.

    Returns ``(bound, share)``: the first ``bound`` caps bind (each such
    flow is allocated exactly its cap) and every remaining flow — the
    rest of ``sorted_caps`` plus ``extra_uncapped`` implicit flows with
    no cap — gets the single ``share`` value.

    Numeric-generic on purpose: ``Fraction`` inputs stay ``Fraction``
    throughout, which is what lets the property suite assert exact
    conservation instead of an epsilon.
    """
    remaining = capacity
    active = len(sorted_caps) + extra_uncapped
    bound = 0
    for cap in sorted_caps:
        # Once a cap exceeds the running share, so do all larger ones:
        # nothing below the final water level binds past this point.
        if cap > remaining / active:
            break
        remaining = remaining - cap
        active -= 1
        bound += 1
    share = remaining / active if active else remaining * 0
    return bound, share


def _water_fill(capacity_kbps, caps_kbps):
    """Max-min fair allocation of ``capacity`` under per-flow caps.

    Level-based: a flow whose cap is below the final water level gets
    exactly its cap; every other flow gets the *identical* share value
    (bit-identical floats — the incremental link relies on this to apply
    one delta to the whole uncapped pool).  Numeric-generic: ``Fraction``
    inputs produce exact ``Fraction`` allocations.
    """
    n = len(caps_kbps)
    if n == 0:
        return []
    order = sorted(range(n), key=lambda i: caps_kbps[i])
    sorted_caps = [caps_kbps[i] for i in order]
    bound, share = _fill_level(capacity_kbps, sorted_caps, 0)
    allocation = [share] * n
    for pos in range(bound):
        allocation[order[pos]] = sorted_caps[pos]
    return allocation


class _UncappedPool:
    """The fully-ramped transfers, all moving at one shared rate.

    Remaining sizes live in one array (NumPy when available); progress is
    a single elementwise subtraction, bit-identical to the per-flow
    scalar ``rem -= rate * dt`` of the reference loop.  ``_order`` keeps
    live slots sorted by remaining size: a uniform subtraction cannot
    reorder values under IEEE round-to-nearest (x <= y implies
    fl(x - d) <= fl(y - d)), so completions are always a prefix and the
    earliest completion time is O(1) to find.
    """

    __slots__ = ("_rem", "_transfers", "_order", "_free")

    def __init__(self) -> None:
        size = 16
        self._rem = np.zeros(size, dtype=np.float64) if HAVE_NUMPY else [0.0] * size
        self._transfers: List[Optional[Transfer]] = [None] * size
        self._order: List[int] = []  # live slots, ascending remaining
        self._free: List[int] = list(range(size - 1, -1, -1))

    def __len__(self) -> int:
        return len(self._order)

    def add(self, transfer: Transfer) -> None:
        if not self._free:
            old = len(self._transfers)
            if HAVE_NUMPY:
                grown = np.zeros(2 * old, dtype=np.float64)
                grown[:old] = self._rem
                self._rem = grown
            else:
                self._rem.extend([0.0] * old)
            self._transfers.extend([None] * old)
            self._free.extend(range(2 * old - 1, old - 1, -1))
        slot = self._free.pop()
        rem = transfer.remaining_kilobits
        self._rem[slot] = rem
        self._transfers[slot] = transfer
        transfer.pool_slot = slot
        # Manual bisect: the key= parameter needs 3.10+, the repo runs 3.9.
        lo, hi = 0, len(self._order)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._rem[self._order[mid]] <= rem:
                lo = mid + 1
            else:
                hi = mid
        self._order.insert(lo, slot)

    def apply_delta(self, delta: float) -> None:
        if HAVE_NUMPY:
            self._rem -= delta  # dead slots drift harmlessly
        else:
            rem = self._rem
            for slot in self._order:
                rem[slot] -= delta

    def min_remaining(self) -> float:
        return float(self._rem[self._order[0]])

    def pop_completed(self, eps: float) -> List[Transfer]:
        """Remove and return every transfer with ``remaining <= eps``.

        They are a prefix of the sorted order by the invariant above.
        Each returned transfer has its ``remaining_kilobits`` synced back
        from the pool (callers then zero it, as the reference loop does).
        """
        order = self._order
        count = 0
        for slot in order:
            if self._rem[slot] <= eps:
                count += 1
            else:
                break
        if not count:
            return []
        done: List[Transfer] = []
        for slot in order[:count]:
            transfer = self._transfers[slot]
            transfer.remaining_kilobits = float(self._rem[slot])
            transfer.pool_slot = None
            self._transfers[slot] = None
            self._rem[slot] = 0.0
            self._free.append(slot)
            done.append(transfer)
        del order[:count]
        return done


class SharedTraceLink:
    """The bottleneck: trace-shaped capacity, fair-shared, event-driven.

    Parameters
    ----------
    trace:
        Capacity over time (wraps like the simulator's traces).
    queue:
        The emulation's event queue; the link schedules its own progress
        events on it.
    rtt_s:
        Round-trip time used by the slow-start window ramp.
    slow_start:
        Whether new transfers ramp (True reproduces HTTP throughput bias;
        False makes the link behave like the chunk-level simulator).
    initial_window_kilobits:
        Slow-start initial window (default 10 MTUs, RFC 6928).
    """

    def __init__(
        self,
        trace: Trace,
        queue: EventQueue,
        rtt_s: float = 0.08,
        slow_start: bool = True,
        initial_window_kilobits: float = 10 * _MTU_KILOBITS,
    ) -> None:
        if rtt_s <= 0:
            raise ValueError("RTT must be positive")
        if initial_window_kilobits <= 0:
            raise ValueError("initial window must be positive")
        self.trace = trace
        self.queue = queue
        self.rtt_s = rtt_s
        self.slow_start = slow_start
        self.initial_window_kilobits = initial_window_kilobits
        self._capped: Dict[int, Transfer] = {}  # ramping, insertion-ordered
        self._pool = _UncappedPool()
        self._cross: Dict[int, CrossFlow] = {}
        self._pool_rate_kbps = 0.0
        self._next_id = 0
        self._next_cross_id = 0
        self._generation = 0
        self._last_progress_time = 0.0
        # Once a window exceeds this, the cap can never bind again.
        self._ramp_ceiling_kbps = 4.0 * max(trace.bandwidths_kbps)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def active_transfers(self) -> int:
        return len(self._capped) + len(self._pool)

    @property
    def cross_flows(self) -> int:
        return len(self._cross)

    def start_transfer(
        self,
        size_kilobits: float,
        on_complete: Callable[[Transfer], None],
        on_fail: Optional[Callable] = None,
    ) -> Transfer:
        """Begin delivering ``size_kilobits``; ``on_complete`` fires at the
        exact virtual completion time.

        ``on_fail`` is part of the link interface shared with
        :class:`~repro.faults.link.FaultyLink`; the clean link never
        fails a transfer, so it is accepted and ignored here.
        """
        if size_kilobits <= 0:
            raise ValueError("transfer size must be positive")
        self._apply_progress()
        transfer = Transfer(
            self._next_id,
            size_kilobits,
            self.queue.now,
            on_complete,
            self.initial_window_kilobits,
            self.rtt_s,
            ramp=self.slow_start,
        )
        self._next_id += 1
        if transfer.ramp_done:
            self._pool.add(transfer)
        else:
            self._capped[transfer.transfer_id] = transfer
        self._reschedule()
        return transfer

    def add_cross_flow(self, rate_kbps: float, label: str = "cross") -> CrossFlow:
        """Attach a rate-limited cross-traffic flow to the bottleneck."""
        if not rate_kbps > 0 or math.isinf(rate_kbps):
            raise ValueError("cross-traffic rate must be positive and finite")
        self._apply_progress()
        flow = CrossFlow(self._next_cross_id, rate_kbps, label)
        self._next_cross_id += 1
        self._cross[flow.flow_id] = flow
        self._reschedule()
        return flow

    def remove_cross_flow(self, flow: CrossFlow) -> float:
        """Detach ``flow``; returns its exactly-integrated delivered bytes."""
        if self._cross.get(flow.flow_id) is not flow:
            raise ValueError("flow is not attached to this link")
        self._apply_progress()
        del self._cross[flow.flow_id]
        flow.current_rate_kbps = 0.0
        self._reschedule()
        return flow.delivered_kilobits

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _capacity_now(self) -> float:
        return self.trace.bandwidth_at(self.queue.now)

    def _next_trace_boundary(self) -> float:
        """Virtual time of the next capacity change."""
        now = self.queue.now
        duration = self.trace.duration_s
        pos = now % duration
        times = self.trace.timestamps
        idx = bisect.bisect_right(times, pos) - 1
        seg_end = times[idx + 1] if idx + 1 < len(times) else duration
        return now + (seg_end - pos)

    def _cap_kbps(self, transfer: Transfer) -> float:
        if transfer.ramp_done:
            return math.inf
        return transfer.window_kilobits / self.rtt_s

    def _apply_progress(self) -> None:
        """Integrate byte progress since the last checkpoint.

        Rates were constant over the interval by construction: the link
        reschedules at every trace boundary, window epoch, arrival,
        departure, and completion, and records each flow's rate at that
        point.  Capped flows advance one by one; the whole uncapped pool
        advances by a single shared delta.
        """
        now = self.queue.now
        dt = now - self._last_progress_time
        if dt > 0:
            for transfer in self._capped.values():
                transfer.remaining_kilobits -= transfer.current_rate_kbps * dt
            if len(self._pool):
                delta = self._pool_rate_kbps * dt
                if delta != 0.0:
                    self._pool.apply_delta(delta)
            for flow in self._cross.values():
                flow.delivered_kilobits += flow.current_rate_kbps * dt
        self._last_progress_time = now

    def _advance_windows(self) -> None:
        """Apply window doublings; graduate finished ramps into the pool."""
        now = self.queue.now
        movers: List[Transfer] = []
        for transfer in self._capped.values():
            while not transfer.ramp_done and transfer.next_epoch_s <= now + 1e-12:
                transfer.window_kilobits *= 2
                transfer.next_epoch_s += self.rtt_s
                if transfer.window_kilobits / self.rtt_s >= self._ramp_ceiling_kbps:
                    transfer.ramp_done = True
            if transfer.ramp_done:
                movers.append(transfer)
        for transfer in movers:
            del self._capped[transfer.transfer_id]
            self._pool.add(transfer)

    def _reschedule(self) -> None:
        """Record current rates and schedule the next interesting moment.

        Only the capped flows (ramping transfers + cross traffic) need
        per-flow treatment; the whole pool shares one rate, and its
        earliest completion is the pool head.
        """
        self._generation += 1
        generation = self._generation
        now = self.queue.now
        self._last_progress_time = now
        if not (self._capped or self._cross or len(self._pool)):
            return
        entries = [(self._cap_kbps(t), t, None) for t in self._capped.values()]
        entries.extend((f.rate_kbps, None, f) for f in self._cross.values())
        entries.sort(key=lambda e: e[0])
        bound, share = _fill_level(
            self._capacity_now(), [e[0] for e in entries], len(self._pool)
        )
        horizon = self._next_trace_boundary()
        for pos, (cap, transfer, flow) in enumerate(entries):
            rate = cap if pos < bound else share
            if flow is not None:
                flow.current_rate_kbps = rate
                continue
            transfer.current_rate_kbps = rate
            if not transfer.ramp_done:
                horizon = min(horizon, transfer.next_epoch_s)
            if rate > 0:
                horizon = min(horizon, now + transfer.remaining_kilobits / rate)
        self._pool_rate_kbps = share if len(self._pool) else 0.0
        if len(self._pool) and self._pool_rate_kbps > 0:
            # fl(x/r) is monotone in x, so the pool head bounds them all.
            horizon = min(
                horizon, now + self._pool.min_remaining() / self._pool_rate_kbps
            )
        target = max(horizon, now)
        if target == now:
            # A completion due in less than half an ulp of `now` rounds the
            # horizon back onto `now`; firing there would integrate dt == 0
            # forever.  One ulp of dt at any rate large enough to create
            # this state delivers more than the residual, so bumping to the
            # next representable instant completes it on the next event.
            target = math.nextafter(now, math.inf)
        self.queue.schedule_at(target, lambda: self._on_progress(generation))

    def _on_progress(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a newer reschedule
        self._apply_progress()
        self._advance_windows()
        now = self.queue.now
        completed: List[Transfer] = []
        for tid in list(self._capped):
            transfer = self._capped[tid]
            if transfer.remaining_kilobits <= _COMPLETION_EPS_KILOBITS:
                del self._capped[tid]
                completed.append(transfer)
        completed.extend(self._pool.pop_completed(_COMPLETION_EPS_KILOBITS))
        # Callbacks fire in transfer-id order — the insertion order the
        # all-pairs reference loop completes in.
        completed.sort(key=lambda t: t.transfer_id)
        for transfer in completed:
            transfer.remaining_kilobits = 0.0
            transfer.completed_at_s = now
        self._reschedule()
        for transfer in completed:
            transfer.on_complete(transfer)
