"""Name-based construction of throughput predictors.

The predictor race experiment, the load generator's per-session routing,
and the CLI all refer to predictors by short names, mirroring how
:mod:`repro.abr.registry` names algorithms.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import ThroughputPredictor
from .harmonic import HarmonicMeanPredictor
from .oracle import OraclePredictor
from .simple import (
    EWMAPredictor,
    HoltLinearPredictor,
    LastSamplePredictor,
    SlidingMeanPredictor,
)
from .streaming import GapCorrectedEWMAPredictor, GapCorrectedHarmonicPredictor

__all__ = ["make_predictor", "available_predictors"]


def _robust_gap_harmonic() -> GapCorrectedHarmonicPredictor:
    predictor = GapCorrectedHarmonicPredictor(robust_discount=0.25)
    predictor.name = "gap-harmonic-robust"
    return predictor


_FACTORIES: Dict[str, Callable[[], ThroughputPredictor]] = {
    "harmonic": HarmonicMeanPredictor,
    "ewma": EWMAPredictor,
    "holt": HoltLinearPredictor,
    "last-sample": LastSamplePredictor,
    "sliding-mean": SlidingMeanPredictor,
    "gap-harmonic": GapCorrectedHarmonicPredictor,
    "gap-ewma": GapCorrectedEWMAPredictor,
    "gap-harmonic-robust": _robust_gap_harmonic,
    "oracle": OraclePredictor,
}


def available_predictors() -> List[str]:
    """All predictor names, sorted."""
    return sorted(_FACTORIES)


def make_predictor(name: str) -> ThroughputPredictor:
    """A fresh, default-configured instance of a named predictor."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; "
            f"available: {', '.join(available_predictors())}"
        ) from None
    return factory()
