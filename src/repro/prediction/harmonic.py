"""Harmonic-mean throughput predictor — the paper's default.

Section 7.1.2: *"we use the harmonic mean of the observed throughput of the
last 5 chunks because it is robust to outliers in per-chunk estimates"*
(following FESTIVE [34]).  The harmonic mean down-weights throughput
spikes, which matters because a single anomalously fast chunk would
otherwise drag an arithmetic mean far above sustainable rates.

The forecast is flat: the same value for every chunk in the horizon.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from .base import ThroughputObservation, ThroughputPredictor

__all__ = ["HarmonicMeanPredictor"]


class HarmonicMeanPredictor(ThroughputPredictor):
    """Harmonic mean of the last ``window`` per-chunk throughputs.

    Parameters
    ----------
    window:
        Number of past chunks averaged (the paper uses 5).
    cold_start_kbps:
        Returned before any observation exists (a session's very first
        chunk).  Defaults to a conservative low rate so cold-start picks
        the bottom of the ladder, matching real player behaviour.
    """

    name = "harmonic"

    def __init__(self, window: int = 5, cold_start_kbps: float = 100.0) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if cold_start_kbps <= 0:
            raise ValueError("cold-start value must be positive")
        self.window = window
        self.cold_start_kbps = cold_start_kbps
        self._samples: Deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        self._samples.clear()

    def observe(self, observation: ThroughputObservation) -> None:
        self._samples.append(observation.throughput_kbps)

    def current_estimate(self) -> float:
        """The harmonic mean of the current window (cold-start fallback)."""
        if not self._samples:
            return self.cold_start_kbps
        return len(self._samples) / sum(1.0 / s for s in self._samples)

    def predict(self, horizon: int) -> List[float]:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        return [self.current_estimate()] * horizon
