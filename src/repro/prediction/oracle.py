"""Oracle predictors with controllable error.

Two pieces of the paper's methodology live here:

* **Perfect prediction** (:class:`OraclePredictor`) backs *MPC-OPT*
  (Section 7.1.2: "the exact MPC with perfect throughput prediction for
  the next 5 chunks") and the "FastMPC + Perfect Prediction" series of
  Figure 12a.

* **Controlled error** (:class:`NoisyOraclePredictor`) backs the
  sensitivity study of Section 7.3: "we use the average error level to
  characterize the performance of a throughput predictor and model the
  prediction output as being a combination of the true throughput with
  added random noise according to the average error level" (Figures 11a
  and 12b).

Both need the ground-truth trace; the simulator wires it in through the
:class:`~repro.prediction.base.TraceAware` protocol.  The "true" future for
window ``j`` is the trace's average throughput over
``[t + j*L, t + (j+1)*L)`` — accurate whenever downloads proceed roughly in
real time, and exactly the view a testbed oracle would log.
"""

from __future__ import annotations

import random
from typing import List

from .base import ThroughputObservation, ThroughputPredictor, TraceAware

__all__ = ["OraclePredictor", "NoisyOraclePredictor"]


class OraclePredictor(TraceAware, ThroughputPredictor):
    """Perfect per-chunk throughput knowledge over the horizon."""

    name = "oracle"

    def reset(self) -> None:
        self._wall_time_s = 0.0

    def observe(self, observation: ThroughputObservation) -> None:
        # The oracle needs no history — it reads the trace directly.
        pass

    def predict(self, horizon: int) -> List[float]:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        return [max(v, 1e-6) for v in self._true_future(horizon)]


class NoisyOraclePredictor(TraceAware, ThroughputPredictor):
    """Ground truth corrupted by multiplicative noise of a target level.

    Each horizon entry is ``C_true * (1 + e)`` with ``e`` drawn uniformly
    from ``[-2*err, +2*err]`` so that the *average absolute percentage
    error* equals ``error_level`` (mean of |U(-2e, 2e)| is ``e``).  Noise is
    seeded per (session seed, decision epoch, horizon slot) so experiments
    are reproducible yet errors are independent across decisions.
    """

    name = "noisy-oracle"

    def __init__(self, error_level: float, seed: int = 0, floor_kbps: float = 1e-3) -> None:
        if error_level < 0 or error_level >= 0.5:
            raise ValueError(
                "error_level must be in [0, 0.5) so that 1 + e stays positive"
            )
        self.error_level = error_level
        self.seed = seed
        self.floor_kbps = floor_kbps
        self._epoch = 0

    def reset(self) -> None:
        self._wall_time_s = 0.0
        self._epoch = 0

    def observe(self, observation: ThroughputObservation) -> None:
        self._epoch += 1

    def predict(self, horizon: int) -> List[float]:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        truth = self._true_future(horizon)
        out = []
        for j, c in enumerate(truth):
            rng = random.Random(f"{self.seed}-{self._epoch}-{j}")
            e = rng.uniform(-2 * self.error_level, 2 * self.error_level)
            out.append(max(c * (1.0 + e), self.floor_kbps))
        return out
