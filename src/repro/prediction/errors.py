"""Prediction-error tracking for RobustMPC and for Figure 7.

Section 7.1.2, RobustMPC configuration: *"We assume that the throughput
lower bound is C_hat / (1 + err), where C_hat is obtained using harmonic
mean of the past 5 chunks, while prediction error err is the maximum
absolute percentage error of the past 5 chunks."*

:class:`PredictionErrorTracker` records, for each chunk, the percentage
error between what the predictor forecast before the download and what the
download actually measured, and exposes the max/mean statistics both
RobustMPC and the dataset-characterisation figure need.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from .base import OBSERVATION_FLOOR_KBPS

__all__ = ["PredictionErrorTracker", "percentage_error"]


def percentage_error(predicted_kbps: float, actual_kbps: float) -> float:
    """Signed relative error ``(predicted - actual) / actual``.

    Positive values mean over-estimation — the dangerous direction, since
    it drives rebuffering (Section 7.2's HSDPA analysis).
    """
    if actual_kbps <= 0:
        raise ValueError("actual throughput must be positive")
    return (predicted_kbps - actual_kbps) / actual_kbps


class PredictionErrorTracker:
    """Rolling window of per-chunk prediction errors.

    Parameters
    ----------
    window:
        How many recent chunks the robust bound looks at (paper: 5).
    """

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._recent: Deque[float] = deque(maxlen=window)
        self._all: List[float] = []
        self._gapped: List[bool] = []
        self._busy_s = 0.0
        self._idle_s = 0.0
        self._stall_s = 0.0

    def reset(self) -> None:
        self._recent.clear()
        self._all.clear()
        self._gapped.clear()
        self._busy_s = 0.0
        self._idle_s = 0.0
        self._stall_s = 0.0

    def record(
        self,
        predicted_kbps: float,
        actual_kbps: float,
        duration_s: float = 0.0,
        idle_s: float = 0.0,
        stall_s: float = 0.0,
    ) -> float:
        """Record one chunk's prediction/outcome pair; returns the error.

        ``actual_kbps`` is clamped to the observation floor before the
        division: a chunk that measured zero throughput (downloaded
        through a blackout) is a real outcome the tracker must absorb
        without raising, and the clamped error stays finite — it simply
        reports a very large over-estimation, which is the truth.

        ``duration_s``/``idle_s``/``stall_s`` carry the chunk's on/off
        context (see :class:`~repro.prediction.base.ThroughputObservation`)
        so the sensitivity study can stratify error by how gappy the
        traffic was; all three default to 0 for callers that predate the
        streaming-aware layer.
        """
        err = percentage_error(
            predicted_kbps, max(actual_kbps, OBSERVATION_FLOOR_KBPS)
        )
        self._recent.append(err)
        self._all.append(err)
        self._gapped.append(idle_s > 0.0 or stall_s > 0.0)
        self._busy_s += duration_s
        self._idle_s += idle_s
        self._stall_s += stall_s
        return err

    def __len__(self) -> int:
        return len(self._all)

    # ------------------------------------------------------------------
    # RobustMPC bound
    # ------------------------------------------------------------------

    def max_recent_abs_error(self) -> float:
        """Max absolute percentage error over the window (RobustMPC's
        ``err``); 0 when no history exists yet."""
        if not self._recent:
            return 0.0
        return max(abs(e) for e in self._recent)

    def robust_lower_bound(self, predicted_kbps: float) -> float:
        """The paper's lower bound ``C_hat / (1 + err)``."""
        if predicted_kbps <= 0:
            raise ValueError("prediction must be positive")
        return predicted_kbps / (1.0 + self.max_recent_abs_error())

    # ------------------------------------------------------------------
    # Session statistics (Figure 7's right panel)
    # ------------------------------------------------------------------

    def mean_abs_error(self) -> float:
        """Session-average absolute percentage error."""
        if not self._all:
            return 0.0
        return sum(abs(e) for e in self._all) / len(self._all)

    def mean_signed_error(self) -> float:
        """Session-average signed error (positive = over-estimation)."""
        if not self._all:
            return 0.0
        return sum(self._all) / len(self._all)

    def overestimation_fraction(self) -> float:
        """Fraction of chunks where the predictor over-estimated."""
        if not self._all:
            return 0.0
        return sum(1 for e in self._all if e > 0) / len(self._all)

    def worst_abs_error(self) -> float:
        """Worst absolute percentage error over the whole session."""
        if not self._all:
            return 0.0
        return max(abs(e) for e in self._all)

    # ------------------------------------------------------------------
    # On/off (idle-gap) stratification
    # ------------------------------------------------------------------

    def idle_gap_fraction(self) -> float:
        """Fraction of observed wall time the link sat idle or stalled.

        ``(idle + stall) / (busy + idle)``; 0.0 before any timed chunk
        has been recorded.  This is the on/off ratio the §7.3 extension
        stratifies prediction error by — previously observed by the
        ``record()`` callers but discarded.
        """
        total = self._busy_s + self._idle_s
        if total <= 0.0:
            return 0.0
        return (self._idle_s + self._stall_s) / total

    def stratified_mean_abs_error(self) -> dict:
        """Mean |error| split by whether the chunk saw an idle gap/stall.

        Returns ``{"gapped": {"chunks": n, "mae": ...},
        "smooth": {"chunks": n, "mae": ...}}`` with ``mae`` 0.0 for an
        empty stratum, accumulated with sequential sums in record order.
        """
        out = {}
        for label, wanted in (("gapped", True), ("smooth", False)):
            total = 0.0
            count = 0
            for err, gapped in zip(self._all, self._gapped):
                if gapped is wanted:
                    total += abs(err)
                    count += 1
            out[label] = {"chunks": count, "mae": total / count if count else 0.0}
        return out

    @property
    def errors(self) -> List[float]:
        """All signed errors recorded this session (copy)."""
        return list(self._all)
