"""Streaming-aware throughput predictors (idle-gap correction).

Kairos (arXiv 2503.14271) observes that HTTP adaptive streaming traffic
is on/off: the player downloads a chunk, then idles (request pacing, a
full buffer, or — live — waiting for the next chunk to exist), and parts
of a download itself can be dead time (connectivity blackouts, failure
detection before a retry).  A predictor that averages wall-clock rates
over such traffic systematically *under*-estimates link capacity, which
the §7.3 sensitivity study shows translates directly into lost QoE.

The predictors here correct for that by operating on *active rates*:
each :class:`~repro.prediction.base.ThroughputObservation` carries the
off time it saw (``idle_s`` between transfers, ``stall_s`` inside the
transfer), and the correction

.. math::  a_k = C_k \\cdot \\frac{d_k}{d_k - s_k}

recovers the rate sustained while bytes were actually flowing.  Three
exact-equality contracts pin the design (``tests/prediction/
test_streaming_aware.py``):

* **degradation** — on traffic with no stalls and no discount, every
  prediction is bit-identical (``==``) to the plain harmonic/EWMA
  predictor fed the same samples: the active rate *is* the wall rate
  (same float, no arithmetic), and the aggregation expressions are
  verbatim those of the plain predictors;
* **idle invariance** — inserting zero-length idle gaps between
  observations never changes a prediction (idle time informs only the
  :meth:`idle_gap_fraction` diagnostic, never the estimate);
* **bounded** — whenever a correction engaged (some stall in the window,
  or a robust discount), the prediction is clamped into the closed range
  of observed active rates, so a corrected estimate can never exceed any
  rate the link actually demonstrated.

``robust_discount`` is the Kairos-style conservatism knob: the estimate
is divided by ``1 + robust_discount`` (the same shape as RobustMPC's
``C_hat / (1 + err)`` lower bound) before the clamp, trading a little
average bitrate for rebuffer safety.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from .base import ThroughputObservation, ThroughputPredictor

__all__ = [
    "GapCorrectedHarmonicPredictor",
    "GapCorrectedEWMAPredictor",
]


class _GapAccounting:
    """Shared on/off bookkeeping for the gap-corrected predictors.

    Accumulates the session's busy/idle/stall seconds with plain
    sequential float sums (the repo's order-stable accumulation rule)
    and holds the idle time reported out-of-band via
    :meth:`observe_idle` until the next sample attaches it.
    """

    def __init__(self) -> None:
        self._busy_s = 0.0
        self._idle_s = 0.0
        self._stall_s = 0.0
        self._pending_idle_s = 0.0

    def reset(self) -> None:
        self._busy_s = 0.0
        self._idle_s = 0.0
        self._stall_s = 0.0
        self._pending_idle_s = 0.0

    def observe_idle(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("idle time must be >= 0")
        self._pending_idle_s += seconds

    def absorb(self, observation: ThroughputObservation) -> None:
        self._busy_s += observation.duration_s
        self._idle_s += observation.idle_s
        self._idle_s += self._pending_idle_s
        self._pending_idle_s = 0.0
        self._stall_s += observation.stall_s

    def idle_gap_fraction(self) -> float:
        """Fraction of observed wall time the link sat idle or stalled.

        ``(idle + stall) / (busy + idle)`` — the on/off ratio the
        sensitivity experiment stratifies prediction error by; ``0.0``
        before any time has been observed.
        """
        total = self._busy_s + self._idle_s
        if total <= 0.0:
            return 0.0
        return (self._idle_s + self._stall_s) / total


class GapCorrectedHarmonicPredictor(ThroughputPredictor):
    """Harmonic mean over the last ``window`` *active* rates.

    Drop-in for :class:`~repro.prediction.harmonic.HarmonicMeanPredictor`
    (same window/cold-start semantics, same flat forecast); see the
    module docstring for the exact-equality contracts.

    Parameters
    ----------
    window / cold_start_kbps:
        As in the plain harmonic predictor (paper defaults).
    robust_discount:
        Divide the estimate by ``1 + robust_discount`` before clamping
        (0 disables; 0.25 is a reasonable conservative setting).
    """

    name = "gap-harmonic"

    def __init__(
        self,
        window: int = 5,
        cold_start_kbps: float = 100.0,
        robust_discount: float = 0.0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if cold_start_kbps <= 0:
            raise ValueError("cold-start value must be positive")
        if robust_discount < 0:
            raise ValueError("robust discount must be >= 0")
        self.window = window
        self.cold_start_kbps = cold_start_kbps
        self.robust_discount = robust_discount
        self._samples: Deque[float] = deque(maxlen=window)
        self._corrected: Deque[bool] = deque(maxlen=window)
        self._gaps = _GapAccounting()

    def reset(self) -> None:
        self._samples.clear()
        self._corrected.clear()
        self._gaps.reset()

    def observe_idle(self, seconds: float) -> None:
        """Report off time between transfers (attached to the next sample)."""
        self._gaps.observe_idle(seconds)

    def observe(self, observation: ThroughputObservation) -> None:
        self._samples.append(observation.active_kbps)
        self._corrected.append(0.0 < observation.stall_s < observation.duration_s)
        self._gaps.absorb(observation)

    def idle_gap_fraction(self) -> float:
        return self._gaps.idle_gap_fraction()

    def current_estimate(self) -> float:
        """Harmonic mean of the windowed active rates (clamped if corrected)."""
        if not self._samples:
            return self.cold_start_kbps
        estimate = len(self._samples) / sum(1.0 / a for a in self._samples)
        if self.robust_discount > 0.0:
            estimate = estimate / (1.0 + self.robust_discount)
        elif not any(self._corrected):
            # Pure path: no stall in the window, no discount — the value
            # above is the plain harmonic expression verbatim, returned
            # unclamped so the degradation contract holds to the bit.
            return estimate
        lo = min(self._samples)
        hi = max(self._samples)
        if estimate < lo:
            return lo
        if estimate > hi:
            return hi
        return estimate

    def predict(self, horizon: int) -> List[float]:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        return [self.current_estimate()] * horizon


class GapCorrectedEWMAPredictor(ThroughputPredictor):
    """EWMA over active rates, with the same exact-equality contracts.

    The level recurrence is verbatim
    :class:`~repro.prediction.simple.EWMAPredictor`'s
    (``level = alpha * a + (1 - alpha) * level``) applied to active
    rates, so gap-free traffic reproduces the plain EWMA bit-for-bit.
    Because the EWMA remembers every sample, the bound/clamp range is
    the running min/max over *all* observed active rates, and a
    correction, once engaged, stays engaged for the session.
    """

    name = "gap-ewma"

    def __init__(
        self,
        alpha: float = 0.4,
        cold_start_kbps: float = 100.0,
        robust_discount: float = 0.0,
    ) -> None:
        if not (0 < alpha <= 1):
            raise ValueError("alpha must be in (0, 1]")
        if cold_start_kbps <= 0:
            raise ValueError("cold-start value must be positive")
        if robust_discount < 0:
            raise ValueError("robust discount must be >= 0")
        self.alpha = alpha
        self.cold_start_kbps = cold_start_kbps
        self.robust_discount = robust_discount
        self._level: Optional[float] = None
        self._bounds: Optional[Tuple[float, float]] = None
        self._any_corrected = False
        self._gaps = _GapAccounting()

    def reset(self) -> None:
        self._level = None
        self._bounds = None
        self._any_corrected = False
        self._gaps.reset()

    def observe_idle(self, seconds: float) -> None:
        """Report off time between transfers (diagnostic only)."""
        self._gaps.observe_idle(seconds)

    def observe(self, observation: ThroughputObservation) -> None:
        a = observation.active_kbps
        if 0.0 < observation.stall_s < observation.duration_s:
            self._any_corrected = True
        if self._level is None:
            self._level = a
            self._bounds = (a, a)
        else:
            self._level = self.alpha * a + (1 - self.alpha) * self._level
            lo, hi = self._bounds
            self._bounds = (min(lo, a), max(hi, a))
        self._gaps.absorb(observation)

    def idle_gap_fraction(self) -> float:
        return self._gaps.idle_gap_fraction()

    def current_estimate(self) -> float:
        if self._level is None:
            return self.cold_start_kbps
        estimate = self._level
        if self.robust_discount > 0.0:
            estimate = estimate / (1.0 + self.robust_discount)
        elif not self._any_corrected:
            return estimate
        lo, hi = self._bounds
        if estimate < lo:
            return lo
        if estimate > hi:
            return hi
        return estimate

    def predict(self, horizon: int) -> List[float]:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        return [self.current_estimate()] * horizon
