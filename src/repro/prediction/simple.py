"""Simple baseline predictors: last-sample, sliding mean, EWMA, Holt.

The paper evaluates only the harmonic-mean predictor (its Section 8 calls
better prediction future work), but comparing predictor families is a
natural ablation and these implementations back the predictor-choice
experiments in ``tests/prediction`` and the Figure 7 bench.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .base import ThroughputObservation, ThroughputPredictor

__all__ = [
    "LastSamplePredictor",
    "SlidingMeanPredictor",
    "EWMAPredictor",
    "HoltLinearPredictor",
]


class LastSamplePredictor(ThroughputPredictor):
    """Forecast = the most recent chunk's throughput (naive persistence)."""

    name = "last-sample"

    def __init__(self, cold_start_kbps: float = 100.0) -> None:
        if cold_start_kbps <= 0:
            raise ValueError("cold-start value must be positive")
        self.cold_start_kbps = cold_start_kbps
        self._last: Optional[float] = None

    def reset(self) -> None:
        self._last = None

    def observe(self, observation: ThroughputObservation) -> None:
        self._last = observation.throughput_kbps

    def predict(self, horizon: int) -> List[float]:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        value = self._last if self._last is not None else self.cold_start_kbps
        return [value] * horizon


class SlidingMeanPredictor(ThroughputPredictor):
    """Arithmetic mean of the last ``window`` samples.

    Included as the contrast case to the harmonic mean: it over-weights
    throughput spikes, which is exactly why the paper prefers the harmonic
    mean.
    """

    name = "sliding-mean"

    def __init__(self, window: int = 5, cold_start_kbps: float = 100.0) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if cold_start_kbps <= 0:
            raise ValueError("cold-start value must be positive")
        self.window = window
        self.cold_start_kbps = cold_start_kbps
        self._samples: Deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        self._samples.clear()

    def observe(self, observation: ThroughputObservation) -> None:
        self._samples.append(observation.throughput_kbps)

    def predict(self, horizon: int) -> List[float]:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if not self._samples:
            value = self.cold_start_kbps
        else:
            value = sum(self._samples) / len(self._samples)
        return [value] * horizon


class EWMAPredictor(ThroughputPredictor):
    """Exponentially weighted moving average with smoothing ``alpha``."""

    name = "ewma"

    def __init__(self, alpha: float = 0.4, cold_start_kbps: float = 100.0) -> None:
        if not (0 < alpha <= 1):
            raise ValueError("alpha must be in (0, 1]")
        if cold_start_kbps <= 0:
            raise ValueError("cold-start value must be positive")
        self.alpha = alpha
        self.cold_start_kbps = cold_start_kbps
        self._level: Optional[float] = None

    def reset(self) -> None:
        self._level = None

    def observe(self, observation: ThroughputObservation) -> None:
        x = observation.throughput_kbps
        if self._level is None:
            self._level = x
        else:
            self._level = self.alpha * x + (1 - self.alpha) * self._level

    def predict(self, horizon: int) -> List[float]:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        value = self._level if self._level is not None else self.cold_start_kbps
        return [value] * horizon


class HoltLinearPredictor(ThroughputPredictor):
    """Holt's double exponential smoothing: level + trend extrapolation.

    Unlike the flat-forecast predictors, this one produces a *ramped*
    horizon forecast, exercising MPC's ability to plan against anticipated
    throughput changes.  The trend is damped and the forecast floored to
    stay positive.
    """

    name = "holt"

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 0.3,
        damping: float = 0.9,
        cold_start_kbps: float = 100.0,
        floor_kbps: float = 10.0,
    ) -> None:
        if not (0 < alpha <= 1) or not (0 <= beta <= 1):
            raise ValueError("alpha in (0,1], beta in [0,1] required")
        if not (0 < damping <= 1):
            raise ValueError("damping must be in (0, 1]")
        if cold_start_kbps <= 0 or floor_kbps <= 0:
            raise ValueError("cold-start and floor must be positive")
        self.alpha = alpha
        self.beta = beta
        self.damping = damping
        self.cold_start_kbps = cold_start_kbps
        self.floor_kbps = floor_kbps
        self._level: Optional[float] = None
        self._trend: float = 0.0

    def reset(self) -> None:
        self._level = None
        self._trend = 0.0

    def observe(self, observation: ThroughputObservation) -> None:
        x = observation.throughput_kbps
        if self._level is None:
            self._level = x
            self._trend = 0.0
            return
        prev_level = self._level
        self._level = self.alpha * x + (1 - self.alpha) * (prev_level + self._trend)
        self._trend = self.beta * (self._level - prev_level) + (1 - self.beta) * self._trend

    def predict(self, horizon: int) -> List[float]:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self._level is None:
            return [self.cold_start_kbps] * horizon
        out = []
        damp = self.damping
        cumulative = 0.0
        for step in range(1, horizon + 1):
            cumulative += damp**step
            out.append(max(self._level + cumulative * self._trend, self.floor_kbps))
        return out
