"""Throughput-predictor interface.

Section 3.3 of the paper: the bitrate controller consumes *predictions*
``{C_hat_t, t > t_k}`` from a throughput predictor plus exactly-known
buffer occupancy.  The paper deliberately treats predictors as pluggable —
"we assume that predictors are given to us and are characterized in terms
of their expected prediction errors" — and so does this package.

A predictor is fed one observation per completed chunk download (the
chunk's average throughput, Eq. 2) via :meth:`observe`, and asked for a
per-chunk forecast over the MPC look-ahead horizon via :meth:`predict`.

Oracle-style predictors used in sensitivity studies additionally implement
:class:`TraceAware`: the simulator binds them to the ground-truth trace and
informs them of the wall clock before each decision.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "OBSERVATION_FLOOR_KBPS",
    "ThroughputObservation",
    "ThroughputPredictor",
    "TraceAware",
]

#: Smallest throughput an observation can carry.  A chunk downloaded
#: through a connectivity blackout measures (arbitrarily close to) zero
#: throughput — a legitimate outcome, not bad input — but a literal zero
#: poisons every downstream consumer that divides by the measurement
#: (harmonic means, percentage errors, robust bounds).  Observations are
#: therefore clamped to this floor at the boundary: 0.001 kbps ≈ one bit
#: per second, far below any level a ladder could ever pick, so the clamp
#: never changes a decision — it only keeps the arithmetic finite.
OBSERVATION_FLOOR_KBPS = 1e-3


@dataclass(frozen=True)
class ThroughputObservation:
    """One completed chunk download, as seen by the predictor.

    Non-positive measured throughput (a fully stalled download) is
    clamped to :data:`OBSERVATION_FLOOR_KBPS` rather than rejected;
    negative, NaN, and infinite-duration inputs remain errors — those
    are caller bugs, not network conditions.
    """

    throughput_kbps: float
    duration_s: float = 0.0
    chunk_index: int = -1

    def __post_init__(self) -> None:
        if math.isnan(self.throughput_kbps) or self.throughput_kbps < 0:
            raise ValueError("observed throughput must be a number >= 0")
        if self.throughput_kbps < OBSERVATION_FLOOR_KBPS:
            object.__setattr__(self, "throughput_kbps", OBSERVATION_FLOOR_KBPS)
        if self.duration_s < 0:
            raise ValueError("duration must be >= 0")


class ThroughputPredictor(ABC):
    """Base class for all predictors."""

    name = "base"

    @abstractmethod
    def reset(self) -> None:
        """Forget all history (called at the start of each session)."""

    @abstractmethod
    def observe(self, observation: ThroughputObservation) -> None:
        """Record a completed chunk's measured average throughput."""

    @abstractmethod
    def predict(self, horizon: int) -> List[float]:
        """Forecast per-chunk average throughput for the next ``horizon``
        chunks, in kbps.  Must return exactly ``horizon`` positive values,
        even with no history (a documented cold-start default)."""

    def observe_kbps(self, throughput_kbps: float, duration_s: float = 0.0) -> None:
        """Convenience wrapper building the observation record."""
        self.observe(ThroughputObservation(throughput_kbps, duration_s))

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class TraceAware:
    """Mixin for predictors that peek at the ground-truth trace.

    The simulator calls :meth:`bind_trace` once per session and
    :meth:`set_wall_time` before each prediction, enabling oracle and
    noisy-oracle predictors (Section 7.3's controlled-error study).
    """

    _trace = None
    _wall_time_s: float = 0.0
    _chunk_duration_s: Optional[float] = None

    def bind_trace(self, trace, chunk_duration_s: float) -> None:
        if chunk_duration_s <= 0:
            raise ValueError("chunk duration must be positive")
        self._trace = trace
        self._chunk_duration_s = chunk_duration_s

    def set_wall_time(self, t: float) -> None:
        if t < 0:
            raise ValueError("wall time must be >= 0")
        self._wall_time_s = t

    def _true_future(self, horizon: int) -> List[float]:
        """Ground-truth average throughput over the next ``horizon``
        chunk-length wall-clock windows starting now."""
        if self._trace is None or self._chunk_duration_s is None:
            raise RuntimeError(
                "trace-aware predictor used before bind_trace(); "
                "run it inside a simulation session"
            )
        L = self._chunk_duration_s
        t = self._wall_time_s
        return [
            self._trace.average_kbps_between(t + j * L, t + (j + 1) * L)
            for j in range(horizon)
        ]
